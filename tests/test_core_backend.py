"""Unit tests for message queues, ISAX cost model, and accelerators."""

import pytest

from repro.core.accelerator import PmcAccelerator, ShadowStackAccelerator
from repro.core.isax import IsaxInterface, IsaxStyle
from repro.core.msgqueue import MessageQueue, QueueController, WordQueue
from repro.core.packet import OFF_ADDR, OFF_DATA, OFF_META, Packet
from repro.errors import QueueError
from repro.isa.decode import encode_instr
from repro.isa.opcodes import InstrClass
from repro.trace.record import InstrRecord


def load_packet(seq=0, addr=0x2000, attack=None):
    word = encode_instr("ld", rd=5, rs1=8)
    rec = InstrRecord(seq=seq, pc=0x100, word=word, opcode=0x03, funct3=3,
                      iclass=InstrClass.LOAD, dst=5, srcs=(8,),
                      mem_addr=addr, mem_size=8, attack_id=attack)
    return Packet(seq=seq, gid=1, record=rec, commit_ns=1.0)


def call_packet(seq=0, pc=0x400, target=0x9000):
    word = encode_instr("jal", rd=1, imm=0)
    rec = InstrRecord(seq=seq, pc=pc, word=word, opcode=0x6F, funct3=0,
                      iclass=InstrClass.CALL, dst=1, taken=True,
                      target=target, result=pc + 4)
    return Packet(seq=seq, gid=2, record=rec, commit_ns=0.0)


def ret_packet(seq=0, pc=0x500, target=0x404):
    word = encode_instr("jalr", rd=0, rs1=1)
    rec = InstrRecord(seq=seq, pc=pc, word=word, opcode=0x67, funct3=0,
                      iclass=InstrClass.RET, srcs=(1,), taken=True,
                      target=target)
    return Packet(seq=seq, gid=2, record=rec, commit_ns=0.0)


class TestMessageQueue:
    def test_count_top_pop(self):
        q = MessageQueue(4)
        q.push(load_packet(0, addr=0xAA))
        q.push(load_packet(1, addr=0xBB))
        assert q.count() == 2
        assert q.top(OFF_ADDR) == 0xAA
        assert q.pop(OFF_ADDR) == 0xAA
        assert q.count() == 1

    def test_recent_after_pop(self):
        q = MessageQueue(4)
        q.push(load_packet(0, addr=0xCC))
        q.pop(OFF_META)
        assert q.recent(OFF_ADDR) == 0xCC

    def test_recent_before_pop_raises(self):
        with pytest.raises(QueueError):
            MessageQueue(2).recent(0)

    def test_pop_empty_raises(self):
        with pytest.raises(QueueError):
            MessageQueue(2).pop(0)

    def test_top_empty_raises(self):
        with pytest.raises(QueueError):
            MessageQueue(2).top(0)

    def test_capacity(self):
        q = MessageQueue(2)
        assert q.push(load_packet(0))
        assert q.push(load_packet(1))
        assert not q.push(load_packet(2))
        assert q.full

    def test_recently_popped_window(self):
        q = MessageQueue(16)
        for i in range(12):
            q.push(load_packet(i))
        for _ in range(12):
            q.pop(OFF_META)
        window = q.recently_popped()
        assert len(window) == MessageQueue.ATTRIBUTION_WINDOW
        assert window[0].seq == 11  # newest first

    def test_full_cycle_stat(self):
        q = MessageQueue(1)
        q.push(load_packet(0))
        q.note_cycle()
        assert q.stat_full_cycles == 1


class TestWordQueue:
    def test_fifo(self):
        q = WordQueue(4)
        q.push(1)
        q.push(2)
        assert q.pop() == 1
        assert q.head() == 2

    def test_capacity(self):
        q = WordQueue(1)
        assert q.push(1)
        assert not q.push(2)

    def test_pop_empty_raises(self):
        with pytest.raises(QueueError):
            WordQueue(1).pop()


class TestQueueController:
    def test_selectors(self):
        c = QueueController(engine_id=0, input_depth=4, peer_depth=4)
        c.input_queue.push(load_packet(0))
        c.peer_queue.push(0x7)
        assert c.count(QueueController.INPUT) == 1
        assert c.count(QueueController.PEER) == 1

    def test_bad_selector(self):
        c = QueueController(0, 4, 4)
        with pytest.raises(QueueError):
            c.count(2)

    def test_push_targets_dest_register(self):
        c = QueueController(0, 4, 4, output_depth=2)
        c.dest_register = 3
        assert c.push(0xAB)
        assert c.take_outgoing() == (3, 0xAB)
        assert c.take_outgoing() is None

    def test_output_capacity(self):
        c = QueueController(0, 4, 4, output_depth=1)
        assert c.push(1)
        assert not c.push(2)
        c.take_outgoing()
        assert c.push(2)


class TestIsaxInterface:
    def test_ma_stage_cheap(self):
        isax = IsaxInterface(IsaxStyle.MA_STAGE)
        assert isax.cost(result_used_next=False, back_to_back=False) == 1
        assert isax.cost(result_used_next=True, back_to_back=False) == 2

    def test_post_commit_expensive(self):
        isax = IsaxInterface(IsaxStyle.POST_COMMIT)
        base = isax.cost(result_used_next=False, back_to_back=False)
        worst = isax.cost(result_used_next=True, back_to_back=True)
        assert base == 3
        assert worst == 13  # §III-D: "can extend up to 13 cycles"

    def test_stats_accumulate(self):
        isax = IsaxInterface(IsaxStyle.POST_COMMIT)
        isax.cost(True, False)
        isax.cost(False, True)
        assert isax.stat_ops == 2
        assert isax.stat_hazard_cycles > 0
        assert isax.stat_contention_cycles > 0

    def test_ma_stage_never_slower_than_post_commit(self):
        ma = IsaxInterface(IsaxStyle.MA_STAGE)
        pc = IsaxInterface(IsaxStyle.POST_COMMIT)
        for used in (False, True):
            for b2b in (False, True):
                assert ma.cost(used, b2b) < pc.cost(used, b2b)


class TestPmcAccelerator:
    def _make(self, lo=0, hi=1 << 40):
        q = MessageQueue(32)
        alerts = []
        ha = PmcAccelerator(0, q, lambda e, p, c: alerts.append(p),
                            bound_lo=lo, bound_hi=hi)
        return ha, q, alerts

    def test_in_bounds_silent(self):
        ha, q, alerts = self._make()
        q.push(load_packet(0, addr=0x1000))
        ha.tick(0)
        assert not alerts
        assert ha.event_count == 1

    def test_out_of_bounds_alerts(self):
        ha, q, alerts = self._make(hi=0x1000)
        q.push(load_packet(0, addr=0x2000, attack=5))
        ha.tick(0)
        assert len(alerts) == 1
        assert alerts[0].attack_id == 5

    def test_line_rate_drain(self):
        ha, q, alerts = self._make()
        for i in range(ha.throughput + 2):
            q.push(load_packet(i))
        ha.tick(0)
        assert len(q) == 2  # throughput packets per cycle
        ha.tick(1)
        assert q.empty

    def test_idle(self):
        ha, q, _ = self._make()
        assert ha.idle_at(0)
        q.push(load_packet(0))
        assert not ha.idle_at(0)


class TestShadowStackAccelerator:
    def _make(self):
        q = MessageQueue(16)
        alerts = []
        ha = ShadowStackAccelerator(0, q,
                                    lambda e, p, c: alerts.append(p))
        return ha, q, alerts

    def test_matched_call_ret_silent(self):
        ha, q, alerts = self._make()
        q.push(call_packet(0, pc=0x400))
        q.push(ret_packet(1, target=0x404))
        ha.tick(0)
        ha.tick(1)
        assert not alerts

    def test_hijacked_return_alerts(self):
        ha, q, alerts = self._make()
        q.push(call_packet(0, pc=0x400))
        q.push(ret_packet(1, target=0xDEAD))
        ha.tick(0)
        ha.tick(1)
        assert len(alerts) == 1

    def test_nested_calls(self):
        ha, q, alerts = self._make()
        q.push(call_packet(0, pc=0x100))
        q.push(call_packet(1, pc=0x200))
        q.push(ret_packet(2, target=0x204))
        q.push(ret_packet(3, target=0x104))
        for i in range(4):
            ha.tick(i)
        assert not alerts

    def test_underflow_alerts(self):
        ha, q, alerts = self._make()
        q.push(ret_packet(0, target=0x104))
        ha.tick(0)
        assert len(alerts) == 1

    def test_non_ctrl_packet_ignored(self):
        ha, q, alerts = self._make()
        q.push(load_packet(0))
        ha.tick(0)
        assert not alerts and ha.stat_packets == 1
