"""Unit tests for FireGuard's frontend: packets, mini-filters, the
data-forwarding channel, and the event filter."""

import pytest

from repro.core.config import DP_FTQ, DP_LSQ, DP_PRF
from repro.core.event_filter import EventFilter
from repro.core.forwarding import DataForwardingChannel
from repro.core.minifilter import FilterEntry, MiniFilter
from repro.core.packet import (
    META_ALLOC,
    META_CALL,
    META_FREE,
    META_LOAD,
    META_RET,
    META_STORE,
    OFF_ADDR,
    OFF_DATA,
    OFF_META,
    OFF_PC,
    Packet,
)
from repro.errors import ConfigError
from repro.isa import opcodes as op
from repro.isa.decode import encode_instr
from repro.isa.opcodes import InstrClass
from repro.ooo.prf import PhysicalRegisterFile
from repro.trace.record import InstrRecord


def load_record(seq=0, addr=0x2000, pc=0x1000):
    word = encode_instr("ld", rd=5, rs1=8)
    return InstrRecord(seq=seq, pc=pc, word=word, opcode=op.OP_LOAD,
                       funct3=3, iclass=InstrClass.LOAD, dst=5, srcs=(8,),
                       mem_addr=addr, mem_size=8, result=0xABCD)


def call_record(seq=0, pc=0x1000, target=0x8000):
    word = encode_instr("jal", rd=1, imm=0)
    return InstrRecord(seq=seq, pc=pc, word=word, opcode=op.OP_JAL,
                       funct3=0, iclass=InstrClass.CALL, dst=1, taken=True,
                       target=target, result=pc + 4)


def alu_record(seq=0):
    word = encode_instr("add", rd=5, rs1=6, rs2=7)
    return InstrRecord(seq=seq, pc=0x1000, word=word, opcode=op.OP_OP,
                       funct3=0, iclass=InstrClass.INT_ALU, dst=5,
                       srcs=(6, 7))


class TestPacket:
    def test_load_fields(self):
        pkt = Packet(seq=1, gid=2, record=load_record(), commit_ns=3.5)
        assert pkt.word(OFF_META) & META_LOAD
        assert not pkt.word(OFF_META) & META_STORE
        assert pkt.word(OFF_PC) == 0x1000
        assert pkt.word(OFF_ADDR) == 0x2000
        assert pkt.word(OFF_DATA) == 0xABCD
        assert pkt.commit_ns == 3.5

    def test_gid_in_meta(self):
        pkt = Packet(seq=0, gid=3, record=load_record(), commit_ns=0.0)
        assert (pkt.word(OFF_META) >> 8) & 0xFF == 3

    def test_call_carries_target_and_return(self):
        pkt = Packet(seq=0, gid=2, record=call_record(pc=0x4000,
                                                      target=0x9000),
                     commit_ns=0.0)
        assert pkt.word(OFF_META) & META_CALL
        assert pkt.word(OFF_ADDR) == 0x9000
        assert pkt.word(OFF_DATA) == 0x4004

    def test_ret_flag(self):
        word = encode_instr("jalr", rd=0, rs1=1)
        rec = InstrRecord(seq=0, pc=0x10, word=word, opcode=op.OP_JALR,
                          funct3=0, iclass=InstrClass.RET, srcs=(1,),
                          taken=True, target=0x44)
        pkt = Packet(seq=0, gid=2, record=rec, commit_ns=0.0)
        assert pkt.word(OFF_META) & META_RET

    def test_alloc_free_flags(self):
        word = encode_instr("custom0.f0", rs1=10)
        rec = InstrRecord(seq=0, pc=0x10, word=word, opcode=op.OP_CUSTOM0,
                          funct3=0, iclass=InstrClass.CUSTOM,
                          mem_addr=0x5000, mem_size=64, result=64)
        pkt = Packet(seq=0, gid=3, record=rec, commit_ns=0.0,
                     is_alloc=True)
        assert pkt.word(OFF_META) & META_ALLOC
        assert pkt.word(OFF_ADDR) == 0x5000
        assert pkt.word(OFF_DATA) == 64
        pkt2 = Packet(seq=0, gid=3, record=rec, commit_ns=0.0,
                      is_free=True)
        assert pkt2.word(OFF_META) & META_FREE

    def test_invalid_packet(self):
        pkt = Packet.invalid(7)
        assert not pkt.valid
        assert pkt.seq == 7

    def test_word_offsets_are_bitfields(self):
        pkt = Packet(seq=0, gid=1, record=load_record(addr=0xFF00),
                     commit_ns=0.0)
        # Offset 132 reads addr >> 4.
        assert pkt.word(OFF_ADDR + 4) == 0xFF0

    def test_opcode_funct3_fields(self):
        pkt = Packet(seq=0, gid=1, record=load_record(), commit_ns=0.0)
        meta = pkt.word(OFF_META)
        assert (meta >> 16) & 0x7F == op.OP_LOAD
        assert (meta >> 23) & 0x7 == 3  # ld funct3


class TestMiniFilter:
    def test_unprogrammed_misses(self):
        mf = MiniFilter()
        assert mf.lookup(op.OP_LOAD, 3) is None

    def test_program_and_lookup(self):
        mf = MiniFilter()
        entry = FilterEntry(gid=1, dp_sel=DP_LSQ)
        mf.program(op.OP_LOAD, 3, entry)
        assert mf.lookup(op.OP_LOAD, 3) is entry
        assert mf.lookup(op.OP_LOAD, 2) is None

    def test_program_all_funct3(self):
        mf = MiniFilter()
        entry = FilterEntry(gid=2, dp_sel=DP_FTQ)
        mf.program_all_funct3(op.OP_JAL, entry)
        for funct3 in range(8):
            assert mf.lookup(op.OP_JAL, funct3) is entry

    def test_shared_table(self):
        table = [None] * 1024
        a, b = MiniFilter(table), MiniFilter(table)
        a.program(op.OP_STORE, 0, FilterEntry(gid=1, dp_sel=DP_LSQ))
        assert b.lookup(op.OP_STORE, 0) is not None

    def test_clear(self):
        mf = MiniFilter()
        mf.program(op.OP_LOAD, 0, FilterEntry(gid=1, dp_sel=DP_PRF))
        mf.clear()
        assert mf.lookup(op.OP_LOAD, 0) is None

    def test_stats(self):
        mf = MiniFilter()
        mf.program(op.OP_LOAD, 0, FilterEntry(gid=1, dp_sel=DP_PRF))
        mf.lookup(op.OP_LOAD, 0)
        mf.lookup(op.OP_STORE, 0)
        assert mf.stat_lookups == 2 and mf.stat_matches == 1

    def test_entry_validation(self):
        with pytest.raises(ConfigError):
            FilterEntry(gid=256, dp_sel=DP_PRF)
        with pytest.raises(ConfigError):
            FilterEntry(gid=1, dp_sel=0x8)

    def test_bad_table_size(self):
        with pytest.raises(ConfigError):
            MiniFilter([None] * 100)


class TestForwardingChannel:
    def test_prf_preempted_for_prf_data(self):
        prf = PhysicalRegisterFile(read_ports=4)
        fwd = DataForwardingChannel(prf)
        entry = FilterEntry(gid=1, dp_sel=DP_PRF | DP_LSQ)
        fwd.capture(load_record(), entry, seq=0, cycle=10, commit_ns=0.0)
        assert prf.stat_preemptions == 1
        assert fwd.stat_prf_reads == 1

    def test_no_preemption_without_prf_select(self):
        prf = PhysicalRegisterFile(read_ports=4)
        fwd = DataForwardingChannel(prf)
        entry = FilterEntry(gid=1, dp_sel=DP_LSQ)
        fwd.capture(load_record(), entry, seq=0, cycle=10, commit_ns=0.0)
        assert prf.stat_preemptions == 0

    def test_ftq_classes_never_preempt(self):
        # Returns carry no PRF result; FTQ supplies the target.
        prf = PhysicalRegisterFile(read_ports=4)
        fwd = DataForwardingChannel(prf)
        word = encode_instr("jalr", rd=0, rs1=1)
        rec = InstrRecord(seq=0, pc=0x10, word=word, opcode=op.OP_JALR,
                          funct3=0, iclass=InstrClass.RET, srcs=(1,),
                          taken=True, target=0x44)
        entry = FilterEntry(gid=2, dp_sel=DP_PRF | DP_FTQ)
        fwd.capture(rec, entry, seq=0, cycle=5, commit_ns=0.0)
        assert prf.stat_preemptions == 0

    def test_alloc_marker_sets_flag(self):
        fwd = DataForwardingChannel(None)
        word = encode_instr("custom0.f0", rs1=10)
        rec = InstrRecord(seq=0, pc=0x10, word=word, opcode=op.OP_CUSTOM0,
                          funct3=0, iclass=InstrClass.CUSTOM,
                          mem_addr=0x100, mem_size=32, result=32)
        pkt = fwd.capture(rec, FilterEntry(gid=3, dp_sel=DP_PRF), seq=0,
                          cycle=0, commit_ns=0.0)
        assert pkt.word(OFF_META) & META_ALLOC


def make_filter(width=4, depth=4):
    fwd = DataForwardingChannel(None)
    f = EventFilter(width=width, fifo_depth=depth, forwarding=fwd,
                    high_period_ns=0.3125)
    f.program(op.OP_LOAD, 3, FilterEntry(gid=1, dp_sel=DP_LSQ))
    return f


class TestEventFilter:
    def test_monitored_instruction_becomes_packet(self):
        f = make_filter()
        assert f.offer(load_record(0), lane=0, cycle=0)
        pkt = f.arbitrate(1)
        assert pkt is not None and pkt.valid and pkt.gid == 1

    def test_unmonitored_instruction_skipped_free(self):
        f = make_filter()
        f.offer(alu_record(0), lane=0, cycle=0)
        f.offer(load_record(1), lane=1, cycle=0)
        # One call yields the load: the invalid packet costs nothing.
        pkt = f.arbitrate(1)
        assert pkt is not None and pkt.seq == 1

    def test_commit_order_preserved_across_lanes(self):
        f = make_filter()
        f.offer(load_record(0, addr=0xA0), lane=0, cycle=0)
        f.offer(load_record(1, addr=0xB0), lane=1, cycle=0)
        f.offer(load_record(2, addr=0xC0), lane=2, cycle=0)
        addrs = [f.arbitrate(i).addr for i in range(3)]
        assert addrs == [0xA0, 0xB0, 0xC0]

    def test_one_valid_packet_per_cycle(self):
        f = make_filter()
        for i in range(3):
            f.offer(load_record(i), lane=i, cycle=0)
        assert f.arbitrate(1) is not None
        assert f.pending == 2

    def test_fifo_full_rejects(self):
        f = make_filter(width=1, depth=2)
        assert f.offer(load_record(0), lane=0, cycle=0)
        assert f.offer(load_record(1), lane=0, cycle=1)
        assert not f.offer(load_record(2), lane=0, cycle=2)

    def test_gap_waits_for_in_order_packet(self):
        f = make_filter(width=2)
        # Lane 1 receives seq 0's successor first: arbiter must wait.
        f.offer(load_record(0), lane=0, cycle=0)
        f.offer(load_record(1), lane=1, cycle=0)
        first = f.arbitrate(1)
        second = f.arbitrate(2)
        assert first.seq < second.seq

    def test_full_cycle_stat(self):
        f = make_filter(width=1, depth=1)
        f.offer(load_record(0), lane=0, cycle=0)
        f.arbitrate(1)
        assert f.stat_full_cycles >= 1

    def test_lanes_property(self):
        assert make_filter(width=2).lanes == 2

    def test_counts(self):
        f = make_filter()
        f.offer(load_record(0), lane=0, cycle=0)
        f.offer(alu_record(1), lane=1, cycle=0)
        assert f.stat_valid_packets == 1
        assert f.stat_invalid_packets == 1

    def test_invalid_only_drains_to_none(self):
        f = make_filter()
        f.offer(alu_record(0), lane=0, cycle=0)
        assert f.arbitrate(1) is None
        assert f.pending == 0
