"""Differential harness: streamed execution == in-memory execution.

The streaming pipeline's contract is bit-identity: composing a
scenario to disk and simulating it through the bounded-memory reader
must produce exactly the results of the in-memory path — detection
latencies, every SystemResult field, and the final component state.
The grid covers {2 scenarios} x {2 kernels} x {streamed, in-memory},
plus a dense-loop cell (``REPRO_DENSE_LOOP`` path) and the
cross-seed / cross-worker digest determinism checks.
"""

import pytest

from repro.core.system import FireGuardSystem
from repro.kernels import make_kernel
from repro.runner import RunSpec, SweepRunner
from repro.sim import SimulationSession
from repro.trace.attacks import AttackKind, AttackPlan
from repro.trace.scenario import (
    Phase,
    Scenario,
    compose_stream,
    compose_trace,
)

GRID_SCENARIOS = (
    Scenario(name="grid-boot-serve", phases=(
        Phase("dedup", 1200, label="boot"),
        Phase("swaptions", 1600, label="serve",
              attacks=(AttackPlan(AttackKind.RET_HIJACK, 6),)),
    )),
    Scenario(name="grid-churn", phases=(
        Phase("dedup", 1500, label="churn",
              attacks=(AttackPlan(AttackKind.OOB_ACCESS, 6),)),
        Phase("x264", 1300, label="encode",
              attacks=(AttackPlan(AttackKind.OOB_ACCESS, 4),)),
    )),
)

GRID_KERNELS = ("shadow_stack", "asan")

SEED = 13


def _result_fields(result) -> dict:
    fields = dict(vars(result))
    fields["alerts"] = [(a.engine_id, a.code, a.time_ns, a.attack_id,
                         a.pc) for a in result.alerts]
    return fields


def _component_state(system) -> dict:
    """The uniform stats of every component after a run: the 'final
    state' leg of the differential assertion."""
    state = {
        "filter": system.filter.stats(),
        "allocator": system.allocator.stats(),
        "cdc": system.cdc.stats(),
        "multicast": system.multicast.stats(),
        "noc": system.noc.stats(),
        "forwarding": system.forwarding.stats(),
    }
    for engine in system.engines:
        state[f"engine{engine.engine_id}"] = engine.stats()
    for ctrl in system.controllers:
        state[f"ctrl{ctrl.engine_id}"] = ctrl.stats()
    return state


@pytest.mark.parametrize("scenario", GRID_SCENARIOS,
                         ids=lambda s: s.name)
@pytest.mark.parametrize("kernel", GRID_KERNELS)
def test_streamed_matches_in_memory(scenario, kernel, tmp_path):
    in_memory, sites_mem = compose_trace(scenario, SEED)
    streamed, sites_str = compose_stream(
        scenario, SEED, tmp_path / f"{scenario.name}.fgt",
        chunk_records=512)
    assert [(s.attack_id, s.seq, s.kind) for s in sites_mem] \
        == [(s.attack_id, s.seq, s.kind) for s in sites_str]

    session = SimulationSession(FireGuardSystem(
        [make_kernel(kernel)], engines_per_kernel={kernel: 2}))
    result_mem = session.run(in_memory)
    state_mem = _component_state(session.system)
    session.reset()
    result_str = session.run(streamed)
    state_str = _component_state(session.system)

    assert _result_fields(result_mem) == _result_fields(result_str)
    assert result_mem.detections == result_str.detections
    assert state_mem == state_str
    # The matched kernel/attack pairs must actually detect something,
    # or the identity assertion would be vacuous.
    if (kernel, scenario.name) in (("shadow_stack", "grid-boot-serve"),
                                   ("asan", "grid-churn")):
        assert result_str.detections


def test_dense_loop_accepts_streamed_trace(tmp_path):
    """The REPRO_DENSE_LOOP reference path consumes the same streamed
    source, bit-identically to the event-driven loop on the in-memory
    trace."""
    scenario = GRID_SCENARIOS[0]
    in_memory, _ = compose_trace(scenario, SEED)
    streamed, _ = compose_stream(scenario, SEED,
                                 tmp_path / "dense.fgt")

    def fresh(dense):
        return SimulationSession(
            FireGuardSystem([make_kernel("shadow_stack")],
                            engines_per_kernel={"shadow_stack": 2}),
            dense=dense)

    result_event = fresh(dense=False).run(in_memory)
    result_dense = fresh(dense=True).run(streamed)
    assert _result_fields(result_event) == _result_fields(result_dense)


def test_runner_streamed_record_matches_in_memory():
    spec = RunSpec(benchmark="grid-boot-serve",
                   kernels=("shadow_stack",), engines_per_kernel=2,
                   scenario=GRID_SCENARIOS[0], seed=SEED,
                   length=GRID_SCENARIOS[0].total_length())
    runner = SweepRunner(workers=1)
    rec_mem = runner.run_one(spec)
    rec_str = runner.run_one(spec.with_(stream=True))
    assert rec_mem.result.cycles == rec_str.result.cycles
    assert rec_mem.result.detections == rec_str.result.detections
    assert rec_mem.baseline_cycles == rec_str.baseline_cycles
    assert rec_mem.injected_attacks == rec_str.injected_attacks
    assert rec_mem.trace_digest == ""
    assert len(rec_str.trace_digest) == 64


class TestDigestDeterminism:
    """Same Scenario + seed -> identical on-disk digest, across
    generator runs and across worker processes."""

    def test_two_generator_runs(self, tmp_path):
        scenario = GRID_SCENARIOS[1]
        t1, _ = compose_stream(scenario, SEED, tmp_path / "a.fgt")
        t2, _ = compose_stream(scenario, SEED, tmp_path / "b.fgt")
        assert t1.digest == t2.digest
        t3, _ = compose_stream(scenario, SEED + 1, tmp_path / "c.fgt")
        assert t3.digest != t1.digest

    def test_across_sweep_workers(self):
        specs = [RunSpec(benchmark=s.name, kernels=("shadow_stack",),
                         engines_per_kernel=2, scenario=s, seed=SEED,
                         length=s.total_length(), stream=True,
                         need_baseline=False)
                 for s in GRID_SCENARIOS]
        serial = SweepRunner(workers=1, cache=False).run(specs)
        parallel = SweepRunner(workers=2, cache=False).run(specs)
        assert [r.trace_digest for r in serial] \
            == [r.trace_digest for r in parallel]
        assert all(len(r.trace_digest) == 64 for r in serial)
        assert [r.result.cycles for r in serial] \
            == [r.result.cycles for r in parallel]
