"""Unit tests for repro.utils.bitfield."""

import pytest

from repro.errors import ConfigError
from repro.utils.bitfield import Bitmap, bits, mask, sign_extend


class TestMask:
    def test_zero(self):
        assert mask(0) == 0

    def test_small(self):
        assert mask(3) == 0b111

    def test_64(self):
        assert mask(64) == (1 << 64) - 1

    def test_negative_raises(self):
        with pytest.raises(ConfigError):
            mask(-1)


class TestBits:
    def test_low_slice(self):
        assert bits(0b1101, 2, 0) == 0b101

    def test_high_slice(self):
        assert bits(0xDEADBEEF, 31, 24) == 0xDE

    def test_single_bit(self):
        assert bits(0b100, 2, 2) == 1

    def test_inverted_range_raises(self):
        with pytest.raises(ConfigError):
            bits(0, 0, 1)


class TestSignExtend:
    def test_positive(self):
        assert sign_extend(0x7F, 8) == 127

    def test_negative(self):
        assert sign_extend(0xFF, 8) == -1

    def test_boundary(self):
        assert sign_extend(0x80, 8) == -128

    def test_already_masked(self):
        assert sign_extend(0x1FF, 8) == -1

    def test_twelve_bit_imm(self):
        assert sign_extend(0x800, 12) == -2048
        assert sign_extend(0x7FF, 12) == 2047


class TestBitmap:
    def test_starts_clear(self):
        bm = Bitmap(8)
        assert not bm
        assert bm.popcount() == 0

    def test_set_and_test(self):
        bm = Bitmap(8)
        bm.set(3)
        assert bm.test(3)
        assert not bm.test(2)

    def test_clear(self):
        bm = Bitmap(8, value=0xFF)
        bm.clear(0)
        assert not bm.test(0)
        assert bm.popcount() == 7

    def test_clear_all(self):
        bm = Bitmap(16, value=0xABCD)
        bm.clear_all()
        assert bm.value == 0

    def test_out_of_range_raises(self):
        bm = Bitmap(4)
        with pytest.raises(ConfigError):
            bm.set(4)
        with pytest.raises(ConfigError):
            bm.test(-1)

    def test_initial_value_must_fit(self):
        with pytest.raises(ConfigError):
            Bitmap(4, value=0x10)

    def test_width_must_be_positive(self):
        with pytest.raises(ConfigError):
            Bitmap(0)

    def test_or_with(self):
        a = Bitmap(8, value=0b0011)
        b = Bitmap(8, value=0b0110)
        a.or_with(b)
        assert a.value == 0b0111
        assert b.value == 0b0110  # unchanged

    def test_or_width_mismatch_raises(self):
        with pytest.raises(ConfigError):
            Bitmap(8).or_with(Bitmap(16))

    def test_set_bits_iteration(self):
        bm = Bitmap(16, value=0b1010_0001)
        assert list(bm.set_bits()) == [0, 5, 7]

    def test_equality_and_hash(self):
        assert Bitmap(8, 5) == Bitmap(8, 5)
        assert Bitmap(8, 5) != Bitmap(16, 5)
        assert hash(Bitmap(8, 5)) == hash(Bitmap(8, 5))

    def test_idempotent_set(self):
        bm = Bitmap(8)
        bm.set(2)
        bm.set(2)
        assert bm.popcount() == 1
