"""The simulation-session layer: reset, determinism, idle-skip,
and the uniform stats protocol."""

import pytest

from repro.core.system import FireGuardSystem
from repro.errors import SimulationError
from repro.kernels import make_kernel
from repro.sim import SimulationSession
from repro.trace.generator import generate_trace
from repro.trace.profiles import PARSEC_PROFILES


def trace_for(bench="swaptions", seed=17, length=4000):
    return generate_trace(PARSEC_PROFILES[bench], seed=seed,
                          length=length)


def build(kernel_names=("pmc",), **kwargs):
    return FireGuardSystem([make_kernel(k) for k in kernel_names],
                           **kwargs)


class TestLifecycle:
    def test_session_is_lazily_created_and_shared(self):
        system = build()
        assert system.session() is system.session()

    def test_run_marks_dirty_and_rerun_raises(self):
        session = build().session()
        session.run(trace_for())
        assert session.dirty
        with pytest.raises(SimulationError):
            session.run(trace_for())

    def test_reset_clears_dirty(self):
        session = build().session()
        session.run(trace_for())
        session.reset()
        assert not session.dirty
        session.run(trace_for())  # no raise

    def test_system_run_autoresets(self):
        system = build()
        first = system.run(trace_for())
        second = system.run(trace_for())
        assert first == second

    def test_reset_on_clean_session_is_harmless(self):
        system = build()
        session = system.session()
        session.reset()
        assert session.run(trace_for()) == build().run(trace_for())


class TestResetDeterminism:
    def test_reset_matches_fresh_build_same_trace(self):
        trace = trace_for()
        session = build(("asan",)).session()
        first = session.run(trace)
        session.reset()
        again = session.run(trace)
        fresh = build(("asan",)).run(trace)
        assert first == again == fresh

    def test_reset_matches_fresh_build_across_traces(self):
        """One built system runs different workloads; each result
        matches a fresh build's."""
        traces = [trace_for("swaptions"), trace_for("dedup"),
                  trace_for("x264")]
        session = build(("asan", "pmc")).session()
        for trace in traces:
            if session.dirty:
                session.reset()
            reused = session.run(trace)
            fresh = build(("asan", "pmc")).run(trace)
            assert reused == fresh, trace.name

    def test_reset_restores_shadow_state(self):
        """Kernel state in shared memory (shadow stack contents) must
        not leak across reset — detections stay identical."""
        from repro.trace.attacks import AttackKind, inject_attacks

        def attacked():
            trace = trace_for("bodytrack", seed=9, length=6000)
            inject_attacks(trace, AttackKind.RET_HIJACK, 10)
            return trace

        session = build(("shadow_stack",)).session()
        first = session.run(attacked())
        session.reset()
        second = session.run(attacked())
        assert first.detections == second.detections
        assert len(first.detections) > 0

    def test_reset_restores_accelerator_state(self):
        trace = trace_for("swaptions")
        session = build(("shadow_stack",),
                        accelerated={"shadow_stack"}).session()
        first = session.run(trace)
        session.reset()
        assert session.run(trace) == first


class TestIdleSkip:
    def test_ticks_are_skipped_for_blocked_engines(self):
        system = build(("asan",), engines_per_kernel={"asan": 8})
        result = system.run(trace_for())
        skipped = system.session().stats()["engine_ticks_skipped"]
        assert skipped > 0
        assert result.cycles > 0

    def test_dense_skip_does_not_change_results(self, monkeypatch):
        """The dense reference loop's conservative can_skip() is
        result-neutral (the event-driven loop's equivalent guarantee is
        the A/B grid in tests/test_sched.py)."""
        trace = trace_for("x264", length=5000)
        with_skip = SimulationSession(build(("asan",)),
                                      dense=True).run(trace)

        from repro.core.accelerator import HardwareAccelerator
        from repro.ucore.core import MicroCore
        monkeypatch.setattr(MicroCore, "can_skip", lambda self: False)
        monkeypatch.setattr(HardwareAccelerator, "can_skip",
                            lambda self: False)
        without_skip = SimulationSession(build(("asan",)),
                                         dense=True).run(trace)
        assert with_skip == without_skip

    def test_event_loop_matches_dense_loop(self):
        trace = trace_for("x264", length=5000)
        event = SimulationSession(build(("asan",)), dense=False).run(trace)
        dense = SimulationSession(build(("asan",)), dense=True).run(trace)
        assert event == dense


class TestStatsProtocol:
    def test_components_expose_uniform_stats(self):
        system = build(("asan",))
        system.run(trace_for())
        assert system.filter.stats()["valid_packets"] > 0
        assert system.cdc.stats()["pushes"] > 0
        assert system.multicast.stats()["delivered"] > 0
        assert "sent" in system.noc.stats()
        ctrl_stats = system.controllers[0].stats()
        assert "input_pushes" in ctrl_stats
        assert "peer_pushes" in ctrl_stats
        assert system.engines[0].stats()["instructions"] > 0
        assert "prf_reads" in system.forwarding.stats()

    def test_reset_stats_zeroes_counters(self):
        system = build(("asan",))
        system.run(trace_for())
        system.filter.reset_stats()
        assert all(v == 0 for v in system.filter.stats().values())

    def test_session_reset_zeroes_component_stats(self):
        system = build(("asan",))
        session = system.session()
        session.run(trace_for())
        session.reset()
        assert all(v == 0 for v in system.filter.stats().values())
        assert all(v == 0 for v in session.stats().values())
        assert all(v == 0
                   for v in system.engines[0].stats().values())
