"""Unit tests for clock domains."""

import pytest

from repro.clock.domain import ClockDomain, DualDomainClock
from repro.errors import ConfigError


class TestClockDomain:
    def test_period(self):
        assert ClockDomain("core", 3.2).period_ns == pytest.approx(0.3125)

    def test_cycles_to_ns(self):
        d = ClockDomain("core", 2.0)
        assert d.cycles_to_ns(10) == pytest.approx(5.0)

    def test_ns_to_cycles_ceiling(self):
        d = ClockDomain("core", 2.0)
        assert d.ns_to_cycles(5.0) == 10
        assert d.ns_to_cycles(5.1) == 11

    def test_zero_freq_rejected(self):
        with pytest.raises(ConfigError):
            ClockDomain("bad", 0.0)


class TestDualDomainClock:
    def test_two_to_one_ratio(self):
        clk = DualDomainClock(ClockDomain("f", 3.2), ClockDomain("s", 1.6))
        ticks = [clk.tick() for _ in range(100)]
        assert sum(ticks) == 50
        assert clk.slow_cycle == 50
        assert clk.fast_cycle == 100

    def test_equal_frequencies_tick_together(self):
        clk = DualDomainClock(ClockDomain("f", 1.0), ClockDomain("s", 1.0))
        assert all(clk.tick() for _ in range(10))

    def test_non_integer_ratio_accumulates(self):
        clk = DualDomainClock(ClockDomain("f", 3.0), ClockDomain("s", 2.0))
        for _ in range(300):
            clk.tick()
        assert clk.slow_cycle == pytest.approx(200, abs=1)

    def test_slow_faster_than_fast_rejected(self):
        with pytest.raises(ConfigError):
            DualDomainClock(ClockDomain("f", 1.0), ClockDomain("s", 2.0))

    def test_time_ns_tracks_fast_domain(self):
        clk = DualDomainClock(ClockDomain("f", 2.0), ClockDomain("s", 1.0))
        for _ in range(8):
            clk.tick()
        assert clk.time_ns == pytest.approx(4.0)

    def test_slow_edges_evenly_spaced(self):
        clk = DualDomainClock(ClockDomain("f", 3.2), ClockDomain("s", 1.6))
        edges = [i for i in range(20) if clk.tick()]
        gaps = {b - a for a, b in zip(edges, edges[1:])}
        assert gaps == {2}


class TestAdvanceTo:
    """advance_to must be bit-identical to an equivalent tick() loop."""

    RATIOS = [(3.2, 1.6), (1.0, 1.0), (3.0, 2.0), (3.2, 1.3), (5.0, 0.7)]

    @staticmethod
    def _pair(fast, slow):
        return (DualDomainClock(ClockDomain("f", fast),
                                ClockDomain("s", slow)),
                DualDomainClock(ClockDomain("f", fast),
                                ClockDomain("s", slow)))

    def _state(self, clk):
        return (clk.fast_cycle, clk.slow_cycle, clk._accum)

    def test_matches_tick_loop_to_fast_stop(self):
        for fast, slow in self.RATIOS:
            jumped, ticked = self._pair(fast, slow)
            jumped.advance_to(1000)
            for _ in range(1000):
                ticked.tick()
            assert self._state(jumped) == self._state(ticked), (fast, slow)

    def test_stops_on_slow_edge(self):
        for fast, slow in self.RATIOS:
            jumped, ticked = self._pair(fast, slow)
            on_edge = jumped.advance_to(10_000, stop_slow=37)
            assert on_edge
            assert jumped.slow_cycle == 37
            while not (ticked.tick() and ticked.slow_cycle == 37):
                pass
            assert self._state(jumped) == self._state(ticked), (fast, slow)

    def test_interleaved_advances_match_pure_ticks(self):
        jumped, ticked = self._pair(3.2, 1.6)
        for stop in (7, 8, 63, 64, 65, 1001, 1002, 5000):
            jumped.advance_to(stop)
            while ticked.fast_cycle < stop:
                ticked.tick()
            assert self._state(jumped) == self._state(ticked), stop

    def test_stop_fast_wins_over_later_edge(self):
        clk = DualDomainClock(ClockDomain("f", 3.2), ClockDomain("s", 1.6))
        on_edge = clk.advance_to(9, stop_slow=100)
        assert not on_edge
        assert clk.fast_cycle == 9

    def test_stale_stop_slow_ignored(self):
        clk = DualDomainClock(ClockDomain("f", 3.2), ClockDomain("s", 1.6))
        clk.advance_to(20)
        assert clk.slow_cycle == 10
        on_edge = clk.advance_to(40, stop_slow=5)  # already passed
        assert not on_edge
        assert clk.fast_cycle == 40
