"""Unit tests for clock domains."""

import pytest

from repro.clock.domain import ClockDomain, DualDomainClock
from repro.errors import ConfigError


class TestClockDomain:
    def test_period(self):
        assert ClockDomain("core", 3.2).period_ns == pytest.approx(0.3125)

    def test_cycles_to_ns(self):
        d = ClockDomain("core", 2.0)
        assert d.cycles_to_ns(10) == pytest.approx(5.0)

    def test_ns_to_cycles_ceiling(self):
        d = ClockDomain("core", 2.0)
        assert d.ns_to_cycles(5.0) == 10
        assert d.ns_to_cycles(5.1) == 11

    def test_zero_freq_rejected(self):
        with pytest.raises(ConfigError):
            ClockDomain("bad", 0.0)


class TestDualDomainClock:
    def test_two_to_one_ratio(self):
        clk = DualDomainClock(ClockDomain("f", 3.2), ClockDomain("s", 1.6))
        ticks = [clk.tick() for _ in range(100)]
        assert sum(ticks) == 50
        assert clk.slow_cycle == 50
        assert clk.fast_cycle == 100

    def test_equal_frequencies_tick_together(self):
        clk = DualDomainClock(ClockDomain("f", 1.0), ClockDomain("s", 1.0))
        assert all(clk.tick() for _ in range(10))

    def test_non_integer_ratio_accumulates(self):
        clk = DualDomainClock(ClockDomain("f", 3.0), ClockDomain("s", 2.0))
        for _ in range(300):
            clk.tick()
        assert clk.slow_cycle == pytest.approx(200, abs=1)

    def test_slow_faster_than_fast_rejected(self):
        with pytest.raises(ConfigError):
            DualDomainClock(ClockDomain("f", 1.0), ClockDomain("s", 2.0))

    def test_time_ns_tracks_fast_domain(self):
        clk = DualDomainClock(ClockDomain("f", 2.0), ClockDomain("s", 1.0))
        for _ in range(8):
            clk.tick()
        assert clk.time_ns == pytest.approx(4.0)

    def test_slow_edges_evenly_spaced(self):
        clk = DualDomainClock(ClockDomain("f", 3.2), ClockDomain("s", 1.6))
        edges = [i for i in range(20) if clk.tick()]
        gaps = {b - a for a, b in zip(edges, edges[1:])}
        assert gaps == {2}
