"""Unit tests for the mapper: distributor, SEs, allocator, CDC,
multicast channel, and the mesh NoC."""

import pytest

from repro.core.allocator import Allocator, Distributor
from repro.core.cdc import CdcFifo
from repro.core.fabric import MulticastChannel
from repro.core.msgqueue import MessageQueue, WordQueue
from repro.core.noc import MeshNoc, NocParams
from repro.core.packet import Packet
from repro.core.scheduling import SchedulingEngine, SchedulingPolicy
from repro.errors import ConfigError
from repro.isa.decode import encode_instr
from repro.isa.opcodes import InstrClass
from repro.trace.record import InstrRecord


def packet(seq=0, gid=1):
    word = encode_instr("ld", rd=5, rs1=8)
    rec = InstrRecord(seq=seq, pc=0x100, word=word, opcode=0x03, funct3=3,
                      iclass=InstrClass.LOAD, dst=5, srcs=(8,),
                      mem_addr=0x1000, mem_size=8)
    return Packet(seq=seq, gid=gid, record=rec, commit_ns=0.0)


class TestDistributor:
    def test_subscribe_and_query(self):
        d = Distributor(max_gids=8, num_ses=4)
        d.subscribe(3, 0)
        d.subscribe(3, 2)
        assert d.interested_ses(3) == [0, 2]

    def test_unsubscribe(self):
        d = Distributor(max_gids=8, num_ses=4)
        d.subscribe(1, 1)
        d.unsubscribe(1, 1)
        assert d.interested_ses(1) == []

    def test_gid_out_of_range(self):
        d = Distributor(max_gids=4, num_ses=2)
        with pytest.raises(ConfigError):
            d.subscribe(4, 0)

    def test_se_out_of_range(self):
        d = Distributor(max_gids=4, num_ses=2)
        with pytest.raises(ConfigError):
            d.subscribe(0, 2)


class TestSchedulingEngine:
    def test_fixed_policy(self):
        se = SchedulingEngine(0, engines=[3, 5], num_engines_total=8,
                              policy=SchedulingPolicy.FIXED)
        assert [se.select() for _ in range(4)] == [3, 3, 3, 3]

    def test_round_robin(self):
        se = SchedulingEngine(0, engines=[2, 4, 6], num_engines_total=8,
                              policy=SchedulingPolicy.ROUND_ROBIN)
        assert [se.select() for _ in range(6)] == [2, 4, 6, 2, 4, 6]

    def test_block_policy_switches_after_block(self):
        se = SchedulingEngine(0, engines=[0, 1], num_engines_total=2,
                              policy=SchedulingPolicy.BLOCK, block_size=3)
        picks = [se.select() for _ in range(9)]
        assert picks == [0, 0, 0, 1, 1, 1, 0, 0, 0]
        assert se.stat_block_switches == 2

    def test_ae_bitmap_tracks_selection(self):
        se = SchedulingEngine(0, engines=[5], num_engines_total=8)
        se.select()
        assert se.ae_bitmap.test(5)
        assert se.ae_bitmap.popcount() == 1

    def test_pt_ct_registers(self):
        se = SchedulingEngine(0, engines=[0, 1], num_engines_total=2,
                              policy=SchedulingPolicy.ROUND_ROBIN)
        se.select()
        assert se.pt_reg == se.ct_reg

    def test_empty_engine_group_rejected(self):
        with pytest.raises(ConfigError):
            SchedulingEngine(0, engines=[], num_engines_total=4)

    def test_engine_out_of_range_rejected(self):
        with pytest.raises(ConfigError):
            SchedulingEngine(0, engines=[4], num_engines_total=4)


class TestAllocator:
    def _make(self):
        d = Distributor(max_gids=8, num_ses=2)
        ses = [SchedulingEngine(0, engines=[0, 1], num_engines_total=4),
               SchedulingEngine(1, engines=[2, 3], num_engines_total=4)]
        d.subscribe(1, 0)
        d.subscribe(1, 1)
        d.subscribe(2, 1)
        return Allocator(d, ses, num_engines=4)

    def test_fanout_to_both_ses(self):
        alloc = self._make()
        mask = alloc.route(packet(gid=1))
        # One engine from each group.
        assert bin(mask).count("1") == 2
        assert mask & 0b0011 and mask & 0b1100

    def test_single_se_gid(self):
        alloc = self._make()
        mask = alloc.route(packet(gid=2))
        assert mask & 0b1100 and not mask & 0b0011

    def test_unclaimed_gid_dropped(self):
        alloc = self._make()
        assert alloc.route(packet(gid=5)) == 0
        assert alloc.stat_dropped == 1

    def test_round_robin_rotation_through_mask(self):
        alloc = self._make()
        masks = [alloc.route(packet(gid=2)) for _ in range(4)]
        assert masks == [0b0100, 0b1000, 0b0100, 0b1000]

    def test_se_count_mismatch_rejected(self):
        d = Distributor(max_gids=4, num_ses=2)
        with pytest.raises(ConfigError):
            Allocator(d, [SchedulingEngine(0, [0], 1)], num_engines=1)


class TestCdc:
    def test_push_pop_after_sync_delay(self):
        cdc = CdcFifo(depth=2, sync_delay_low_cycles=1)
        assert cdc.push(packet(), 0b1, low_cycle=5)
        assert cdc.pop(5) is None       # not yet synchronised
        item = cdc.pop(6)
        assert item is not None
        assert item[1] == 0b1

    def test_capacity(self):
        cdc = CdcFifo(depth=2)
        assert cdc.push(packet(0), 1, 0)
        assert cdc.push(packet(1), 1, 0)
        assert not cdc.push(packet(2), 1, 0)
        assert cdc.full

    def test_fifo_order(self):
        cdc = CdcFifo(depth=4, sync_delay_low_cycles=0)
        cdc.push(packet(0), 1, 0)
        cdc.push(packet(1), 1, 0)
        assert cdc.pop(0)[0].seq == 0
        assert cdc.pop(0)[0].seq == 1

    def test_full_cycle_stat(self):
        cdc = CdcFifo(depth=1)
        cdc.push(packet(), 1, 0)
        cdc.note_cycle(0)
        assert cdc.stat_full_cycles == 1

    def test_bad_depth(self):
        with pytest.raises(ConfigError):
            CdcFifo(depth=0)


class TestMulticast:
    def _queues(self, n=4, depth=2):
        return [MessageQueue(depth) for _ in range(n)]

    def test_delivers_to_masked_queues(self):
        queues = self._queues()
        mc = MulticastChannel(queues)
        mc.submit(packet(), 0b0101)
        assert mc.step(0) is not None
        assert len(queues[0]) == 1 and len(queues[2]) == 1
        assert len(queues[1]) == 0 and len(queues[3]) == 0

    def test_blocks_until_all_targets_have_room(self):
        queues = self._queues(n=2, depth=1)
        queues[1].push(packet(99))
        mc = MulticastChannel(queues)
        mc.submit(packet(), 0b11)
        assert mc.step(0) is None           # queue 1 full: atomic wait
        assert len(queues[0]) == 0
        queues[1].pop(0)
        assert mc.step(1) is not None
        assert len(queues[0]) == 1 and len(queues[1]) == 1

    def test_busy_rejects_submit(self):
        mc = MulticastChannel(self._queues(n=1, depth=1))
        assert mc.submit(packet(0), 0b1)
        assert not mc.submit(packet(1), 0b1)

    def test_blocked_cycles_stat(self):
        queues = self._queues(n=1, depth=1)
        queues[0].push(packet(9))
        mc = MulticastChannel(queues)
        mc.submit(packet(), 0b1)
        mc.step(0)
        mc.step(1)
        assert mc.stat_blocked_cycles == 2


class TestMeshNoc:
    def _noc(self, rows=2, cols=2, n=4, depth=4):
        return MeshNoc(NocParams(rows=rows, cols=cols),
                       [WordQueue(depth) for _ in range(n)])

    def test_xy_path_shape(self):
        noc = self._noc(3, 3, 9)
        path = noc.xy_path(0, 8)  # (0,0) → (2,2)
        assert path[0] == 0 and path[-1] == 8
        assert len(path) == 5  # 2 X hops + 2 Y hops + start

    def test_delivery_after_hops(self):
        noc = self._noc()
        arrival = noc.send(0, 3, 0xAB, low_cycle=0)
        assert arrival == 2  # two hops in a 2x2 mesh
        noc.step(1)
        assert noc.peer_queues[3].empty
        noc.step(2)
        assert noc.peer_queues[3].pop() == 0xAB

    def test_self_send(self):
        noc = self._noc()
        noc.send(1, 1, 7, low_cycle=0)
        noc.step(1)
        assert noc.peer_queues[1].pop() == 7

    def test_link_contention_serialises(self):
        noc = self._noc()
        a = noc.send(0, 1, 1, low_cycle=0)
        b = noc.send(0, 1, 2, low_cycle=0)
        assert b > a

    def test_full_peer_queue_retries(self):
        noc = self._noc(depth=1)
        noc.send(0, 1, 1, low_cycle=0)
        noc.send(0, 1, 2, low_cycle=0)
        for cycle in range(6):
            noc.step(cycle)
        assert noc.peer_queues[1].pop() == 1
        assert not noc.idle          # word 2 still waiting
        noc.step(7)
        assert noc.peer_queues[1].pop() == 2
        assert noc.idle

    def test_in_order_same_pair(self):
        noc = self._noc()
        noc.send(0, 3, 1, low_cycle=0)
        noc.send(0, 3, 2, low_cycle=0)
        for cycle in range(8):
            noc.step(cycle)
        q = noc.peer_queues[3]
        assert q.pop() == 1 and q.pop() == 2

    def test_too_many_engines_rejected(self):
        with pytest.raises(ConfigError):
            MeshNoc(NocParams(rows=1, cols=1),
                    [WordQueue(2), WordQueue(2)])

    def test_mean_hops(self):
        noc = self._noc()
        noc.send(0, 3, 1, 0)
        assert noc.mean_hops() == pytest.approx(2.0)
