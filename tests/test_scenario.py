"""Scenario compositor: unit and property tests.

The hypothesis properties pin the compositor's splice invariants:
phase boundaries never orphan a heap object (every object's
alloc/free markers exist, ranges never alias), never unbalance the
call stack (depth never goes negative, every return matches its
call's pushed address, the composed trace ends balanced), and the
composition round-trips losslessly through FGTRACE1 — including the
``attack_id = -1`` and ``_NO_ADDR`` sentinel encodings.
"""

import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError, TraceError
from repro.isa.opcodes import InstrClass
from repro.trace.attacks import AttackKind, AttackPlan
from repro.trace.io import load_trace, save_trace
from repro.trace.scenario import (
    SCENARIO_NAMES,
    SCENARIOS,
    Phase,
    Scenario,
    compose_trace,
    make_scenario,
)

PROFILES = ("dedup", "swaptions", "x264")

_ATTACKS = st.sampled_from((
    (),
    (AttackPlan(AttackKind.RET_HIJACK, 3),),
    (AttackPlan(AttackKind.OOB_ACCESS, 3),),
    (AttackPlan(AttackKind.RET_HIJACK, 2),
     AttackPlan(AttackKind.OOB_ACCESS, 2)),
))

_PHASES = st.builds(
    Phase,
    profile=st.sampled_from(PROFILES),
    length=st.integers(min_value=450, max_value=900),
    attacks=_ATTACKS)

_SCENARIOS = st.builds(
    Scenario,
    name=st.just("prop"),
    phases=st.lists(_PHASES, min_size=1, max_size=3).map(tuple))


def _walk_call_stack(trace):
    """Replay shadow-stack ground truth over the composed records."""
    stack = []
    for rec in trace.records:
        if rec.iclass is InstrClass.CALL:
            stack.append(rec.result)  # the pushed return address
        elif rec.iclass is InstrClass.RET:
            assert stack, f"return at seq {rec.seq} underflows the stack"
            expected = stack.pop()
            if rec.attack_id is None:
                assert rec.target == expected, (
                    f"return at seq {rec.seq} targets {rec.target:#x}, "
                    f"stack says {expected:#x}")
    return stack


@settings(max_examples=12, deadline=None)
@given(scenario=_SCENARIOS, seed=st.integers(min_value=1, max_value=999))
def test_phase_boundaries_preserve_ground_truth(scenario, seed):
    trace, sites = compose_trace(scenario, seed)

    # Sequence numbers run continuously across phase boundaries.
    assert [rec.seq for rec in trace.records] \
        == list(range(len(trace.records)))

    # Call stack: never underflows, every un-attacked return matches
    # its call, and every boundary unwind leaves the stack balanced
    # (the final phase unwinds too, so the whole trace ends at 0).
    assert _walk_call_stack(trace) == []

    # Heap ground truth: every object's alloc marker exists at its
    # alloc_seq with matching base, frees likewise, and no two objects
    # ever alias a byte (phases allocate from disjoint ranges).
    by_seq = {rec.seq: rec for rec in trace.records}
    spans = []
    for obj in trace.objects:
        alloc = by_seq[obj.alloc_seq]
        assert alloc.iclass is InstrClass.CUSTOM
        assert alloc.mem_addr == obj.base
        if obj.free_seq is not None:
            assert obj.alloc_seq < obj.free_seq
            free = by_seq[obj.free_seq]
            assert free.iclass is InstrClass.CUSTOM
            assert free.mem_addr == obj.base
        spans.append((obj.base, obj.end))
    spans.sort()
    for (_, prev_end), (next_base, _) in zip(spans, spans[1:]):
        assert prev_end <= next_base, "heap objects alias"

    # Attack bookkeeping: ids unique, each site's record tagged.
    ids = [site.attack_id for site in sites]
    assert len(ids) == len(set(ids))
    for site in sites:
        assert by_seq[site.seq].attack_id == site.attack_id


@settings(max_examples=8, deadline=None)
@given(scenario=_SCENARIOS, seed=st.integers(min_value=1, max_value=999))
def test_composition_roundtrips_through_fgtrace1(scenario, seed):
    trace, _ = compose_trace(scenario, seed)
    # Sentinel coverage: the round-trip must exercise both "no attack"
    # (attack_id -1) and "no memory access" (_NO_ADDR) encodings.
    assert any(r.attack_id is None for r in trace.records)
    assert any(r.mem_addr is None for r in trace.records)

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "roundtrip.fgt"
        save_trace(trace, path)
        loaded = load_trace(path)

    assert loaded.name == trace.name and loaded.seed == trace.seed
    assert (loaded.heap_base, loaded.heap_end, loaded.global_base,
            loaded.global_end, loaded.warm_end) \
        == (trace.heap_base, trace.heap_end, trace.global_base,
            trace.global_end, trace.warm_end)
    assert [(o.base, o.size, o.alloc_seq, o.free_seq)
            for o in loaded.objects] \
        == [(o.base, o.size, o.alloc_seq, o.free_seq)
            for o in trace.objects]
    assert len(loaded.records) == len(trace.records)
    for a, b in zip(trace.records, loaded.records):
        assert (a.seq, a.pc, a.word, a.opcode, a.funct3, a.iclass,
                a.dst, tuple(a.srcs), a.mem_addr, a.mem_size, a.taken,
                a.target, a.result, a.attack_id) \
            == (b.seq, b.pc, b.word, b.opcode, b.funct3, b.iclass,
                b.dst, tuple(b.srcs), b.mem_addr, b.mem_size, b.taken,
                b.target, b.result, b.attack_id)


class TestScenarioApi:
    def test_library_registered(self):
        # The hand-written library is a snapshot; family members
        # (repro.trace.families) register on top of it later.
        assert set(SCENARIO_NAMES) <= set(SCENARIOS)
        assert len(SCENARIO_NAMES) >= 4

    def test_family_library_registered(self):
        from repro.trace.families import FAMILY_SCENARIO_NAMES

        assert set(FAMILY_SCENARIO_NAMES) <= set(SCENARIOS)
        assert set(FAMILY_SCENARIO_NAMES).isdisjoint(SCENARIO_NAMES)
        for name in FAMILY_SCENARIO_NAMES:
            assert make_scenario(name).name == name

    def test_make_scenario_unknown(self):
        with pytest.raises(TraceError, match="unknown scenario"):
            make_scenario("no-such-scenario")

    def test_with_length_exact_and_deterministic(self):
        scenario = make_scenario("alloc-churn")
        scaled = scenario.with_length(5000)
        assert scaled.total_length() == 5000
        assert scaled == scenario.with_length(5000)
        assert scenario.with_length(scenario.total_length()) is scenario

    def test_repeated_tiles_phases(self):
        scenario = make_scenario("quiescent-idle")
        tiled = scenario.repeated(3)
        assert tiled.total_length() == 3 * scenario.total_length()
        assert len(tiled.phases) == 3 * len(scenario.phases)
        assert max(p.length for p in tiled.phases) \
            == max(p.length for p in scenario.phases)

    def test_with_attacks_targets_longest_phase(self):
        scenario = make_scenario("quiescent-idle")
        plan = AttackPlan(AttackKind.RET_HIJACK, 5)
        armed = scenario.with_attacks(plan)
        lengths = [p.length for p in armed.phases]
        armed_idx = lengths.index(max(lengths))
        for i, phase in enumerate(armed.phases):
            assert phase.attacks == ((plan,) if i == armed_idx else ())

    def test_min_total_respects_uaf_room(self):
        scenario = make_scenario("alloc-churn")
        scaled = scenario.with_length(scenario.min_total())
        uaf_phase = next(
            p for p in scaled.phases
            if any(plan.kind is AttackKind.UAF_ACCESS
                   for plan in p.attacks))
        assert uaf_phase.length >= Scenario._MIN_UAF_PHASE - 1
        # And composition at that floor actually succeeds.
        trace, sites = compose_trace(scaled, seed=3)
        assert any(s.kind is AttackKind.UAF_ACCESS for s in sites)

    def test_phase_validation(self):
        with pytest.raises(ConfigError, match="positive"):
            Phase("dedup", 0)
        with pytest.raises(ConfigError, match="unknown profile"):
            Phase("no-such-benchmark", 100)
        with pytest.raises(ConfigError, match="no phases"):
            Scenario(name="empty", phases=())

    def test_single_plan_coerced_to_tuple(self):
        phase = Phase("dedup", 100,
                      attacks=AttackPlan(AttackKind.OOB_ACCESS, 2))
        assert isinstance(phase.attacks, tuple)

    def test_scenarios_hashable_and_cache_tokens_distinct(self):
        tokens = {make_scenario(n).cache_token()
                  for n in SCENARIO_NAMES}
        assert len(tokens) == len(SCENARIO_NAMES)
        hash(make_scenario("boot-then-serve"))
