"""The async Client: differential identity, streaming, handles,
cooperative cancellation, warm-store acceptance."""

import threading

import pytest

from repro.core.system import FireGuardSystem
from repro.errors import RunCancelled, StoreError
from repro.kernels import make_kernel
from repro.runner import RunSpec, simulations_executed, sweep
from repro.runner import worker as runner_worker
from repro.runner.worker import execute_spec
from repro.service import Client
from repro.trace.generator import generate_trace
from repro.trace.profiles import PARSEC_PROFILES

LEN = 1500

BENCHMARKS = ("swaptions", "dedup")
KERNEL_SETS = (("pmc",), ("asan", "pmc"))


def grid():
    return [RunSpec(benchmark=bench, kernels=kset, length=LEN)
            for bench in BENCHMARKS for kset in KERNEL_SETS]


def fresh_serial(spec):
    """The pre-redesign reference path: build a system by hand, run
    the generated trace once."""
    trace = generate_trace(PARSEC_PROFILES[spec.benchmark],
                           seed=spec.seed, length=LEN)
    system = FireGuardSystem(
        [make_kernel(k) for k in spec.kernels],
        engines_per_kernel={k: spec.engines_per_kernel
                            for k in spec.kernels})
    return system.run(trace)


class TestDifferentialIdentity:
    """Acceptance: records produced through the Client — serial
    backend, 2-worker pool backend, and a store round trip — are
    bit-identical to the pre-redesign direct path over a
    benchmark × kernel-set grid."""

    def test_serial_backend_matches_fresh_serial(self):
        with Client(workers=1, store=False, cache=False) as client:
            for spec, record in zip(grid(), client.map(grid())):
                assert record.result == fresh_serial(spec), \
                    (spec.benchmark, spec.kernels)

    def test_pool_backend_matches_serial_backend(self):
        with Client(workers=1, store=False, cache=False) as serial:
            one = serial.run(grid())
        with Client(workers=2, store=False, cache=False) as pool:
            two = pool.run(grid())
        assert one == two

    def test_store_round_trip_is_bit_identical(self, tmp_path):
        with Client(workers=1, store=tmp_path / "s",
                    cache=False) as cold:
            direct = cold.run(grid())
        runner_worker.clear_caches()
        with Client(workers=1, store=tmp_path / "s",
                    cache=False) as warm:
            loaded = warm.run(grid())
            assert warm.stats.executed == 0
        assert loaded == direct
        for record in loaded:
            assert record.slowdown >= 1.0


class TestWarmFigureGrid:
    def test_full_figure_grid_warm_rerun_zero_simulations(
            self, tmp_path):
        """Acceptance: a warm-store rerun of a whole figure grid
        performs zero simulations, asserted by the worker's own
        simulation counter as well as the client's dispatch stats."""
        from repro.experiments import fig11

        store = tmp_path / "store"
        with Client(workers=1, store=store) as cold:
            table = fig11.run(benchmarks=("swaptions",), client=cold)
        runner_worker.clear_caches()
        before = simulations_executed()
        with Client(workers=1, store=store) as warm:
            again = fig11.run(benchmarks=("swaptions",), client=warm)
            assert warm.stats.executed == 0
        assert simulations_executed() == before
        assert again.rows() == table.rows()


class TestHandlesAndStreaming:
    def test_submit_returns_a_live_handle(self):
        with Client(workers=1, store=False) as client:
            handle = client.submit(grid()[0])
            record = handle.result(timeout=120)
            assert handle.done()
            assert not handle.cancelled()
            assert record.spec == grid()[0]
            # Same key again: answered from memory, already done.
            again = client.submit(grid()[0])
            assert again.done()
            assert again.source == "memory"
            assert again.result() is record

    def test_map_streams_in_submission_order(self):
        specs = grid()
        with Client(workers=1, store=False) as client:
            seen = [r.spec for r in client.map(specs)]
        assert seen == specs

    def test_as_completed_yields_every_handle(self):
        specs = grid()
        with Client(workers=1, store=False) as client:
            done = list(client.as_completed(specs))
        assert sorted(h.spec.benchmark for h in done) \
            == sorted(s.benchmark for s in specs)
        assert all(h.done() for h in done)

    def test_duplicate_submissions_coalesce(self):
        spec = grid()[0]
        with Client(workers=1, store=False, cache=False) as client:
            handles = client.submit_many([spec, spec, spec])
            records = [h.result() for h in handles]
        assert records[0] == records[1] == records[2]
        assert client.stats.executed == 1
        assert client.stats.coalesced == 2

    def test_run_one_memoised_by_identity(self):
        spec = grid()[0]
        with Client(workers=1, store=False) as client:
            assert client.run_one(spec) is client.run_one(spec)


class TestCancellation:
    def test_worker_checkpoint_raises(self):
        spec = grid()[0]
        with pytest.raises(RunCancelled, match="cancelled"):
            execute_spec(spec, store=False, cancel=lambda: True)

    def test_cancel_before_start_never_runs(self):
        """Occupy the single worker thread, queue a spec behind it,
        cancel the queued handle: it must never simulate."""
        spec = RunSpec(benchmark="x264", kernels=("asan",), length=LEN)
        gate = threading.Event()
        with Client(workers=1, store=False) as client:
            client._ensure_executor().submit(gate.wait, 30)
            before = simulations_executed()
            handle = client.submit(spec)
            assert handle.cancel()
            gate.set()
            with pytest.raises(RunCancelled):
                handle.result(timeout=30)
            assert handle.cancelled()
            assert handle.done()
        assert simulations_executed() == before
        assert client.stats.cancel_requests == 1

    def test_cooperative_cancel_mid_flight(self, monkeypatch):
        """Cancelling a handle that is already RUNNING reaches the
        worker's cooperative checkpoint and aborts the simulation.
        Deterministic: the executing task is held at a gate until the
        cancel request has been filed."""
        import repro.service.client as client_mod

        started = threading.Event()
        release = threading.Event()
        real = client_mod.execute_spec

        def gated(spec, store=None, cancel=None):
            started.set()
            assert release.wait(30)
            return real(spec, store=store, cancel=cancel)

        monkeypatch.setattr(client_mod, "execute_spec", gated)
        spec = grid()[0]
        before = simulations_executed()
        with Client(workers=1, store=False, cache=False) as client:
            handle = client.submit(spec)
            assert started.wait(30)
            assert handle.running()       # genuinely executing
            assert handle.cancel()
            release.set()
            with pytest.raises(RunCancelled, match="cancelled"):
                handle.result(timeout=60)
            assert handle.cancelled()
        # The first checkpoint fired before any simulation happened.
        assert simulations_executed() == before

    def test_pool_chunk_honours_cancel_markers(self, tmp_path):
        """The pool-side unit of work polls the cancel directory: a
        generation-scoped marker skips that spec without poisoning its
        chunk siblings."""
        from repro.service.client import _execute_chunk

        cancelled, survivor = grid()[0], grid()[1]
        (tmp_path / f"{cancelled.cache_key()}.g1").touch()
        results = _execute_chunk(
            [(cancelled, f"{cancelled.cache_key()}.g1"),
             (survivor, f"{survivor.cache_key()}.g1")],
            None, str(tmp_path))
        assert results[0] == ("cancelled", None)
        status, record = results[1]
        assert status == "ok"
        assert record.result == fresh_serial(survivor)

    def test_cancelled_key_can_be_resubmitted(self):
        spec = grid()[0]
        gate = threading.Event()
        with Client(workers=1, store=False) as client:
            client._ensure_executor().submit(gate.wait, 30)
            handle = client.submit(spec)
            handle.cancel()
            gate.set()
            with pytest.raises(RunCancelled):
                handle.result(timeout=30)
            record = client.submit(spec).result(timeout=120)
            assert record.result.cycles > 0

    def test_cancel_propagates_to_coalesced_duplicates(self):
        """Regression: duplicate submissions of one in-flight key
        share a future, so cancelling any one handle must cancel every
        coalesced duplicate — none may silently receive a record."""
        spec = grid()[0]
        gate = threading.Event()
        with Client(workers=1, store=False) as client:
            client._ensure_executor().submit(gate.wait, 30)
            first = client.submit(spec)
            duplicates = client.submit_many([spec, spec])
            assert all(h.source == "coalesced" for h in duplicates)
            assert duplicates[1].cancel()   # cancel via any duplicate
            gate.set()
            for handle in (first, *duplicates):
                with pytest.raises(RunCancelled):
                    handle.result(timeout=30)
                assert handle.cancelled()

    def test_resubmit_after_cancel_does_not_revive_old_run(
            self, monkeypatch):
        """Regression: resubmitting a key whose in-flight run was
        cancelled used to clear the cancellation flag, reviving the
        doomed run so the 'cancelled' handle silently received a
        record.  Generations keep the two dispatches independent: the
        old handle stays cancelled, the new one gets a record."""
        import repro.service.client as client_mod

        started = threading.Event()
        release = threading.Event()
        real = client_mod.execute_spec

        def gated(spec, store=None, cancel=None):
            started.set()
            assert release.wait(30)
            return real(spec, store=store, cancel=cancel)

        monkeypatch.setattr(client_mod, "execute_spec", gated)
        spec = grid()[0]
        with Client(workers=1, store=False, cache=False) as client:
            doomed = client.submit(spec)
            assert started.wait(30)
            assert doomed.cancel()
            started.clear()
            fresh = client.submit(spec)     # while doomed still runs
            assert fresh.source == "executed"
            release.set()
            with pytest.raises(RunCancelled):
                doomed.result(timeout=60)
            assert doomed.cancelled()
            record = fresh.result(timeout=120)
            assert not fresh.cancelled()
            assert record.result == fresh_serial(spec)


class TestRequireStoreHit:
    def test_miss_raises_when_required(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_REQUIRE_STORE_HIT", "1")
        with Client(workers=1, store=tmp_path / "s") as client:
            with pytest.raises(StoreError, match="missed the result"):
                client.run_one(grid()[0])

    def test_warm_store_satisfies_requirement(self, tmp_path,
                                              monkeypatch):
        spec = grid()[0]
        with Client(workers=1, store=tmp_path / "s") as cold:
            expected = cold.run_one(spec)
        monkeypatch.setenv("REPRO_REQUIRE_STORE_HIT", "1")
        runner_worker.clear_caches()
        with Client(workers=1, store=tmp_path / "s") as warm:
            assert warm.run_one(spec) == expected

    def test_worker_level_enforcement(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_REQUIRE_STORE_HIT", "1")
        with pytest.raises(StoreError):
            execute_spec(grid()[0], store=False)


class TestSweepCompat:
    def test_sweep_grids_run_through_client(self):
        specs = sweep(BENCHMARKS, kernels=("pmc",), length=LEN)
        with Client(workers=1, store=False) as client:
            records = client.run(specs)
        assert [r.spec.benchmark for r in records] \
            == [s.benchmark for s in specs]
