"""Unit tests for the µcore: assembler, functional execution, timing."""

import pytest

from repro.core.config import FireGuardConfig
from repro.core.isax import IsaxInterface, IsaxStyle
from repro.core.msgqueue import QueueController
from repro.core.packet import OFF_ADDR, OFF_META, Packet
from repro.errors import AssemblyError
from repro.isa.decode import encode_instr
from repro.isa.opcodes import InstrClass
from repro.trace.record import InstrRecord
from repro.ucore.assembler import assemble
from repro.ucore.core import MicroCore, UcoreMemory
from repro.ucore.isa import Op


def load_packet(seq=0, addr=0x2000):
    word = encode_instr("ld", rd=5, rs1=8)
    rec = InstrRecord(seq=seq, pc=0x100, word=word, opcode=0x03, funct3=3,
                      iclass=InstrClass.LOAD, dst=5, srcs=(8,),
                      mem_addr=addr, mem_size=8)
    return Packet(seq=seq, gid=1, record=rec, commit_ns=0.0)


def make_core(source, style=IsaxStyle.MA_STAGE, engine_id=0,
              alerts=None):
    config = FireGuardConfig()
    ctrl = QueueController(engine_id, input_depth=8, peer_depth=8)
    memory = UcoreMemory(config)
    callbacks = alerts if alerts is not None else []
    core = MicroCore(engine_id=engine_id, program=assemble(source),
                     controller=ctrl, memory=memory, config=config,
                     isax=IsaxInterface(style),
                     on_alert=lambda e, c, t: callbacks.append((e, c, t)))
    return core, ctrl


def run_cycles(core, n):
    for cycle in range(n):
        core.tick(cycle)


def run_until_halt(core, max_cycles=5000):
    cycle = 0
    while not core.halted and cycle < max_cycles:
        core.tick(cycle)
        cycle += 1
    assert core.halted, "ucore did not halt"


class TestAssembler:
    def test_labels_and_branches(self):
        prog = assemble("""
        start:
            li   t0, 3
        loop:
            addi t0, t0, -1
            bnez t0, loop
            halt
        """)
        assert len(prog) == 4
        assert prog[2].op == Op.BNE
        assert prog[2].imm == 1  # index of 'loop'

    def test_comments_and_blank_lines(self):
        prog = assemble("""
        # a comment
            nop   # trailing comment

            halt
        """)
        assert [i.op for i in prog] == [Op.NOP, Op.HALT]

    def test_memory_operands(self):
        prog = assemble("ld a0, 16(s0)\nsd a1, -8(sp)")
        assert prog[0].op == Op.LD and prog[0].imm == 16 and prog[0].rs1 == 8
        assert prog[1].op == Op.SD and prog[1].imm == -8 and prog[1].rs1 == 2

    def test_hex_immediates(self):
        prog = assemble("li t0, 0xFF")
        assert prog[0].imm == 0xFF

    def test_pseudo_instructions(self):
        prog = assemble("beqz t0, l\nbnez t1, l\nj l\nmv a0, a1\nl: ret")
        assert prog[0].op == Op.BEQ and prog[0].rs2 == 0
        assert prog[1].op == Op.BNE
        assert prog[2].op == Op.JAL and prog[2].rd == 0
        assert prog[3].op == Op.ADDI and prog[3].imm == 0
        assert prog[4].op == Op.JALR and prog[4].rs1 == 1

    def test_queue_ops(self):
        prog = assemble("qcount t0, 0\nqpop a0, 128\nqpush a0\nppop a1")
        assert prog[0].op == Op.QCOUNT
        assert prog[1].op == Op.QPOP and prog[1].imm == 128
        assert prog[2].op == Op.QPUSH
        assert prog[3].op == Op.PPOP

    def test_unknown_label_raises(self):
        with pytest.raises(AssemblyError):
            assemble("j nowhere")

    def test_duplicate_label_raises(self):
        with pytest.raises(AssemblyError):
            assemble("a: nop\na: nop")

    def test_bad_mnemonic_raises(self):
        with pytest.raises(AssemblyError):
            assemble("frobnicate t0")

    def test_bad_register_raises(self):
        with pytest.raises(AssemblyError):
            assemble("add q0, t0, t1")

    def test_operand_count_checked(self):
        with pytest.raises(AssemblyError):
            assemble("add t0, t1")

    def test_label_on_own_line(self):
        prog = assemble("top:\n    j top")
        assert prog[0].imm == 0


class TestFunctionalExecution:
    def test_arithmetic(self):
        core, _ = make_core("""
            li   t0, 6
            li   t1, 7
            mul  t2, t0, t1
            add  t3, t2, t0
            halt
        """)
        run_cycles(core, 30)
        assert core.halted
        assert core.regs[7] == 42   # t2
        assert core.regs[28] == 48  # t3

    def test_x0_stays_zero(self):
        core, _ = make_core("li zero, 5\nhalt")
        run_cycles(core, 10)
        assert core.regs[0] == 0

    def test_memory_roundtrip(self):
        core, _ = make_core("""
            li  t0, 0x1000
            li  t1, 0xBEEF
            sd  t1, 0(t0)
            ld  t2, 0(t0)
            halt
        """)
        run_until_halt(core)
        assert core.regs[7] == 0xBEEF

    def test_byte_store_load(self):
        core, _ = make_core("""
            li  t0, 0x2000
            li  t1, 0x1FF
            sb  t1, 0(t0)
            lbu t2, 0(t0)
            halt
        """)
        run_until_halt(core)
        assert core.regs[7] == 0xFF

    def test_branch_loop(self):
        core, _ = make_core("""
            li   t0, 5
            li   t1, 0
        loop:
            addi t1, t1, 2
            addi t0, t0, -1
            bnez t0, loop
            halt
        """)
        run_cycles(core, 80)
        assert core.halted
        assert core.regs[6] == 10

    def test_signed_compare(self):
        core, _ = make_core("""
            li   t0, -1
            li   t1, 1
            slt  t2, t0, t1
            sltu t3, t0, t1
            halt
        """)
        run_cycles(core, 20)
        assert core.regs[7] == 1   # signed: -1 < 1
        assert core.regs[28] == 0  # unsigned: 2^64-1 > 1

    def test_shifts(self):
        core, _ = make_core("""
            li   t0, 4
            slli t1, t0, 4
            srli t2, t1, 2
            halt
        """)
        run_cycles(core, 20)
        assert core.regs[6] == 64 and core.regs[7] == 16

    def test_qpop_reads_packet_fields(self):
        core, ctrl = make_core("""
            qpop  a0, 0
            qrecent a1, 128
            halt
        """)
        ctrl.input_queue.push(load_packet(addr=0x77C0))
        run_cycles(core, 20)
        assert core.regs[11] == 0x77C0

    def test_qpop_blocks_until_data(self):
        core, ctrl = make_core("qpop a0, 128\nhalt")
        run_cycles(core, 5)
        assert not core.halted
        assert core.blocked
        ctrl.input_queue.push(load_packet(addr=0x88))
        run_cycles(core, 20)
        assert core.halted
        assert core.regs[10] == 0x88

    def test_qpush_routes_to_dest(self):
        core, ctrl = make_core("""
            li    t0, 3
            qdest t0
            li    a0, 0xAB
            qpush a0
            halt
        """)
        run_cycles(core, 20)
        assert ctrl.take_outgoing() == (3, 0xAB)

    def test_ppop_blocks_then_reads(self):
        core, ctrl = make_core("ppop a0\nhalt")
        run_cycles(core, 3)
        assert core.blocked
        ctrl.peer_queue.push(0x1234)
        run_cycles(core, 10)
        assert core.regs[10] == 0x1234

    def test_alert_callback(self):
        alerts = []
        core, _ = make_core("alerti 9\nhalt", alerts=alerts)
        run_cycles(core, 10)
        assert alerts and alerts[0][1] == 9

    def test_csrr_engine_id(self):
        alerts = []
        core, _ = make_core("csrr t0, id\nhalt", engine_id=0,
                            alerts=alerts)
        run_cycles(core, 10)
        assert core.regs[5] == 0

    def test_preset_registers(self):
        core, _ = make_core("halt")
        core.preset_registers({8: 0x4000})
        assert core.regs[8] == 0x4000

    def test_pc_past_end_halts(self):
        core, _ = make_core("nop")
        run_cycles(core, 5)
        assert core.halted


class TestTiming:
    def test_load_use_bubble(self):
        fast, _ = make_core("""
            li  t0, 0x100
            ld  t1, 0(t0)
            nop
            add t2, t1, t1
            halt
        """)
        slow, _ = make_core("""
            li  t0, 0x100
            ld  t1, 0(t0)
            add t2, t1, t1
            nop
            halt
        """)
        run_cycles(fast, 300)
        run_cycles(slow, 300)
        assert fast.halted and slow.halted
        assert slow.stat_stall_cycles >= fast.stat_stall_cycles

    def test_post_commit_isax_slower(self):
        src = """
        loop:
            qcount t0, 0
            beqz   t0, done
            qpop   a0, 0
            j      loop
        done:
            halt
        """
        results = {}
        for style in (IsaxStyle.MA_STAGE, IsaxStyle.POST_COMMIT):
            core, ctrl = make_core(src, style=style)
            for i in range(6):
                ctrl.input_queue.push(load_packet(i))
            cycle = 0
            while not core.halted and cycle < 2000:
                core.tick(cycle)
                cycle += 1
            assert core.halted
            results[style] = core.stat_instructions + core.stat_stall_cycles
        assert results[IsaxStyle.POST_COMMIT] \
            > results[IsaxStyle.MA_STAGE]

    def test_div_slower_than_add(self):
        div_core, _ = make_core("li t0, 8\nli t1, 2\ndiv t2, t0, t1\nhalt")
        add_core, _ = make_core("li t0, 8\nli t1, 2\nadd t2, t0, t1\nhalt")
        for c in (div_core, add_core):
            cycle = 0
            while not c.halted and cycle < 100:
                c.tick(cycle)
                cycle += 1
        assert div_core.regs[7] == 4
        assert div_core.stat_stall_cycles > add_core.stat_stall_cycles

    def test_idle_detection_blocked(self):
        core, _ = make_core("qpop a0, 0\nhalt")
        run_cycles(core, 5)
        assert core.idle_at(5)

    def test_not_idle_with_queued_work(self):
        core, ctrl = make_core("qpop a0, 0\nj_done: halt")
        ctrl.input_queue.push(load_packet())
        assert not core.idle_at(0)

    def test_spin_loop_idles_eventually(self):
        core, _ = make_core("""
        loop:
            qcount t0, 0
            beqz   t0, loop
            qpop   a0, 0
            j      loop
        """)
        run_cycles(core, 200)
        assert core.idle_at(200)

    def test_cache_miss_costs_more(self):
        # Two loads to the same line: second is an L1 hit.
        core, _ = make_core("""
            li  t0, 0x9000
            ld  t1, 0(t0)
            ld  t2, 8(t0)
            halt
        """)
        cycle = 0
        while not core.halted and cycle < 1000:
            core.tick(cycle)
            cycle += 1
        assert core.halted
        assert core.l1d.stat_misses == 1
        assert core.l1d.stat_hits == 1
