"""The event-driven scheduler layer (repro.sched) and its contract
with the dense loop: the cycle wheel never fires early, late, or
twice, and the event-driven session is bit-identical to the dense
reference loop across a benchmark × kernel-set × engine-count grid."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.system import FireGuardSystem
from repro.errors import SimulationError
from repro.kernels import make_kernel
from repro.sched import CycleWheel, EventScheduler
from repro.sim import SimulationSession
from repro.trace.attacks import AttackKind, inject_attacks
from repro.trace.generator import generate_trace
from repro.trace.profiles import PARSEC_PROFILES


# ---------------------------------------------------------------------------
# CycleWheel unit + property tests
# ---------------------------------------------------------------------------

class TestCycleWheel:
    def test_empty_wheel(self):
        wheel = CycleWheel()
        assert wheel.empty
        assert wheel.next_cycle() is None
        assert wheel.pop_due(100) == []

    def test_single_event_fires_at_its_cycle(self):
        wheel = CycleWheel()
        wheel.post(5, "a")
        assert wheel.next_cycle() == 5
        assert wheel.pop_due(4) == []          # never early
        assert wheel.pop_due(5) == ["a"]       # exactly on time
        assert wheel.pop_due(5) == []          # never twice
        assert wheel.empty

    def test_same_item_same_cycle_is_idempotent(self):
        wheel = CycleWheel()
        wheel.post(3, "a")
        wheel.post(3, "a")
        assert wheel.pop_due(3) == ["a"]

    def test_same_item_two_cycles_fires_twice(self):
        wheel = CycleWheel()
        wheel.post(2, "a")
        wheel.post(4, "a")
        assert wheel.pop_due(3) == ["a"]
        assert wheel.pop_due(4) == ["a"]

    def test_pop_due_returns_cycle_then_insertion_order(self):
        wheel = CycleWheel()
        wheel.post(7, "late")
        wheel.post(2, "first")
        wheel.post(2, "second")
        wheel.post(5, "mid")
        assert wheel.pop_due(7) == ["first", "second", "mid", "late"]

    def test_past_post_fires_on_next_pop(self):
        wheel = CycleWheel()
        assert wheel.pop_due(10) == []
        wheel.post(3, "stale")                 # posted into the past
        assert wheel.pop_due(10) == ["stale"]  # never lost

    def test_clear(self):
        wheel = CycleWheel()
        wheel.post(1, "a")
        wheel.clear()
        assert wheel.empty
        assert wheel.pop_due(10) == []

    @settings(max_examples=200, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 60), st.integers(0, 25)),
                    max_size=60))
    def test_never_early_late_or_twice(self, posts):
        """Walk the wheel cycle by cycle: every posted (cycle, token)
        fires exactly once, exactly at its cycle."""
        wheel = CycleWheel()
        expected: dict[int, set] = {}
        for cycle, token_id in posts:
            token = (cycle, token_id)   # value identity per (cycle, id)
            wheel.post(cycle, token)
            expected.setdefault(cycle, set()).add(token)
        fired: list = []
        for now in range(62):
            due = wheel.pop_due(now)
            for item in due:
                assert item[0] == now, "fired early or late"
            fired.extend(due)
        assert len(fired) == len(set(fired)), "an event fired twice"
        assert set(fired) == {t for ts in expected.values() for t in ts}

    @settings(max_examples=100, deadline=None)
    @given(st.data())
    def test_interleaved_posts_and_pops(self, data):
        """Posting while walking: events land at max(post cycle, next
        poll) and exactly once."""
        wheel = CycleWheel()
        outstanding: list = []
        fired: list = []
        serial = 0
        for now in range(40):
            for _ in range(data.draw(st.integers(0, 3))):
                cycle = data.draw(st.integers(0, 60))
                token = (serial, cycle)
                serial += 1
                wheel.post(cycle, token)
                outstanding.append(token)
            for item in wheel.pop_due(now):
                assert item[1] <= now, "fired before its cycle"
                outstanding.remove(item)  # raises if fired twice
                fired.append(item)
        for token in outstanding:
            assert token[1] > 39, "an elapsed event never fired"


class TestEventScheduler:
    class FakeWakeable:
        def __init__(self, nxt):
            self.nxt = nxt

        def next_event_cycle(self, now):
            return self.nxt

    def test_arm_routes_to_running_wheel_or_sleep(self):
        sched = EventScheduler("test")
        every = self.FakeWakeable(1)
        timed = self.FakeWakeable(10)
        asleep = self.FakeWakeable(None)
        sched.arm_many(0, [every, timed, asleep])
        assert every in sched.running
        assert timed not in sched.running
        assert sched.due_at(0)           # running forces every cycle
        del sched.running[every]
        assert not sched.due_at(5)
        assert sched.due_at(10)
        assert sched.pop_due(10) == [timed]
        assert sched.quiescent

    def test_stale_arm_is_clamped_forward(self):
        sched = EventScheduler("test")
        stale = self.FakeWakeable(0)     # claims "now" — kept runnable
        sched.arm_many(5, [stale])
        assert stale in sched.running

    def test_explicit_wake_reaches_a_sleeper(self):
        sched = EventScheduler("test")
        w = self.FakeWakeable(None)
        sched.arm(0, w)
        assert sched.quiescent
        sched.wake(3, w)
        assert sched.pop_due(2) == []
        assert sched.pop_due(3) == [w]

    def test_reset_clears_everything(self):
        sched = EventScheduler("test")
        sched.arm_many(0, [self.FakeWakeable(1), self.FakeWakeable(9)])
        sched.reset()
        assert sched.quiescent
        assert all(v == 0 for v in sched.stats().values())


# ---------------------------------------------------------------------------
# A/B bit-identity: event-driven vs dense reference loop
# ---------------------------------------------------------------------------

def _build(kernel_names, **kwargs):
    return FireGuardSystem([make_kernel(k) for k in kernel_names],
                           **kwargs)


def _trace(bench, seed=17, length=3000, attack=None, count=6):
    trace = generate_trace(PARSEC_PROFILES[bench], seed=seed,
                           length=length)
    if attack is not None:
        inject_attacks(trace, attack, count)
    return trace


AB_GRID = [
    # (benchmark, kernel set, engines_per_kernel, attack, accelerated)
    ("swaptions", ("pmc",), None, None, None),            # spin-poll kernel
    ("dedup", ("asan",), None, None, None),               # blocking kernel
    ("x264", ("asan",), {"asan": 12}, None, None),        # many engines
    ("bodytrack", ("shadow_stack",), None,
     AttackKind.RET_HIJACK, None),                        # NoC + detections
    ("swaptions", ("shadow_stack", "uaf"), None, None, None),  # multi-kernel
    ("swaptions", ("shadow_stack",), None, None,
     frozenset({"shadow_stack"})),                        # accelerator
    ("ferret", ("uaf",), {"uaf": 2}, None, None),         # few engines
]


class TestEventDenseIdentity:
    @pytest.mark.parametrize(
        "bench,kernels,epk,attack,accelerated", AB_GRID,
        ids=[f"{b}-{'+'.join(k)}" for b, k, *_ in AB_GRID])
    def test_bit_identical_results(self, bench, kernels, epk, attack,
                                   accelerated):
        kwargs = {}
        if epk:
            kwargs["engines_per_kernel"] = epk
        if accelerated:
            kwargs["accelerated"] = accelerated
        dense = SimulationSession(_build(kernels, **kwargs),
                                  dense=True).run(_trace(bench,
                                                         attack=attack))
        event = SimulationSession(_build(kernels, **kwargs),
                                  dense=False).run(_trace(bench,
                                                          attack=attack))
        # Every SystemResult field, including alerts and per-attack
        # detection latencies, must match bit for bit.
        assert dense == event

    def test_identity_with_non_integer_clock_ratio(self):
        """Exercises advance_to's non-periodic accumulator path."""
        from dataclasses import replace

        from repro.core.config import FireGuardConfig

        config = replace(FireGuardConfig(), low_freq_ghz=1.3)
        trace = _trace("dedup")
        dense = SimulationSession(
            _build(("asan",), config=config), dense=True).run(trace)
        event = SimulationSession(
            _build(("asan",), config=config), dense=False).run(trace)
        assert dense == event

    def test_identity_under_heavy_backpressure(self):
        """Tiny CDC and message queues keep the fabric full — the
        busy-controller set and full-queue statistics must match."""
        from dataclasses import replace

        from repro.core.config import FireGuardConfig

        config = replace(FireGuardConfig(), cdc_depth=2, msgq_depth=2)
        trace = _trace("dedup")
        dense = SimulationSession(
            _build(("asan",), config=config), dense=True).run(trace)
        event = SimulationSession(
            _build(("asan",), config=config), dense=False).run(trace)
        assert dense == event
        assert event.msgq_full_cycles > 0  # back-pressure really occurred

    def test_identity_survives_session_reset(self):
        trace = _trace("dedup")
        session = SimulationSession(_build(("asan",)), dense=False)
        first = session.run(trace)
        session.reset()
        assert session.run(trace) == first

    def test_env_var_selects_dense_loop(self, monkeypatch):
        monkeypatch.setenv("REPRO_DENSE_LOOP", "1")
        assert SimulationSession(_build(("pmc",))).dense
        monkeypatch.delenv("REPRO_DENSE_LOOP")
        assert not SimulationSession(_build(("pmc",))).dense

    def test_event_loop_actually_skips(self):
        session = SimulationSession(
            _build(("asan",), engines_per_kernel={"asan": 12}),
            dense=False)
        session.run(_trace("x264"))
        stats = session.stats()
        assert stats["low_cycles_skipped"] > 0
        assert stats["high_cycles_fastforwarded"] > 0
        assert stats["engine_ticks_skipped"] > 0


# ---------------------------------------------------------------------------
# Undrained-timeout diagnostics
# ---------------------------------------------------------------------------

class TestUndrainedError:
    @pytest.mark.parametrize("dense", [True, False],
                             ids=["dense", "event"])
    def test_timeout_names_undrained_components(self, dense):
        session = SimulationSession(_build(("asan",)), dense=dense)
        with pytest.raises(SimulationError) as excinfo:
            session.run(_trace("dedup"), max_cycles=200)
        message = str(excinfo.value)
        assert "did not drain within 200 cycles" in message
        # 200 cycles in, the trace is still executing.
        assert "main core still executing" in message

    def test_timeout_reports_busy_engines_and_queues(self):
        # A mid-drain cutoff: the core finishes but engines do not.
        session = SimulationSession(_build(("asan",)), dense=False)
        trace = _trace("dedup", length=500)
        done_cycles = SimulationSession(
            _build(("asan",)), dense=False).run(_trace("dedup",
                                                       length=500)).cycles
        cut = max(100, done_cycles - 60)
        with pytest.raises(SimulationError) as excinfo:
            session.run(trace, max_cycles=cut)
        message = str(excinfo.value)
        # The report names at least one concrete component, never the
        # bare trace/seed line alone.
        assert ":" in message
        assert any(key in message for key in
                   ("busy engines", "queues", "CDC", "event filter",
                    "multicast", "NoC", "main core"))