"""Differential grid: every backend is bit-identical to scalar.

The vector backend (columnar decode + precomputed filter plan +
vectorized kernel pre-checks) and the compiled backend (vector plus
the hotpath kernels of :mod:`repro.hotpath`) are pure acceleration —
DESIGN.md pins the scalar record-at-a-time path as the reference
semantics.  These tests enforce that with a four-way grid: for every
cell of {benchmark × kernel set × engine count × in-memory/streamed},
the dense loop, the event loop, the vector backend and the compiled
backend must produce *identical* :class:`SystemResult` objects, field
for field.  The compiled cell runs twice — once with whatever hotpath
variant is available (the C build when an artifact exists, the
interpreted kernels otherwise) and once with
``REPRO_HOTPATH=interpreted`` forcing the interpreted variant — so the
no-toolchain fallback is itself a pinned grid cell.

Also covered: the single hardware-accelerator configuration, attack
traces (detections must match, not just cycle counts), the scalar
fallback, and backend resolution precedence (constructor argument >
``REPRO_BACKEND`` env > vector default).
"""

import os
import warnings

import pytest

from repro.core.system import FireGuardSystem
from repro.hotpath import HOTPATH_ENV
from repro.kernels import make_kernel
from repro.sim import SimulationSession
from repro.trace.attacks import AttackKind, inject_attacks
from repro.trace.generator import generate_trace
from repro.trace.io import save_trace
from repro.trace.profiles import PARSEC_PROFILES
from repro.trace.stream import StreamedTrace
from repro.utils.npcompat import (
    BACKEND_COMPILED,
    BACKEND_ENV,
    BACKEND_SCALAR,
    BACKEND_VECTOR,
    HAVE_NUMPY,
    resolve_backend,
)

TRACE_LEN = 2500

KERNEL_SETS = {
    "asan": ("asan",),
    "pmc+shadow": ("pmc", "shadow_stack"),
}


def build_system(kernel_names, engines):
    kernels = [make_kernel(name) for name in kernel_names]
    return FireGuardSystem(
        kernels,
        engines_per_kernel={name: engines for name in kernel_names})


def run_backend_grid(make_system, trace_factory):
    """Dense/scalar, event/scalar, event/vector, event/compiled and
    event/compiled-forced-interpreted results for one configuration;
    each session gets a fresh system and trace source (streamed
    sources are forward-only, so no sharing)."""
    results = {}
    for label, dense, backend in (
            ("dense", True, BACKEND_SCALAR),
            ("event", False, BACKEND_SCALAR),
            ("vector", False, BACKEND_VECTOR),
            ("compiled", False, BACKEND_COMPILED),
            ("compiled-interp", False, BACKEND_COMPILED)):
        session = SimulationSession(make_system(), dense=dense,
                                    backend=backend)
        forced = label == "compiled-interp"
        saved = os.environ.get(HOTPATH_ENV)
        try:
            if forced:
                os.environ[HOTPATH_ENV] = "interpreted"
            with warnings.catch_warnings():
                # The no-artifact fallback warns once per process; the
                # grid pins its results, not its noise.
                warnings.simplefilter("ignore", RuntimeWarning)
                results[label] = session.run(trace_factory())
        finally:
            if forced:
                if saved is None:
                    os.environ.pop(HOTPATH_ENV, None)
                else:
                    os.environ[HOTPATH_ENV] = saved
    return results


def assert_identical(results):
    reference = results["dense"]
    for label, result in results.items():
        assert reference == result, \
            f"{label} diverged from dense"


@pytest.mark.skipif(not HAVE_NUMPY, reason="vector backend needs numpy")
class TestIdentityGrid:
    """The satellite grid: {2 benchmarks × 2 kernel sets × 4/12
    engines × in-memory/streamed}, five cells per point (dense,
    event, vector, compiled, compiled-forced-interpreted)."""

    @pytest.mark.parametrize("bench", ["swaptions", "dedup"])
    @pytest.mark.parametrize("kernel_set", sorted(KERNEL_SETS))
    @pytest.mark.parametrize("engines", [4, 12])
    def test_in_memory(self, bench, kernel_set, engines):
        names = KERNEL_SETS[kernel_set]
        trace = generate_trace(PARSEC_PROFILES[bench], seed=11,
                               length=TRACE_LEN)
        assert_identical(run_backend_grid(
            lambda: build_system(names, engines), lambda: trace))

    @pytest.mark.parametrize("bench", ["swaptions", "dedup"])
    @pytest.mark.parametrize("kernel_set", sorted(KERNEL_SETS))
    @pytest.mark.parametrize("engines", [4, 12])
    def test_streamed(self, bench, kernel_set, engines, tmp_path):
        names = KERNEL_SETS[kernel_set]
        trace = generate_trace(PARSEC_PROFILES[bench], seed=11,
                               length=TRACE_LEN)
        path = tmp_path / "t.fgt"
        save_trace(trace, path)
        results = run_backend_grid(
            lambda: build_system(names, engines),
            lambda: StreamedTrace(path, chunk_records=512))
        assert_identical(results)
        # Streaming itself must not change the answer either.
        in_memory = SimulationSession(
            build_system(names, engines), dense=False,
            backend=BACKEND_VECTOR).run(trace)
        assert results["vector"] == in_memory


@pytest.mark.skipif(not HAVE_NUMPY, reason="vector backend needs numpy")
class TestAttackIdentity:
    """Verdicts — not just timing — must survive vectorization: the
    pre-check plans may only ever over-approximate 'interesting'."""

    @pytest.mark.parametrize("kernel,bench,kind", [
        ("asan", "dedup", AttackKind.OOB_ACCESS),
        ("pmc", "ferret", AttackKind.PMC_BOUND),
        ("shadow_stack", "bodytrack", AttackKind.RET_HIJACK),
    ])
    def test_attack_detections_identical(self, kernel, bench, kind):
        from repro.kernels.pmc import DEFAULT_BOUND_HI, DEFAULT_BOUND_LO

        trace = generate_trace(PARSEC_PROFILES[bench], seed=31,
                               length=5000)
        inject_attacks(trace, kind, 8,
                       pmc_bounds=(DEFAULT_BOUND_LO, DEFAULT_BOUND_HI))
        results = run_backend_grid(
            lambda: build_system((kernel,), 4), lambda: trace)
        assert_identical(results)
        assert results["vector"].detections == \
            results["dense"].detections

    def test_asan_accelerator_identical(self):
        trace = generate_trace(PARSEC_PROFILES["dedup"], seed=31,
                               length=5000)
        inject_attacks(trace, AttackKind.OOB_ACCESS, 8)

        def ha_system():
            return FireGuardSystem([make_kernel("asan")],
                                   accelerated={"asan"})

        results = run_backend_grid(ha_system, lambda: trace)
        assert_identical(results)
        assert results["vector"].detections


@pytest.mark.skipif(not HAVE_NUMPY, reason="vector backend needs numpy")
class TestFuzzedIdentity:
    """Fuzzer-generated campaigns are grid cells too: multi-phase
    compositions with stacked adversarial-placement attack plans must
    be bit-identical across every backend, streamed or in-memory."""

    CASES = (1, 2)  # armed campaigns with distinct primary kinds

    def _case(self, index):
        from repro.trace.fuzz import FuzzConfig, fuzz_case

        config = FuzzConfig(campaigns=4, min_phase=700, max_phase=900)
        case = fuzz_case(config, index)
        assert not case.attack_free
        return case

    @pytest.mark.parametrize("index", CASES)
    def test_in_memory(self, index):
        from repro.trace.scenario import compose_trace

        case = self._case(index)
        trace, sites = compose_trace(case.scenario, case.seed)
        results = run_backend_grid(
            lambda: build_system(("asan", "pmc", "shadow_stack"), 2),
            lambda: trace)
        assert_identical(results)
        assert sites and results["dense"].detections

    @pytest.mark.parametrize("index", CASES)
    def test_streamed(self, index, tmp_path):
        from repro.trace.scenario import compose_stream, compose_trace

        case = self._case(index)
        path = tmp_path / "fuzzed.fgt"
        compose_stream(case.scenario, case.seed, path,
                       chunk_records=512)
        results = run_backend_grid(
            lambda: build_system(("asan", "pmc", "shadow_stack"), 2),
            lambda: StreamedTrace(path, chunk_records=512))
        assert_identical(results)
        # Streaming must match the in-memory composition exactly.
        trace, _ = compose_trace(case.scenario, case.seed)
        in_memory = SimulationSession(
            build_system(("asan", "pmc", "shadow_stack"), 2),
            dense=False, backend=BACKEND_VECTOR).run(trace)
        assert results["vector"] == in_memory


class TestBackendResolution:
    def test_constructor_argument_wins(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, BACKEND_VECTOR)
        session = SimulationSession(build_system(("pmc",), 2),
                                    backend=BACKEND_SCALAR)
        assert session.backend == BACKEND_SCALAR

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, BACKEND_SCALAR)
        session = SimulationSession(build_system(("pmc",), 2))
        assert session.backend == BACKEND_SCALAR

    @pytest.mark.skipif(not HAVE_NUMPY,
                        reason="vector default needs numpy")
    def test_vector_is_default(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        session = SimulationSession(build_system(("pmc",), 2))
        assert session.backend == BACKEND_VECTOR

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("simd")

    def test_compiled_backend_accepted(self):
        # compiled never degrades at resolution time: the hotpath
        # layer handles a missing artifact itself (warn + interpreted
        # kernels), so the resolver passes it through even with no
        # toolchain anywhere near the machine.
        assert resolve_backend(BACKEND_COMPILED) == BACKEND_COMPILED

    def test_scalar_backend_runs_without_plans(self):
        trace = generate_trace(PARSEC_PROFILES["swaptions"], seed=11,
                               length=TRACE_LEN)
        scalar = SimulationSession(build_system(("asan",), 4),
                                   backend=BACKEND_SCALAR).run(trace)
        dense = SimulationSession(build_system(("asan",), 4),
                                  dense=True,
                                  backend=BACKEND_SCALAR).run(trace)
        assert scalar == dense
