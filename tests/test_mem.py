"""Unit tests for the memory substrate."""

import pytest

from repro.errors import ConfigError, SimulationError
from repro.mem.cache import CacheParams, SetAssocCache
from repro.mem.dram import DramModel, DramParams
from repro.mem.hierarchy import HierarchyParams, MemoryHierarchy
from repro.mem.sparse import SparseMemory
from repro.mem.tlb import Tlb, TlbParams


def small_cache(ways=2, sets=4, mshrs=2):
    return SetAssocCache(CacheParams(
        name="t", size_bytes=ways * sets * 64, ways=ways, hit_latency=1,
        mshrs=mshrs))


class TestCacheParams:
    def test_num_sets(self):
        p = CacheParams(name="x", size_bytes=32 * 1024, ways=8)
        assert p.num_sets == 64

    def test_bad_geometry_rejected(self):
        with pytest.raises(ConfigError):
            CacheParams(name="x", size_bytes=1000, ways=3)

    def test_zero_mshrs_rejected(self):
        with pytest.raises(ConfigError):
            CacheParams(name="x", size_bytes=1024, ways=2, mshrs=0)


class TestSetAssocCache:
    def test_cold_miss_then_hit(self):
        c = small_cache()
        hit, _ = c.lookup(0x1000, 0, 10)
        assert not hit
        hit, _ = c.lookup(0x1000, 1, 10)
        assert hit

    def test_same_line_different_bytes_hit(self):
        c = small_cache()
        c.lookup(0x1000, 0, 10)
        hit, _ = c.lookup(0x103F, 1, 10)
        assert hit

    def test_adjacent_line_misses(self):
        c = small_cache()
        c.lookup(0x1000, 0, 10)
        hit, _ = c.lookup(0x1040, 1, 10)
        assert not hit

    def test_lru_eviction(self):
        c = small_cache(ways=2, sets=1)
        c.lookup(0x0 * 64, 0, 10)   # A
        c.lookup(0x1 * 64, 1, 10)   # B
        c.lookup(0x0 * 64, 2, 10)   # touch A (B becomes LRU)
        c.lookup(0x2 * 64, 3, 10)   # C evicts B
        assert c.contains(0x0)
        assert not c.contains(0x1 * 64)
        assert c.contains(0x2 * 64)

    def test_mshr_exhaustion_delays(self):
        c = small_cache(ways=2, sets=4, mshrs=1)
        _, d0 = c.lookup(0x0, 0, 100)
        _, d1 = c.lookup(0x40 * 7, 0, 100)  # second concurrent miss
        assert d0 == 0
        assert d1 >= 100

    def test_mshr_frees_over_time(self):
        c = small_cache(mshrs=1)
        c.lookup(0x0, 0, 10)
        _, delay = c.lookup(0x40 * 9, 50, 10)  # after the fill completed
        assert delay == 0

    def test_stats_counted(self):
        c = small_cache()
        c.lookup(0x0, 0, 10)
        c.lookup(0x0, 1, 10)
        assert c.stat_hits == 1 and c.stat_misses == 1
        assert c.miss_rate == pytest.approx(0.5)

    def test_flush(self):
        c = small_cache()
        c.lookup(0x0, 0, 10)
        c.flush()
        assert not c.contains(0x0)

    def test_non_power_of_two_line_rejected(self):
        with pytest.raises(ConfigError):
            SetAssocCache(CacheParams(name="x", size_bytes=2 * 3 * 48,
                                      ways=2, line_bytes=48))


class TestTlb:
    def test_miss_then_hit(self):
        t = Tlb(TlbParams(name="t", entries=4, walk_latency=30))
        assert t.translate(0x1000) == 30
        assert t.translate(0x1FFF) == 0  # same page

    def test_different_page_misses(self):
        t = Tlb(TlbParams(name="t", entries=4))
        t.translate(0x0)
        assert t.translate(0x1000) > 0

    def test_lru_capacity(self):
        t = Tlb(TlbParams(name="t", entries=2, walk_latency=10))
        t.translate(0x0000)
        t.translate(0x1000)
        t.translate(0x0000)      # refresh page 0
        t.translate(0x2000)      # evicts page 1
        assert t.translate(0x0000) == 0
        assert t.translate(0x1000) == 10

    def test_miss_rate(self):
        t = Tlb(TlbParams(name="t", entries=8))
        t.translate(0x0)
        t.translate(0x0)
        assert t.miss_rate == pytest.approx(0.5)

    def test_bad_params(self):
        with pytest.raises(ConfigError):
            TlbParams(name="t", entries=0)
        with pytest.raises(ConfigError):
            TlbParams(name="t", page_bytes=3000)


class TestDram:
    def test_base_latency(self):
        d = DramModel(DramParams(latency_cycles=100, max_requests=4,
                                 service_interval=1))
        assert d.access(0) == 100

    def test_bandwidth_serialisation(self):
        d = DramModel(DramParams(latency_cycles=100, max_requests=32,
                                 service_interval=4))
        first = d.access(0)
        second = d.access(0)   # same cycle: must wait a grant slot
        assert second == first + 4

    def test_window_limit(self):
        d = DramModel(DramParams(latency_cycles=100, max_requests=2,
                                 service_interval=1))
        d.access(0)
        d.access(0)
        third = d.access(0)
        assert third > 100  # waited for a window slot

    def test_params_validated(self):
        with pytest.raises(ConfigError):
            DramParams(latency_cycles=0)


class TestHierarchy:
    def test_l1_hit_fast(self):
        h = MemoryHierarchy()
        first = h.access_data(0x1000, 0)
        second = h.access_data(0x1000, 10)
        assert second.hit_level == "L1"
        assert second.latency < first.latency

    def test_miss_descends_levels(self):
        h = MemoryHierarchy()
        r = h.access_data(0x9999000, 0)
        assert r.hit_level == "DRAM"
        r2 = h.access_data(0x9999000, 500)
        assert r2.hit_level == "L1"

    def test_latencies_ordered_by_level(self):
        h = MemoryHierarchy()
        dram = h.access_data(0x5000, 0).latency
        h.l1d.flush()
        l2 = h.access_data(0x5000, 1000).latency
        h2 = h.access_data(0x5000, 2000).latency
        assert dram > l2 > h2

    def test_tlb_miss_flag(self):
        h = MemoryHierarchy()
        assert h.access_data(0xABC000, 0).tlb_miss
        assert not h.access_data(0xABC008, 10).tlb_miss

    def test_instr_and_data_paths_independent(self):
        h = MemoryHierarchy()
        h.access_instr(0x40, 0)
        # Same address via the data path still misses its own L1.
        r = h.access_data(0x40, 1)
        assert r.hit_level != "L1"

    def test_default_params_match_table2(self):
        p = HierarchyParams()
        assert p.l1d.size_bytes == 32 * 1024 and p.l1d.ways == 8
        assert p.l2.size_bytes == 512 * 1024 and p.l2.mshrs == 12
        assert p.llc.size_bytes == 4 * 1024 * 1024


class TestSparseMemory:
    def test_default_zero(self):
        m = SparseMemory()
        assert m.load(0x1234, 8) == 0

    def test_store_load_roundtrip(self):
        m = SparseMemory()
        m.store(0x100, 0xDEADBEEFCAFEF00D, 8)
        assert m.load(0x100, 8) == 0xDEADBEEFCAFEF00D

    def test_little_endian_bytes(self):
        m = SparseMemory()
        m.store(0x0, 0x0102, 2)
        assert m.load(0x0, 1) == 0x02
        assert m.load(0x1, 1) == 0x01

    def test_partial_overlap(self):
        m = SparseMemory()
        m.store(0x0, 0xFFFFFFFFFFFFFFFF, 8)
        m.store(0x4, 0x0, 1)
        assert m.load(0x0, 8) == 0xFFFFFF00FFFFFFFF

    def test_signed_load(self):
        m = SparseMemory()
        m.store(0x10, 0xFF, 1)
        assert m.load_signed(0x10, 1) == -1
        assert m.load(0x10, 1) == 255

    def test_fill(self):
        m = SparseMemory()
        m.fill(0x20, 0xAB, 4)
        assert m.load(0x20, 4) == 0xABABABAB

    def test_bad_size_raises(self):
        m = SparseMemory()
        with pytest.raises(SimulationError):
            m.load(0, 3)
        with pytest.raises(SimulationError):
            m.store(0, 0, 5)

    def test_footprint(self):
        m = SparseMemory()
        m.store(0, 1, 8)
        assert m.footprint() == 8
