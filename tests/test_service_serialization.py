"""The versioned JSON codec: exact round trips, byte stability."""

import hashlib
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.config import FireGuardConfig
from repro.core.isax import IsaxStyle
from repro.core.system import Alert, SystemResult
from repro.errors import StoreError
from repro.kernels.base import KernelStrategy
from repro.runner import AttackPlan, RunRecord, RunSpec
from repro.service import (
    SCHEMA_VERSION,
    SchemaMismatchError,
    dumps_record,
    loads_record,
    record_from_dict,
    record_to_dict,
    spec_from_dict,
    spec_to_dict,
)
from repro.trace.attacks import AttackKind
from repro.trace.scenario import SCENARIOS

REPO = Path(__file__).resolve().parent.parent


def rich_spec(**overrides):
    """A spec touching every serialized field class: tuple, frozenset,
    enums, nested config, attack plan."""
    kwargs = dict(
        benchmark="swaptions",
        kernels=("asan", "pmc"),
        engines_per_kernel=6,
        accelerated=frozenset({"pmc"}),
        strategy=KernelStrategy.UNROLLED,
        isax_style=IsaxStyle.POST_COMMIT,
        config=FireGuardConfig(filter_width=2, fifo_depth=8),
        block_size=16,
        seed=23,
        length=4000,
        attacks=AttackPlan(AttackKind.OOB_ACCESS, 12,
                           pmc_bounds=(0x1000, 0x2000),
                           placement="late"),
    )
    kwargs.update(overrides)
    return RunSpec(**kwargs)


def rich_record(spec=None):
    result = SystemResult(
        cycles=123456, committed=100000, time_ns=77135.5,
        stall_backpressure=321,
        alerts=[Alert(engine_id=2, code=7, time_ns=19.5, attack_id=4,
                      pc=0x4000_1234),
                Alert(engine_id=0, code=1, time_ns=99.25,
                      attack_id=None, pc=0x4000_0010)],
        detections={9: 250.0, 2: 31.5, 4: 19.5},
        filter_full_cycles=11, mapper_blocked_cycles=22,
        cdc_full_cycles=33, msgq_full_cycles=44, packets_filtered=55,
        packets_delivered=66, engine_instructions=77,
        prf_preemptions=88, noc_words=99)
    return RunRecord(spec=spec or rich_spec(), result=result,
                     baseline_cycles=101010, injected_attacks=12,
                     trace_digest="ab" * 32)


class TestRoundTrip:
    def test_spec_exact(self):
        spec = rich_spec()
        again = spec_from_dict(spec_to_dict(spec))
        assert again == spec
        assert again.cache_key() == spec.cache_key()
        assert isinstance(again.accelerated, frozenset)
        assert isinstance(again.strategy, KernelStrategy)

    def test_spec_scenario_by_name(self):
        spec = rich_spec(benchmark="boot-then-serve",
                         scenario="boot-then-serve", attacks=None)
        again = spec_from_dict(spec_to_dict(spec))
        assert again == spec

    def test_spec_inline_scenario_with_custom_profile(self):
        # quiescent-idle carries a custom (non-PARSEC) profile, so
        # this exercises the WorkloadProfile codec too.
        scenario = SCENARIOS["quiescent-idle"]
        spec = rich_spec(benchmark=scenario.name, scenario=scenario,
                         attacks=None, stream=True)
        again = spec_from_dict(spec_to_dict(spec))
        assert again == spec
        assert again.scenario.cache_token() == scenario.cache_token()

    def test_spec_software_scheme(self):
        spec = RunSpec(benchmark="dedup", software="asan_aarch64",
                       length=3000)
        assert spec_from_dict(spec_to_dict(spec)) == spec

    def test_record_exact(self):
        record = rich_record()
        again = loads_record(dumps_record(record))
        assert again == record
        # Detection ids must come back as ints, not JSON strings.
        assert all(isinstance(k, int)
                   for k in again.result.detections)
        assert again.result.alerts[1].attack_id is None

    def test_executed_record_round_trips(self):
        from repro.runner.worker import execute_spec

        record = execute_spec(RunSpec(benchmark="swaptions",
                                      kernels=("pmc",), length=1500),
                              store=False)
        assert loads_record(dumps_record(record)) == record


class TestValidation:
    def test_schema_mismatch_is_distinct(self):
        payload = record_to_dict(rich_record())
        payload["schema"] = SCHEMA_VERSION + 1
        with pytest.raises(SchemaMismatchError):
            record_from_dict(payload)

    def test_key_mismatch_is_store_error(self):
        record = rich_record()
        with pytest.raises(StoreError, match="does not match"):
            loads_record(dumps_record(record, key="f" * 64),
                         expect_key="0" * 64)

    def test_garbage_is_store_error(self):
        with pytest.raises(StoreError):
            loads_record(b"not json at all")
        with pytest.raises(StoreError):
            loads_record(b'{"schema": %d, "spec": 42}'
                         % SCHEMA_VERSION)


_STABILITY_SCRIPT = """
import hashlib, sys
sys.path.insert(0, {src!r})
sys.path.insert(0, {tests!r})
from test_service_serialization import rich_record, rich_spec
from repro.service import dumps_record
from repro.trace.scenario import SCENARIOS

records = [
    rich_record(),
    rich_record(rich_spec(accelerated=frozenset(
        {{"pmc", "shadow_stack", "asan"}}))),
    rich_record(rich_spec(benchmark="quiescent-idle", attacks=None,
                          scenario=SCENARIOS["quiescent-idle"])),
]
for record in records:
    print(hashlib.sha256(dumps_record(record)).hexdigest())
"""


class TestByteStability:
    def test_bytes_identical_across_hash_seeds(self):
        """Satellite: canonical serialization is byte-stable under
        PYTHONHASHSEED randomization (frozenset iteration order and
        dict insertion hashing must never leak into the file)."""
        script = _STABILITY_SCRIPT.format(
            src=str(REPO / "src"), tests=str(REPO / "tests"))
        digests = []
        for seed in ("0", "1", "424242"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            env.pop("REPRO_TRACE_LEN", None)
            out = subprocess.run(
                [sys.executable, "-c", script], env=env,
                capture_output=True, text=True, check=True)
            digests.append(out.stdout)
        assert digests[0] == digests[1] == digests[2]
        assert len(digests[0].split()) == 3

    def test_dumps_are_deterministic_in_process(self):
        record = rich_record()
        assert dumps_record(record) == dumps_record(record)
        assert hashlib.sha256(dumps_record(record)).hexdigest() \
            == hashlib.sha256(dumps_record(rich_record())).hexdigest()
