"""The hotpath layer: kernel selection, fallback, decode cache,
profiling.

The bit-identity of the kernels themselves is pinned by the five-cell
backend grid in ``tests/test_vector_identity.py``; this file covers
the machinery around them:

* ``REPRO_BACKEND=compiled`` with no build artifact warns exactly once
  per process and runs the interpreted kernels bit-identically (the
  "flag is always safe" guarantee);
* ``REPRO_HOTPATH=interpreted`` forces the interpreted variant with no
  warning;
* ``install_hotpath`` swaps every core's kernel slot;
* the digest-keyed decode cache dedupes per-engine program decodes;
* ``REPRO_PROFILE=1`` surfaces per-component wall time in session
  stats;
* ``python -m repro.hotpath.build`` degrades gracefully with no
  toolchain.
"""

import warnings

import pytest

import repro.hotpath as hotpath
import repro.hotpath.build as hotpath_build
from repro.hotpath import HOTPATH_ENV, install_hotpath
from repro.hotpath.decode import (
    clear_decode_cache,
    decode_cache_stats,
    decode_ucore_program,
    program_digest,
)
from repro.core.system import FireGuardSystem
from repro.kernels import make_kernel
from repro.sim import SimulationSession
from repro.trace.generator import generate_trace
from repro.trace.profiles import PARSEC_PROFILES
from repro.ucore.core import MicroCore


def build_system(engines: int = 2) -> FireGuardSystem:
    return FireGuardSystem([make_kernel("asan")],
                           engines_per_kernel={"asan": engines})


@pytest.fixture
def no_artifact(monkeypatch):
    """Hotpath probe state with no compiled artifact discoverable —
    deterministic everywhere, including CI hosts that really built
    one.  Probe/warning state is restored to fresh afterwards."""
    hotpath._reset_for_tests()
    monkeypatch.setattr(hotpath, "_probe_compiled", lambda: None)
    monkeypatch.delenv(HOTPATH_ENV, raising=False)
    yield
    hotpath._reset_for_tests()


class TestKernelSelection:
    def test_missing_artifact_warns_exactly_once(self, no_artifact):
        with pytest.warns(RuntimeWarning,
                          match="no compiled hotpath artifact"):
            ucore_mod, ooo_mod, compiled = hotpath.active_kernels()
        assert not compiled
        assert ucore_mod is hotpath._interp_ucore
        assert ooo_mod is hotpath._interp_ooo
        # Second request: same answer, no second warning.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert hotpath.active_kernels() == (
                ucore_mod, ooo_mod, False)

    def test_forced_interpreted_never_warns(self, no_artifact,
                                            monkeypatch):
        monkeypatch.setenv(HOTPATH_ENV, "interpreted")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            ucore_mod, ooo_mod, compiled = hotpath.active_kernels()
        assert (ucore_mod, ooo_mod, compiled) == (
            hotpath._interp_ucore, hotpath._interp_ooo, False)

    def test_install_hotpath_swaps_every_core(self, no_artifact):
        system = build_system(engines=3)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            compiled = install_hotpath(system)
        assert not compiled
        assert system.core._kernel is hotpath._interp_ooo
        for engine in system.engines:
            assert engine._kernel is hotpath._interp_ucore

    def test_compiled_without_artifact_is_bit_identical(
            self, no_artifact):
        trace = generate_trace(PARSEC_PROFILES["swaptions"], seed=13,
                               length=1500)
        reference = SimulationSession(build_system(),
                                      backend="scalar").run(trace)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            session = SimulationSession(build_system(),
                                        backend="compiled")
            result = session.run(trace)
        assert not session.hotpath_compiled
        assert result == reference


class TestDecodeCache:
    def test_engines_share_one_decode(self):
        clear_decode_cache()
        system = build_system(engines=4)
        stats = decode_cache_stats()
        # One assembled asan program, four engines: one miss, the
        # rest served from the cache.
        assert stats["misses"] == 1
        assert stats["hits"] >= 3
        programs = {id(engine._prog) for engine in system.engines}
        assert len(programs) == 1

    def test_digest_is_content_keyed(self):
        system = build_system(engines=1)
        program = system.engines[0].program
        assert program_digest(program) == program_digest(list(program))
        decoded = decode_ucore_program(program)
        assert decode_ucore_program(list(program)) is decoded

    def test_micro_core_flat_stats_roundtrip(self):
        system = build_system(engines=1)
        engine = system.engines[0]
        assert isinstance(engine, MicroCore)
        assert set(engine.stats()) == {
            "instructions", "stall_cycles", "pops", "alerts"}
        engine.stat_instructions = 7
        assert engine.stats()["instructions"] == 7
        engine.reset_stats()
        assert engine.stats()["instructions"] == 0


class TestProfiling:
    def test_profile_buckets_in_stats(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "1")
        trace = generate_trace(PARSEC_PROFILES["swaptions"], seed=13,
                               length=1500)
        session = SimulationSession(build_system())
        session.run(trace)
        stats = session.stats()
        for bucket in ("profile_core", "profile_engines",
                       "profile_fabric", "profile_mapper"):
            assert stats[bucket] >= 0.0
        assert stats["profile_core"] > 0.0
        session.reset()
        assert not any(key.startswith("profile_")
                       for key in session.stats())

    def test_profile_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        session = SimulationSession(build_system())
        assert not any(key.startswith("profile_")
                       for key in session.stats())


class TestBuildCli:
    @pytest.fixture
    def no_toolchain(self, monkeypatch, tmp_path):
        monkeypatch.setattr(hotpath_build, "COMPILED_DIR",
                            tmp_path / "_compiled")
        monkeypatch.setattr(hotpath_build, "_have", lambda name: False)
        return tmp_path / "_compiled"

    def test_no_toolchain_is_graceful(self, no_toolchain, capsys):
        assert hotpath_build.build(require=False) == 0
        assert "no toolchain" in capsys.readouterr().out

    def test_require_fails_without_toolchain(self, no_toolchain):
        assert hotpath_build.build(require=True) == 1
        assert hotpath_build.main(["--require"]) == 1

    def test_stage_sources_copies_kernels(self, no_toolchain):
        hotpath_build.build(require=False)
        for name in hotpath_build.KERNELS:
            assert (no_toolchain / f"{name}.py").exists()
        assert not hotpath_build.artifacts_present()
