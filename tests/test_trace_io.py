"""Tests for trace serialisation."""

import pytest

from repro.errors import TraceError
from repro.trace.attacks import AttackKind, inject_attacks
from repro.trace.generator import generate_trace
from repro.trace.io import load_trace, save_trace
from repro.trace.profiles import PARSEC_PROFILES


@pytest.fixture
def trace():
    return generate_trace(PARSEC_PROFILES["dedup"], seed=31, length=3000)


class TestRoundTrip:
    def test_records_identical(self, trace, tmp_path):
        path = tmp_path / "t.fgt"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert len(loaded.records) == len(trace.records)
        for a, b in zip(trace.records, loaded.records):
            assert a.seq == b.seq and a.pc == b.pc and a.word == b.word
            assert a.iclass is b.iclass
            assert a.dst == b.dst and a.srcs == b.srcs
            assert a.mem_addr == b.mem_addr and a.mem_size == b.mem_size
            assert a.taken == b.taken and a.target == b.target
            assert a.result == b.result

    def test_metadata_preserved(self, trace, tmp_path):
        path = tmp_path / "t.fgt"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.name == trace.name and loaded.seed == trace.seed
        assert loaded.heap_base == trace.heap_base
        assert loaded.warm_end == trace.warm_end
        assert len(loaded.objects) == len(trace.objects)
        for a, b in zip(trace.objects, loaded.objects):
            assert (a.base, a.size, a.alloc_seq, a.free_seq) \
                == (b.base, b.size, b.alloc_seq, b.free_seq)

    def test_attack_ids_preserved(self, trace, tmp_path):
        inject_attacks(trace, AttackKind.OOB_ACCESS, 5)
        path = tmp_path / "t.fgt"
        save_trace(trace, path)
        loaded = load_trace(path)
        orig = {r.seq: r.attack_id for r in trace.records
                if r.attack_id is not None}
        got = {r.seq: r.attack_id for r in loaded.records
               if r.attack_id is not None}
        assert orig == got

    def test_simulation_identical(self, trace, tmp_path):
        from repro.ooo.core import MainCore

        path = tmp_path / "t.fgt"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert MainCore().run_standalone(trace).cycles \
            == MainCore().run_standalone(loaded).cycles

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.fgt"
        path.write_bytes(b"NOTATRACE")
        with pytest.raises(TraceError):
            load_trace(path)

    def test_truncated_rejected(self, trace, tmp_path):
        path = tmp_path / "t.fgt"
        save_trace(trace, path)
        data = path.read_bytes()
        path.write_bytes(data[:len(data) - 10])
        with pytest.raises(TraceError):
            load_trace(path)


class TestLoadErrorReporting:
    """Load errors name the failing record index and file offset (the
    regression for bare-struct-message TraceErrors)."""

    def _data_offset(self, path) -> int:
        from repro.trace.stream import MAGIC
        import struct

        blob = path.read_bytes()
        (header_len,) = struct.unpack(
            "<I", blob[len(MAGIC):len(MAGIC) + 4])
        return len(MAGIC) + 4 + header_len

    def test_truncated_mid_record_names_index_and_offset(
            self, trace, tmp_path):
        from repro.trace.stream import RECORD_BYTES

        path = tmp_path / "t.fgt"
        save_trace(trace, path)
        data_offset = self._data_offset(path)
        # Cut the file in the middle of record 137.
        cut = data_offset + 137 * RECORD_BYTES + 11
        path.write_bytes(path.read_bytes()[:cut])
        with pytest.raises(TraceError) as err:
            load_trace(path)
        message = str(err.value)
        assert "record 137" in message
        assert f"file offset {data_offset + 137 * RECORD_BYTES}" \
            in message
        assert "found 11" in message

    def test_truncated_at_record_boundary(self, trace, tmp_path):
        from repro.trace.stream import RECORD_BYTES

        path = tmp_path / "t.fgt"
        save_trace(trace, path)
        data_offset = self._data_offset(path)
        path.write_bytes(
            path.read_bytes()[:data_offset + 2000 * RECORD_BYTES])
        with pytest.raises(TraceError, match="record 2000"):
            load_trace(path)

    def test_corrupt_record_names_index_and_offset(
            self, trace, tmp_path):
        from repro.trace.stream import RECORD_BYTES

        path = tmp_path / "t.fgt"
        save_trace(trace, path)
        data_offset = self._data_offset(path)
        # Clobber record 42's instruction-class byte (offset 14 in the
        # packed layout) with an out-of-range index.
        blob = bytearray(path.read_bytes())
        blob[data_offset + 42 * RECORD_BYTES + 14] = 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(TraceError) as err:
            load_trace(path)
        message = str(err.value)
        assert "record 42" in message
        assert f"file offset {data_offset + 42 * RECORD_BYTES}" \
            in message

    def test_truncated_header_reported(self, trace, tmp_path):
        path = tmp_path / "t.fgt"
        save_trace(trace, path)
        path.write_bytes(path.read_bytes()[:20])
        with pytest.raises(TraceError, match="truncated header"):
            load_trace(path)

    def test_corrupt_header_json_reported(self, trace, tmp_path):
        path = tmp_path / "t.fgt"
        save_trace(trace, path)
        blob = bytearray(path.read_bytes())
        blob[14] = ord("}")  # break the JSON without touching length
        path.write_bytes(bytes(blob))
        with pytest.raises(TraceError, match="corrupt JSON header"):
            load_trace(path)
