"""Tests for trace serialisation."""

import pytest

from repro.errors import TraceError
from repro.trace.attacks import AttackKind, inject_attacks
from repro.trace.generator import generate_trace
from repro.trace.io import load_trace, save_trace
from repro.trace.profiles import PARSEC_PROFILES


@pytest.fixture
def trace():
    return generate_trace(PARSEC_PROFILES["dedup"], seed=31, length=3000)


class TestRoundTrip:
    def test_records_identical(self, trace, tmp_path):
        path = tmp_path / "t.fgt"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert len(loaded.records) == len(trace.records)
        for a, b in zip(trace.records, loaded.records):
            assert a.seq == b.seq and a.pc == b.pc and a.word == b.word
            assert a.iclass is b.iclass
            assert a.dst == b.dst and a.srcs == b.srcs
            assert a.mem_addr == b.mem_addr and a.mem_size == b.mem_size
            assert a.taken == b.taken and a.target == b.target
            assert a.result == b.result

    def test_metadata_preserved(self, trace, tmp_path):
        path = tmp_path / "t.fgt"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.name == trace.name and loaded.seed == trace.seed
        assert loaded.heap_base == trace.heap_base
        assert loaded.warm_end == trace.warm_end
        assert len(loaded.objects) == len(trace.objects)
        for a, b in zip(trace.objects, loaded.objects):
            assert (a.base, a.size, a.alloc_seq, a.free_seq) \
                == (b.base, b.size, b.alloc_seq, b.free_seq)

    def test_attack_ids_preserved(self, trace, tmp_path):
        inject_attacks(trace, AttackKind.OOB_ACCESS, 5)
        path = tmp_path / "t.fgt"
        save_trace(trace, path)
        loaded = load_trace(path)
        orig = {r.seq: r.attack_id for r in trace.records
                if r.attack_id is not None}
        got = {r.seq: r.attack_id for r in loaded.records
               if r.attack_id is not None}
        assert orig == got

    def test_simulation_identical(self, trace, tmp_path):
        from repro.ooo.core import MainCore

        path = tmp_path / "t.fgt"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert MainCore().run_standalone(trace).cycles \
            == MainCore().run_standalone(loaded).cycles

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.fgt"
        path.write_bytes(b"NOTATRACE")
        with pytest.raises(TraceError):
            load_trace(path)

    def test_truncated_rejected(self, trace, tmp_path):
        path = tmp_path / "t.fgt"
        save_trace(trace, path)
        data = path.read_bytes()
        path.write_bytes(data[:len(data) - 10])
        with pytest.raises(TraceError):
            load_trace(path)
