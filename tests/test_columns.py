"""Property tests for the columnar FGTRACE1 codec.

The vector backend trusts :mod:`repro.trace.columns` to be a
bit-identical second implementation of the scalar record codec in
:mod:`repro.trace.stream`.  These tests pin that equivalence with
hypothesis: arbitrary in-range records must survive
records → columns → bytes → columns → records unchanged, the packed
bytes must equal ``pack_record`` applied per row, and every sentinel
encoding (``mem_addr`` ``NO_ADDR``, ``attack_id``/``dst`` ``-1``,
``srcs`` truncation) must round-trip through both codecs identically.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TraceError
from repro.isa.opcodes import InstrClass
from repro.trace.record import InstrRecord
from repro.trace.stream import (
    NO_ADDR,
    RECORD_BYTES,
    pack_record,
    unpack_record,
)
from repro.utils.npcompat import HAVE_NUMPY

pytestmark = pytest.mark.skipif(
    not HAVE_NUMPY, reason="columnar codec requires numpy")

if HAVE_NUMPY:
    from repro.trace.columns import (
        CLASS_BY_INDEX,
        NUM_CLASSES,
        RECORD_DTYPE,
        RecordColumns,
        iter_trace_columns,
    )

U64 = st.integers(min_value=0, max_value=(1 << 64) - 1)
U32 = st.integers(min_value=0, max_value=(1 << 32) - 1)
U16 = st.integers(min_value=0, max_value=(1 << 16) - 1)
U8 = st.integers(min_value=0, max_value=255)

records_strategy = st.builds(
    InstrRecord,
    seq=st.just(0),  # assigned by decode position, not encoded
    pc=U64,
    word=U32,
    opcode=U8,
    funct3=st.integers(min_value=0, max_value=7),
    iclass=st.sampled_from(list(InstrClass)),
    dst=st.one_of(st.none(), st.integers(min_value=0, max_value=31)),
    srcs=st.lists(U8, max_size=2).map(tuple),
    mem_addr=st.one_of(
        st.none(),
        # NO_ADDR (all-ones) is the None sentinel; real addresses stop
        # one short of it.
        st.integers(min_value=0, max_value=NO_ADDR - 1)),
    mem_size=U16,
    taken=st.booleans(),
    target=U64,
    result=U64,
    attack_id=st.one_of(
        st.none(), st.integers(min_value=0, max_value=(1 << 31) - 1)),
)

record_lists = st.lists(records_strategy, max_size=40)


def assert_records_equal(decoded, originals, start_seq=0):
    assert len(decoded) == len(originals)
    for index, (got, want) in enumerate(zip(decoded, originals)):
        assert got.seq == start_seq + index
        for field in ("pc", "word", "opcode", "funct3", "iclass",
                      "dst", "srcs", "mem_addr", "mem_size", "taken",
                      "target", "result", "attack_id"):
            assert getattr(got, field) == getattr(want, field), (
                f"row {index} field {field}")


class TestLayout:
    def test_dtype_matches_scalar_record_size(self):
        assert RECORD_DTYPE.itemsize == RECORD_BYTES

    def test_dtype_has_no_padding(self):
        total = sum(RECORD_DTYPE[name].itemsize
                    for name in RECORD_DTYPE.names)
        assert total == RECORD_DTYPE.itemsize

    def test_class_table_matches_enum(self):
        assert CLASS_BY_INDEX == tuple(InstrClass)
        assert NUM_CLASSES == len(InstrClass)


class TestRoundTrip:
    @settings(max_examples=200)
    @given(record_lists)
    def test_records_to_columns_and_back(self, records):
        cols = RecordColumns.from_records(records)
        assert len(cols) == len(records)
        assert_records_equal(cols.to_records(), records)

    @settings(max_examples=200)
    @given(record_lists)
    def test_to_bytes_matches_scalar_encoder(self, records):
        cols = RecordColumns.from_records(records)
        assert cols.to_bytes() == b"".join(
            pack_record(rec) for rec in records)

    @settings(max_examples=100)
    @given(record_lists)
    def test_from_bytes_matches_scalar_decoder(self, records):
        blob = b"".join(pack_record(rec) for rec in records)
        cols = RecordColumns.from_bytes(blob)
        scalar = [unpack_record(blob[i * RECORD_BYTES:
                                     (i + 1) * RECORD_BYTES], i)
                  for i in range(len(records))]
        assert_records_equal(cols.to_records(), scalar)

    @settings(max_examples=50)
    @given(record_lists, st.integers(min_value=0, max_value=1 << 40))
    def test_start_seq_offsets_every_row(self, records, start_seq):
        cols = RecordColumns.from_records(records, start_seq)
        assert cols.start_seq == start_seq
        assert_records_equal(cols.to_records(), records, start_seq)

    def test_empty_chunk(self):
        cols = RecordColumns.from_records([])
        assert len(cols) == 0
        assert cols.to_records() == []
        assert cols.to_bytes() == b""


class TestSentinels:
    """The three sentinel encodings, pinned explicitly (hypothesis
    covers them statistically; these make the contract readable)."""

    def base_record(self, **overrides):
        fields = dict(seq=0, pc=0x1000, word=0x13, opcode=0x13,
                      funct3=0, iclass=InstrClass.INT_ALU)
        fields.update(overrides)
        return InstrRecord(**fields)

    def one_row(self, record):
        return RecordColumns.from_records([record])

    def test_no_addr_sentinel(self):
        cols = self.one_row(self.base_record(mem_addr=None))
        assert int(cols.mem_addr[0]) == NO_ADDR
        assert cols.to_records()[0].mem_addr is None
        # The largest real address survives (off-by-one guard).
        cols = self.one_row(self.base_record(mem_addr=NO_ADDR - 1))
        assert cols.to_records()[0].mem_addr == NO_ADDR - 1

    def test_attack_id_sentinel(self):
        cols = self.one_row(self.base_record(attack_id=None))
        assert int(cols.attack_id[0]) == -1
        assert cols.to_records()[0].attack_id is None
        cols = self.one_row(self.base_record(attack_id=0))
        assert cols.to_records()[0].attack_id == 0

    def test_dst_sentinel(self):
        cols = self.one_row(self.base_record(dst=None))
        assert int(cols.data["dst"][0]) == -1
        assert cols.to_records()[0].dst is None
        cols = self.one_row(self.base_record(dst=0))
        assert cols.to_records()[0].dst == 0

    def test_srcs_truncation(self):
        for srcs in ((), (7,), (7, 9)):
            cols = self.one_row(self.base_record(srcs=srcs))
            assert cols.to_records()[0].srcs == srcs


class TestCorruption:
    def test_misaligned_buffer_rejected(self):
        with pytest.raises(TraceError):
            RecordColumns.from_bytes(b"\x00" * (RECORD_BYTES + 1))

    def test_bad_class_code_names_row(self):
        records = [InstrRecord(seq=i, pc=0x1000 + i, word=0x13,
                               opcode=0x13, funct3=0,
                               iclass=InstrClass.INT_ALU)
                   for i in range(4)]
        blob = bytearray(b"".join(pack_record(r) for r in records))
        offset = 2 * RECORD_BYTES + RECORD_DTYPE.fields["iclass"][1]
        blob[offset] = NUM_CLASSES  # first invalid code, row 2
        cols = RecordColumns.from_bytes(bytes(blob), start_seq=100)
        assert cols.first_bad_class_index() == 2
        with pytest.raises(TraceError, match="record 102"):
            cols.to_records()

    def test_clean_chunk_reports_no_bad_row(self):
        cols = RecordColumns.from_records(
            [InstrRecord(seq=0, pc=0, word=0, opcode=0, funct3=0,
                         iclass=InstrClass.INT_ALU)])
        assert cols.first_bad_class_index() == -1


class TestTraceIteration:
    def test_iter_trace_columns_covers_whole_trace(self):
        from repro.trace.generator import generate_trace
        from repro.trace.profiles import PARSEC_PROFILES

        trace = generate_trace(PARSEC_PROFILES["swaptions"], seed=7,
                               length=3000)
        chunks = list(iter_trace_columns(trace, chunk_records=256))
        assert sum(len(c) for c in chunks) == len(trace.records)
        assert [c.start_seq for c in chunks] == list(
            range(0, len(trace.records), 256))
        rebuilt = [rec for chunk in chunks
                   for rec in chunk.to_records()]
        assert_records_equal(rebuilt, trace.records)
