"""The distributed execution fabric: wire protocol, fleet-vs-serial
differential identity, worker-death recovery, heartbeat eviction,
master restart over a warm store, and cancellation over the wire."""

import contextlib
import os
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.errors import FabricError, RunCancelled
from repro.fabric import (
    Connection,
    FabricMaster,
    FabricWorker,
    PROTO_VERSION,
    parse_address,
)
from repro.runner import RunSpec, simulations_executed
from repro.runner import worker as runner_worker
from repro.service import Client, ResultStore
from repro.service.serialization import spec_to_dict

LEN = 1200

REPO_ROOT = Path(__file__).resolve().parents[1]


def grid():
    return [RunSpec(benchmark=bench, kernels=kset, length=LEN)
            for bench in ("swaptions", "dedup")
            for kset in (("pmc",), ("asan", "pmc"))]


def serial_records(specs):
    with Client(workers=1, store=False, cache=False) as client:
        return client.run(specs)


@contextlib.contextmanager
def fleet(master, count, store):
    """``count`` in-process workers attached to ``master`` (the
    subprocess path is exercised separately by the kill test)."""
    workers = [FabricWorker(master.address, store=store)
               for _ in range(count)]
    threads = [threading.Thread(target=worker.run, daemon=True,
                                name=f"test-worker-{i}")
               for i, worker in enumerate(workers)]
    for thread in threads:
        thread.start()
    try:
        yield workers
    finally:
        for worker in workers:
            worker.stop()
        for thread in threads:
            thread.join(timeout=30)


def wait_for(predicate, timeout=15.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestProtocol:
    def test_parse_address(self):
        assert parse_address("127.0.0.1:7951") == ("127.0.0.1", 7951)
        for bad in ("", "nohost", ":7951", "host:", "host:seven"):
            with pytest.raises(FabricError):
                parse_address(bad)

    def test_frame_round_trip_and_clean_eof(self):
        left_sock, right_sock = socket.socketpair()
        left, right = Connection(left_sock), Connection(right_sock)
        message = {"type": "x", "nested": {"b": [1, 2], "a": None}}
        left.send(message)
        assert right.recv(timeout=5) == message
        left.close()
        assert right.recv(timeout=5) is None  # EOF at frame boundary
        right.close()

    def test_untyped_frame_rejected(self):
        left_sock, right_sock = socket.socketpair()
        left, right = Connection(left_sock), Connection(right_sock)
        left.send({"no_type_field": 1})
        with pytest.raises(FabricError, match="typed"):
            right.recv(timeout=5)
        left.close()
        right.close()

    def test_master_refuses_bad_proto_and_unknown_types(self):
        with FabricMaster(store=False) as master:
            with Connection.connect(master.host, master.port) as conn:
                with pytest.raises(FabricError, match="protocol"):
                    conn.request({"type": "hello", "role": "worker",
                                  "proto": PROTO_VERSION + 1})
                conn.request({"type": "hello", "role": "client",
                              "proto": PROTO_VERSION})
                with pytest.raises(FabricError, match="unknown"):
                    conn.request({"type": "bogus"})


class TestFleetDifferentialIdentity:
    def test_two_worker_fleet_matches_serial(self):
        """Acceptance: a master + 2 workers produce records
        bit-identical to the serial in-process path."""
        specs = grid()
        expected = serial_records(specs)
        runner_worker.clear_caches()
        with FabricMaster(store=False) as master:
            with fleet(master, 2, store=False):
                with Client(fabric=master.address, store=False,
                            cache=False) as client:
                    records = client.run(specs)
                    assert client.stats.executed == len(specs)
            stats = master.stats()
        assert records == expected
        assert stats["completed"] == len(specs)
        assert stats["workers_registered"] == 2

    def test_fleet_write_back_reaches_local_clients(self, tmp_path):
        """Records simulated on the fleet land in the shared store and
        answer a plain local client afterwards."""
        spec = grid()[0]
        store_dir = tmp_path / "store"
        with FabricMaster(store=store_dir) as master:
            with fleet(master, 1, store=ResultStore(store_dir)):
                with Client(fabric=master.address, store=False,
                            cache=False) as client:
                    expected = client.run_one(spec)
        runner_worker.clear_caches()
        with Client(workers=1, store=store_dir, cache=False) as local:
            assert local.run_one(spec) == expected
            assert local.stats.executed == 0


class TestFaultInjection:
    def test_killed_worker_mid_lease_re_leases_bit_identical(self):
        """Acceptance: a worker hard-killed after accepting a lease is
        evicted, its lease re-queued, and the final records are still
        bit-identical to the serial path."""
        specs = grid()
        expected = serial_records(specs)
        runner_worker.clear_caches()
        with FabricMaster(store=False, lease_ttl=10.0) as master:
            with Client(fabric=master.address, store=False,
                        cache=False) as client:
                handles = client.submit_many(specs)
                env = dict(os.environ)
                env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
                    os.pathsep + env["PYTHONPATH"]
                    if env.get("PYTHONPATH") else "")
                env.pop("REPRO_RESULT_STORE", None)
                doomed = subprocess.run(
                    [sys.executable, "-m", "repro.fabric", "worker",
                     master.address, "--die-after-leases", "1"],
                    env=env, cwd=REPO_ROOT, timeout=180)
                assert doomed.returncode == 17  # died as injected
                assert wait_for(lambda: master.stats()
                                ["workers_evicted"] >= 1)
                with fleet(master, 1, store=False):
                    records = [h.result(timeout=600) for h in handles]
            stats = master.stats()
        assert records == expected
        assert stats["workers_evicted"] >= 1
        assert stats["retries"] >= 1
        assert stats["completed"] == len(specs)

    def test_heartbeat_timeout_evicts_silent_worker(self):
        """A worker that leases a task and then goes silent (wedged
        but connected) is reaped after the lease TTL and its task goes
        back to the head of the queue."""
        spec = grid()[0]
        with FabricMaster(store=False, lease_ttl=0.5) as master:
            with Connection.connect(master.host, master.port) as cli:
                cli.request({"type": "hello", "role": "client",
                             "proto": PROTO_VERSION})
                cli.request({"type": "submit", "specs": [
                    {"key": spec.cache_key(),
                     "spec": spec_to_dict(spec)}]})
                silent = Connection.connect(master.host, master.port)
                try:
                    hello = silent.request(
                        {"type": "hello", "role": "worker",
                         "pid": 0, "proto": PROTO_VERSION})
                    lease = silent.request(
                        {"type": "lease",
                         "worker_id": hello["worker_id"]})
                    assert lease["lease"]["key"] == spec.cache_key()
                    # No heartbeats from here on; connection stays
                    # open, so only the reaper can notice.

                    def evicted():
                        return cli.request({"type": "stats"})["stats"][
                            "workers_evicted"] >= 1

                    assert wait_for(evicted, timeout=15.0)
                    stats = cli.request({"type": "stats"})["stats"]
                    assert stats["tasks"].get("queued") == 1
                    assert stats["retries"] == 1
                finally:
                    silent.close()

    def test_deterministic_failure_is_not_retried(self, monkeypatch):
        """A spec that raises in execute_spec would raise identically
        on any worker: the task fails once, with the worker's error,
        and is never re-leased."""
        import repro.fabric.worker as worker_mod

        def boom(spec, store=None, cancel=None):
            raise ValueError("deterministic kaboom")

        monkeypatch.setattr(worker_mod, "execute_spec", boom)
        with FabricMaster(store=False) as master:
            with fleet(master, 1, store=False):
                with Client(fabric=master.address, store=False,
                            cache=False) as client:
                    handle = client.submit(grid()[0])
                    with pytest.raises(FabricError, match="kaboom"):
                        handle.result(timeout=60)
            stats = master.stats()
        assert stats["failed"] == 1
        assert stats["retries"] == 0


class TestWarmMasterRestart:
    def test_restart_over_warm_store_serves_without_leases(
            self, tmp_path):
        """Acceptance: a restarted master over the shared store
        re-serves a whole grid at submit time — zero leases, zero
        simulations, bit-identical records — with not one worker
        attached."""
        specs = grid()
        store_dir = tmp_path / "store"
        with FabricMaster(store=store_dir) as master:
            with fleet(master, 2, store=ResultStore(store_dir)):
                with Client(fabric=master.address, store=False,
                            cache=False) as client:
                    first = client.run(specs)
        runner_worker.clear_caches()
        before = simulations_executed()
        with FabricMaster(store=store_dir) as reborn:
            with Client(fabric=reborn.address, store=False,
                        cache=False) as client:
                second = client.run(specs)
            stats = reborn.stats()
        assert second == first
        assert stats["leases_granted"] == 0
        assert stats["store_hits"] == len(specs)
        assert stats["store"]["entries"] == len(specs)
        assert simulations_executed() == before

    def test_require_store_hit_enforced_by_fleet(self, tmp_path,
                                                 monkeypatch):
        """Under REPRO_REQUIRE_STORE_HIT=1 a fabric client defers
        enforcement to the fleet: the master's store read-through
        answers warm specs without the client-side refusal."""
        specs = grid()[:2]
        store_dir = tmp_path / "store"
        with FabricMaster(store=store_dir) as master:
            with fleet(master, 1, store=ResultStore(store_dir)):
                with Client(fabric=master.address, store=False,
                            cache=False) as cold:
                    first = cold.run(specs)
        runner_worker.clear_caches()
        monkeypatch.setenv("REPRO_REQUIRE_STORE_HIT", "1")
        with FabricMaster(store=store_dir) as reborn:
            with Client(fabric=reborn.address, store=False,
                        cache=False) as warm:
                assert warm.run(specs) == first
            assert reborn.stats()["leases_granted"] == 0


class TestCancellationOverTheWire:
    def test_cancel_queued_task_on_fleet(self):
        """With no workers attached the task stays queued; cancel
        resolves it instantly on the master and the handle raises."""
        with FabricMaster(store=False) as master:
            with Client(fabric=master.address, store=False,
                        cache=False) as client:
                handle = client.submit(grid()[0])
                assert handle.cancel()
                with pytest.raises(RunCancelled):
                    handle.result(timeout=30)
                assert handle.cancelled()
            assert master.stats()["cancelled"] == 1

    def test_cancelled_fleet_task_can_be_resubmitted(self):
        """A resubmission after a fleet-side cancellation gets a fresh
        retry budget and a record."""
        spec = grid()[0]
        with FabricMaster(store=False) as master:
            with Client(fabric=master.address, store=False,
                        cache=False) as client:
                doomed = client.submit(spec)
                doomed.cancel()
                with pytest.raises(RunCancelled):
                    doomed.result(timeout=30)
                with fleet(master, 1, store=False):
                    record = client.submit(spec).result(timeout=600)
        assert record.result.cycles > 0
