"""Unit tests for the branch-prediction substrate."""

import pytest

from repro.branch.btb import Btb
from repro.branch.predictor import FrontEndPredictor
from repro.branch.ras import ReturnAddressStack
from repro.branch.tage import TageParams, TagePredictor
from repro.errors import ConfigError
from repro.isa.opcodes import InstrClass
from repro.utils.rng import DeterministicRng


class TestTage:
    def test_learns_always_taken(self):
        t = TagePredictor()
        for _ in range(64):
            t.update(0x4000, True)
        assert t.predict(0x4000)

    def test_learns_always_not_taken(self):
        t = TagePredictor()
        for _ in range(64):
            t.update(0x4000, False)
        assert not t.predict(0x4000)

    def test_biased_site_accuracy(self):
        t = TagePredictor()
        rng = DeterministicRng(3)
        wrong = 0
        for i in range(4000):
            taken = rng.chance(0.97)
            if t.predict(0x1000) != taken:
                wrong += 1
            t.update(0x1000, taken)
        assert wrong / 4000 < 0.08

    def test_learns_loop_pattern(self):
        # taken 7, not-taken 1, repeated: TAGE history should learn it.
        t = TagePredictor()
        pattern = [True] * 7 + [False]
        wrong = 0
        for i in range(4000):
            taken = pattern[i % 8]
            if i > 1000 and t.predict(0x2000) != taken:
                wrong += 1
            t.update(0x2000, taken)
        assert wrong / 3000 < 0.30  # far better than 1/8 always-taken miss

    def test_distinct_sites_do_not_interfere_much(self):
        t = TagePredictor()
        for _ in range(128):
            t.update(0x1000, True)
            t.update(0x2000, False)
        assert t.predict(0x1000)
        assert not t.predict(0x2000)

    def test_geometric_history_lengths(self):
        lengths = TageParams().lengths()
        assert len(lengths) == 6
        assert lengths[0] == 2 and lengths[-1] == 64
        assert all(b > a for a, b in zip(lengths, lengths[1:]))

    def test_too_few_tables_rejected(self):
        with pytest.raises(ConfigError):
            TageParams(num_tables=1).lengths()

    def test_mispredict_rate_stat(self):
        t = TagePredictor()
        for _ in range(10):
            t.predict(0x10)
            t.update(0x10, True)
        assert 0.0 <= t.mispredict_rate <= 1.0


class TestBtb:
    def test_miss_then_hit(self):
        b = Btb(16)
        assert b.predict(0x100) is None
        b.update(0x100, 0x2000)
        assert b.predict(0x100) == 0x2000

    def test_aliasing_overwrites(self):
        b = Btb(16)
        b.update(0x100, 0x1)
        b.update(0x100 + 16 * 4, 0x2)  # same index, different tag
        assert b.predict(0x100) is None

    def test_power_of_two_enforced(self):
        with pytest.raises(ConfigError):
            Btb(12)


class TestRas:
    def test_lifo_order(self):
        r = ReturnAddressStack(8)
        r.push(0x10)
        r.push(0x20)
        assert r.pop() == 0x20
        assert r.pop() == 0x10

    def test_underflow_returns_none(self):
        r = ReturnAddressStack(4)
        assert r.pop() is None
        assert r.stat_underflows == 1

    def test_overflow_drops_oldest(self):
        r = ReturnAddressStack(2)
        r.push(1)
        r.push(2)
        r.push(3)
        assert r.stat_overflows == 1
        assert r.pop() == 3
        assert r.pop() == 2
        assert r.pop() is None

    def test_depth(self):
        r = ReturnAddressStack(4)
        r.push(1)
        assert r.depth == 1


class TestFrontEndPredictor:
    def test_call_ret_pairs_predict_perfectly(self):
        p = FrontEndPredictor()
        stack = []
        wrong = 0
        pc = 0x1000
        for i in range(200):
            ret_pc = pc + 4
            wrong += p.predict_and_train(InstrClass.CALL, pc, True, 0x9000)
            stack.append(ret_pc)
            wrong += p.predict_and_train(InstrClass.RET, 0x9100, True,
                                         stack.pop())
            pc += 8
        assert wrong == 0

    def test_hijacked_return_mispredicts(self):
        p = FrontEndPredictor()
        p.predict_and_train(InstrClass.CALL, 0x100, True, 0x900)
        # RAS predicts 0x104; the architectural target is hijacked.
        assert p.predict_and_train(InstrClass.RET, 0x904, True, 0xDEAD)

    def test_stable_indirect_jump_learns(self):
        p = FrontEndPredictor()
        assert p.predict_and_train(InstrClass.JUMP, 0x40, True, 0x800)
        assert not p.predict_and_train(InstrClass.JUMP, 0x40, True, 0x800)

    def test_branch_training(self):
        p = FrontEndPredictor()
        for _ in range(64):
            p.predict_and_train(InstrClass.BRANCH, 0x700, True, 0x100)
        assert not p.predict_and_train(InstrClass.BRANCH, 0x700, True,
                                       0x100)

    def test_mispredict_rate_bounds(self):
        p = FrontEndPredictor()
        rng = DeterministicRng(5)
        for _ in range(500):
            p.predict_and_train(InstrClass.BRANCH, 0x10, rng.chance(0.9),
                                0x20)
        assert 0.0 <= p.mispredict_rate <= 0.5
