"""Tests for the superscalar mapper option (§III-C footnote 5)."""

import pytest

from repro.core.config import FireGuardConfig
from repro.core.fabric import MulticastChannel
from repro.core.msgqueue import MessageQueue
from repro.core.packet import Packet
from repro.core.system import FireGuardSystem
from repro.errors import ConfigError
from repro.isa.decode import encode_instr
from repro.isa.opcodes import InstrClass
from repro.kernels import make_kernel
from repro.trace.generator import generate_trace
from repro.trace.profiles import PARSEC_PROFILES
from repro.trace.record import InstrRecord


def packet(seq=0):
    word = encode_instr("ld", rd=5, rs1=8)
    rec = InstrRecord(seq=seq, pc=0x100, word=word, opcode=0x03, funct3=3,
                      iclass=InstrClass.LOAD, mem_addr=0x1000, mem_size=8)
    return Packet(seq=seq, gid=1, record=rec, commit_ns=0.0)


class TestWideMulticast:
    def _queues(self, n=4, depth=4):
        return [MessageQueue(depth) for _ in range(n)]

    def test_width_validated(self):
        with pytest.raises(ConfigError):
            MulticastChannel(self._queues(), width=0)

    def test_two_disjoint_multicasts_same_cycle(self):
        queues = self._queues()
        mc = MulticastChannel(queues, width=2)
        assert mc.submit(packet(0), 0b0001)
        assert mc.submit(packet(1), 0b0010)
        assert mc.busy
        mc.step(0)
        assert len(queues[0]) == 1 and len(queues[1]) == 1
        assert not mc.draining

    def test_same_target_conflicts_serialise(self):
        queues = self._queues()
        mc = MulticastChannel(queues, width=2)
        mc.submit(packet(0), 0b0001)
        mc.submit(packet(1), 0b0001)
        mc.step(0)
        assert len(queues[0]) == 1          # second waits a cycle
        assert mc.stat_port_conflicts == 1
        mc.step(1)
        assert len(queues[0]) == 2

    def test_blocked_head_blocks_tail(self):
        queues = self._queues(depth=1)
        queues[0].push(packet(9))           # target full
        mc = MulticastChannel(queues, width=2)
        mc.submit(packet(0), 0b0001)
        mc.submit(packet(1), 0b0010)
        mc.step(0)
        # In-order delivery: packet 1 must not overtake packet 0.
        assert len(queues[1]) == 0

    def test_width_one_matches_scalar_behaviour(self):
        queues = self._queues()
        mc = MulticastChannel(queues, width=1)
        assert mc.submit(packet(0), 0b0001)
        assert not mc.submit(packet(1), 0b0010)
        mc.step(0)
        assert mc.submit(packet(1), 0b0010)


class TestSystemMapperWidth:
    def test_superscalar_mapper_runs(self):
        trace = generate_trace(PARSEC_PROFILES["swaptions"], seed=17,
                               length=4000)
        config = FireGuardConfig(mapper_width=2)
        result = FireGuardSystem([make_kernel("pmc")],
                                 config=config).run(trace)
        assert result.committed == len(trace.records)
        assert result.packets_delivered == result.packets_filtered

    def test_wider_mapper_never_slower(self):
        trace = generate_trace(PARSEC_PROFILES["x264"], seed=17,
                               length=5000)
        scalar = FireGuardSystem(
            [make_kernel("asan")],
            config=FireGuardConfig(mapper_width=1)).run(trace)
        wide = FireGuardSystem(
            [make_kernel("asan")],
            config=FireGuardConfig(mapper_width=2)).run(trace)
        assert wide.cycles <= scalar.cycles * 1.01
