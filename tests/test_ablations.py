"""Smoke tests for the ablation harness (reduced scale)."""

from repro.experiments import ablations

BENCH = ("swaptions",)


class TestAblations:
    def test_isax_ablation_rows(self):
        rows = ablations.isax_ablation(BENCH)
        settings = {r.setting for r in rows}
        assert settings == {"ma_stage", "post_commit"}
        by = {r.setting: r.geomean_slowdown for r in rows}
        assert by["post_commit"] >= by["ma_stage"] - 1e-9

    def test_mapper_width_rows(self):
        rows = ablations.mapper_width_ablation(BENCH)
        assert [r.setting for r in rows] == ["1", "2", "4"]
        # The scalar mapper is nearly free on a 4-wide core.
        by = {r.setting: r.geomean_slowdown for r in rows}
        assert abs(by["1"] - by["4"]) < 0.15

    def test_fifo_depth_rows(self):
        rows = ablations.fifo_depth_ablation(BENCH)
        by = {r.setting: r.geomean_slowdown for r in rows}
        assert by["4"] >= by["64"] - 0.05

    def test_registry_complete(self):
        assert set(ablations.ABLATIONS) == {
            "isax", "mapper_width", "fifo_depth", "cdc_depth",
            "msgq_depth", "block_size"}

    def test_row_render(self):
        rows = ablations.cdc_depth_ablation(BENCH)
        for row in rows:
            rendered = row.as_row()
            assert len(rendered) == 3
            assert float(rendered[2]) > 0
