"""End-to-end ground-truth oracle over a fixed-seed fuzz corpus.

The fuzzer promises exact per-attack ground truth; the detectors
promise to catch their own attack kind.  These tests run a small
fixed-seed corpus through the production Client/RunSpec path and
join the two: every injected attack must be detected by its matching
kernel, attack-free campaigns must stay perfectly silent even with
all four kernels watching, and the whole pipeline — corpus
generation through executed RunRecord bytes — must be reproducible
across processes under any PYTHONHASHSEED.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.coverage import MATCHING_KERNEL
from repro.experiments.fuzz import case_spec, run, write_artifact
from repro.kernels import KERNELS
from repro.runner import RunSpec
from repro.service import Client
from repro.trace.attacks import AttackKind
from repro.trace.fuzz import FuzzConfig, fuzz_corpus

REPO = Path(__file__).resolve().parent.parent

#: Small but complete: 8 campaigns = 6 armed, every kind primary at
#: least once, 2 attack-free controls.
CONFIG = FuzzConfig(campaigns=8, min_phase=700, max_phase=1100)


@pytest.fixture(scope="module")
def corpus():
    return fuzz_corpus(CONFIG)


@pytest.fixture(scope="module")
def coverage():
    matrix, cases, digest = run(CONFIG, client=Client(cache=False))
    return matrix, cases, digest


class TestDetectionOracle:
    def test_every_kind_detected_by_matching_kernel(self, coverage):
        matrix, _, _ = coverage
        assert matrix.gaps() == [], \
            f"undetected matching cells: {matrix.gaps()}"
        covered = matrix.kind_families()
        for kind in AttackKind:
            assert covered[kind.name], \
                f"{kind.name} never fully detected anywhere"

    def test_no_false_positives_anywhere(self, coverage):
        matrix, _, _ = coverage
        assert matrix.total_false_positives() == 0
        assert matrix.false_positives == {}
        assert matrix.ok()

    def test_matrix_accounts_every_run(self, coverage):
        matrix, cases, _ = coverage
        assert matrix.runs == len(cases) * len(KERNELS)
        assert matrix.clean_runs \
            == sum(c.attack_free for c in cases) * len(KERNELS)

    def test_artifact_document_shape(self, coverage, tmp_path):
        import json

        matrix, _, digest = coverage
        path = write_artifact(matrix, CONFIG, digest,
                              tmp_path / "COVERAGE_fuzz.json")
        doc = json.loads(path.read_text())
        assert doc["ok"] is True
        assert doc["corpus_digest"] == digest
        assert doc["seed"] == CONFIG.seed
        assert doc["gaps"] == []
        assert set(doc["kind_families"]) \
            == {kind.name for kind in AttackKind}
        assert all(cell["detected"] <= cell["injected"]
                   for cell in doc["cells"])

    def test_attack_free_silent_under_all_kernels(self, corpus):
        client = Client(cache=False)
        clean = [c for c in corpus if c.attack_free]
        assert clean, "corpus lost its attack-free controls"
        specs = [RunSpec(benchmark=c.scenario.name,
                         kernels=tuple(sorted(KERNELS)),
                         engines_per_kernel=2,
                         seed=c.seed,
                         length=c.scenario.total_length(),
                         scenario=c.scenario,
                         stream=True,
                         need_baseline=False)
                 for c in clean]
        for case, record in zip(clean, client.run(specs)):
            assert record.injected_attacks == 0
            assert record.result.detections == {}, \
                f"{case.scenario.name} raised ghost detections"
            assert record.result.alerts == [], \
                f"{case.scenario.name} raised ghost alerts"

    def test_per_kind_attribution_is_exact(self, corpus):
        # Beyond aggregate counts: each matching-kernel run detects
        # exactly its ground-truth id set for that kind — attribution
        # never smears one attack's detection onto another id.
        client = Client(cache=False)
        for case in corpus:
            if case.attack_free:
                continue
            sites = case.ground_truth()
            kinds = {s.kind for s in sites}
            for kind in sorted(kinds, key=lambda k: k.name):
                kernel = MATCHING_KERNEL[kind]
                [record] = client.run([case_spec(case, kernel)])
                want = {s.attack_id for s in sites if s.kind is kind}
                got = set(record.result.detections) & {
                    s.attack_id for s in sites if s.kind is kind}
                assert got == want, (
                    f"{case.scenario.name} x {kernel}: detected "
                    f"{sorted(got)}, ground truth {sorted(want)}")


_STABILITY_SCRIPT = """
import hashlib, sys
sys.path.insert(0, {src!r})
from repro.runner.worker import execute_spec
from repro.service import dumps_record
from repro.trace.fuzz import FuzzConfig, fuzz_corpus, corpus_digest
from repro.experiments.fuzz import case_spec

config = FuzzConfig(campaigns=4, min_phase=700, max_phase=900)
cases = fuzz_corpus(config)
print(corpus_digest(cases))
record = execute_spec(case_spec(cases[0], "shadow_stack"),
                      store=False)
print(hashlib.sha256(dumps_record(record)).hexdigest())
"""


class TestSeedStability:
    def test_corpus_and_records_stable_across_hash_seeds(self):
        """The same fuzzer seed reproduces the identical corpus digest
        and executed-record bytes in fresh processes under hash-seed
        randomization — nothing in generation, composition or
        execution leaks iteration order."""
        script = _STABILITY_SCRIPT.format(src=str(REPO / "src"))
        outputs = []
        for seed in ("0", "1", "424242"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            env.pop("REPRO_TRACE_LEN", None)
            out = subprocess.run(
                [sys.executable, "-c", script], env=env,
                capture_output=True, text=True, check=True)
            outputs.append(out.stdout)
        assert outputs[0] == outputs[1] == outputs[2]
        assert len(outputs[0].split()) == 2
