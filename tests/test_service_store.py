"""The persistent ResultStore: atomicity, robustness, warm hits."""

import json
import threading
import warnings

import pytest

from repro.errors import StoreError
from repro.runner import RunSpec
from repro.runner import worker as runner_worker
from repro.service import SCHEMA_VERSION, Client, ResultStore, StoreWarning
from test_service_serialization import rich_record

LEN = 1500


def small_specs():
    return [RunSpec(benchmark=bench, kernels=kernels, length=LEN)
            for bench in ("swaptions", "dedup")
            for kernels in (("pmc",), ("asan",))]


class TestBasics:
    def test_put_get_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        record = rich_record()
        key = record.spec.cache_key()
        assert store.get(key) is None
        store.put(key, record)
        assert key in store
        assert store.get(key) == record
        assert list(store.keys()) == [key]
        assert len(store) == 1

    def test_illegal_keys_rejected(self, tmp_path):
        store = ResultStore(tmp_path)
        for bad in ("", "../escape", "a/b", "dot.dot"):
            with pytest.raises(StoreError):
                store.path_for(bad)

    def test_empty_store_is_truthy(self, tmp_path):
        # Regression: `store or None` must never drop an empty store.
        assert bool(ResultStore(tmp_path))


class TestRobustness:
    def _stored(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        record = rich_record()
        key = record.spec.cache_key()
        store.put(key, record)
        return store, record, key

    def test_corrupted_entry_quarantined_with_warning(self, tmp_path):
        store, record, key = self._stored(tmp_path)
        store.path_for(key).write_bytes(b"\x00garbage\xff")
        with pytest.warns(StoreWarning, match="quarantined"):
            assert store.get(key) is None
        # Entry is out of the way, and a re-run can re-store cleanly.
        assert key not in store
        quarantined = list((store.root / "quarantine").iterdir())
        assert len(quarantined) == 1
        store.put(key, record)
        assert store.get(key) == record

    def test_truncated_entry_quarantined(self, tmp_path):
        store, record, key = self._stored(tmp_path)
        data = store.path_for(key).read_bytes()
        store.path_for(key).write_bytes(data[:len(data) // 2])
        with pytest.warns(StoreWarning):
            assert store.get(key) is None
        assert store.quarantined == 1

    def test_wrong_key_content_quarantined(self, tmp_path):
        store, record, key = self._stored(tmp_path)
        other = "0" * 64
        store.path_for(key).replace(store.path_for(other))
        with pytest.warns(StoreWarning):
            assert store.get(other) is None

    def test_schema_mismatch_is_silent_miss_not_quarantine(
            self, tmp_path):
        store, record, key = self._stored(tmp_path)
        payload = json.loads(store.path_for(key).read_bytes())
        payload["schema"] = SCHEMA_VERSION + 7
        store.path_for(key).write_text(json.dumps(payload))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert store.get(key) is None
        assert store.schema_misses == 1
        # The stale entry is left in place and overwritten by a
        # current-schema re-store.
        assert store.path_for(key).exists()
        store.put(key, record)
        assert store.get(key) == record

    def test_concurrent_writers_one_key(self, tmp_path):
        """Racing writers on one key never leave a torn entry."""
        store = ResultStore(tmp_path / "store")
        record = rich_record()
        key = record.spec.cache_key()
        barrier = threading.Barrier(8)
        errors = []

        def write():
            try:
                barrier.wait(timeout=10)
                for _ in range(5):
                    ResultStore(store.root).put(key, record)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=write) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # no quarantine happened
            assert store.get(key) == record
        # No stray temp files left behind.
        assert [p.name for p in store.root.iterdir()
                if p.name.startswith(".tmp-")] == []


class TestIndexAndCompaction:
    def _stored(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        record = rich_record()
        key = record.spec.cache_key()
        store.put(key, record)
        return store, record, key

    def test_count_uses_write_through_index(self, tmp_path):
        store, record, key = self._stored(tmp_path)
        assert store.index_path.exists()
        assert store.count() == 1
        # A second opener of the same directory shares the index.
        assert ResultStore(store.root).count() == 1

    def test_missing_index_rebuilt_from_filesystem(self, tmp_path):
        """A store populated before the index existed (or whose index
        file was deleted) adopts its entries on first open — the JSON
        documents are the ground truth."""
        store, record, key = self._stored(tmp_path)
        store.index_path.unlink()
        fresh = ResultStore(store.root)
        assert fresh.count() == 1
        assert fresh.reindex() == 1

    def test_count_degrades_to_directory_scan(self, tmp_path):
        store, record, key = self._stored(tmp_path)
        store._index_dead = True  # simulate an unusable index file
        assert store.count() == 1
        assert store.get(key) == record

    def test_gc_reclaims_dead_weight_keeps_live(self, tmp_path):
        """Satellite acceptance: gc() removes quarantined corpses,
        abandoned temp files and stale-schema entries; live
        current-schema records are untouched."""
        store, record, key = self._stored(tmp_path)

        # A quarantined corpse (corrupt entry hit by a reader).
        other = "0" * 64
        store.path_for(other).write_bytes(b"\x00garbage")
        with pytest.warns(StoreWarning):
            assert store.get(other) is None
        # A stale-schema entry under another key.
        stale_key = "1" * 64
        payload = json.loads(store.path_for(key).read_bytes())
        payload["schema"] = SCHEMA_VERSION + 7
        store.path_for(stale_key).write_text(json.dumps(payload))
        # An abandoned temp file from a killed writer.
        (store.root / ".tmp-999-0-dead").write_bytes(b"partial")

        summary = store.gc()
        assert summary["kept"] == 1
        assert summary["removed_quarantined"] == 1
        assert summary["removed_stale_schema"] == 1
        assert summary["removed_tmp"] == 1
        assert summary["reclaimed_bytes"] > 0
        assert not (store.root / "quarantine").exists()
        assert not store.path_for(stale_key).exists()
        # The live record survived, and the rebuilt index agrees.
        assert store.get(key) == record
        assert store.count() == 1

    def test_gc_can_keep_stale_schemas(self, tmp_path):
        store, record, key = self._stored(tmp_path)
        stale_key = "2" * 64
        payload = json.loads(store.path_for(key).read_bytes())
        payload["schema"] = SCHEMA_VERSION + 7
        store.path_for(stale_key).write_text(json.dumps(payload))
        summary = store.gc(keep_latest_schema=False)
        assert summary["removed_stale_schema"] == 0
        assert store.path_for(stale_key).exists()


class TestCrossProcessWarmHit:
    def test_workers_2_second_client_simulates_nothing(self, tmp_path):
        """Satellite acceptance: a grid executed by a 2-worker pool
        lands in the store; a fresh 2-worker client answers the same
        grid entirely from disk (zero dispatches), bit-identically."""
        specs = small_specs()
        store_dir = tmp_path / "store"
        runner_worker.clear_caches()
        with Client(workers=2, store=store_dir, cache=False) as cold:
            first = cold.run(specs)
            assert cold.stats.executed == len(specs)
        assert len(ResultStore(store_dir)) == len(specs)

        runner_worker.clear_caches()  # no per-process reuse either
        with Client(workers=2, store=store_dir, cache=False) as warm:
            second = warm.run(specs)
            assert warm.stats.executed == 0
            assert warm.stats.store_hits == len(specs)
        assert second == first

    def test_pool_workers_write_back_reaches_other_clients(
            self, tmp_path):
        """Records simulated inside pool workers are durable: a
        workers=1 client (different process topology) reads them."""
        spec = small_specs()[0]
        store_dir = tmp_path / "store"
        with Client(workers=2, store=store_dir, cache=False) as pool:
            expected = pool.run_one(spec)
        runner_worker.clear_caches()
        with Client(workers=1, store=store_dir, cache=False) as serial:
            assert serial.run_one(spec) == expected
            assert serial.stats.executed == 0
