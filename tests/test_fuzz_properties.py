"""Property tests for workload families and the campaign fuzzer.

The compositor invariants (continuous seqs, balanced call stack,
disjoint heaps, lossless FGTRACE1 round-trip) are pinned for
*hand-written* scenarios in test_scenario.py; here hypothesis drives
the same invariants over the fuzzer's whole input space — arbitrary
seeds and campaign shapes — plus the contracts the fuzzer itself
adds: continuous attack ids, exact ground truth, placement policies,
and in-process corpus determinism.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.isa.opcodes import InstrClass
from repro.trace.attacks import (
    PLACEMENTS,
    AttackKind,
    AttackPlan,
    inject_attacks,
)
from repro.trace.families import (
    FAMILY_KINDS,
    FamilyConfig,
    make_family_scenario,
)
from repro.trace.fuzz import (
    KIND_ORDER,
    FuzzConfig,
    corpus_digest,
    fuzz_case,
    fuzz_corpus,
)
from repro.trace.generator import generate_trace
from repro.trace.io import load_trace, save_trace
from repro.trace.profiles import PARSEC_PROFILES
from repro.trace.scenario import compose_trace


def _walk_call_stack(trace):
    stack = []
    for rec in trace.records:
        if rec.iclass is InstrClass.CALL:
            stack.append(rec.result)
        elif rec.iclass is InstrClass.RET:
            assert stack, f"return at seq {rec.seq} underflows"
            expected = stack.pop()
            if rec.attack_id is None:
                assert rec.target == expected
    return stack


_CONFIGS = st.builds(
    FuzzConfig,
    seed=st.integers(min_value=1, max_value=2**31 - 1),
    campaigns=st.just(8),
    min_phase=st.just(700),
    max_phase=st.integers(min_value=700, max_value=1100),
    max_plans=st.integers(min_value=1, max_value=2),
    attack_free_every=st.sampled_from((0, 3, 4)),
)


class TestCampaignInvariants:
    """The compositor's guarantees hold for every fuzzed campaign."""

    @settings(max_examples=10, deadline=None)
    @given(config=_CONFIGS, index=st.integers(min_value=0, max_value=7))
    def test_composed_campaign_invariants(self, config, index):
        case = fuzz_case(config, index)
        trace, sites = compose_trace(case.scenario, case.seed)

        # Continuous sequence numbers across every phase boundary.
        assert [rec.seq for rec in trace.records] \
            == list(range(len(trace.records)))

        # Balanced call stack, hijacked returns excepted.
        assert _walk_call_stack(trace) == []

        # Heap objects never alias (disjoint per-phase ranges, and
        # synthesized UaF objects live past the workload's heap).
        spans = sorted((o.base, o.end) for o in trace.objects)
        for (_, prev_end), (next_base, _) in zip(spans, spans[1:]):
            assert prev_end <= next_base, "heap objects alias"

        # Attack ids are continuous 0..N-1 even when a plan under-
        # fills, each site's record is tagged with its id, and the
        # ground-truth accessor reproduces the composition exactly.
        assert [s.attack_id for s in sites] == list(range(len(sites)))
        by_seq = {rec.seq: rec for rec in trace.records}
        for site in sites:
            assert by_seq[site.seq].attack_id == site.attack_id
        assert tuple(sites) == case.ground_truth()

        # Attack-free campaigns are actually attack-free.
        if case.attack_free:
            assert sites == []
            assert all(rec.attack_id is None for rec in trace.records)
        else:
            assert sites, "armed campaign composed no attacks"
            assert {s.kind for s in sites} <= case.planned_kinds()

    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(min_value=1, max_value=2**31 - 1))
    def test_fuzzed_scenario_roundtrips_fgtrace1(self, seed, tmp_path_factory):
        config = FuzzConfig(seed=seed, campaigns=4, min_phase=700,
                            max_phase=900)
        case = fuzz_case(config, 0)
        trace, _ = compose_trace(case.scenario, case.seed)
        path = tmp_path_factory.mktemp("fuzz") / "campaign.fgt"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert len(loaded.records) == len(trace.records)
        for a, b in zip(trace.records, loaded.records):
            assert (a.seq, a.pc, a.word, a.iclass, a.mem_addr,
                    a.mem_size, a.taken, a.target, a.result,
                    a.attack_id) \
                == (b.seq, b.pc, b.word, b.iclass, b.mem_addr,
                    b.mem_size, b.taken, b.target, b.result,
                    b.attack_id)


class TestCorpusDeterminism:
    def test_corpus_regenerates_identically(self):
        config = FuzzConfig(campaigns=6, max_phase=1000)
        first = fuzz_corpus(config)
        second = fuzz_corpus(config)
        assert first == second
        assert corpus_digest(first) == corpus_digest(second)

    def test_campaigns_are_independent_forks(self):
        # Any slice regenerates without the rest of the corpus.
        config = FuzzConfig(campaigns=6, max_phase=1000)
        corpus = fuzz_corpus(config)
        assert fuzz_case(config, 3) == corpus[3]

    def test_seed_changes_corpus(self):
        base = FuzzConfig(campaigns=4)
        other = FuzzConfig(campaigns=4, seed=base.seed + 1)
        assert corpus_digest(fuzz_corpus(base)) \
            != corpus_digest(fuzz_corpus(other))

    def test_kind_and_family_schedule_covers_product(self):
        # 16 campaigns = 12 armed: the Latin square lands every
        # primary kind on >= 3 distinct families structurally,
        # before any simulation runs.
        corpus = fuzz_corpus(FuzzConfig(campaigns=16))
        families = {kind: set() for kind in KIND_ORDER}
        for case in corpus:
            for kind in case.planned_kinds():
                families[kind].add(case.family)
        for kind, fams in families.items():
            assert len(fams) >= 3, \
                f"{kind.name} planned on only {sorted(fams)}"

    def test_attack_free_stride_never_starves_a_kind(self):
        # The free stride (every 4th) must not alias onto one slot of
        # the 4-kind primary cycle: every kind keeps primaries.
        corpus = fuzz_corpus(FuzzConfig(campaigns=16))
        assert sum(case.attack_free for case in corpus) == 4
        primaries = {kind: 0 for kind in KIND_ORDER}
        for case in corpus:
            for kind in case.planned_kinds():
                primaries[kind] += 1
        for kind, hits in primaries.items():
            assert hits >= 3, f"{kind.name} starved by the free stride"

    def test_index_out_of_range_rejected(self):
        config = FuzzConfig(campaigns=2)
        with pytest.raises(ConfigError, match="outside"):
            fuzz_case(config, 2)

    def test_config_validation(self):
        with pytest.raises(ConfigError, match="unknown family"):
            FuzzConfig(families=("steady",))
        with pytest.raises(ConfigError, match="campaign"):
            FuzzConfig(campaigns=0)
        with pytest.raises(ConfigError, match="phase bounds"):
            FuzzConfig(min_phase=1200, max_phase=800)


class TestFamilies:
    def test_static_phases_equal_length(self):
        scenario = make_family_scenario(
            FamilyConfig("static", ("x264",), phases=3,
                         phase_length=800))
        assert [p.length for p in scenario.phases] == [800] * 3

    def test_ramp_lengths_scale_to_intensity(self):
        scenario = make_family_scenario(
            FamilyConfig("ramp", ("dedup",), phases=4,
                         phase_length=800, intensity=3.0))
        lengths = [p.length for p in scenario.phases]
        assert lengths == sorted(lengths)
        assert lengths[0] == 800 and lengths[-1] == 2400

    def test_oscillating_alternates_profiles(self):
        scenario = make_family_scenario(
            FamilyConfig("oscillating", ("swaptions", "x264"),
                         phases=4, phase_length=700))
        assert [p.profile for p in scenario.phases] \
            == ["swaptions", "x264", "swaptions", "x264"]

    def test_bursty_interleaves_short_bursts(self):
        scenario = make_family_scenario(
            FamilyConfig("bursty", ("ferret", "x264"), phases=4,
                         phase_length=1200, intensity=3.0))
        lengths = [p.length for p in scenario.phases]
        assert lengths == [1200, 400, 1200, 400]
        assert scenario.phases[1].profile == "x264"

    def test_attacks_arm_the_longest_phase_by_default(self):
        plan = (AttackPlan(AttackKind.RET_HIJACK, 2),)
        scenario = make_family_scenario(
            FamilyConfig("ramp", ("dedup",), phases=3,
                         phase_length=800, intensity=2.0,
                         attacks=plan))
        armed = [i for i, p in enumerate(scenario.phases) if p.attacks]
        assert armed == [2]  # the ramp's last phase is longest

    def test_family_validation(self):
        with pytest.raises(ConfigError, match="unknown workload family"):
            FamilyConfig("steady", ("x264",))
        with pytest.raises(ConfigError, match="unknown family profile"):
            FamilyConfig("static", ("quake",))
        with pytest.raises(ConfigError, match="two profiles"):
            FamilyConfig("oscillating", ("x264",))
        with pytest.raises(ConfigError, match="attack_phase"):
            FamilyConfig("static", ("x264",), phases=2, attack_phase=5)

    def test_name_is_deterministic(self):
        config = FamilyConfig("static", ("x264", "dedup"), phases=2,
                              phase_length=900, intensity=1.5)
        assert config.name() == "fam-static-x264+dedup-n2-l900-i1.5"
        assert make_family_scenario(config).name == config.name()

    def test_all_family_kinds_expand(self):
        for family in FAMILY_KINDS:
            scenario = make_family_scenario(
                FamilyConfig(family, ("dedup", "x264"), phases=3,
                             phase_length=700))
            assert len(scenario.phases) == 3
            compose_trace(scenario, 5)  # must compose cleanly


class TestPlacements:
    """The placement policies position sites as documented."""

    def _trace(self, bench="dedup", length=6000, seed=13):
        return generate_trace(PARSEC_PROFILES[bench], seed=seed,
                              length=length)

    def test_early_sites_precede_late_sites(self):
        early = inject_attacks(self._trace(), AttackKind.RET_HIJACK,
                               3, placement="early")
        late = inject_attacks(self._trace(), AttackKind.RET_HIJACK,
                              3, placement="late")
        assert max(s.seq for s in early) < min(s.seq for s in late)

    def test_packed_sites_keep_attribution_daylight(self):
        # Packed placements stay clustered but never so dense that two
        # attack packets share one 8-pop attribution window.
        for placement in ("early", "late"):
            trace = self._trace()
            sites = inject_attacks(trace, AttackKind.PMC_BOUND, 4,
                                   pmc_bounds=(0x0, 2**40),
                                   placement=placement)
            seqs = sorted(s.seq for s in sites)
            mem_seqs = [r.seq for r in trace.records if r.is_mem]
            for a, b in zip(seqs, seqs[1:]):
                between = [s for s in mem_seqs if a < s <= b]
                assert len(between) > 8, \
                    f"{placement} sites {a},{b} share a pop window"

    def test_gap_placement_pokes_highest_object(self):
        trace = self._trace()
        top = max(o.end for o in trace.objects
                  if o.free_seq is None or o.free_seq > 256)
        sites = inject_attacks(trace, AttackKind.OOB_ACCESS, 2,
                               placement="gap")
        by_seq = {r.seq: r for r in trace.records}
        for site in sites:
            # Highest *live* object at the site; with gap placement at
            # the trace tail that is the heap's top span.
            assert by_seq[site.seq].mem_addr >= top - 0x10000

    def test_stacked_plans_never_collide(self):
        trace = self._trace()
        first = inject_attacks(trace, AttackKind.OOB_ACCESS, 3,
                               placement="late")
        second = inject_attacks(trace, AttackKind.PMC_BOUND, 3,
                                pmc_bounds=(0x0, 2**40),
                                placement="late")
        seqs = [s.seq for s in first] + [s.seq for s in second]
        assert len(seqs) == len(set(seqs)), \
            "stacked plans claimed one record twice"

    def test_unknown_placement_rejected(self):
        with pytest.raises(ConfigError, match="unknown placement"):
            AttackPlan(AttackKind.RET_HIJACK, 2, placement="middle")
        assert "spread" in PLACEMENTS
