"""µcore-level unit tests of the guardian-kernel programs themselves:
each kernel's assembly is executed on a bare MicroCore against crafted
packets, isolating kernel semantics from the full system."""

import pytest

from repro.core.config import FireGuardConfig
from repro.core.isax import IsaxInterface, IsaxStyle
from repro.core.msgqueue import QueueController
from repro.core.packet import Packet
from repro.isa.decode import encode_instr
from repro.isa.opcodes import InstrClass
from repro.kernels import AsanKernel, PmcKernel, UafKernel
from repro.kernels.asan import (
    FREE_DELAY_PACKETS,
    POISON_FREED,
    POISON_LEFT,
    POISON_RIGHT,
)
from repro.kernels.base import SHADOW_BASE, KernelStrategy
from repro.trace.record import InstrRecord
from repro.ucore.assembler import assemble
from repro.ucore.core import MicroCore, UcoreMemory

HEAP = 0x0000_0002_0000_0000


def mem_packet(seq, addr, is_store=False):
    mnemonic = "sd" if is_store else "ld"
    word = encode_instr(mnemonic, rd=0 if is_store else 5, rs1=8,
                        rs2=6 if is_store else 0)
    iclass = InstrClass.STORE if is_store else InstrClass.LOAD
    rec = InstrRecord(seq=seq, pc=0x100 + seq * 4, word=word,
                      opcode=0x23 if is_store else 0x03, funct3=3,
                      iclass=iclass, mem_addr=addr, mem_size=8)
    return Packet(seq=seq, gid=1, record=rec, commit_ns=0.0)


def event_packet(seq, base, size, is_free=False):
    word = encode_instr("custom0.f1" if is_free else "custom0.f0",
                        rs1=10)
    rec = InstrRecord(seq=seq, pc=0x100, word=word, opcode=0x0B,
                      funct3=1 if is_free else 0,
                      iclass=InstrClass.CUSTOM, mem_addr=base,
                      mem_size=size, result=size)
    return Packet(seq=seq, gid=3, record=rec, commit_ns=0.0,
                  is_alloc=not is_free, is_free=is_free)


class KernelHarness:
    """Bare µcore running one kernel program."""

    def __init__(self, kernel, engine_id=0):
        config = FireGuardConfig()
        self.ctrl = QueueController(engine_id, input_depth=64,
                                    peer_depth=16)
        self.memory = UcoreMemory(config)
        self.alerts = []
        self.core = MicroCore(
            engine_id=engine_id, program=assemble(kernel.program_source()),
            controller=self.ctrl, memory=self.memory, config=config,
            isax=IsaxInterface(IsaxStyle.MA_STAGE),
            on_alert=lambda e, c, t: self.alerts.append(c))
        self.core.preset_registers(
            kernel.preset_registers(engine_id, [engine_id], 0))
        self._cycle = 0

    def push(self, packet):
        # Tick the core while the queue is full (back-pressure).
        for _ in range(200_000):
            if self.ctrl.input_queue.push(packet):
                return
            self.core.tick(self._cycle)
            self._cycle += 1
        raise AssertionError("input queue never drained")

    def run_until_idle(self, budget=100_000):
        start = self._cycle
        while self._cycle < start + budget:
            self.core.tick(self._cycle)
            self._cycle += 1
            if self.core.idle_at(self._cycle) \
                    and self.ctrl.input_queue.empty:
                return
        raise AssertionError("kernel did not go idle")

    def shadow(self, addr, base=SHADOW_BASE):
        return self.memory.data.load(base + (addr >> 4), 1)


class TestAsanProgram:
    def test_alloc_poisons_redzones(self):
        h = KernelHarness(AsanKernel())
        h.push(event_packet(0, HEAP + 0x100, 64))
        h.run_until_idle()
        assert h.shadow(HEAP + 0x100 - 16) == POISON_LEFT
        assert h.shadow(HEAP + 0x100 + 64) == POISON_RIGHT
        for off in range(0, 64, 16):
            assert h.shadow(HEAP + 0x100 + off) == 0

    def test_clean_access_no_alert(self):
        h = KernelHarness(AsanKernel())
        h.push(event_packet(0, HEAP, 64))
        h.push(mem_packet(1, HEAP + 8))
        h.run_until_idle()
        assert not h.alerts

    def test_redzone_access_alerts(self):
        h = KernelHarness(AsanKernel())
        h.push(event_packet(0, HEAP, 64))
        h.push(mem_packet(1, HEAP + 64 + 1))  # right redzone
        h.run_until_idle()
        assert h.alerts == [1]

    def test_left_redzone_alerts(self):
        h = KernelHarness(AsanKernel())
        h.push(event_packet(0, HEAP + 0x40, 32))
        h.push(mem_packet(1, HEAP + 0x40 - 8))
        h.run_until_idle()
        assert h.alerts == [1]

    def test_free_poisoning_deferred_then_lands(self):
        h = KernelHarness(AsanKernel())
        h.push(event_packet(0, HEAP, 64))
        h.push(event_packet(1, HEAP, 64, is_free=True))
        h.run_until_idle()
        # Not yet aged: body still clean.
        assert h.shadow(HEAP) == 0
        for i in range(FREE_DELAY_PACKETS + 2):
            h.push(mem_packet(2 + i, HEAP + 0x9000))
        h.run_until_idle()
        assert h.shadow(HEAP) == POISON_FREED
        assert h.shadow(HEAP + 48) == POISON_FREED

    def test_use_after_free_alerts_after_ageing(self):
        h = KernelHarness(AsanKernel())
        h.push(event_packet(0, HEAP, 64))
        h.push(event_packet(1, HEAP, 64, is_free=True))
        for i in range(FREE_DELAY_PACKETS + 2):
            h.push(mem_packet(2 + i, HEAP + 0x9000))
        h.push(mem_packet(99, HEAP + 16))  # dangling access
        h.run_until_idle()
        assert 1 in h.alerts

    def test_second_free_flushes_first(self):
        h = KernelHarness(AsanKernel())
        h.push(event_packet(0, HEAP, 64))
        h.push(event_packet(1, HEAP + 0x1000, 32))
        h.push(event_packet(2, HEAP, 64, is_free=True))
        h.push(event_packet(3, HEAP + 0x1000, 32, is_free=True))
        h.run_until_idle()
        # First free was flushed when the second arrived.
        assert h.shadow(HEAP) == POISON_FREED


class TestUafProgram:
    BASE = SHADOW_BASE + UafKernel.SHADOW_OFFSET

    def test_quarantine_poison_after_ageing(self):
        h = KernelHarness(UafKernel())
        h.push(event_packet(0, HEAP, 64, is_free=True))
        for i in range(FREE_DELAY_PACKETS + 2):
            h.push(mem_packet(1 + i, HEAP + 0x9000))
        h.run_until_idle()
        assert h.shadow(HEAP, base=self.BASE) == 0xFD

    def test_dangling_access_alerts(self):
        h = KernelHarness(UafKernel())
        h.push(event_packet(0, HEAP, 64, is_free=True))
        for i in range(FREE_DELAY_PACKETS + 2):
            h.push(mem_packet(1 + i, HEAP + 0x9000))
        h.push(mem_packet(99, HEAP + 32))
        h.run_until_idle()
        assert 4 in h.alerts

    def test_realloc_clears_quarantine(self):
        h = KernelHarness(UafKernel())
        h.push(event_packet(0, HEAP, 64, is_free=True))
        for i in range(FREE_DELAY_PACKETS + 2):
            h.push(mem_packet(1 + i, HEAP + 0x9000))
        h.push(event_packet(80, HEAP, 64))  # reallocation
        h.push(mem_packet(81, HEAP + 8))
        h.run_until_idle()
        assert 4 not in h.alerts

    def test_ring_release_unpoisons_oldest(self):
        from repro.kernels.uaf import RING_ENTRIES
        h = KernelHarness(UafKernel())
        # Fill the ring + 1: the first region must be released.
        first_base = HEAP
        for i in range(RING_ENTRIES + 2):
            h.push(event_packet(i, HEAP + i * 0x100, 16, is_free=True))
        for i in range(FREE_DELAY_PACKETS + 2):
            h.push(mem_packet(1000 + i, HEAP + 0x90000))
        h.run_until_idle()
        assert h.shadow(first_base, base=self.BASE) == 0


class TestPmcProgram:
    @pytest.mark.parametrize("strategy", list(KernelStrategy))
    def test_bound_violation_alerts(self, strategy):
        h = KernelHarness(PmcKernel(strategy=strategy))
        h.push(mem_packet(0, 0x1000))               # in bounds
        h.push(mem_packet(1, 0xF000_0000_0000))     # out of bounds
        h.push(mem_packet(2, 0x2000))
        h.push(mem_packet(3, 0x3000))
        h.run_until_idle()
        assert h.alerts.count(2) == 1

    @pytest.mark.parametrize("strategy", list(KernelStrategy))
    def test_in_bounds_silent(self, strategy):
        h = KernelHarness(PmcKernel(strategy=strategy))
        for i in range(8):
            h.push(mem_packet(i, 0x1000 + i * 64))
        h.run_until_idle()
        assert not h.alerts

    def test_event_counter_increments(self):
        h = KernelHarness(PmcKernel(strategy=KernelStrategy.HYBRID))
        for i in range(6):
            h.push(mem_packet(i, 0x1000))
        h.run_until_idle()
        assert h.core.regs[21] == 6  # s5 counts monitored events
