"""Tests for the chunked FGTRACE1 reader/writer layer."""

import pytest

from repro.errors import TraceError
from repro.trace.generator import generate_trace
from repro.trace.io import save_trace
from repro.trace.profiles import PARSEC_PROFILES
from repro.trace.stream import (
    RECORD_BYTES,
    StreamedTrace,
    TraceReader,
    TraceWriter,
    file_digest,
    stream_trace,
)


@pytest.fixture
def trace():
    return generate_trace(PARSEC_PROFILES["dedup"], seed=31, length=2500)


class TestWriter:
    def test_bytes_identical_to_save_trace(self, trace, tmp_path):
        whole = tmp_path / "whole.fgt"
        chunked = tmp_path / "chunked.fgt"
        save_trace(trace, whole)
        with TraceWriter(chunked, name=trace.name,
                         seed=trace.seed) as writer:
            for rec in trace.records:
                writer.append(rec)
            digest = writer.finalize(
                objects=trace.objects, heap_base=trace.heap_base,
                heap_end=trace.heap_end, global_base=trace.global_base,
                global_end=trace.global_end, warm_end=trace.warm_end)
        assert whole.read_bytes() == chunked.read_bytes()
        assert digest == file_digest(whole)

    def test_abort_leaves_nothing(self, trace, tmp_path):
        path = tmp_path / "aborted.fgt"
        with TraceWriter(path, name="x", seed=1) as writer:
            writer.append(trace.records[0])
        assert not path.exists()
        assert not list(tmp_path.iterdir())

    def test_stream_trace_matches_generate(self, trace, tmp_path):
        streamed = stream_trace(PARSEC_PROFILES["dedup"], 31, 2500,
                                tmp_path / "gen.fgt")
        assert len(streamed) == len(trace)
        for a, b in zip(streamed.iter_records(), trace.records):
            assert (a.seq, a.pc, a.word, a.result) \
                == (b.seq, b.pc, b.word, b.result)
        assert streamed.heap_end == trace.heap_end
        assert len(streamed.objects) == len(trace.objects)


class TestReader:
    def test_fixed_size_chunks(self, trace, tmp_path):
        path = tmp_path / "t.fgt"
        save_trace(trace, path)
        reader = TraceReader(path, chunk_records=400)
        sizes = [len(chunk) for chunk in reader]
        assert sizes == [400] * 6 + [100]
        assert len(reader) == 2500
        # A fresh pass yields the same records again.
        assert sum(len(c) for c in reader) == 2500

    def test_chunk_records_validated(self, trace, tmp_path):
        path = tmp_path / "t.fgt"
        save_trace(trace, path)
        with pytest.raises(TraceError, match="chunk_records"):
            TraceReader(path, chunk_records=0)


class TestStreamedTrace:
    def test_record_view_is_forward_only(self, trace, tmp_path):
        path = tmp_path / "t.fgt"
        save_trace(trace, path)
        streamed = StreamedTrace(path, chunk_records=256)
        view = streamed.record_view()
        assert len(view) == len(trace)
        assert view[0].word == trace.records[0].word
        assert view[1000].pc == trace.records[1000].pc
        with pytest.raises(TraceError, match="forward-only"):
            view[5]
        with pytest.raises(IndexError):
            view[len(trace)]

    def test_fresh_views_restart(self, trace, tmp_path):
        path = tmp_path / "t.fgt"
        save_trace(trace, path)
        streamed = StreamedTrace(path)
        first = streamed.record_view()
        assert first[2000].seq == 2000
        second = streamed.record_view()
        assert second[0].seq == 0  # a new view starts over

    def test_standalone_core_run_identical(self, trace, tmp_path):
        from repro.ooo.core import MainCore

        path = tmp_path / "t.fgt"
        save_trace(trace, path)
        streamed = StreamedTrace(path, chunk_records=512)
        mem = MainCore().run_standalone(trace)
        disk = MainCore().run_standalone(streamed)
        assert (mem.cycles, mem.committed, mem.mispredicts) \
            == (disk.cycles, disk.committed, disk.mispredicts)
