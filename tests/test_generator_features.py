"""Tests for the trace generator's calibration features: loop-counter
chains, allocation memsets, cold-streaming bursts, warm-region metadata."""

from repro.isa.opcodes import InstrClass
from repro.trace.generator import (
    GLOBAL_BASE,
    LINE_BYTES,
    TraceGenerator,
    generate_trace,
)
from repro.trace.profiles import PARSEC_PROFILES


def trace_for(name="dedup", seed=23, length=8000):
    return generate_trace(PARSEC_PROFILES[name], seed=seed, length=length)


class TestCounterChain:
    def test_counter_register_updates_present(self):
        trace = trace_for()
        counters = [r for r in trace.records
                    if r.dst == TraceGenerator._COUNTER_REG]
        assert counters
        for rec in counters:
            assert rec.srcs == (TraceGenerator._COUNTER_REG,)

    def test_branches_mostly_read_counter(self):
        trace = trace_for()
        branches = [r for r in trace.records
                    if r.iclass is InstrClass.BRANCH]
        counter_reads = sum(
            1 for r in branches
            if TraceGenerator._COUNTER_REG in r.srcs)
        assert counter_reads > len(branches) * 0.6

    def test_counter_never_written_by_other_instructions(self):
        trace = trace_for()
        for rec in trace.records:
            if rec.dst == TraceGenerator._COUNTER_REG:
                assert rec.srcs == (TraceGenerator._COUNTER_REG,)


class TestAllocationMemset:
    def test_alloc_followed_by_init_stores(self):
        trace = trace_for("dedup")
        records = trace.records
        for i, rec in enumerate(records[:-2]):
            if rec.iclass is InstrClass.CUSTOM and rec.funct3 == 0:
                nxt = records[i + 1]
                if nxt.iclass is InstrClass.STORE:
                    # Memset store lands at the new object's base.
                    assert nxt.mem_addr == rec.mem_addr
                    break
        else:
            raise AssertionError("no alloc found")

    def test_memset_lines_sequential(self):
        trace = trace_for("fluidanimate")
        records = trace.records
        for i, rec in enumerate(records):
            if rec.iclass is InstrClass.CUSTOM and rec.funct3 == 0 \
                    and rec.mem_size >= 3 * LINE_BYTES:
                stores = []
                for nxt in records[i + 1:i + 60]:
                    if (nxt.iclass is InstrClass.STORE
                            and nxt.mem_addr is not None
                            and rec.mem_addr <= nxt.mem_addr
                            < rec.mem_addr + rec.mem_size):
                        stores.append(nxt.mem_addr)
                    else:
                        break
                if len(stores) >= 3:
                    deltas = {b - a for a, b in zip(stores, stores[1:])}
                    assert deltas == {LINE_BYTES}
                    return
        # Large allocations exist in fluidanimate (mean 2 KB).
        raise AssertionError("no multi-line memset found")

    def test_heap_accesses_within_initialised_prefix(self):
        trace = trace_for("streamcluster", length=10000)
        by_base = {o.base: o for o in trace.objects}
        for rec in trace.records:
            if not rec.is_mem or rec.mem_addr is None:
                continue
            if rec.mem_addr < trace.heap_base:
                continue
            for obj in trace.objects:
                if obj.contains(rec.mem_addr):
                    assert rec.mem_addr < obj.base + max(
                        obj.size, 8)
                    assert (rec.mem_addr - obj.base
                            < 32 * LINE_BYTES + obj.size % 8 + 8
                            or obj.size <= 32 * LINE_BYTES)
                    break


class TestColdBursts:
    def test_cold_accesses_come_in_sequential_runs(self):
        trace = trace_for("streamcluster", length=20000)
        warm_lines = (trace.warm_end - trace.global_base) // LINE_BYTES
        cold = [r.mem_addr for r in trace.records
                if r.is_mem and r.mem_addr is not None
                and trace.global_base <= r.mem_addr < trace.global_end
                and (r.mem_addr - GLOBAL_BASE) // LINE_BYTES >= warm_lines]
        if len(cold) < 8:
            return  # profile generated few cold accesses at this seed
        lines = [(a - GLOBAL_BASE) // LINE_BYTES for a in cold]
        sequential = sum(1 for a, b in zip(lines, lines[1:])
                         if b == a + 1)
        assert sequential >= len(lines) * 0.4

    def test_warm_end_metadata(self):
        trace = trace_for()
        assert trace.global_base < trace.warm_end <= trace.global_end
        assert (trace.warm_end - trace.global_base) % LINE_BYTES == 0


class TestWarmup:
    def test_warmup_prefills_warm_region(self):
        from repro.ooo.core import MainCore

        trace = trace_for(length=4000)
        core = MainCore()
        core.begin(trace)
        assert core.hierarchy.l2.contains(trace.global_base)
        assert core.hierarchy.llc.contains(trace.warm_end - LINE_BYTES)

    def test_warmup_identical_for_baseline_and_monitored(self):
        from repro.core.system import FireGuardSystem, run_baseline
        from repro.kernels import make_kernel

        trace = trace_for("swaptions", length=4000)
        base1 = run_baseline(trace)
        base2 = run_baseline(trace)
        assert base1 == base2
        result = FireGuardSystem([make_kernel("pmc")]).run(trace)
        assert result.cycles >= base1 * 0.99
