"""Unit tests for the analysis package (area model, metrics, reports)."""

import pytest

from repro.analysis.area import (
    BOOM_SPEC,
    COMMERCIAL_PROCESSORS,
    feasibility_row,
    feasibility_table,
    fireguard_area_breakdown,
    soc_overhead,
    ucores_for_throughput,
)
from repro.analysis.bottleneck import bottleneck_report
from repro.analysis.metrics import SlowdownTable
from repro.analysis.report import format_table
from repro.core.system import SystemResult
from repro.errors import ConfigError, ReproError


class TestAreaBreakdown:
    """§IV-F published numbers must reproduce exactly."""

    def test_transport_area(self):
        b = fireguard_area_breakdown()
        assert b.transport == pytest.approx(0.043)

    def test_transport_percentages(self):
        b = fireguard_area_breakdown()
        assert b.transport_pct_of_boom == pytest.approx(3.88, abs=0.05)
        assert b.transport_pct_of_soc == pytest.approx(1.48, abs=0.05)

    def test_fireguard_total(self):
        b = fireguard_area_breakdown()
        assert b.fireguard_total == pytest.approx(0.287)
        assert b.fireguard_pct_of_boom == pytest.approx(25.9, abs=0.1)
        assert b.fireguard_pct_of_soc == pytest.approx(9.86, abs=0.05)

    def test_filter_scales_with_width(self):
        wide = fireguard_area_breakdown(filter_width=8)
        assert wide.filter_area == pytest.approx(0.064)

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigError):
            fireguard_area_breakdown(num_ucores=0)


class TestFeasibility:
    """Table III values."""

    def test_area_normalisation(self):
        rows = {r.processor: r for r in feasibility_table()}
        assert rows["FireStorm"].area_at_14nm == pytest.approx(22.55,
                                                               abs=0.05)
        assert rows["Cortex-A76"].area_at_14nm == pytest.approx(3.61,
                                                                abs=0.05)
        assert rows["AlderLake-S"].area_at_14nm == pytest.approx(22.63,
                                                                 abs=0.05)

    def test_ucore_counts_match_paper(self):
        rows = {r.processor: r for r in feasibility_table()}
        assert rows["BOOM"].num_ucores == 4
        assert rows["FireStorm"].num_ucores == 12
        assert rows["Cortex-A76"].num_ucores == 5
        assert rows["AlderLake-S"].num_ucores == 13

    def test_per_core_overheads_match_paper(self):
        rows = {r.processor: r for r in feasibility_table()}
        assert rows["BOOM"].overhead_pct_of_core \
            == pytest.approx(25.9, abs=0.2)
        assert rows["FireStorm"].overhead_pct_of_core \
            == pytest.approx(3.6, abs=0.1)
        assert rows["Cortex-A76"].overhead_pct_of_core \
            == pytest.approx(9.6, abs=0.1)
        assert rows["AlderLake-S"].overhead_pct_of_core \
            == pytest.approx(3.8, abs=0.1)

    def test_overhead_mm2_match_paper(self):
        rows = {r.processor: r for r in feasibility_table()}
        assert rows["FireStorm"].overhead_mm2 == pytest.approx(0.81,
                                                               abs=0.01)
        assert rows["Cortex-A76"].overhead_mm2 == pytest.approx(0.35,
                                                                abs=0.01)
        assert rows["AlderLake-S"].overhead_mm2 == pytest.approx(0.85,
                                                                 abs=0.01)

    def test_throughput_recomputation_close(self):
        # FireStorm/AlderLake recompute from IPC x freq; A76's
        # published 1.27 deviates (documented in EXPERIMENTS.md).
        fs = COMMERCIAL_PROCESSORS["FireStorm"]
        assert fs.computed_throughput(BOOM_SPEC) \
            == pytest.approx(2.92, abs=0.01)

    def test_ucores_scaling_rule(self):
        assert ucores_for_throughput(1.0) == 4
        assert ucores_for_throughput(2.92) == 12
        assert ucores_for_throughput(3.35) == 13

    def test_bad_throughput_rejected(self):
        with pytest.raises(ConfigError):
            ucores_for_throughput(0.0)

    def test_soc_overheads_below_1_2_pct(self):
        for soc in soc_overhead():
            if soc.name.startswith("prototype"):
                continue
            assert soc.overhead_pct() < 1.2


class TestSlowdownTable:
    def test_record_and_geomean(self):
        t = SlowdownTable(["a", "b"])
        t.record("a", "s", 2.0)
        t.record("b", "s", 8.0)
        assert t.scheme_geomean("s") == pytest.approx(4.0)

    def test_unknown_benchmark_rejected(self):
        t = SlowdownTable(["a"])
        with pytest.raises(ReproError):
            t.record("zzz", "s", 1.0)

    def test_nonpositive_rejected(self):
        t = SlowdownTable(["a"])
        with pytest.raises(ReproError):
            t.record("a", "s", 0.0)

    def test_rows_include_geomean_footer(self):
        t = SlowdownTable(["a"])
        t.record("a", "s1", 1.5)
        rows = t.rows()
        assert rows[0] == ["benchmark", "s1"]
        assert rows[-1][0] == "geomean"

    def test_missing_cells_rendered_as_dash(self):
        t = SlowdownTable(["a", "b"])
        t.record("a", "s", 1.1)
        rows = t.rows()
        assert rows[2][1] == "-"


class TestBottleneck:
    def _result(self, **kw):
        base = dict(cycles=1000, committed=900, time_ns=312.5,
                    stall_backpressure=10, filter_full_cycles=100,
                    mapper_blocked_cycles=50, cdc_full_cycles=25,
                    msgq_full_cycles=200)
        base.update(kw)
        return SystemResult(**base)

    def test_fractions(self):
        r = bottleneck_report("x264", 4, self._result(), 800, 4)
        assert r.slowdown == pytest.approx(1.25)
        assert r.filter_full == pytest.approx(0.1)
        assert r.mapper_blocked == pytest.approx(0.05)
        assert r.cdc_full == pytest.approx(0.05)
        assert r.msgq_full == pytest.approx(0.1)

    def test_zero_cycles_rejected(self):
        with pytest.raises(ReproError):
            bottleneck_report("x", 4, self._result(cycles=0), 100, 4)

    def test_as_row(self):
        r = bottleneck_report("x264", 2, self._result(), 800, 4)
        assert r.as_row()[0] == "x264"
        assert r.as_row()[1] == "2"


class TestFormatTable:
    def test_alignment(self):
        out = format_table([["a", "bb"], ["ccc", "d"]], title="t")
        lines = out.splitlines()
        assert lines[0] == "t"
        assert "a" in lines[1] and "ccc" in lines[3]

    def test_empty(self):
        assert format_table([], title="x") == "x"
