"""Smoke tests for the experiment harnesses (reduced scale)."""

import pytest

from repro.analysis.metrics import SlowdownTable
from repro.experiments import fig7a, fig7b, fig8, fig9, fig10, fig11
from repro.experiments import table2, table3
from repro.experiments.__main__ import main as cli_main
from repro.trace.attacks import AttackKind

BENCH = ("swaptions",)          # one fast benchmark for smoke runs


class TestFig7a:
    def test_runs_and_has_all_columns(self):
        table = fig7a.run(benchmarks=BENCH)
        assert isinstance(table, SlowdownTable)
        names = {c for c, _, _ in fig7a.FIREGUARD_COLUMNS}
        names |= {c for c, _ in fig7a.SOFTWARE_COLUMNS}
        assert set(table.schemes) == names

    def test_ha_beats_ucores(self):
        table = fig7a.run(benchmarks=BENCH)
        assert table.get("swaptions", "pmc_fg_ha") \
            <= table.get("swaptions", "pmc_fg_4uc") + 0.01

    def test_fireguard_asan_beats_software(self):
        table = fig7a.run(benchmarks=BENCH)
        assert table.get("swaptions", "asan_fg_4uc") \
            < table.get("swaptions", "asan_sw_aarch64")


class TestFig7b:
    def test_combined_runs(self):
        table = fig7b.run(benchmarks=BENCH)
        assert table.get("swaptions", "ss+pmc") >= 1.0
        assert len(table.schemes) == len(fig7b.COMBINATIONS)


class TestFig8:
    def test_detection_rows(self):
        row = fig8.run_one("swaptions", "pmc", AttackKind.PMC_BOUND,
                           attacks=10, length=8000)
        assert row.injected == 10
        assert row.detected >= 8
        assert row.summary is not None
        assert row.summary.minimum > 0

    def test_row_render(self):
        row = fig8.run_one("swaptions", "shadow_stack",
                           AttackKind.RET_HIJACK, attacks=5, length=8000)
        rendered = row.as_row()
        assert rendered[0] == "swaptions"
        assert len(rendered) == 8


class TestFig9:
    def test_reports_for_all_widths(self):
        reports = fig9.run(benchmarks=BENCH)
        widths = {r.filter_width for r in reports}
        assert widths == {1, 2, 4}

    def test_narrower_never_faster(self):
        reports = fig9.run(benchmarks=BENCH)
        by_width = {r.filter_width: r.slowdown for r in reports}
        assert by_width[1] >= by_width[4] - 1e-9

    def test_geomeans(self):
        reports = fig9.run(benchmarks=BENCH)
        gms = fig9.width_geomeans(reports)
        assert set(gms) == {1, 2, 4}


class TestFig10:
    def test_sweep_monotone_for_asan(self):
        table = fig10.run("asan", benchmarks=("x264",), counts=(2, 4, 8))
        s2 = table.get("x264", "2uc")
        s8 = table.get("x264", "8uc")
        assert s2 >= s8

    def test_pmc_sweep(self):
        table = fig10.run("pmc", benchmarks=BENCH, counts=(2, 4))
        assert table.get("swaptions", "2uc") >= 1.0


class TestFig11:
    def test_all_strategies_present(self):
        table = fig11.run(benchmarks=BENCH)
        assert set(table.schemes) == {"conventional", "duff", "unrolled",
                                      "hybrid"}

    def test_conventional_worst(self):
        table = fig11.run(benchmarks=("x264",))
        conv = table.get("x264", "conventional")
        hybrid = table.get("x264", "hybrid")
        assert conv >= hybrid


class TestTables:
    def test_table2_rows(self):
        rows = table2.run()
        assert rows[0] == ["parameter", "paper", "model"]
        assert len(rows) > 15

    def test_table3_rows(self):
        per_core, per_soc = table3.run()
        assert len(per_core) == 5  # header + 4 processors
        assert len(per_soc) == 5   # header + 4 SoCs

    def test_table2_main_prints(self, capsys):
        table2.main()
        assert "ROB" in capsys.readouterr().out

    def test_table3_main_prints(self, capsys):
        table3.main()
        out = capsys.readouterr().out
        assert "FireStorm" in out and "M1-Pro" in out


class TestCli:
    def test_help(self, capsys):
        assert cli_main([]) == 0
        assert "fig7a" in capsys.readouterr().out

    def test_help_flag_lists_every_registered_id(self, capsys):
        from repro.experiments.__main__ import _EXPERIMENTS

        assert cli_main(["--help"]) == 0
        out = capsys.readouterr().out
        for name in _EXPERIMENTS:
            assert name in out
        assert "all" in out

    def test_unknown(self, capsys):
        assert cli_main(["nope"]) == 2

    def test_unknown_id_message_names_alternatives(self, capsys):
        assert cli_main(["fig99"]) == 2
        out = capsys.readouterr().out
        assert "fig99" in out
        assert "available" in out
        assert "fig10" in out

    def test_every_registered_id_is_callable(self):
        from repro.experiments.__main__ import _EXPERIMENTS

        for name, entry in _EXPERIMENTS.items():
            assert callable(entry), name

    def test_dispatch_reaches_each_entry(self, capsys, monkeypatch):
        """Dispatch invokes exactly the registered main() for each id
        (stubbed so the full figures don't actually run)."""
        from repro.experiments import __main__ as cli

        calls = []
        stubbed = {name: (lambda name=name: calls.append(name))
                   for name in cli._EXPERIMENTS}
        monkeypatch.setattr(cli, "_EXPERIMENTS", stubbed)
        for name in stubbed:
            assert cli.main([name]) == 0
        assert calls == list(stubbed)

    def test_dispatch_table2(self, capsys):
        assert cli_main(["table2"]) == 0
        assert "parameter" in capsys.readouterr().out
