"""Unit tests for repro.utils.stats."""

import math

import pytest

from repro.errors import ReproError
from repro.utils.stats import (
    LatencySummary,
    geomean,
    mean,
    percentile,
    summarize_latencies,
)


class TestGeomean:
    def test_single_value(self):
        assert geomean([3.0]) == pytest.approx(3.0)

    def test_known_pair(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_order_invariant(self):
        assert geomean([2, 8, 4]) == pytest.approx(geomean([8, 4, 2]))

    def test_all_ones(self):
        assert geomean([1.0] * 10) == pytest.approx(1.0)

    def test_below_arithmetic_mean(self):
        values = [1.1, 2.9, 1.7]
        assert geomean(values) < mean(values)

    def test_empty_raises(self):
        with pytest.raises(ReproError):
            geomean([])

    def test_zero_raises(self):
        with pytest.raises(ReproError):
            geomean([1.0, 0.0])

    def test_negative_raises(self):
        with pytest.raises(ReproError):
            geomean([1.0, -2.0])

    def test_large_values_no_overflow(self):
        assert math.isfinite(geomean([1e200, 1e200]))


class TestMean:
    def test_basic(self):
        assert mean([1, 2, 3]) == pytest.approx(2.0)

    def test_empty_raises(self):
        with pytest.raises(ReproError):
            mean([])


class TestPercentile:
    def test_median_odd(self):
        assert percentile([3, 1, 2], 50) == pytest.approx(2.0)

    def test_median_even_interpolates(self):
        assert percentile([1, 2, 3, 4], 50) == pytest.approx(2.5)

    def test_min_max(self):
        data = [5.0, 1.0, 9.0]
        assert percentile(data, 0) == pytest.approx(1.0)
        assert percentile(data, 100) == pytest.approx(9.0)

    def test_single_element(self):
        assert percentile([7.0], 90) == pytest.approx(7.0)

    def test_out_of_range_raises(self):
        with pytest.raises(ReproError):
            percentile([1.0], 101)
        with pytest.raises(ReproError):
            percentile([1.0], -1)

    def test_empty_raises(self):
        with pytest.raises(ReproError):
            percentile([], 50)

    def test_monotone_in_pct(self):
        data = [4.0, 8.0, 15.0, 16.0, 23.0, 42.0]
        values = [percentile(data, p) for p in range(0, 101, 10)]
        assert values == sorted(values)


class TestSummarizeLatencies:
    def test_fields_ordered(self):
        s = summarize_latencies(list(range(1, 101)))
        assert s.minimum <= s.p25 <= s.median <= s.p75 <= s.p90 \
            <= s.p99 <= s.maximum

    def test_count(self):
        assert summarize_latencies([1.0, 2.0]).count == 2

    def test_empty_raises(self):
        with pytest.raises(ReproError):
            summarize_latencies([])

    def test_as_row_keys(self):
        row = summarize_latencies([1.0, 5.0, 9.0]).as_row()
        assert set(row) == {"min", "p25", "median", "p75", "p90",
                            "p99", "max"}

    def test_is_frozen(self):
        s = summarize_latencies([1.0])
        with pytest.raises(AttributeError):
            s.median = 5.0
        assert isinstance(s, LatencySummary)
