"""Integration tests: the full FireGuard system end to end."""

import pytest

from repro.core.config import FireGuardConfig
from repro.core.isax import IsaxStyle
from repro.core.system import FireGuardSystem, run_baseline
from repro.errors import ConfigError
from repro.kernels import make_kernel
from repro.kernels.base import KernelStrategy
from repro.trace.generator import generate_trace
from repro.trace.profiles import PARSEC_PROFILES


def trace_for(bench="swaptions", seed=17, length=5000):
    return generate_trace(PARSEC_PROFILES[bench], seed=seed, length=length)


class TestConstruction:
    def test_needs_kernels(self):
        with pytest.raises(ConfigError):
            FireGuardSystem([])

    def test_duplicate_kernels_rejected(self):
        with pytest.raises(ConfigError):
            FireGuardSystem([make_kernel("pmc"), make_kernel("pmc")])

    def test_engine_partitioning(self):
        system = FireGuardSystem(
            [make_kernel("pmc"), make_kernel("asan")],
            engines_per_kernel={"pmc": 2, "asan": 4})
        assert system.config.num_engines == 6
        assert len(system.engines) == 6

    def test_accelerated_kernel_gets_one_slot(self):
        system = FireGuardSystem(
            [make_kernel("pmc"), make_kernel("asan")],
            engines_per_kernel={"asan": 4},
            accelerated={"pmc"})
        assert system.config.num_engines == 5

    def test_accelerating_uaf_rejected(self):
        # Kernels without an accelerator variant cannot be accelerated.
        with pytest.raises(ConfigError):
            FireGuardSystem([make_kernel("uaf")], accelerated={"uaf"})

    def test_accelerating_asan_builds_single_ha(self):
        from repro.core.accelerator import AsanAccelerator
        system = FireGuardSystem([make_kernel("asan")],
                                 accelerated={"asan"})
        assert len(system.engines) == 1
        assert isinstance(system.engines[0], AsanAccelerator)

    def test_filter_programmed_for_groups(self):
        system = FireGuardSystem([make_kernel("asan")])
        mf = system.filter.minifilters[0]
        assert mf.lookup(0x03, 3) is not None   # ld
        assert mf.lookup(0x23, 3) is not None   # sd
        assert mf.lookup(0x0B, 0) is not None   # alloc marker
        assert mf.lookup(0x6F, 0) is None       # jal not monitored

    def test_shared_groups_fan_out(self):
        system = FireGuardSystem([make_kernel("asan"), make_kernel("uaf")])
        ses = system.distributor.interested_ses(1)  # GROUP_MEM
        assert len(ses) == 2

    def test_config_fields_survive_resize(self):
        """Regression: the engine-complement resize once rebuilt the
        config field by field and silently dropped mapper_width."""
        config = FireGuardConfig(mapper_width=2, fifo_depth=32,
                                 noc_hop_cycles=3)
        system = FireGuardSystem([make_kernel("pmc")], config=config)
        assert system.config.mapper_width == 2
        assert system.config.fifo_depth == 32
        assert system.config.noc_hop_cycles == 3
        # The resized fields still track the kernel partitioning.
        assert system.config.num_sched_engines == 1
        assert system.config.num_engines == len(system.engines)


class TestRunBehaviour:
    def test_monitored_run_completes_and_commits_all(self):
        trace = trace_for()
        system = FireGuardSystem([make_kernel("pmc")])
        result = system.run(trace)
        assert result.committed == len(trace.records)
        assert result.cycles > 0

    def test_slowdown_at_least_one(self):
        trace = trace_for()
        base = run_baseline(trace)
        result = FireGuardSystem([make_kernel("pmc")]).run(trace)
        assert result.cycles >= base * 0.99

    def test_deterministic(self):
        trace = trace_for()
        r1 = FireGuardSystem([make_kernel("asan")]).run(trace)
        r2 = FireGuardSystem([make_kernel("asan")]).run(trace)
        assert r1.cycles == r2.cycles
        assert r1.packets_filtered == r2.packets_filtered

    def test_all_valid_packets_delivered(self):
        trace = trace_for()
        system = FireGuardSystem([make_kernel("pmc")])
        result = system.run(trace)
        assert result.packets_delivered == result.packets_filtered

    def test_more_engines_never_slower(self):
        trace = trace_for("x264", length=6000)
        slow = FireGuardSystem(
            [make_kernel("asan")],
            engines_per_kernel={"asan": 2}).run(trace)
        fast = FireGuardSystem(
            [make_kernel("asan")],
            engines_per_kernel={"asan": 8}).run(trace)
        assert fast.cycles <= slow.cycles

    def test_narrow_filter_never_faster(self):
        trace = trace_for("x264", length=6000)
        wide = FireGuardSystem(
            [make_kernel("asan")],
            config=FireGuardConfig(filter_width=4)).run(trace)
        narrow = FireGuardSystem(
            [make_kernel("asan")],
            config=FireGuardConfig(filter_width=1)).run(trace)
        assert narrow.cycles >= wide.cycles
        # The narrow filter throttles commit to one lane, so the filter
        # FIFOs report full far more often.
        assert narrow.filter_full_cycles + narrow.stall_backpressure > 0

    def test_ha_has_negligible_overhead(self):
        trace = trace_for("x264", length=6000)
        base = run_baseline(trace)
        result = FireGuardSystem([make_kernel("pmc")],
                                 accelerated={"pmc"}).run(trace)
        assert result.cycles / base < 1.02

    def test_combined_kernels_dominated_by_heaviest(self):
        trace = trace_for("dedup", length=6000)
        base = run_baseline(trace)
        asan = FireGuardSystem([make_kernel("asan")]).run(trace)
        combo = FireGuardSystem(
            [make_kernel("asan"), make_kernel("pmc")]).run(trace)
        asan_slow = asan.cycles / base
        combo_slow = combo.cycles / base
        pmc_slow = FireGuardSystem(
            [make_kernel("pmc")]).run(trace).cycles / base
        # Not multiplied: combination costs at most ~the product, and
        # is dominated by the heavier kernel.
        assert combo_slow >= max(asan_slow, pmc_slow) * 0.97
        assert combo_slow < asan_slow * pmc_slow * 1.10

    def test_post_commit_isax_slower_for_heavy_kernel(self):
        trace = trace_for("x264", length=6000)
        ma = FireGuardSystem([make_kernel("asan")],
                             isax_style=IsaxStyle.MA_STAGE).run(trace)
        pc = FireGuardSystem([make_kernel("asan")],
                             isax_style=IsaxStyle.POST_COMMIT).run(trace)
        assert pc.cycles > ma.cycles

    def test_conventional_strategy_slower_under_load(self):
        trace = trace_for("x264", length=6000)
        conv = FireGuardSystem(
            [make_kernel("pmc", strategy=KernelStrategy.CONVENTIONAL)],
        ).run(trace)
        hybrid = FireGuardSystem(
            [make_kernel("pmc", strategy=KernelStrategy.HYBRID)],
        ).run(trace)
        assert conv.cycles >= hybrid.cycles

    def test_prf_preemptions_recorded(self):
        trace = trace_for()
        result = FireGuardSystem([make_kernel("pmc")]).run(trace)
        assert result.prf_preemptions > 0

    def test_shadow_stack_uses_noc(self):
        trace = trace_for("bodytrack", length=6000)
        result = FireGuardSystem([make_kernel("shadow_stack")]).run(trace)
        assert result.noc_words > 0

    def test_queue_stats_populated_under_pressure(self):
        trace = trace_for("x264", length=6000)
        result = FireGuardSystem(
            [make_kernel("asan")],
            engines_per_kernel={"asan": 2}).run(trace)
        assert result.msgq_full_cycles > 0
        assert result.stall_backpressure > 0
