"""Unit tests for the workload substrate (profiles, generator, attacks)."""

import pytest

from repro.errors import ConfigError, TraceError
from repro.isa.opcodes import InstrClass
from repro.trace.attacks import (
    HIJACK_BASE,
    AttackKind,
    inject_attacks,
)
from repro.trace.generator import TraceGenerator, generate_trace
from repro.trace.profiles import (
    PARSEC_BENCHMARKS,
    PARSEC_PROFILES,
    WorkloadProfile,
)


def small_trace(name="swaptions", seed=5, length=4000):
    return generate_trace(PARSEC_PROFILES[name], seed=seed, length=length)


class TestProfiles:
    def test_nine_benchmarks(self):
        assert len(PARSEC_BENCHMARKS) == 9
        assert "x264" in PARSEC_BENCHMARKS

    def test_x264_has_highest_mem_fraction(self):
        mems = {n: p.frac_mem for n, p in PARSEC_PROFILES.items()}
        assert max(mems, key=mems.get) == "x264"

    def test_dedup_most_allocation_heavy(self):
        rates = {n: p.alloc_per_kilo for n, p in PARSEC_PROFILES.items()}
        assert max(rates, key=rates.get) == "dedup"

    def test_fraction_sum_validated(self):
        with pytest.raises(ConfigError):
            WorkloadProfile(name="bad", frac_load=0.5, frac_store=0.4,
                            frac_branch=0.2, frac_call=0.0, frac_fp=0.0)

    def test_negative_fraction_rejected(self):
        with pytest.raises(ConfigError):
            WorkloadProfile(name="bad", frac_load=-0.1, frac_store=0.1,
                            frac_branch=0.1, frac_call=0.01, frac_fp=0.1)


class TestGenerator:
    def test_length_respected(self):
        trace = small_trace(length=3000)
        assert len(trace) >= 3000

    def test_deterministic(self):
        a = small_trace(seed=9)
        b = small_trace(seed=9)
        assert len(a) == len(b)
        assert all(x.pc == y.pc and x.word == y.word and x.seq == y.seq
                   for x, y in zip(a.records, b.records))

    def test_seeds_differ(self):
        a = small_trace(seed=1)
        b = small_trace(seed=2)
        assert any(x.word != y.word or x.pc != y.pc
                   for x, y in zip(a.records, b.records))

    def test_sequential_seq_numbers(self):
        trace = small_trace()
        assert [r.seq for r in trace.records] \
            == list(range(len(trace.records)))

    def test_mix_tracks_profile(self):
        profile = PARSEC_PROFILES["x264"]
        trace = generate_trace(profile, seed=3, length=20000)
        counts = trace.class_counts()
        n = len(trace)
        load_frac = counts.get(InstrClass.LOAD, 0) / n
        store_frac = counts.get(InstrClass.STORE, 0) / n
        assert abs(load_frac - profile.frac_load) < 0.10
        assert abs(store_frac - profile.frac_store) < 0.07

    def test_calls_and_rets_balance(self):
        trace = small_trace("dedup", length=10000)
        counts = trace.class_counts()
        calls = counts.get(InstrClass.CALL, 0)
        rets = counts.get(InstrClass.RET, 0)
        assert calls > 0
        assert abs(calls - rets) <= PARSEC_PROFILES["dedup"].max_call_depth

    def test_rets_match_call_sites(self):
        trace = small_trace("ferret", length=8000)
        stack = []
        for rec in trace.records:
            if rec.iclass is InstrClass.CALL:
                stack.append(rec.pc + 4)
            elif rec.iclass is InstrClass.RET:
                assert stack, "return without a call"
                assert rec.target == stack.pop()

    def test_heap_objects_disjoint(self):
        trace = small_trace("dedup", length=8000)
        objects = sorted(trace.objects, key=lambda o: o.base)
        for a, b in zip(objects, objects[1:]):
            assert a.end <= b.base

    def test_free_after_alloc(self):
        trace = small_trace("dedup", length=8000)
        for obj in trace.objects:
            if obj.free_seq is not None:
                assert obj.free_seq > obj.alloc_seq

    def test_custom_events_carry_region(self):
        trace = small_trace("dedup", length=8000)
        events = [r for r in trace.records
                  if r.iclass is InstrClass.CUSTOM]
        assert events
        for ev in events:
            assert ev.mem_addr is not None
            assert ev.result > 0  # size

    def test_branch_targets_inside_function(self):
        trace = small_trace(length=6000)
        for rec in trace.records:
            if rec.iclass is InstrClass.BRANCH:
                assert abs(rec.target - rec.pc) < 1024

    def test_mem_addresses_in_known_regions(self):
        trace = small_trace(length=6000)
        for rec in trace.records:
            if rec.is_mem:
                in_heap = trace.heap_base <= rec.mem_addr < trace.heap_end
                in_global = (trace.global_base <= rec.mem_addr
                             < trace.global_end)
                assert in_heap or in_global

    def test_zero_length_rejected(self):
        with pytest.raises(TraceError):
            TraceGenerator(PARSEC_PROFILES["x264"], seed=1, length=0)

    def test_words_decode_back(self):
        from repro.isa.decode import decode
        trace = small_trace(length=2000)
        for rec in trace.records[:500]:
            d = decode(rec.word)
            assert d.opcode == rec.opcode
            assert d.funct3 == rec.funct3


class TestAttacks:
    def test_ret_hijack_marks_records(self):
        trace = small_trace("bodytrack", length=8000)
        sites = inject_attacks(trace, AttackKind.RET_HIJACK, 10)
        assert len(sites) == 10
        marked = [r for r in trace.records if r.attack_id is not None]
        assert len(marked) == 10
        for rec in marked:
            assert rec.iclass is InstrClass.RET
            assert rec.target >= HIJACK_BASE

    def test_unique_attack_ids(self):
        trace = small_trace("bodytrack", length=8000)
        sites = inject_attacks(trace, AttackKind.RET_HIJACK, 12)
        assert len({s.attack_id for s in sites}) == len(sites)

    def test_oob_lands_in_redzone(self):
        trace = small_trace("dedup", length=8000)
        sites = inject_attacks(trace, AttackKind.OOB_ACCESS, 8)
        assert sites
        by_seq = {r.seq: r for r in trace.records}
        for site in sites:
            rec = by_seq[site.seq]
            live = [o for o in trace.objects if o.live_at(rec.seq)]
            # Address is exactly one byte past some live object.
            assert any(rec.mem_addr == o.end + 1 for o in live)

    def test_uaf_targets_freed_region(self):
        trace = small_trace("dedup", length=10000)
        sites = inject_attacks(trace, AttackKind.UAF_ACCESS, 6)
        assert sites
        by_seq = {r.seq: r for r in trace.records}
        for site in sites:
            rec = by_seq[site.seq]
            freed = [o for o in trace.objects
                     if o.free_seq is not None
                     and o.free_seq < rec.seq
                     and o.contains(rec.mem_addr)]
            assert freed

    def test_pmc_bound_requires_bounds(self):
        trace = small_trace(length=4000)
        with pytest.raises(TraceError):
            inject_attacks(trace, AttackKind.PMC_BOUND, 4)

    def test_pmc_bound_outside_fence(self):
        trace = small_trace(length=4000)
        sites = inject_attacks(trace, AttackKind.PMC_BOUND, 4,
                               pmc_bounds=(0, 1 << 40))
        by_seq = {r.seq: r for r in trace.records}
        for site in sites:
            assert by_seq[site.seq].mem_addr >= (1 << 40)

    def test_zero_count_rejected(self):
        trace = small_trace(length=2000)
        with pytest.raises(TraceError):
            inject_attacks(trace, AttackKind.RET_HIJACK, 0)

    def test_attacks_spread_across_trace(self):
        trace = small_trace("bodytrack", length=12000)
        sites = inject_attacks(trace, AttackKind.RET_HIJACK, 8)
        seqs = sorted(s.seq for s in sites)
        assert seqs[-1] - seqs[0] > len(trace.records) // 4
