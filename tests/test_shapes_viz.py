"""Tests for shape validation and ASCII figure rendering."""

import pytest

from repro.analysis.metrics import SlowdownTable
from repro.analysis.shapes import (
    ShapeCheck,
    check_combination_not_multiplicative,
    check_fireguard_beats_software,
    check_ha_removes_overhead,
    check_latency_ordering,
    check_scaling_monotone,
    check_strategy_ordering,
    summarize,
)
from repro.analysis.viz import bar_chart, series_chart
from repro.errors import ReproError


def table_with(schemes):
    t = SlowdownTable(["a", "b"])
    for scheme, (va, vb) in schemes.items():
        t.record("a", scheme, va)
        t.record("b", scheme, vb)
    return t


class TestShapeChecks:
    def test_ha_check_passes_near_one(self):
        t = table_with({"ha": (1.001, 1.01)})
        assert check_ha_removes_overhead(t, "ha").holds

    def test_ha_check_fails_with_overhead(self):
        t = table_with({"ha": (1.001, 1.2)})
        assert not check_ha_removes_overhead(t, "ha").holds

    def test_beats_software_allows_one_exception(self):
        t = table_with({"fg": (1.1, 2.5), "sw": (2.0, 2.0)})
        check = check_fireguard_beats_software(t, "fg", "sw")
        assert check.holds and "b" in check.detail

    def test_beats_software_fails_with_two_losses(self):
        t = table_with({"fg": (2.5, 2.5), "sw": (2.0, 2.0)})
        assert not check_fireguard_beats_software(t, "fg", "sw").holds

    def test_scaling_monotone(self):
        t = table_with({"2uc": (2.0, 3.0), "4uc": (1.5, 2.0),
                        "6uc": (1.1, 1.3)})
        assert check_scaling_monotone(t).holds

    def test_scaling_violation_detected(self):
        t = table_with({"2uc": (1.1, 1.1), "4uc": (1.8, 1.9)})
        assert not check_scaling_monotone(t).holds

    def test_combination_check(self):
        assert check_combination_not_multiplicative(
            1.42, [1.4, 1.05]).holds
        assert not check_combination_not_multiplicative(
            2.5, [1.4, 1.05]).holds

    def test_combination_needs_parts(self):
        with pytest.raises(ReproError):
            check_combination_not_multiplicative(1.0, [])

    def test_strategy_ordering(self):
        assert check_strategy_ordering(1.08, 1.03, 1.01, 1.01).holds
        assert not check_strategy_ordering(1.00, 1.05, 1.08, 1.09).holds

    def test_latency_ordering(self):
        assert check_latency_ordering(20, 150, 900).holds
        assert not check_latency_ordering(300, 150, 200).holds

    def test_summarize(self):
        checks = [ShapeCheck("x", True), ShapeCheck("y", False)]
        assert summarize(checks) == (1, 2)

    def test_as_row(self):
        row = ShapeCheck("claim", True, "d").as_row()
        assert row == ["claim", "yes", "d"]


class TestViz:
    def test_bar_chart_renders_all_keys(self):
        out = bar_chart({"pmc": 1.02, "asan": 1.5}, title="t")
        assert "pmc" in out and "asan" in out and out.startswith("t")

    def test_bar_lengths_ordered(self):
        out = bar_chart({"small": 1.1, "big": 2.0})
        small_line = next(l for l in out.splitlines() if "small" in l)
        big_line = next(l for l in out.splitlines() if "big" in l)
        assert big_line.count("#") > small_line.count("#")

    def test_bar_chart_empty_raises(self):
        with pytest.raises(ReproError):
            bar_chart({})

    def test_series_chart_contains_glyphs_and_legend(self):
        out = series_chart([2, 4, 6], {"pmc": [1.2, 1.05, 1.01],
                                       "asan": [1.9, 1.4, 1.2]})
        assert "*=pmc" in out and "+=asan" in out
        assert "*" in out and "+" in out

    def test_series_chart_empty_raises(self):
        with pytest.raises(ReproError):
            series_chart([1], {})

    def test_series_chart_flat_series(self):
        out = series_chart([1, 2], {"flat": [1.0, 1.0]})
        assert "flat" in out
