"""Unit tests for repro.utils.rng (determinism is load-bearing)."""

import pytest

from repro.errors import ConfigError
from repro.utils.rng import DeterministicRng


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = DeterministicRng(42)
        b = DeterministicRng(42)
        assert [a.next_u64() for _ in range(50)] \
            == [b.next_u64() for _ in range(50)]

    def test_different_seeds_differ(self):
        a = DeterministicRng(1)
        b = DeterministicRng(2)
        assert [a.next_u64() for _ in range(8)] \
            != [b.next_u64() for _ in range(8)]

    def test_fork_independent(self):
        parent = DeterministicRng(7)
        child = parent.fork(1)
        before = parent.next_u64()
        # Re-derive: fork must not depend on parent's later draws.
        parent2 = DeterministicRng(7)
        child2 = parent2.fork(1)
        assert child.next_u64() == child2.next_u64()
        assert before == parent2.next_u64()

    def test_fork_salts_differ(self):
        parent = DeterministicRng(7)
        assert parent.fork(1).next_u64() != parent.fork(2).next_u64()


class TestDistributions:
    def test_random_in_unit_interval(self):
        rng = DeterministicRng(3)
        for _ in range(1000):
            x = rng.random()
            assert 0.0 <= x < 1.0

    def test_randint_bounds(self):
        rng = DeterministicRng(4)
        values = {rng.randint(2, 5) for _ in range(200)}
        assert values == {2, 3, 4, 5}

    def test_randint_single_point(self):
        rng = DeterministicRng(5)
        assert rng.randint(9, 9) == 9

    def test_randint_empty_range_raises(self):
        with pytest.raises(ConfigError):
            DeterministicRng(1).randint(5, 4)

    def test_chance_extremes(self):
        rng = DeterministicRng(6)
        assert not any(rng.chance(0.0) for _ in range(100))
        assert all(rng.chance(1.0) for _ in range(100))

    def test_chance_rate(self):
        rng = DeterministicRng(7)
        hits = sum(rng.chance(0.25) for _ in range(10000))
        assert 2200 <= hits <= 2800

    def test_choice(self):
        rng = DeterministicRng(8)
        items = ["a", "b", "c"]
        assert {rng.choice(items) for _ in range(100)} == set(items)

    def test_choice_empty_raises(self):
        with pytest.raises(ConfigError):
            DeterministicRng(1).choice([])

    def test_weighted_choice_respects_weights(self):
        rng = DeterministicRng(9)
        picks = [rng.weighted_choice(("x", "y"), (0.9, 0.1))
                 for _ in range(2000)]
        assert picks.count("x") > picks.count("y") * 4

    def test_weighted_choice_zero_total_raises(self):
        with pytest.raises(ConfigError):
            DeterministicRng(1).weighted_choice(("a",), (0.0,))

    def test_weighted_choice_mismatched_raises(self):
        with pytest.raises(ConfigError):
            DeterministicRng(1).weighted_choice(("a", "b"), (1.0,))

    def test_geometric_mean_close_to_inverse_p(self):
        rng = DeterministicRng(10)
        draws = [rng.geometric(0.25, cap=100) for _ in range(5000)]
        mean = sum(draws) / len(draws)
        assert 3.2 <= mean <= 4.8  # expected 4

    def test_geometric_respects_cap(self):
        rng = DeterministicRng(11)
        assert all(rng.geometric(0.01, cap=5) <= 5 for _ in range(200))

    def test_geometric_bad_p_raises(self):
        with pytest.raises(ConfigError):
            DeterministicRng(1).geometric(0.0, cap=10)

    def test_zipf_index_in_range(self):
        rng = DeterministicRng(12)
        assert all(0 <= rng.zipf_index(64) < 64 for _ in range(500))

    def test_zipf_index_skews_low(self):
        rng = DeterministicRng(13)
        draws = [rng.zipf_index(100, skew=2.0) for _ in range(5000)]
        low = sum(1 for d in draws if d < 25)
        assert low > len(draws) * 0.4

    def test_zipf_bad_n_raises(self):
        with pytest.raises(ConfigError):
            DeterministicRng(1).zipf_index(0)
