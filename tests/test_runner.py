"""The sweep runner: specs, grids, caching, parallel determinism."""

import pytest

from repro.core.config import FireGuardConfig
from repro.core.system import FireGuardSystem
from repro.errors import ConfigError
from repro.kernels import make_kernel
from repro.runner import (
    AttackPlan,
    RunSpec,
    SweepRunner,
    execute_spec,
    sweep,
)
from repro.runner import worker as runner_worker
from repro.trace.attacks import AttackKind
from repro.trace.generator import generate_trace
from repro.trace.profiles import PARSEC_PROFILES

LEN = 3000


def spec_for(bench="swaptions", kernels=("pmc",), **kwargs):
    kwargs.setdefault("length", LEN)
    return RunSpec(benchmark=bench, kernels=kernels, **kwargs)


class TestRunSpec:
    def test_requires_kernels_or_software(self):
        with pytest.raises(ConfigError):
            RunSpec(benchmark="swaptions")
        with pytest.raises(ConfigError):
            RunSpec(benchmark="swaptions", kernels=("pmc",),
                    software="asan_aarch64")

    def test_collections_normalised(self):
        spec = RunSpec(benchmark="swaptions", kernels=["pmc"],
                       accelerated={"pmc"})
        assert spec.kernels == ("pmc",)
        assert isinstance(spec.accelerated, frozenset)

    def test_cache_key_stable_and_distinct(self):
        a = spec_for()
        assert a.cache_key() == spec_for().cache_key()
        assert a.cache_key() != spec_for(bench="dedup").cache_key()
        assert a.cache_key() != spec_for(seed=8).cache_key()
        assert a.cache_key() != spec_for(
            config=FireGuardConfig(fifo_depth=8)).cache_key()

    def test_system_key_ignores_workload(self):
        a = spec_for(bench="swaptions")
        b = spec_for(bench="dedup", seed=99)
        assert a.system_key() == b.system_key()

    def test_sweep_grid(self):
        specs = sweep(("swaptions", "dedup"),
                      kernels=[("pmc",), ("asan",)],
                      engines_per_kernel=[2, 4],
                      length=LEN)
        assert len(specs) == 8
        assert len({s.cache_key() for s in specs}) == 8
        # Benchmark is the outermost axis.
        assert [s.benchmark for s in specs[:4]] == ["swaptions"] * 4

    def test_sweep_rejects_unknown_field(self):
        with pytest.raises(ConfigError):
            sweep(("swaptions",), kernels=("pmc",), nonsense=[1, 2])

    def test_unknown_names_fail_at_construction(self):
        """Satellite: bad names raise a ConfigError naming the field
        at RunSpec construction, not mid-sweep inside a worker."""
        with pytest.raises(ConfigError, match="RunSpec.benchmark"):
            RunSpec(benchmark="nope", kernels=("pmc",))
        with pytest.raises(ConfigError, match="RunSpec.kernels"):
            RunSpec(benchmark="swaptions", kernels=("nope",))
        with pytest.raises(ConfigError, match="RunSpec.software"):
            RunSpec(benchmark="swaptions", software="nope")
        with pytest.raises(ConfigError, match="RunSpec.scenario"):
            RunSpec(benchmark="swaptions", kernels=("pmc",),
                    scenario="nope")

    def test_scenario_label_benchmark_is_allowed(self):
        # With a scenario the benchmark only labels the row.
        spec = RunSpec(benchmark="my-label", kernels=("pmc",),
                       scenario="boot-then-serve")
        assert spec.benchmark == "my-label"

    def test_stream_software_conflict_names_fields(self):
        with pytest.raises(ConfigError, match="stream"):
            RunSpec(benchmark="swaptions", software="asan_aarch64",
                    stream=True)


class TestExecution:
    def test_matches_direct_system_run(self):
        record = execute_spec(spec_for())
        trace = generate_trace(PARSEC_PROFILES["swaptions"], seed=7,
                               length=LEN)
        direct = FireGuardSystem(
            [make_kernel("pmc")],
            engines_per_kernel={"pmc": 4}).run(trace)
        assert record.result == direct
        assert record.slowdown >= 1.0

    def test_worker_reuses_sessions(self):
        runner_worker.clear_caches()
        execute_spec(spec_for(bench="swaptions"))
        execute_spec(spec_for(bench="dedup"))
        assert len(runner_worker._SESSIONS) == 1
        session = next(iter(runner_worker._SESSIONS.values()))
        assert session.runs_completed == 2

    def test_attack_plan_executes(self):
        record = execute_spec(spec_for(
            kernels=("shadow_stack",), need_baseline=False,
            attacks=AttackPlan(AttackKind.RET_HIJACK, 10)))
        assert record.injected_attacks == 10
        assert record.detected_attacks > 0
        with pytest.raises(ConfigError):
            record.slowdown  # no baseline was computed

    def test_software_scheme_executes(self):
        record = execute_spec(RunSpec(
            benchmark="swaptions", software="asan_aarch64", length=LEN))
        assert record.slowdown > 1.2


class TestRunnerCache:
    def test_records_memoised(self):
        runner = SweepRunner(workers=1)
        spec = spec_for()
        first = runner.run_one(spec)
        assert runner.run_one(spec) is first

    def test_duplicates_in_batch_run_once(self):
        runner = SweepRunner(workers=1, cache=False)
        records = runner.run([spec_for(), spec_for()])
        assert records[0].result == records[1].result

    def test_order_preserved(self):
        specs = sweep(("swaptions", "dedup"), kernels=("pmc",),
                      length=LEN)
        records = SweepRunner(workers=1).run(specs)
        assert [r.spec.benchmark for r in records] \
            == [s.benchmark for s in specs]


class TestDeterminism:
    """Acceptance: for a fixed seed, a reset session and the parallel
    runner produce results identical to fresh serial runs — over two
    benchmarks and two kernel sets."""

    BENCHMARKS = ("swaptions", "dedup")
    KERNEL_SETS = (("pmc",), ("asan", "pmc"))

    def _specs(self):
        return [spec_for(bench=bench, kernels=kset)
                for bench in self.BENCHMARKS
                for kset in self.KERNEL_SETS]

    def _fresh_serial(self, spec):
        trace = generate_trace(PARSEC_PROFILES[spec.benchmark],
                               seed=spec.seed, length=LEN)
        system = FireGuardSystem(
            [make_kernel(k) for k in spec.kernels],
            engines_per_kernel={k: spec.engines_per_kernel
                                for k in spec.kernels})
        return system.run(trace)

    def test_session_reset_matches_fresh_serial(self):
        for kset in self.KERNEL_SETS:
            system = FireGuardSystem(
                [make_kernel(k) for k in kset],
                engines_per_kernel={k: 4 for k in kset})
            session = system.session()
            for bench in self.BENCHMARKS:
                if session.dirty:
                    session.reset()
                trace = generate_trace(PARSEC_PROFILES[bench], seed=7,
                                       length=LEN)
                reused = session.run(trace)
                fresh = self._fresh_serial(
                    spec_for(bench=bench, kernels=kset))
                assert reused == fresh, (bench, kset)

    def test_parallel_runner_matches_fresh_serial(self):
        specs = self._specs()
        records = SweepRunner(workers=2, cache=False).run(specs)
        assert len(records) == len(specs)
        for spec, record in zip(specs, records):
            fresh = self._fresh_serial(spec)
            assert record.result == fresh, \
                (spec.benchmark, spec.kernels)

    def test_parallel_matches_serial_runner(self):
        specs = self._specs()
        serial = SweepRunner(workers=1, cache=False).run(specs)
        parallel = SweepRunner(workers=2, cache=False).run(specs)
        for a, b in zip(serial, parallel):
            assert a.result == b.result
            assert a.baseline_cycles == b.baseline_cycles
