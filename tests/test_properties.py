"""Property-based tests (hypothesis) on core data structures and
invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.event_filter import EventFilter
from repro.core.forwarding import DataForwardingChannel
from repro.core.minifilter import FilterEntry
from repro.core.msgqueue import MessageQueue
from repro.core.noc import MeshNoc, NocParams
from repro.core.msgqueue import WordQueue
from repro.core.packet import OFF_ADDR, OFF_DATA, OFF_PC, Packet
from repro.isa import opcodes as op
from repro.isa.decode import decode, encode_instr
from repro.isa.encoding import (
    decode_b_imm,
    decode_i_imm,
    decode_s_imm,
    encode_b,
    encode_i,
    encode_s,
)
from repro.isa.filter_index import filter_index, split_filter_index
from repro.isa.opcodes import InstrClass
from repro.mem.sparse import SparseMemory
from repro.trace.record import InstrRecord
from repro.utils.bitfield import Bitmap, sign_extend
from repro.utils.rng import DeterministicRng
from repro.utils.stats import geomean, percentile

regs = st.integers(min_value=0, max_value=31)
imm12 = st.integers(min_value=-2048, max_value=2047)
u64 = st.integers(min_value=0, max_value=(1 << 64) - 1)


class TestEncodingProperties:
    @given(rd=regs, rs1=regs, imm=imm12)
    def test_i_format_roundtrip(self, rd, rs1, imm):
        word = encode_i(op.OP_OP_IMM, rd, 0, rs1, imm)
        assert decode_i_imm(word) == imm
        d = decode(word)
        assert d.rd == rd and d.rs1 == rs1

    @given(rs1=regs, rs2=regs, imm=imm12)
    def test_s_format_roundtrip(self, rs1, rs2, imm):
        word = encode_s(op.OP_STORE, 0, rs1, rs2, imm)
        assert decode_s_imm(word) == imm

    @given(rs1=regs, rs2=regs,
           imm=st.integers(min_value=-2048, max_value=2047))
    def test_b_format_roundtrip(self, rs1, rs2, imm):
        word = encode_b(op.OP_BRANCH, 1, rs1, rs2, imm * 2)
        assert decode_b_imm(word) == imm * 2

    @given(opcode=st.integers(min_value=0, max_value=0x7F),
           funct3=st.integers(min_value=0, max_value=7))
    def test_filter_index_bijection(self, opcode, funct3):
        assert split_filter_index(filter_index(opcode, funct3)) \
            == (opcode, funct3)

    @given(value=st.integers(min_value=0, max_value=(1 << 12) - 1))
    def test_sign_extend_preserves_low_bits(self, value):
        extended = sign_extend(value, 12)
        assert extended & 0xFFF == value


class TestBitmapProperties:
    @given(bits_to_set=st.lists(st.integers(min_value=0, max_value=15),
                                max_size=20))
    def test_set_bits_match(self, bits_to_set):
        bm = Bitmap(16)
        for b in bits_to_set:
            bm.set(b)
        assert sorted(set(bits_to_set)) == list(bm.set_bits())
        assert bm.popcount() == len(set(bits_to_set))

    @given(a=st.integers(min_value=0, max_value=0xFFFF),
           b=st.integers(min_value=0, max_value=0xFFFF))
    def test_or_is_union(self, a, b):
        x, y = Bitmap(16, a), Bitmap(16, b)
        x.or_with(y)
        assert x.value == a | b


class TestSparseMemoryProperties:
    @given(addr=st.integers(min_value=0, max_value=(1 << 48)),
           value=u64,
           size=st.sampled_from([1, 2, 4, 8]))
    def test_store_load_roundtrip(self, addr, value, size):
        mem = SparseMemory()
        mem.store(addr, value, size)
        assert mem.load(addr, size) == value & ((1 << (8 * size)) - 1)

    @given(addr=st.integers(min_value=0, max_value=1 << 32),
           v1=u64, v2=u64)
    def test_disjoint_stores_independent(self, addr, v1, v2):
        mem = SparseMemory()
        mem.store(addr, v1, 8)
        mem.store(addr + 8, v2, 8)
        assert mem.load(addr, 8) == v1
        assert mem.load(addr + 8, 8) == v2


class TestStatsProperties:
    @given(values=st.lists(st.floats(min_value=0.1, max_value=100.0),
                           min_size=1, max_size=30))
    def test_geomean_between_min_and_max(self, values):
        g = geomean(values)
        assert min(values) - 1e-9 <= g <= max(values) + 1e-9

    @given(values=st.lists(st.floats(min_value=0.0, max_value=1e6),
                           min_size=1, max_size=50),
           pct=st.floats(min_value=0, max_value=100))
    def test_percentile_within_range(self, values, pct):
        p = percentile(values, pct)
        assert min(values) <= p <= max(values)


class TestRngProperties:
    @given(seed=u64)
    def test_streams_reproducible(self, seed):
        a, b = DeterministicRng(seed), DeterministicRng(seed)
        assert [a.next_u64() for _ in range(5)] \
            == [b.next_u64() for _ in range(5)]

    @given(seed=u64, lo=st.integers(-1000, 1000),
           span=st.integers(0, 1000))
    def test_randint_in_bounds(self, seed, lo, span):
        rng = DeterministicRng(seed)
        for _ in range(10):
            assert lo <= rng.randint(lo, lo + span) <= lo + span


def _mem_record(seq, addr, pc=0x100):
    word = encode_instr("ld", rd=5, rs1=8)
    return InstrRecord(seq=seq, pc=pc, word=word, opcode=op.OP_LOAD,
                       funct3=3, iclass=InstrClass.LOAD, dst=5,
                       srcs=(8,), mem_addr=addr, mem_size=8, result=addr)


class TestPacketProperties:
    @given(pc=st.integers(min_value=0, max_value=(1 << 48)),
           addr=st.integers(min_value=0, max_value=(1 << 48)))
    def test_fields_recoverable(self, pc, addr):
        pkt = Packet(seq=0, gid=1, record=_mem_record(0, addr, pc),
                     commit_ns=0.0)
        assert pkt.word(OFF_PC) == pc
        assert pkt.word(OFF_ADDR) == addr
        assert pkt.word(OFF_DATA) == addr


class TestEventFilterProperties:
    @settings(max_examples=30, deadline=None)
    @given(lanes=st.lists(st.integers(min_value=0, max_value=3),
                          min_size=1, max_size=60),
           monitored=st.lists(st.booleans(), min_size=60, max_size=60))
    def test_arbiter_emits_in_commit_order(self, lanes, monitored):
        fwd = DataForwardingChannel(None)
        f = EventFilter(width=4, fifo_depth=64, forwarding=fwd,
                        high_period_ns=0.3125)
        f.program(op.OP_LOAD, 3, FilterEntry(gid=1, dp_sel=0x2))
        alu = encode_instr("add", rd=5, rs1=6, rs2=7)
        expected = []
        for i, lane in enumerate(lanes):
            if monitored[i]:
                rec = _mem_record(i, 0x1000 + i * 8)
                expected.append(i)
            else:
                rec = InstrRecord(seq=i, pc=0x100, word=alu, opcode=0x33,
                                  funct3=0, iclass=InstrClass.INT_ALU,
                                  dst=5, srcs=(6, 7))
            assert f.offer(rec, lane=lane, cycle=i)
        emitted = []
        for cycle in range(len(lanes) + 4):
            pkt = f.arbitrate(cycle)
            if pkt is not None:
                emitted.append(pkt.seq)
        assert emitted == expected


class TestQueueProperties:
    @given(values=st.lists(u64, min_size=1, max_size=30))
    def test_word_queue_fifo(self, values):
        q = WordQueue(len(values))
        for v in values:
            assert q.push(v)
        assert [q.pop() for _ in values] == values

    @given(count=st.integers(min_value=1, max_value=20))
    def test_message_queue_pop_order(self, count):
        q = MessageQueue(count)
        for i in range(count):
            q.push(Packet(seq=i, gid=1, record=_mem_record(i, i * 8),
                          commit_ns=0.0))
        popped = [q.pop(OFF_ADDR) for _ in range(count)]
        assert popped == [i * 8 for i in range(count)]


class TestNocProperties:
    @settings(max_examples=30, deadline=None)
    @given(pairs=st.lists(
        st.tuples(st.integers(0, 8), st.integers(0, 8)),
        min_size=1, max_size=20))
    def test_all_words_delivered(self, pairs):
        noc = MeshNoc(NocParams(rows=3, cols=3),
                      [WordQueue(64) for _ in range(9)])
        for i, (src, dst) in enumerate(pairs):
            noc.send(src, dst, i, low_cycle=0)
        for cycle in range(200):
            noc.step(cycle)
        assert noc.idle
        delivered = sum(len(q) for q in noc.peer_queues)
        assert delivered == len(pairs)

    @given(src=st.integers(0, 8), dst=st.integers(0, 8))
    def test_xy_path_valid(self, src, dst):
        noc = MeshNoc(NocParams(rows=3, cols=3),
                      [WordQueue(4) for _ in range(9)])
        path = noc.xy_path(src, dst)
        assert path[0] == src and path[-1] == dst
        for a, b in zip(path, path[1:]):
            ra, ca = divmod(a, 3)
            rb, cb = divmod(b, 3)
            assert abs(ra - rb) + abs(ca - cb) == 1  # mesh neighbours
