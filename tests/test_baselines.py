"""Unit tests for the software-instrumentation baselines."""

import pytest

from repro.baselines import SCHEMES, instrument_trace, software_slowdown
from repro.errors import TraceError
from repro.isa.opcodes import InstrClass
from repro.trace.generator import generate_trace
from repro.trace.profiles import PARSEC_PROFILES


def trace_for(bench="dedup", seed=19, length=5000):
    return generate_trace(PARSEC_PROFILES[bench], seed=seed, length=length)


class TestInstrumentation:
    def test_schemes_registered(self):
        assert set(SCHEMES) == {"shadow_stack_sw", "asan_aarch64",
                                "asan_x86", "dangsan"}

    def test_asan_expands_every_mem_op(self):
        trace = trace_for()
        out = instrument_trace(trace, SCHEMES["asan_aarch64"])
        mem_ops = sum(1 for r in trace.records if r.is_mem)
        expected = len(trace.records) + mem_ops * SCHEMES[
            "asan_aarch64"].per_mem
        # Alloc/free instrumentation adds the remainder.
        assert len(out.records) >= expected

    def test_aarch64_longer_than_x86(self):
        trace = trace_for()
        a64 = instrument_trace(trace, SCHEMES["asan_aarch64"])
        x86 = instrument_trace(trace, SCHEMES["asan_x86"])
        assert len(a64.records) > len(x86.records)

    def test_original_records_preserved_in_order(self):
        trace = trace_for(length=2000)
        out = instrument_trace(trace, SCHEMES["asan_x86"])
        original_words = [r.word for r in trace.records]
        kept = [r.word for r in out.records
                if r.word in set(original_words)]
        # Every original instruction survives, in order.
        filtered = [w for w in kept if w in set(original_words)]
        assert len(out.records) > len(trace.records)
        orig_iter = iter(out.records)
        matched = 0
        for rec in trace.records:
            for cand in orig_iter:
                if (cand.pc == rec.pc and cand.word == rec.word
                        and cand.target == rec.target):
                    matched += 1
                    break
        assert matched == len(trace.records)

    def test_seq_renumbered(self):
        out = instrument_trace(trace_for(length=1500),
                               SCHEMES["asan_x86"])
        assert [r.seq for r in out.records] \
            == list(range(len(out.records)))

    def test_shadow_stack_only_touches_calls(self):
        trace = trace_for(length=3000)
        out = instrument_trace(trace, SCHEMES["shadow_stack_sw"])
        calls = sum(1 for r in trace.records
                    if r.iclass is InstrClass.CALL)
        rets = sum(1 for r in trace.records if r.iclass is InstrClass.RET)
        added = len(out.records) - len(trace.records)
        scheme = SCHEMES["shadow_stack_sw"]
        assert added == calls * scheme.per_call + rets * scheme.per_ret

    def test_dangsan_heavy_on_frees(self):
        trace = trace_for("dedup", length=4000)
        out = instrument_trace(trace, SCHEMES["dangsan"])
        assert len(out.records) > len(trace.records)

    def test_attack_ids_survive(self):
        from repro.trace.attacks import AttackKind, inject_attacks
        trace = trace_for(length=4000)
        inject_attacks(trace, AttackKind.OOB_ACCESS, 5)
        out = instrument_trace(trace, SCHEMES["asan_x86"])
        ids = {r.attack_id for r in out.records
               if r.attack_id is not None}
        assert len(ids) == 5


class TestSoftwareSlowdown:
    def test_asan_slower_than_shadow_stack(self):
        trace = trace_for("x264", length=4000)
        asan = software_slowdown(trace, "asan_aarch64")
        ss = software_slowdown(trace, "shadow_stack_sw")
        assert asan > ss
        assert asan > 1.5

    def test_aarch64_slower_than_x86(self):
        trace = trace_for("x264", length=4000)
        assert software_slowdown(trace, "asan_aarch64") \
            > software_slowdown(trace, "asan_x86")

    def test_unknown_scheme_raises(self):
        with pytest.raises(TraceError):
            software_slowdown(trace_for(length=1000), "nonexistent")

    def test_slowdown_at_least_one(self):
        trace = trace_for("swaptions", length=3000)
        for scheme in SCHEMES:
            assert software_slowdown(trace, scheme) >= 0.99
