"""Unit tests for the RISC-V ISA substrate."""

import pytest

from repro.errors import EncodingError
from repro.isa import opcodes as op
from repro.isa.decode import decode, encode_instr
from repro.isa.encoding import (
    decode_b_imm,
    decode_i_imm,
    decode_j_imm,
    decode_s_imm,
    decode_u_imm,
    encode_b,
    encode_i,
    encode_j,
    encode_r,
    encode_s,
    encode_u,
)
from repro.isa.filter_index import (
    FILTER_TABLE_SIZE,
    filter_index,
    split_filter_index,
)
from repro.isa.opcodes import InstrClass, classify
from repro.isa.registers import reg_name, reg_number


class TestEncodingRoundTrips:
    def test_i_imm_roundtrip(self):
        for imm in (-2048, -1, 0, 1, 2047):
            word = encode_i(op.OP_OP_IMM, 5, 0, 6, imm)
            assert decode_i_imm(word) == imm

    def test_s_imm_roundtrip(self):
        for imm in (-2048, -7, 0, 9, 2047):
            word = encode_s(op.OP_STORE, 3, 10, 11, imm)
            assert decode_s_imm(word) == imm

    def test_b_imm_roundtrip(self):
        for imm in (-4096, -2, 0, 2, 4094):
            word = encode_b(op.OP_BRANCH, 1, 5, 6, imm)
            assert decode_b_imm(word) == imm

    def test_u_imm_roundtrip(self):
        for imm in (0, 1, 0xFFFFF):
            word = encode_u(op.OP_LUI, 7, imm)
            assert decode_u_imm(word) == imm

    def test_j_imm_roundtrip(self):
        for imm in (-(1 << 20), -2, 0, 2, (1 << 20) - 2):
            word = encode_j(op.OP_JAL, 1, imm)
            assert decode_j_imm(word) == imm

    def test_b_imm_odd_rejected(self):
        with pytest.raises(EncodingError):
            encode_b(op.OP_BRANCH, 0, 1, 2, 3)

    def test_j_imm_odd_rejected(self):
        with pytest.raises(EncodingError):
            encode_j(op.OP_JAL, 1, 5)

    def test_register_range_checked(self):
        with pytest.raises(EncodingError):
            encode_r(op.OP_OP, 32, 0, 0, 0, 0)

    def test_imm_range_checked(self):
        with pytest.raises(EncodingError):
            encode_i(op.OP_OP_IMM, 1, 0, 1, 2048)


class TestDecode:
    def test_lb_fields(self):
        word = encode_instr("lb", rd=5, rs1=10, imm=-4)
        d = decode(word)
        assert d.mnemonic == "lb"
        assert d.opcode == op.OP_LOAD
        assert d.funct3 == op.F3_LB
        assert d.rd == 5 and d.rs1 == 10 and d.imm == -4
        assert d.iclass is InstrClass.LOAD

    def test_sb_fields(self):
        d = decode(encode_instr("sb", rs1=11, rs2=12, imm=8))
        assert d.mnemonic == "sb"
        assert d.opcode == op.OP_STORE
        assert d.iclass is InstrClass.STORE

    def test_add_vs_sub_funct7(self):
        assert decode(encode_instr("add", rd=1, rs1=2, rs2=3)).mnemonic \
            == "add"
        assert decode(encode_instr("sub", rd=1, rs1=2, rs2=3)).mnemonic \
            == "sub"

    def test_mul_is_muldiv_class(self):
        d = decode(encode_instr("mul", rd=5, rs1=6, rs2=7))
        assert d.iclass is InstrClass.INT_MUL

    def test_div_class(self):
        d = decode(encode_instr("div", rd=5, rs1=6, rs2=7))
        assert d.iclass is InstrClass.INT_DIV

    def test_jal_ra_is_call(self):
        d = decode(encode_instr("jal", rd=1, imm=0))
        assert d.iclass is InstrClass.CALL

    def test_jal_x0_is_jump(self):
        d = decode(encode_instr("jal", rd=0, imm=0))
        assert d.iclass is InstrClass.JUMP

    def test_jalr_ra_return(self):
        d = decode(encode_instr("jalr", rd=0, rs1=1, imm=0))
        assert d.iclass is InstrClass.RET

    def test_branch_class(self):
        d = decode(encode_instr("bne", rs1=5, rs2=6, imm=8))
        assert d.iclass is InstrClass.BRANCH
        assert d.mnemonic == "bne"

    def test_custom0_class(self):
        d = decode(encode_instr("custom0.f1", rs1=10))
        assert d.iclass is InstrClass.CUSTOM
        assert d.opcode == op.OP_CUSTOM0
        assert d.funct3 == 1

    def test_unknown_word_does_not_raise(self):
        d = decode(0xFFFFFFFF)
        assert d.mnemonic in ("unknown", "custom1.f7")

    def test_word_out_of_range_raises(self):
        with pytest.raises(EncodingError):
            decode(1 << 32)

    def test_unknown_mnemonic_raises(self):
        with pytest.raises(EncodingError):
            encode_instr("bogus")

    def test_disassemble_smoke(self):
        text = decode(encode_instr("ld", rd=5, rs1=8, imm=16)).disassemble()
        assert "ld" in text and "t0" in text and "s0" in text


class TestClassify:
    def test_fp_opcode(self):
        assert classify(op.OP_OP_FP, 0) is InstrClass.FP_ALU

    def test_fence(self):
        assert classify(op.OP_MISC_MEM, 0) is InstrClass.FENCE

    def test_system_csr(self):
        assert classify(op.OP_SYSTEM, 1) is InstrClass.CSR
        assert classify(op.OP_SYSTEM, 0) is InstrClass.SYSTEM

    def test_amo_is_load(self):
        assert classify(op.OP_AMO, 2) is InstrClass.LOAD


class TestFilterIndex:
    def test_paper_examples(self):
        # §III-B: 0x03 and 0x23 index lb and sb respectively.
        assert filter_index(op.OP_LOAD, 0) == 0x03
        assert filter_index(op.OP_STORE, 0) == 0x23

    def test_funct3_in_high_bits(self):
        assert filter_index(op.OP_LOAD, 3) == (3 << 7) | 0x03

    def test_table_size(self):
        assert FILTER_TABLE_SIZE == 1024

    def test_roundtrip_all(self):
        for opcode in (0x03, 0x23, 0x63, 0x7F):
            for funct3 in range(8):
                idx = filter_index(opcode, funct3)
                assert split_filter_index(idx) == (opcode, funct3)

    def test_range_checks(self):
        with pytest.raises(EncodingError):
            filter_index(0x80, 0)
        with pytest.raises(EncodingError):
            filter_index(0x03, 8)
        with pytest.raises(EncodingError):
            split_filter_index(1024)


class TestRegisters:
    def test_abi_roundtrip(self):
        for i in range(32):
            assert reg_number(reg_name(i)) == i

    def test_x_names(self):
        assert reg_number("x17") == 17

    def test_fp_alias(self):
        assert reg_number("fp") == 8
        assert reg_number("s0") == 8

    def test_unknown_raises(self):
        with pytest.raises(EncodingError):
            reg_number("q3")

    def test_bad_number_raises(self):
        with pytest.raises(EncodingError):
            reg_name(32)
