"""Unit tests for the OoO core model and its components."""

import pytest

from repro.errors import ConfigError, SimulationError
from repro.isa.decode import encode_instr
from repro.isa.opcodes import InstrClass
from repro.ooo.core import CoreResult, MainCore
from repro.ooo.issue import FunctionalUnitPool, FuParams
from repro.ooo.lsq import LoadStoreQueues
from repro.ooo.params import CoreParams
from repro.ooo.prf import PhysicalRegisterFile
from repro.ooo.rob import ReorderBuffer
from repro.trace.generator import generate_trace
from repro.trace.profiles import PARSEC_PROFILES
from repro.trace.record import InstrRecord, Trace


def alu_record(seq, dst=5, srcs=(6, 7), pc=0x1000):
    word = encode_instr("add", rd=dst, rs1=srcs[0], rs2=srcs[1])
    return InstrRecord(seq=seq, pc=pc, word=word, opcode=0x33, funct3=0,
                       iclass=InstrClass.INT_ALU, dst=dst, srcs=srcs,
                       result=1)


def make_trace(records):
    return Trace(name="synthetic", seed=0, records=records)


class TestReorderBuffer:
    def test_fifo_order(self):
        rob = ReorderBuffer(4)
        a, b = alu_record(0), alu_record(1)
        rob.dispatch(a, 5)
        rob.dispatch(b, 3)
        assert rob.commit_head().record is a
        assert rob.commit_head().record is b

    def test_full_and_empty(self):
        rob = ReorderBuffer(2)
        assert rob.empty
        rob.dispatch(alu_record(0), 1)
        rob.dispatch(alu_record(1), 1)
        assert rob.full

    def test_overflow_raises(self):
        rob = ReorderBuffer(1)
        rob.dispatch(alu_record(0), 1)
        with pytest.raises(SimulationError):
            rob.dispatch(alu_record(1), 1)

    def test_commit_empty_raises(self):
        with pytest.raises(SimulationError):
            ReorderBuffer(1).commit_head()

    def test_peak_occupancy(self):
        rob = ReorderBuffer(4)
        rob.dispatch(alu_record(0), 1)
        rob.dispatch(alu_record(1), 1)
        rob.commit_head()
        assert rob.stat_peak_occupancy == 2


class TestLoadStoreQueues:
    def test_load_occupancy(self):
        lsq = LoadStoreQueues(2, 2)
        lsq.dispatch(InstrClass.LOAD)
        lsq.dispatch(InstrClass.LOAD)
        assert not lsq.can_dispatch(InstrClass.LOAD)
        assert lsq.can_dispatch(InstrClass.STORE)
        lsq.commit(InstrClass.LOAD)
        assert lsq.can_dispatch(InstrClass.LOAD)

    def test_non_mem_always_fits(self):
        lsq = LoadStoreQueues(1, 1)
        lsq.dispatch(InstrClass.LOAD)
        lsq.dispatch(InstrClass.STORE)
        assert lsq.can_dispatch(InstrClass.INT_ALU)

    def test_underflow_raises(self):
        with pytest.raises(SimulationError):
            LoadStoreQueues(1, 1).commit(InstrClass.LOAD)


class TestPrf:
    def test_ports_free_without_contention(self):
        prf = PhysicalRegisterFile(read_ports=4)
        assert prf.acquire_read_ports(10, 2) == 10

    def test_port_exhaustion_slips(self):
        prf = PhysicalRegisterFile(read_ports=2)
        assert prf.acquire_read_ports(5, 2) == 5
        assert prf.acquire_read_ports(5, 2) == 6

    def test_preemption_blocks_issue(self):
        prf = PhysicalRegisterFile(read_ports=2)
        prf.preempt_port(7, count=1)
        # Only one port left at cycle 7.
        assert prf.acquire_read_ports(7, 2) == 8
        assert prf.stat_contention_slips >= 1

    def test_zero_count_free(self):
        prf = PhysicalRegisterFile(read_ports=1)
        assert prf.acquire_read_ports(3, 0) == 3

    def test_count_clamped_to_ports(self):
        prf = PhysicalRegisterFile(read_ports=2)
        assert prf.acquire_read_ports(0, 5) == 0


class TestFuPool:
    def _pool(self):
        units = {"alu": FuParams(count=2, latency=1),
                 "div": FuParams(count=1, latency=8,
                                 initiation_interval=8)}
        cmap = {InstrClass.INT_ALU: "alu", InstrClass.INT_DIV: "div"}
        return FunctionalUnitPool(units, cmap)

    def test_parallel_units(self):
        pool = self._pool()
        assert pool.acquire(InstrClass.INT_ALU, 0) == 0
        assert pool.acquire(InstrClass.INT_ALU, 0) == 0
        assert pool.acquire(InstrClass.INT_ALU, 0) == 1  # both busy

    def test_unpipelined_div(self):
        pool = self._pool()
        assert pool.acquire(InstrClass.INT_DIV, 0) == 0
        assert pool.acquire(InstrClass.INT_DIV, 1) == 8

    def test_unknown_class_raises(self):
        with pytest.raises(ConfigError):
            self._pool().acquire(InstrClass.FP_ALU, 0)

    def test_latency_lookup(self):
        assert self._pool().latency(InstrClass.INT_DIV) == 8


class TestMainCore:
    def test_empty_isnt_done_until_begun(self):
        core = MainCore()
        trace = make_trace([alu_record(i) for i in range(10)])
        result = core.run_standalone(trace)
        assert result.committed == 10
        assert core.done

    def test_ipc_bounded_by_width(self):
        records = []
        # Fully independent single-source instructions.
        for i in range(400):
            records.append(alu_record(i, dst=5 + i % 20,
                                      srcs=(8, 9), pc=0x1000 + 4 * i))
        result = MainCore().run_standalone(make_trace(records))
        assert result.ipc <= 4.0
        # The one cold icache fill costs a DRAM round trip on this
        # short trace, so steady-state IPC ~4 shows up as ~1 here.
        assert result.ipc > 0.6

    def test_serial_chain_limits_ipc(self):
        records = []
        for i in range(200):
            # Each instruction depends on the previous one's result.
            records.append(alu_record(i, dst=5, srcs=(5, 5),
                                      pc=0x1000 + 4 * i))
        result = MainCore().run_standalone(make_trace(records))
        assert result.ipc <= 1.05

    def test_deterministic(self):
        trace = generate_trace(PARSEC_PROFILES["ferret"], seed=11,
                               length=3000)
        r1 = MainCore().run_standalone(trace)
        r2 = MainCore().run_standalone(trace)
        assert r1.cycles == r2.cycles
        assert r1.committed == r2.committed

    def test_commit_count_matches_trace(self):
        trace = generate_trace(PARSEC_PROFILES["swaptions"], seed=2,
                               length=2500)
        result = MainCore().run_standalone(trace)
        assert result.committed == len(trace.records)

    def test_observer_backpressure_stalls(self):
        class RejectingObserver:
            lanes = 4

            def __init__(self):
                self.offered = 0
                self.rejections = 50

            def offer(self, record, lane, cycle):
                if self.rejections > 0:
                    self.rejections -= 1
                    return False
                self.offered += 1
                return True

        core = MainCore()
        observer = RejectingObserver()
        core.attach_observer(observer)
        trace = make_trace([alu_record(i) for i in range(40)])
        core.begin(trace)
        cycle = 0
        while not core.done and cycle < 10000:
            core.step(cycle)
            cycle += 1
        assert observer.offered == 40
        assert core.result.stall_backpressure == 50

    def test_narrow_observer_limits_commit_width(self):
        class NarrowObserver:
            lanes = 1

            def offer(self, record, lane, cycle):
                assert lane == 0
                return True

        core = MainCore()
        core.attach_observer(NarrowObserver())
        records = [alu_record(i, dst=5 + i % 20, srcs=(8, 9))
                   for i in range(200)]
        result_narrow_cycles = None
        core.begin(make_trace(records))
        cycle = 0
        while not core.done:
            core.step(cycle)
            cycle += 1
        result_narrow_cycles = core.result.cycles
        # 1-wide commit cannot beat 1 IPC.
        assert result_narrow_cycles >= 200

    def test_attack_commit_times_recorded(self):
        records = [alu_record(i) for i in range(20)]
        records[10].attack_id = 3
        core = MainCore()
        core.begin(make_trace(records), record_commit_times=True)
        cycle = 0
        while not core.done:
            core.step(cycle)
            cycle += 1
        assert 3 in core.result.commit_times

    def test_runaway_raises(self):
        core = MainCore()
        trace = make_trace([alu_record(i) for i in range(100)])
        with pytest.raises(SimulationError):
            core.run_standalone(trace, max_cycles=3)

    def test_mem_instructions_access_hierarchy(self):
        word = encode_instr("ld", rd=5, rs1=8)
        records = [
            InstrRecord(seq=i, pc=0x1000 + 4 * i, word=word, opcode=0x03,
                        funct3=3, iclass=InstrClass.LOAD, dst=5, srcs=(8,),
                        mem_addr=0x10000 + 64 * i, mem_size=8)
            for i in range(32)
        ]
        core = MainCore()
        core.run_standalone(make_trace(records))
        assert core.hierarchy.l1d.stat_misses > 0

    def test_params_validation(self):
        with pytest.raises(ConfigError):
            CoreParams(width=0)
        with pytest.raises(ConfigError):
            CoreParams(prf_read_ports=1)

    def test_result_ipc_zero_before_run(self):
        assert CoreResult(cycles=0, committed=0).ipc == 0.0
