"""Unit tests for the guardian kernels: programs assemble, filter
groups are sane, and each kernel's semantics hold in a live system."""

import pytest

from repro.core.config import DP_FTQ, DP_LSQ, DP_PRF, FireGuardConfig
from repro.core.scheduling import SchedulingPolicy
from repro.core.system import FireGuardSystem
from repro.errors import KernelError
from repro.kernels import (
    GROUP_CTRL,
    GROUP_EVENT,
    GROUP_MEM,
    KERNELS,
    AsanKernel,
    KernelStrategy,
    PmcKernel,
    ShadowStackKernel,
    UafKernel,
    group_rules,
    make_kernel,
)
from repro.kernels.pmc import DEFAULT_BOUND_HI, DEFAULT_BOUND_LO
from repro.trace.attacks import AttackKind, inject_attacks
from repro.trace.generator import generate_trace
from repro.trace.profiles import PARSEC_PROFILES
from repro.ucore.assembler import assemble


class TestGroups:
    def test_mem_rule_covers_loads_and_stores(self):
        rule = group_rules(GROUP_MEM)
        opcodes = {opcode for opcode, _ in rule.rows}
        assert opcodes == {0x03, 0x23}
        assert rule.dp_sel & DP_LSQ and rule.dp_sel & DP_PRF

    def test_ctrl_rule_programs_all_jal_rows(self):
        rule = group_rules(GROUP_CTRL)
        jal_rows = [f3 for opcode, f3 in rule.rows if opcode == 0x6F]
        assert jal_rows == [None]  # all funct3 rows
        assert rule.dp_sel & DP_FTQ

    def test_event_rule(self):
        rule = group_rules(GROUP_EVENT)
        assert (0x0B, 0) in rule.rows and (0x0B, 1) in rule.rows

    def test_gids_distinct(self):
        assert len({GROUP_MEM, GROUP_CTRL, GROUP_EVENT}) == 3


class TestKernelDefinitions:
    def test_registry_complete(self):
        assert set(KERNELS) == {"pmc", "shadow_stack", "asan", "uaf"}

    def test_make_kernel_unknown_raises(self):
        with pytest.raises(KernelError):
            make_kernel("rowhammer")

    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_programs_assemble(self, name):
        kernel = make_kernel(name)
        program = assemble(kernel.program_source())
        assert len(program) > 4

    @pytest.mark.parametrize("strategy", list(KernelStrategy))
    def test_pmc_strategies_assemble(self, strategy):
        program = assemble(PmcKernel(strategy=strategy).program_source())
        assert program

    def test_pmc_groups(self):
        assert PmcKernel().groups == (GROUP_MEM,)

    def test_shadow_stack_uses_block_policy(self):
        assert ShadowStackKernel().policy is SchedulingPolicy.BLOCK

    def test_asan_and_uaf_monitor_events(self):
        assert GROUP_EVENT in AsanKernel().groups
        assert GROUP_EVENT in UafKernel().groups

    def test_uaf_shadow_disjoint_from_asan(self):
        asan = AsanKernel().preset_registers(0, [0], 0)
        uaf = UafKernel().preset_registers(0, [0], 0)
        assert asan[8] != uaf[8]

    def test_preset_registers_ring(self):
        regs = ShadowStackKernel().preset_registers(5, [4, 5, 6], 1)
        assert regs[20] == 3     # group size
        assert regs[22] == 6     # next engine in the ring
        assert regs[24] == 1     # position

    def test_accelerator_availability(self):
        assert PmcKernel().has_accelerator
        assert ShadowStackKernel().has_accelerator
        assert AsanKernel().has_accelerator
        assert not UafKernel().has_accelerator
        with pytest.raises(KernelError):
            UafKernel().make_accelerator(0, None, None)


def run_with_attacks(kernel_name, bench, kind, count=10, seed=31,
                     length=8000, engines=4):
    trace = generate_trace(PARSEC_PROFILES[bench], seed=seed,
                           length=length)
    sites = inject_attacks(trace, kind, count,
                           pmc_bounds=(DEFAULT_BOUND_LO, DEFAULT_BOUND_HI))
    config = FireGuardConfig(num_engines=engines)
    system = FireGuardSystem([make_kernel(kernel_name)], config=config)
    result = system.run(trace)
    return sites, result


class TestKernelSemantics:
    def test_pmc_detects_bound_violations(self):
        sites, result = run_with_attacks("pmc", "ferret",
                                         AttackKind.PMC_BOUND)
        assert len(result.detections) == len(sites)

    def test_pmc_no_false_positives(self):
        trace = generate_trace(PARSEC_PROFILES["swaptions"], seed=3,
                               length=5000)
        system = FireGuardSystem([make_kernel("pmc")])
        result = system.run(trace)
        assert not result.alerts

    def test_shadow_stack_detects_hijacks(self):
        sites, result = run_with_attacks("shadow_stack", "bodytrack",
                                         AttackKind.RET_HIJACK)
        assert len(result.detections) == len(sites)

    def test_shadow_stack_clean_run_silent(self):
        trace = generate_trace(PARSEC_PROFILES["dedup"], seed=3,
                               length=6000)
        system = FireGuardSystem([make_kernel("shadow_stack")])
        result = system.run(trace)
        assert not result.alerts

    def test_shadow_stack_single_engine(self):
        sites, result = run_with_attacks("shadow_stack", "bodytrack",
                                         AttackKind.RET_HIJACK, engines=1)
        assert len(result.detections) == len(sites)

    def test_asan_detects_oob(self):
        sites, result = run_with_attacks("asan", "dedup",
                                         AttackKind.OOB_ACCESS)
        assert len(result.detections) >= len(sites) * 0.8

    def test_asan_clean_run_near_silent(self):
        # Subject to the same asynchronous-checking skew race as UaF
        # (see test_uaf_clean_run_near_silent): an access committed
        # just before a free may be checked after the poisoning.
        trace = generate_trace(PARSEC_PROFILES["freqmine"], seed=3,
                               length=6000)
        system = FireGuardSystem([make_kernel("asan")])
        result = system.run(trace)
        frees = sum(1 for o in trace.objects if o.free_seq is not None)
        assert len(result.alerts) <= max(2, frees // 10)

    def test_uaf_detects_dangling_access(self):
        sites, result = run_with_attacks("uaf", "dedup",
                                         AttackKind.UAF_ACCESS)
        assert len(result.detections) >= len(sites) * 0.7

    def test_uaf_clean_run_near_silent(self):
        # Parallel asynchronous checking has an inherent skew race: an
        # access committed just before a free can be *checked* after
        # another engine processed the free's poisoning (the ordering
        # sensitivity §III-C's block mode exists to avoid).  A handful
        # of such borderline alerts is expected; a flood is a bug.
        trace = generate_trace(PARSEC_PROFILES["dedup"], seed=5,
                               length=6000)
        system = FireGuardSystem([make_kernel("uaf")])
        result = system.run(trace)
        frees = sum(1 for o in trace.objects if o.free_seq is not None)
        assert len(result.alerts) <= max(2, frees // 10)

    def test_detection_latency_positive(self):
        _, result = run_with_attacks("shadow_stack", "bodytrack",
                                     AttackKind.RET_HIJACK)
        for latency in result.detection_latencies():
            assert latency >= 0.0

    def test_pmc_ha_detects(self):
        trace = generate_trace(PARSEC_PROFILES["ferret"], seed=31,
                               length=8000)
        sites = inject_attacks(trace, AttackKind.PMC_BOUND, 10,
                               pmc_bounds=(DEFAULT_BOUND_LO,
                                           DEFAULT_BOUND_HI))
        system = FireGuardSystem([make_kernel("pmc")],
                                 accelerated={"pmc"})
        result = system.run(trace)
        assert len(result.detections) == len(sites)

    def test_shadow_ha_detects(self):
        trace = generate_trace(PARSEC_PROFILES["bodytrack"], seed=31,
                               length=8000)
        sites = inject_attacks(trace, AttackKind.RET_HIJACK, 10)
        system = FireGuardSystem([make_kernel("shadow_stack")],
                                 accelerated={"shadow_stack"})
        result = system.run(trace)
        assert len(result.detections) == len(sites)
