"""Setup shim.

The canonical metadata lives in pyproject.toml; this file exists so
``pip install -e .`` works in offline environments whose setuptools
lacks the ``wheel`` package needed for PEP 660 editable builds.
"""

from setuptools import setup

setup()
