"""Fig 7(b) benchmark: combined safeguards."""

from conftest import bench_set

from repro.analysis.report import format_table
from repro.experiments import fig7b


def test_fig7b_combined_safeguards(benchmark):
    table = benchmark.pedantic(
        lambda: fig7b.run(benchmarks=bench_set()),
        rounds=1, iterations=1)
    print()
    print(format_table(table.rows(),
                       title="Fig 7(b): combined safeguards"))
    # Shape: combinations cost at least as much as their parts would
    # singly, but nowhere near the product (the paper's headline).
    for bench in bench_set():
        two = table.get(bench, "ss+pmc")
        three = table.get(bench, "ss+pmc+as")
        assert three >= two - 0.05
