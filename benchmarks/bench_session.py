"""Session/client microbenchmarks: what build-once/run-many buys.

These regression-track the two mechanisms every sweep leans on:
session reuse (build one system, ``reset()`` between traces) versus
rebuilding the system per run, and the service client's per-spec
record cache (the persistent-store variant is timed separately in
``bench_service.py``).
"""

from conftest import bench_set

from repro.core.system import FireGuardSystem
from repro.kernels import make_kernel
from repro.runner import sweep
from repro.service import Client
from repro.trace.generator import generate_trace
from repro.trace.profiles import PARSEC_PROFILES

TRACE_LEN = 3000


def _traces():
    return [generate_trace(PARSEC_PROFILES[name], seed=5,
                           length=TRACE_LEN)
            for name in bench_set()]


def test_session_reuse_many_traces(benchmark):
    """One built system runs every benchmark trace via reset()."""
    traces = _traces()
    session = FireGuardSystem([make_kernel("asan")]).session()

    def run():
        cycles = 0
        for trace in traces:
            if session.dirty:
                session.reset()
            cycles += session.run(trace).cycles
        return cycles

    reused = benchmark.pedantic(run, rounds=1, iterations=1)

    # The reused session must match fresh builds bit for bit.
    fresh = sum(FireGuardSystem([make_kernel("asan")]).run(t).cycles
                for t in traces)
    assert reused == fresh


def test_rebuild_per_trace(benchmark):
    """Baseline for the above: fresh build for every trace."""
    traces = _traces()

    def run():
        cycles = 0
        for trace in traces:
            system = FireGuardSystem([make_kernel("asan")])
            cycles += system.run(trace).cycles
        return cycles

    assert benchmark.pedantic(run, rounds=1, iterations=1) > 0


def test_client_record_cache(benchmark):
    """A repeated sweep is answered from the client's memory cache."""
    specs = sweep(bench_set(), kernels=("pmc",), length=TRACE_LEN)
    with Client(workers=1, store=False) as client:
        first = client.run(specs)

        def rerun():
            return client.run(specs)

        again = benchmark(rerun)
    assert [r.result for r in again] == [r.result for r in first]
    assert client.stats.executed == len(specs)  # only the cold pass
