"""Fig 8 benchmark: detection latency distributions."""

from conftest import bench_set

from repro.analysis.report import format_table
from repro.experiments import fig8


def test_fig8_detection_latency(benchmark):
    rows = benchmark.pedantic(
        lambda: fig8.run(benchmarks=bench_set(), attacks=30),
        rounds=1, iterations=1)
    table = [["benchmark", "kernel", "injected", "detected", "min_ns",
              "median_ns", "p90_ns", "max_ns"]]
    table.extend(r.as_row() for r in rows)
    print()
    print(format_table(table, title="Fig 8: detection latency (ns)"))

    by_kernel = {}
    for row in rows:
        if row.summary is not None:
            by_kernel.setdefault(row.kernel, []).append(
                row.summary.median)
    # Shape: PMC is the fastest detector; ASan's tail exceeds PMC's.
    pmc = max(by_kernel["pmc"])
    asan = max(by_kernel["asan"])
    assert pmc <= asan
    # Detection rates: the vast majority of attacks are caught.
    detected = sum(r.detected for r in rows)
    injected = sum(r.injected for r in rows)
    assert detected >= injected * 0.85
