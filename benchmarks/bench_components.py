"""Component microbenchmarks: throughput of the individual FireGuard
elements (useful for regression-tracking the simulator itself)."""

from repro.core.allocator import Allocator, Distributor
from repro.core.event_filter import EventFilter
from repro.core.forwarding import DataForwardingChannel
from repro.core.minifilter import FilterEntry
from repro.core.msgqueue import WordQueue
from repro.core.noc import MeshNoc, NocParams
from repro.core.packet import Packet
from repro.core.scheduling import SchedulingEngine, SchedulingPolicy
from repro.isa import opcodes as op
from repro.isa.decode import encode_instr
from repro.isa.opcodes import InstrClass
from repro.mem.cache import CacheParams, SetAssocCache
from repro.ooo.core import MainCore
from repro.trace.generator import generate_trace
from repro.trace.profiles import PARSEC_PROFILES
from repro.trace.record import InstrRecord


def _load_record(seq):
    word = encode_instr("ld", rd=5, rs1=8)
    return InstrRecord(seq=seq, pc=0x100 + seq * 4, word=word,
                       opcode=op.OP_LOAD, funct3=3,
                       iclass=InstrClass.LOAD, dst=5, srcs=(8,),
                       mem_addr=0x1000 + seq * 64, mem_size=8)


def test_event_filter_throughput(benchmark):
    fwd = DataForwardingChannel(None)
    records = [_load_record(i) for i in range(256)]

    def run():
        f = EventFilter(width=4, fifo_depth=16, forwarding=fwd,
                        high_period_ns=0.3125)
        f.program(op.OP_LOAD, 3, FilterEntry(gid=1, dp_sel=0x2))
        emitted = 0
        i = 0
        cycle = 0
        while emitted < len(records):
            while i < len(records) and f.offer(records[i], i % 4, cycle):
                i += 1
                if i % 4 == 0:
                    break
            if f.arbitrate(cycle) is not None:
                emitted += 1
            cycle += 1
        return emitted

    assert benchmark(run) == 256


def test_allocator_throughput(benchmark):
    d = Distributor(max_gids=8, num_ses=4)
    ses = [SchedulingEngine(i, engines=[4 * i + j for j in range(4)],
                            num_engines_total=16,
                            policy=SchedulingPolicy.ROUND_ROBIN)
           for i in range(4)]
    for se in range(4):
        d.subscribe(1, se)
    alloc = Allocator(d, ses, num_engines=16)
    pkt = Packet(seq=0, gid=1, record=_load_record(0), commit_ns=0.0)

    def run():
        total = 0
        for _ in range(1000):
            total += alloc.route(pkt)
        return total

    assert benchmark(run) > 0


def test_noc_throughput(benchmark):
    def run():
        noc = MeshNoc(NocParams(rows=4, cols=4),
                      [WordQueue(256) for _ in range(16)])
        for i in range(500):
            noc.send(i % 16, (i * 7) % 16, i, low_cycle=i)
        cycle = 0
        while not noc.idle:
            noc.step(cycle)
            cycle += 1
        return cycle

    assert benchmark(run) > 0


def test_cache_lookup_throughput(benchmark):
    cache = SetAssocCache(CacheParams(name="bench",
                                      size_bytes=32 * 1024, ways=8))

    def run():
        hits = 0
        for i in range(2000):
            hit, _ = cache.lookup((i * 64) % (64 * 1024), i, 10)
            hits += hit
        return hits

    benchmark(run)


def test_main_core_simulation_rate(benchmark):
    trace = generate_trace(PARSEC_PROFILES["swaptions"], seed=9,
                           length=4000)

    def run():
        return MainCore().run_standalone(trace).cycles

    assert benchmark(run) > 0
