"""Fig 11 benchmark: programming models (PMC, 4 µcores)."""

from conftest import bench_set

from repro.analysis.report import format_table
from repro.experiments import fig11


def test_fig11_programming_models(benchmark):
    table = benchmark.pedantic(
        lambda: fig11.run(benchmarks=bench_set()),
        rounds=1, iterations=1)
    print()
    print(format_table(table.rows(),
                       title="Fig 11: programming models (PMC)"))
    conv = table.scheme_geomean("conventional")
    duff = table.scheme_geomean("duff")
    hybrid = table.scheme_geomean("hybrid")
    unrolled = table.scheme_geomean("unrolled")
    # Shape: conventional worst; hazard-aware strategies win.
    assert conv >= duff - 1e-9
    assert conv >= hybrid
    assert min(hybrid, unrolled) <= duff + 1e-9
