"""Fig 7(a) benchmark: FireGuard (4 µcores / 1 HA) vs software."""

from conftest import bench_set

from repro.analysis.report import format_table
from repro.experiments import fig7a


def test_fig7a_fireguard_vs_software(benchmark):
    table = benchmark.pedantic(
        lambda: fig7a.run(benchmarks=bench_set()),
        rounds=1, iterations=1)
    print()
    print(format_table(table.rows(),
                       title="Fig 7(a): slowdown vs software schemes"))
    # Shape checks from the paper: HA removes PMC overhead; FireGuard
    # ASan beats software ASan on every benchmark measured.
    for bench in bench_set():
        assert table.get(bench, "pmc_fg_ha") <= 1.02
        assert table.get(bench, "asan_fg_4uc") \
            < table.get(bench, "asan_sw_aarch64")
