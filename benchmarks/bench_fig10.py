"""Fig 10 benchmark: slowdown vs µcore count, one test per panel."""

import pytest
from conftest import bench_set

from repro.analysis.report import format_table
from repro.experiments import fig10

PANELS = [("a", "pmc"), ("b", "shadow_stack"), ("c", "asan"),
          ("d", "uaf")]


@pytest.mark.parametrize("panel,kernel", PANELS)
def test_fig10_scalability(benchmark, panel, kernel):
    counts = fig10.SWEEPS[kernel]
    table = benchmark.pedantic(
        lambda: fig10.run(kernel, benchmarks=bench_set(), counts=counts),
        rounds=1, iterations=1)
    print()
    print(format_table(
        table.rows(),
        title=f"Fig 10({panel}): {kernel} slowdown vs ucore count"))
    # Shape: more µcores never hurt (geomean), and the largest sweep
    # point has (near-)minimal slowdown.
    first = table.scheme_geomean(f"{counts[0]}uc")
    last = table.scheme_geomean(f"{counts[-1]}uc")
    assert last <= first + 0.02
