"""Bounded-memory streaming benchmark (BENCH_stream.json).

The streaming pipeline's contract: a trace 10x longer than the
default runs with peak memory bounded by the chunk/phase size, not
linear in trace length, and bit-identical to the in-memory path.
Each (mode, scale) cell runs in its own child interpreter
(``_stream_child.py``) because peak RSS is a per-process high-water
mark; tracemalloc's traced peak is the noise-free Python-allocation
view of the same claim and carries the assertions, while RSS is
recorded for the artifact trajectory.

Results go to ``BENCH_stream.json`` (repo root or
``REPRO_BENCH_OUT_STREAM``), uploaded by the CI bench-smoke job.
Every run *appends* one trend entry per streamed scale — tagged with
git SHA and date — so the artifact accumulates the memory trajectory
across PRs; under ``REPRO_PERF_GATE=1`` the run fails if a streamed
traced peak grows more than 15 % above the best (lowest) recorded
entry for the same scale.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

from conftest import (
    PERF_GATE,
    PERF_GATE_DROP,
    append_trend,
    load_trend,
    trend_stamp,
)

_CHILD = Path(__file__).resolve().parent / "_stream_child.py"
_SRC = Path(__file__).resolve().parent.parent / "src"

SCALE = 10


def _out_path() -> Path:
    override = os.environ.get("REPRO_BENCH_OUT_STREAM")
    if override:
        return Path(override)
    return Path(__file__).resolve().parent.parent / "BENCH_stream.json"


def _measure(mode: str, repeats: int, tmp_path: Path) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_SRC) + os.pathsep \
        + env.get("PYTHONPATH", "")
    out = subprocess.run(
        [sys.executable, str(_CHILD), mode, str(repeats),
         str(tmp_path / f"{mode}-{repeats}.fgt")],
        check=True, capture_output=True, text=True, env=env)
    return json.loads(out.stdout.strip().splitlines()[-1])


def _check_perf_gate(cells: dict, trend: list[dict]) -> None:
    """Fail when a streamed traced peak grows >15 % above the best
    (lowest) peak the trend has recorded for the same scale."""
    for repeats in (1, SCALE):
        row = cells[("stream", repeats)]
        reference = [entry.get("traced_peak_bytes") for entry in trend
                     if entry.get("mode") == "stream"
                     and entry.get("repeats") == repeats
                     and entry.get("records") == row["records"]
                     and entry.get("traced_peak_bytes")]
        if not reference:
            continue
        ceiling = min(reference) * (1.0 + PERF_GATE_DROP)
        assert row["traced_peak_bytes"] <= ceiling, (
            f"streamed traced peak regressed at {repeats}x: "
            f"{row['traced_peak_bytes']} bytes vs best recorded "
            f"{min(reference)} (ceiling {ceiling:.0f})")


def test_streamed_memory_bounded(tmp_path, benchmark):
    cells = {(mode, repeats): _measure(mode, repeats, tmp_path)
             for mode in ("stream", "inmem")
             for repeats in (1, SCALE)}

    # Give pytest-benchmark one representative run for its table.
    assert benchmark.pedantic(
        _measure, args=("stream", 1, tmp_path), rounds=1,
        iterations=1)["cycles"] > 0

    out = _out_path()
    trend = load_trend(out)
    if PERF_GATE:
        _check_perf_gate(cells, trend)
    stamp = trend_stamp()
    entries = []
    for repeats in (1, SCALE):
        row = cells[("stream", repeats)]
        entries.append({
            **stamp,
            "mode": "stream",
            "repeats": repeats,
            "records": row["records"],
            "traced_peak_bytes": row["traced_peak_bytes"],
            "maxrss_kb": row["maxrss_kb"],
        })
    trend = append_trend(trend, entries,
                         config_keys=("mode", "repeats", "records"))
    out.write_text(json.dumps(
        {"rows": list(cells.values()), "trend": trend},
        indent=2) + "\n")

    # Bit-identity between the pipelines, at both scales.
    for repeats in (1, SCALE):
        streamed, inmem = cells[("stream", repeats)], \
            cells[("inmem", repeats)]
        assert streamed["records"] == inmem["records"]
        assert streamed["cycles"] == inmem["cycles"], (streamed, inmem)

    # The bounded-memory claim: 10x the records must not cost 10x the
    # peak.  The streamed peak may grow a little (heap ground-truth
    # table, simulator sparse memories) but stays far from linear...
    s1 = cells[("stream", 1)]["traced_peak_bytes"]
    s10 = cells[("stream", SCALE)]["traced_peak_bytes"]
    assert s10 < 2.5 * s1, (
        f"streamed peak grew {s10 / s1:.2f}x for {SCALE}x records")

    # ...while the in-memory pipeline pays for every record at once.
    m10 = cells[("inmem", SCALE)]["traced_peak_bytes"]
    assert s10 * 2 < m10, (
        f"streamed peak {s10} not clearly below in-memory peak {m10}")
