"""Benchmark-harness configuration.

Each benchmark regenerates one paper table/figure and prints it; the
figure harnesses submit their spec batches through the service client
(``repro.service``), so ``REPRO_WORKERS=<n>`` parallelises them on
multi-core hosts and ``REPRO_RESULT_STORE=<dir>`` makes warm reruns
free.  To keep ``pytest benchmarks/ --benchmark-only``
tractable, the default run uses a representative benchmark subset and
a reduced trace length; set ``REPRO_BENCH_SET=full`` and/or
``REPRO_TRACE_LEN=<n>`` for the full sweep.
"""

import os

os.environ.setdefault("REPRO_TRACE_LEN", "6000")

FAST_BENCHMARKS = ("swaptions", "dedup", "x264")


def bench_set() -> tuple[str, ...]:
    from repro.trace.profiles import PARSEC_BENCHMARKS

    if os.environ.get("REPRO_BENCH_SET", "fast") == "full":
        return PARSEC_BENCHMARKS
    return FAST_BENCHMARKS
