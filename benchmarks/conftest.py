"""Benchmark-harness configuration.

Each benchmark regenerates one paper table/figure and prints it; the
figure harnesses submit their spec batches through the service client
(``repro.service``), so ``REPRO_WORKERS=<n>`` parallelises them on
multi-core hosts and ``REPRO_RESULT_STORE=<dir>`` makes warm reruns
free.  To keep ``pytest benchmarks/ --benchmark-only``
tractable, the default run uses a representative benchmark subset and
a reduced trace length; set ``REPRO_BENCH_SET=full`` and/or
``REPRO_TRACE_LEN=<n>`` for the full sweep.
"""

import json
import os
import subprocess
import time
from pathlib import Path

os.environ.setdefault("REPRO_TRACE_LEN", "6000")

FAST_BENCHMARKS = ("swaptions", "dedup", "x264")

#: Opt-in perf trend gate, shared by every BENCH_* harness that keeps
#: a trend array: when "1", a run fails if its tracked metric
#: regresses more than PERF_GATE_DROP beyond the best recorded entry
#: for the same configuration.
PERF_GATE = os.environ.get("REPRO_PERF_GATE", "") == "1"
PERF_GATE_DROP = 0.15


def bench_set() -> tuple[str, ...]:
    from repro.trace.profiles import PARSEC_BENCHMARKS

    if os.environ.get("REPRO_BENCH_SET", "fast") == "full":
        return PARSEC_BENCHMARKS
    return FAST_BENCHMARKS


def git_sha() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=Path(__file__).resolve().parent,
        ).stdout.strip() or "unknown"
    except OSError:
        return "unknown"


def trend_stamp() -> dict:
    """The provenance fields every trend entry carries."""
    return {"git_sha": git_sha(), "date": time.strftime("%Y-%m-%d")}


def load_trend(path: Path) -> list[dict]:
    """The accumulated ``trend`` array of a BENCH_* artifact ([] when
    the file is missing, corrupt, or predates trends)."""
    if not path.exists():
        return []
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError):
        return []
    return list(data.get("trend", []))
