"""Benchmark-harness configuration.

Each benchmark regenerates one paper table/figure and prints it; the
figure harnesses submit their spec batches through the service client
(``repro.service``), so ``REPRO_WORKERS=<n>`` parallelises them on
multi-core hosts and ``REPRO_RESULT_STORE=<dir>`` makes warm reruns
free.  To keep ``pytest benchmarks/ --benchmark-only``
tractable, the default run uses a representative benchmark subset and
a reduced trace length; set ``REPRO_BENCH_SET=full`` and/or
``REPRO_TRACE_LEN=<n>`` for the full sweep.
"""

import json
import os
import subprocess
import time
from pathlib import Path

os.environ.setdefault("REPRO_TRACE_LEN", "6000")

FAST_BENCHMARKS = ("swaptions", "dedup", "x264")

#: Opt-in perf trend gate, shared by every BENCH_* harness that keeps
#: a trend array: when "1", a run fails if its tracked metric
#: regresses more than PERF_GATE_DROP beyond the best recorded entry
#: for the same configuration.
PERF_GATE = os.environ.get("REPRO_PERF_GATE", "") == "1"
PERF_GATE_DROP = 0.15


def bench_set() -> tuple[str, ...]:
    from repro.trace.profiles import PARSEC_BENCHMARKS

    if os.environ.get("REPRO_BENCH_SET", "fast") == "full":
        return PARSEC_BENCHMARKS
    return FAST_BENCHMARKS


def git_sha() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=Path(__file__).resolve().parent,
        ).stdout.strip() or "unknown"
    except OSError:
        return "unknown"


def trend_stamp() -> dict:
    """The provenance fields every trend entry carries."""
    return {"git_sha": git_sha(), "date": time.strftime("%Y-%m-%d")}


def load_trend(path: Path) -> list[dict]:
    """The accumulated ``trend`` array of a BENCH_* artifact ([] when
    the file is missing, corrupt, or predates trends)."""
    if not path.exists():
        return []
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError):
        return []
    return list(data.get("trend", []))


def append_trend(trend: list[dict], entries: list[dict],
                 config_keys: tuple[str, ...]) -> list[dict]:
    """``trend`` plus ``entries``, dropping older rows that share a new
    entry's git SHA *and* configuration (``config_keys``, e.g.
    ``("backend", "engines", "trace_len")``).

    Re-running a benchmark at one commit used to append a duplicate
    row per run, inflating the trend and — worse — letting one lucky
    rerun ratchet the PERF_GATE floor against later honest runs at the
    same SHA.  Keeping only the freshest measurement per
    (sha, configuration) makes the trend one row per commit per
    configuration, which is what a trajectory should be.  Entries from
    other SHAs (and the "pre-trend"/"unknown" provenance rows) are
    never touched.
    """
    def identity(entry: dict) -> tuple:
        return (entry.get("git_sha"),
                *(entry.get(key) for key in config_keys))

    fresh = {identity(entry) for entry in entries}
    kept = [entry for entry in trend if identity(entry) not in fresh]
    return kept + list(entries)
