"""Ablation benchmarks: what each design choice buys (DESIGN.md)."""

from conftest import bench_set

from repro.analysis.report import format_table
from repro.experiments import ablations


def test_isax_coupling_ablation(benchmark):
    rows = benchmark.pedantic(
        lambda: ablations.isax_ablation(bench_set()),
        rounds=1, iterations=1)
    table = [["ablation", "setting", "geomean_slowdown"]]
    table.extend(r.as_row() for r in rows)
    print()
    print(format_table(table, title="ISAX coupling ablation"))
    by_setting = {r.setting: r.geomean_slowdown for r in rows}
    # §III-D: the stock post-commit interface causes large slowdowns.
    assert by_setting["post_commit"] > by_setting["ma_stage"]


def test_mapper_width_ablation(benchmark):
    rows = benchmark.pedantic(
        lambda: ablations.mapper_width_ablation(bench_set()),
        rounds=1, iterations=1)
    table = [["ablation", "setting", "geomean_slowdown"]]
    table.extend(r.as_row() for r in rows)
    print()
    print(format_table(table, title="Mapper width ablation"))
    by_setting = {r.setting: r.geomean_slowdown for r in rows}
    # §III-C: on a 4-wide BOOM the scalar mapper is nearly free — the
    # superscalar variant buys almost nothing.
    assert by_setting["1"] - by_setting["4"] < 0.10


def test_queue_sizing_ablations(benchmark):
    def run_all():
        return (ablations.fifo_depth_ablation(bench_set())
                + ablations.cdc_depth_ablation(bench_set())
                + ablations.msgq_depth_ablation(bench_set()))

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = [["ablation", "setting", "geomean_slowdown"]]
    table.extend(r.as_row() for r in rows)
    print()
    print(format_table(table, title="Queue sizing ablations"))
    # Starved queues can only hurt.
    fifo = {r.setting: r.geomean_slowdown for r in rows
            if r.name == "filter_fifo_depth"}
    assert fifo["4"] >= fifo["64"] - 0.02


def test_block_size_ablation(benchmark):
    rows = benchmark.pedantic(
        lambda: ablations.block_size_ablation(bench_set()),
        rounds=1, iterations=1)
    table = [["ablation", "setting", "geomean_slowdown"]]
    table.extend(r.as_row() for r in rows)
    print()
    print(format_table(table, title="Shadow-stack block size ablation"))
    for row in rows:
        assert row.geomean_slowdown < 1.25
