"""Cold-vs-warm result store benchmark (BENCH_service.json).

Runs a representative figure grid twice through the service client
against one persistent store: the cold pass simulates and writes
back, the warm pass — fresh client, per-process worker caches
dropped — must answer entirely from disk.  Records the wall-clock
ratio to ``BENCH_service.json`` (repo root or ``REPRO_BENCH_OUT``),
which CI uploads as an artifact to build the perf trajectory over
PRs.

The warm pass doubles as an end-to-end acceptance check: zero
simulations (client dispatch counter and the worker's own simulation
counter both stay flat) and bit-identical records.  The issue's
acceptance bar is a >= 5x warm speedup; loading a few JSON documents
beats a few hundred thousand simulated cycles by far more than that
on any machine, so the default gate is strict (set
``REPRO_SERVICE_STRICT=0`` to only guard against gross regression).

Every run *appends* one trend entry — git SHA, date, cold/warm
seconds, warm answer rate — so the artifact accumulates the store's
perf trajectory across PRs; under ``REPRO_PERF_GATE=1`` the run fails
if the warm answer rate (specs served per second) drops more than
15 % below the best recorded rate for the same grid shape.
"""

import json
import os
import tempfile
import time
from pathlib import Path

from conftest import (
    PERF_GATE,
    PERF_GATE_DROP,
    append_trend,
    bench_set,
    load_trend,
    trend_stamp,
)

from repro.runner import simulations_executed, sweep
from repro.runner import worker as runner_worker
from repro.service import Client, ResultStore

TRACE_LEN = int(os.environ.get("REPRO_TRACE_LEN", "6000"))
STRICT = os.environ.get("REPRO_SERVICE_STRICT", "1") == "1"
MIN_SPEEDUP = 5.0 if STRICT else 1.0


def _out_path() -> Path:
    override = os.environ.get("REPRO_BENCH_OUT")
    if override:
        return Path(override)
    return Path(__file__).resolve().parent.parent \
        / "BENCH_service.json"


def _grid():
    return sweep(bench_set(), kernels=[("pmc",), ("asan",)],
                 engines_per_kernel=[2, 4], length=TRACE_LEN)


def test_cold_vs_warm_store():
    specs = _grid()
    store_dir = tempfile.mkdtemp(prefix="repro-bench-store-")

    runner_worker.clear_caches()
    with Client(workers=1, store=store_dir, cache=False) as cold:
        t0 = time.perf_counter()
        first = cold.run(specs)
        cold_s = time.perf_counter() - t0
        assert cold.stats.executed == len(specs)
    assert len(ResultStore(store_dir)) == len(specs)

    runner_worker.clear_caches()
    sims_before = simulations_executed()
    with Client(workers=1, store=store_dir, cache=False) as warm:
        t0 = time.perf_counter()
        second = warm.run(specs)
        warm_s = time.perf_counter() - t0
        assert warm.stats.executed == 0
        assert warm.stats.store_hits == len(specs)
    assert simulations_executed() == sims_before
    assert second == first  # store round trip is bit-identical

    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    warm_rate = len(specs) / warm_s if warm_s > 0 else float("inf")
    payload = {
        "grid_specs": len(specs),
        "benchmarks": list(bench_set()),
        "trace_len": TRACE_LEN,
        "cold_s": round(cold_s, 3),
        "warm_s": round(warm_s, 3),
        "speedup": round(speedup, 1),
        "warm_rate": round(warm_rate, 1),
        "warm_simulations": 0,
        "strict": STRICT,
    }
    out = _out_path()
    trend = load_trend(out)
    if PERF_GATE:
        reference = [entry.get("warm_rate") for entry in trend
                     if entry.get("grid_specs") == len(specs)
                     and entry.get("trace_len") == TRACE_LEN
                     and entry.get("warm_rate")]
        if reference:
            floor = max(reference) * (1.0 - PERF_GATE_DROP)
            assert warm_rate >= floor, (
                f"warm store answer rate regressed: {warm_rate:.1f} "
                f"specs/s vs best recorded {max(reference)}/s "
                f"(floor {floor:.1f}/s)")
    trend = append_trend(
        trend,
        [{**trend_stamp(),
          **{k: payload[k] for k in (
              "grid_specs", "trace_len", "cold_s", "warm_s",
              "speedup", "warm_rate")}}],
        config_keys=("grid_specs", "trace_len"))
    out.write_text(json.dumps({**payload, "trend": trend},
                              indent=2) + "\n")
    print(f"\ncold {cold_s:.2f}s -> warm {warm_s:.3f}s "
          f"({speedup:.0f}x, {len(specs)} specs)")
    assert speedup >= MIN_SPEEDUP, payload
