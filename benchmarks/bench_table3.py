"""Table III benchmark: feasibility analysis (pure arithmetic)."""

import pytest

from repro.analysis.area import (
    feasibility_table,
    fireguard_area_breakdown,
    soc_overhead,
)
from repro.analysis.report import format_table
from repro.experiments import table3


def test_table3_feasibility(benchmark):
    per_core, per_soc = benchmark(table3.run)
    print()
    print(format_table(per_core, title="Table III: per-core overhead"))
    print(format_table(per_soc, title="Table III: per-SoC overhead"))
    rows = {r.processor: r for r in feasibility_table()}
    assert rows["FireStorm"].num_ucores == 12
    assert rows["AlderLake-S"].num_ucores == 13
    assert rows["FireStorm"].overhead_pct_of_core == pytest.approx(
        3.6, abs=0.1)


def test_area_breakdown(benchmark):
    breakdown = benchmark(fireguard_area_breakdown)
    assert breakdown.fireguard_total == pytest.approx(0.287)


def test_soc_overhead_under_1_2_percent(benchmark):
    socs = benchmark(soc_overhead)
    for soc in socs:
        if not soc.name.startswith("prototype"):
            assert soc.overhead_pct() < 1.2
