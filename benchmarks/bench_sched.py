"""Scheduler/backend benchmark and perf trend (BENCH_sched.json).

Measures the wall-clock effect of the session's execution strategies
against the dense reference loop at the two tracked configurations —
12 µcores (the event scheduler's headline point) and 4 µcores (the
configuration that regressed under the event loop before the adaptive
policy) — for both backends:

* ``scalar``   — the default session (adaptive loop choice), scalar
  record-at-a-time execution;
* ``vector``   — the default session with the vectorized backend
  (columnar decode, precomputed filter plan, batched stall windows).

Results land in ``BENCH_sched.json`` (repo root or
``REPRO_BENCH_OUT``): ``rows`` holds the latest snapshot, and every
run *appends* one entry per (configuration, backend) to ``trend`` —
tagged with git SHA, date and backend — so the artifact accumulates a
perf trajectory across PRs instead of overwriting it.

Every timed pairing also asserts bit-identity, so the benchmark
doubles as an end-to-end A/B check on real workloads, and every row
asserts its speedup over dense — the "no configuration slower than
dense" guarantee.

``REPRO_PERF_GATE=1`` additionally fails the run when the vector
backend's simulated-cycle rate drops more than 15 % below the best
rate recorded in the trend for the same configuration.
"""

import json
import os
import resource
import time
from pathlib import Path

from conftest import (
    PERF_GATE,
    PERF_GATE_DROP,
    bench_set,
    load_trend,
    trend_stamp,
)

from repro.core.system import FireGuardSystem
from repro.kernels import make_kernel
from repro.sim import SimulationSession
from repro.trace.generator import generate_trace
from repro.trace.profiles import PARSEC_PROFILES

TRACE_LEN = int(os.environ.get("REPRO_TRACE_LEN", "6000"))
ROUNDS = int(os.environ.get("REPRO_SCHED_ROUNDS", "5"))
# Strict mode (default) gates every row at parity with dense — the
# adaptive-policy acceptance bar, run locally on a quiet machine.  CI
# smoke runs set REPRO_SCHED_STRICT=0: shared runners are too noisy to
# gate on small wall-clock margins, so they only guard against a gross
# regression while still recording the exact numbers in the artifact.
STRICT = os.environ.get("REPRO_SCHED_STRICT", "1") == "1"
MIN_SPEEDUP = 1.0 if STRICT else 0.85
# Timing jitter allowance: where the adaptive policy selects the dense
# loop, both sides of the ratio run identical code, yet the median
# paired ratio still wobbles ~±5 % on shared hosts.  A real regression
# of the kind this gate exists for (the pre-adaptive 4-engine event
# loop ran ~12 % slow) clears the allowance with margin.
JITTER = 0.05


def _out_path() -> Path:
    override = os.environ.get("REPRO_BENCH_OUT")
    if override:
        return Path(override)
    return Path(__file__).resolve().parent.parent / "BENCH_sched.json"


def _sessions(engines: int):
    """(dense reference, adaptive scalar, adaptive vector) sessions on
    identically built systems."""
    def fresh(dense, backend):
        return SimulationSession(
            FireGuardSystem([make_kernel("asan")],
                            engines_per_kernel={"asan": engines}),
            dense=dense, backend=backend)
    return (fresh(True, "scalar"), fresh(None, "scalar"),
            fresh(None, "vector"))


def _run_all(session, traces):
    results = []
    for trace in traces:
        if session.dirty:
            session.reset()
        results.append(session.run(trace))
    return results


def _measure(engines: int) -> dict:
    """Interleaved best-of-N timing of dense / scalar / vector over
    the benchmark set; returns one snapshot row.

    One untimed warm-up pass first (interpreter and cache warm-up),
    then each timed round measures all three strategies back to back,
    rotating which goes first so no contender systematically lands on
    the noisy slice of a shared host.  Times and speedups both use
    best-of-rounds: scheduling noise only ever *adds* time, so the
    minimum is the least-contaminated estimate of each strategy's
    true cost.
    """
    traces = [generate_trace(PARSEC_PROFILES[name], seed=5,
                             length=TRACE_LEN)
              for name in bench_set()]
    dense_sess, scalar_sess, vector_sess = _sessions(engines)
    reference = _run_all(dense_sess, traces)
    assert reference == _run_all(scalar_sess, traces), \
        f"scalar session diverged from dense at {engines} engines"
    assert reference == _run_all(vector_sess, traces), \
        f"vector backend diverged from dense at {engines} engines"
    sim_cycles = sum(result.cycles for result in reference)

    contenders = [(dense_sess, "dense"), (scalar_sess, "scalar"),
                  (vector_sess, "vector")]
    best = {name: float("inf") for _, name in contenders}
    for round_index in range(ROUNDS):
        order = (contenders[round_index % 3:]
                 + contenders[:round_index % 3])
        for session, which in order:
            t0 = time.perf_counter()
            _run_all(session, traces)
            elapsed = time.perf_counter() - t0
            best[which] = min(best[which], elapsed)
    speedup = {which: best["dense"] / best[which]
               for which in ("scalar", "vector")}

    # Untimed pass to aggregate skip statistics across the whole set
    # (session reset zeroes counters between traces).
    keys = ("low_cycles_skipped", "high_cycles_fastforwarded",
            "engine_ticks_skipped")
    totals = dict.fromkeys(keys, 0)
    for trace in traces:
        if vector_sess.dirty:
            vector_sess.reset()
        vector_sess.run(trace)
        stats = vector_sess.stats()
        for key in keys:
            totals[key] += stats[key]
    return {
        "engines": engines,
        "benchmarks": list(bench_set()),
        "trace_len": TRACE_LEN,
        "dense_s": round(best["dense"], 4),
        "scalar_s": round(best["scalar"], 4),
        "vector_s": round(best["vector"], 4),
        "scalar_speedup": round(speedup["scalar"], 4),
        "vector_speedup": round(speedup["vector"], 4),
        "sim_cycles": sim_cycles,
        "vector_cycle_rate": round(sim_cycles / best["vector"], 1),
        **totals,
    }


def _measure_gated(engines: int) -> dict:
    """Measure, re-measuring once if a speedup lands under the gate.

    The container's background load arrives in multi-second bursts
    that can swallow every round of one contender; a genuine
    regression reproduces across two independent measurements, a
    burst does not.  The merged row keeps each strategy's overall
    best time and the better of the two speedup estimates.
    """
    row = _measure(engines)
    floor = MIN_SPEEDUP - JITTER
    if min(row["scalar_speedup"], row["vector_speedup"]) >= floor:
        return row
    retry = _measure(engines)
    for which in ("dense", "scalar", "vector"):
        row[f"{which}_s"] = min(row[f"{which}_s"], retry[f"{which}_s"])
    for which in ("scalar", "vector"):
        key = f"{which}_speedup"
        row[key] = max(row[key], retry[key])
    row["vector_cycle_rate"] = round(
        row["sim_cycles"] / row["vector_s"], 1)
    return row


def _load_trend(path: Path) -> list[dict]:
    """Existing trend entries, migrating any pre-trend snapshot rows
    (the overwrite-era format) into backend-tagged entries once."""
    trend = load_trend(path)
    if trend or not path.exists():
        return trend
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError):
        return []
    for row in data.get("rows", []):
        if "event_s" in row:  # overwrite-era schema
            trend.append({
                "git_sha": "pre-trend", "date": None,
                "backend": "scalar", "engines": row.get("engines"),
                "trace_len": row.get("trace_len"),
                "dense_s": row.get("dense_s"),
                "seconds": row.get("event_s"),
                "speedup": row.get("speedup"),
            })
    return trend


def _trend_entries(rows: list[dict], stamp: dict) -> list[dict]:
    entries = []
    for row in rows:
        for backend in ("scalar", "vector"):
            entry = {
                **stamp,
                "backend": backend,
                "engines": row["engines"],
                "trace_len": row["trace_len"],
                "dense_s": row["dense_s"],
                "seconds": row[f"{backend}_s"],
                "speedup": row[f"{backend}_speedup"],
            }
            if backend == "vector":
                entry["cycle_rate"] = row["vector_cycle_rate"]
            entries.append(entry)
    return entries


def _check_perf_gate(rows: list[dict], trend: list[dict]) -> None:
    """Fail when the vector cycle rate regresses >15 % below the best
    rate the trend has recorded for the same configuration."""
    for row in rows:
        reference = [entry.get("cycle_rate") for entry in trend
                     if entry.get("backend") == "vector"
                     and entry.get("engines") == row["engines"]
                     and entry.get("trace_len") == row["trace_len"]
                     and entry.get("cycle_rate")]
        if not reference:
            continue
        floor = max(reference) * (1.0 - PERF_GATE_DROP)
        assert row["vector_cycle_rate"] >= floor, (
            f"vector cycle rate regressed at {row['engines']} engines: "
            f"{row['vector_cycle_rate']}/s vs best recorded "
            f"{max(reference)}/s (floor {floor:.1f}/s)")


def test_backend_speedups_and_trend(benchmark):
    """The acceptance points: the vector backend beats dense at 12
    µcores, no tracked configuration is slower than dense under either
    backend, and the measurement lands in the trend artifact."""
    row12 = _measure_gated(engines=12)

    # Give pytest-benchmark one representative timed run for its table.
    trace = generate_trace(PARSEC_PROFILES[bench_set()[0]], seed=5,
                           length=TRACE_LEN)
    _, _, vector_sess = _sessions(12)

    def run():
        if vector_sess.dirty:
            vector_sess.reset()
        return vector_sess.run(trace).cycles

    assert benchmark.pedantic(run, rounds=1, iterations=1) > 0

    rows = [row12, _measure_gated(engines=4)]
    out = _out_path()
    trend = _load_trend(out)
    if PERF_GATE:
        _check_perf_gate(rows, trend)
    trend.extend(_trend_entries(rows, trend_stamp()))
    # Peak RSS rides along so the bounded-memory trajectory (see
    # bench_stream.py) is tracked across every BENCH_* artifact.
    peak_rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    out.write_text(json.dumps({"rows": rows,
                               "trend": trend,
                               "peak_rss_kb": peak_rss_kb},
                              indent=2) + "\n")

    assert row12["low_cycles_skipped"] > 0
    # "No configuration slower than dense": every row, both backends.
    for row in rows:
        for backend in ("scalar", "vector"):
            speedup = row[f"{backend}_speedup"]
            assert speedup >= MIN_SPEEDUP - JITTER, (
                f"{backend} backend slower than dense at "
                f"{row['engines']} engines: {row}")
    # The headline point keeps a genuine margin, not just parity: the
    # better backend at 12 µcores must beat dense even after jitter.
    assert max(row12["scalar_speedup"],
               row12["vector_speedup"]) >= MIN_SPEEDUP + JITTER, (
        f"no backend meaningfully faster at 12 µcores: {row12}")
