"""Event-driven scheduler vs dense-loop benchmark (BENCH_sched.json).

Measures the wall-clock effect of the cycle-wheel wakeup scheduler
(:mod:`repro.sched`) against the dense reference loop, at the issue's
headline configuration — 12 µcores, where most engines spend most low
cycles blocked — plus a 4-µcore contrast point.  Results are written
to ``BENCH_sched.json`` (repo root or ``REPRO_BENCH_OUT``), which CI
uploads as an artifact to build the perf trajectory over PRs.

Every timed pair also asserts bit-identity, so the benchmark doubles
as an end-to-end A/B check on real workloads.
"""

import json
import os
import resource
import time
from pathlib import Path

from conftest import bench_set

from repro.core.system import FireGuardSystem
from repro.kernels import make_kernel
from repro.sim import SimulationSession
from repro.trace.generator import generate_trace
from repro.trace.profiles import PARSEC_PROFILES

TRACE_LEN = int(os.environ.get("REPRO_TRACE_LEN", "6000"))
ROUNDS = int(os.environ.get("REPRO_SCHED_ROUNDS", "3"))
# Strict mode (default) asserts a genuine speedup at 12 µcores — the
# issue's acceptance bar, run locally on a quiet machine.  CI smoke
# runs set REPRO_SCHED_STRICT=0: shared runners are too noisy to gate
# on a ~10 % wall-clock margin, so they only guard against a gross
# regression while still recording the exact numbers in the artifact.
STRICT = os.environ.get("REPRO_SCHED_STRICT", "1") == "1"
MIN_SPEEDUP = 1.0 if STRICT else 0.85


def _out_path() -> Path:
    override = os.environ.get("REPRO_BENCH_OUT")
    if override:
        return Path(override)
    return Path(__file__).resolve().parent.parent / "BENCH_sched.json"


def _sessions(engines: int):
    def fresh(dense):
        return SimulationSession(
            FireGuardSystem([make_kernel("asan")],
                            engines_per_kernel={"asan": engines}),
            dense=dense)
    return fresh(True), fresh(False)


def _run_all(session, traces):
    results = []
    for trace in traces:
        if session.dirty:
            session.reset()
        results.append(session.run(trace))
    return results


def _measure(engines: int) -> dict:
    """Interleaved best-of-N dense/event timing over the benchmark
    set; returns one row for BENCH_sched.json.

    One untimed warm-up pass first (interpreter and cache warm-up),
    then each timed round alternates which loop is measured first so
    clock-frequency drift cancels instead of biasing one side.
    """
    traces = [generate_trace(PARSEC_PROFILES[name], seed=5,
                             length=TRACE_LEN)
              for name in bench_set()]
    dense_sess, event_sess = _sessions(engines)
    assert _run_all(dense_sess, traces) == _run_all(event_sess, traces), \
        f"event loop diverged from dense at {engines} engines"
    best_dense = best_event = float("inf")
    for round_index in range(ROUNDS):
        if round_index % 2 == 0:
            order = ((dense_sess, "dense"), (event_sess, "event"))
        else:
            order = ((event_sess, "event"), (dense_sess, "dense"))
        for session, which in order:
            t0 = time.perf_counter()
            _run_all(session, traces)
            elapsed = time.perf_counter() - t0
            if which == "dense":
                best_dense = min(best_dense, elapsed)
            else:
                best_event = min(best_event, elapsed)
    # Untimed pass to aggregate skip statistics across the whole set
    # (session reset zeroes counters between traces).
    keys = ("low_cycles_skipped", "high_cycles_fastforwarded",
            "engine_ticks_skipped")
    totals = dict.fromkeys(keys, 0)
    for trace in traces:
        if event_sess.dirty:
            event_sess.reset()
        event_sess.run(trace)
        stats = event_sess.stats()
        for key in keys:
            totals[key] += stats[key]
    return {
        "engines": engines,
        "benchmarks": list(bench_set()),
        "trace_len": TRACE_LEN,
        "dense_s": round(best_dense, 4),
        "event_s": round(best_event, 4),
        "speedup": round(best_dense / best_event, 4),
        **totals,
    }


def test_event_scheduler_speedup_at_12_ucores(benchmark):
    """The issue's acceptance point: event-driven beats the PR-1
    idle-skip (dense) baseline at 12 µcores, bit-identically."""
    row = _measure(engines=12)

    # Give pytest-benchmark one representative timed run for its table.
    trace = generate_trace(PARSEC_PROFILES[bench_set()[0]], seed=5,
                           length=TRACE_LEN)
    _, event_sess = _sessions(12)

    def run():
        if event_sess.dirty:
            event_sess.reset()
        return event_sess.run(trace).cycles

    assert benchmark.pedantic(run, rounds=1, iterations=1) > 0

    rows = [row, _measure(engines=4)]
    out = _out_path()
    # Peak RSS rides along so the bounded-memory trajectory (see
    # bench_stream.py) is tracked across every BENCH_* artifact.
    peak_rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    out.write_text(json.dumps({"rows": rows,
                               "peak_rss_kb": peak_rss_kb},
                              indent=2) + "\n")

    assert row["low_cycles_skipped"] > 0
    # Wall-clock improvement at 12 µcores over the dense idle-skip
    # baseline (the acceptance criterion; 4-µcore row is informational).
    assert row["speedup"] > MIN_SPEEDUP, (
        f"event loop not faster at 12 µcores: {row}")