"""Scheduler/backend benchmark and perf trend (BENCH_sched.json).

Measures the wall-clock effect of the session's execution strategies
against the dense reference loop at the two tracked configurations —
12 µcores (the event scheduler's headline point) and 4 µcores (the
configuration that regressed under the event loop before the adaptive
policy) — for both backends:

* ``scalar``   — the default session (adaptive loop choice), scalar
  record-at-a-time execution;
* ``vector``   — the default session with the vectorized backend
  (columnar decode, precomputed filter plan, batched stall windows);
* ``compiled`` — vector plus the hotpath kernels
  (:mod:`repro.hotpath`); rows record whether the C-compiled build
  was live (``hotpath_compiled``) or the bit-identical interpreted
  fallback ran.

Results land in ``BENCH_sched.json`` (repo root or
``REPRO_BENCH_OUT``): ``rows`` holds the latest snapshot, and every
run *appends* one entry per (configuration, backend) to ``trend`` —
tagged with git SHA, date and backend — so the artifact accumulates a
perf trajectory across PRs instead of overwriting it (re-runs at one
commit replace their earlier same-configuration entry).

Every timed pairing also asserts bit-identity, so the benchmark
doubles as an end-to-end A/B check on real workloads, and every row
asserts its speedup over dense — the "no configuration slower than
dense" guarantee.  ``REPRO_PROFILE=1`` prints the session's
per-component wall-time breakdown for the headline configuration.

``REPRO_PERF_GATE=1`` additionally fails the run when the vector or
compiled simulated-cycle rate drops more than 15 % below the best
rate recorded in the trend for the same configuration (compiled rates
compare only against same-mode entries), and — when the C-compiled
build is live — when compiled fails its ≥3x acceptance target over
vector at the 12-µcore headline point.
"""

import json
import os
import resource
import time
from pathlib import Path

from conftest import (
    PERF_GATE,
    PERF_GATE_DROP,
    append_trend,
    bench_set,
    load_trend,
    trend_stamp,
)

from repro.core.system import FireGuardSystem
from repro.kernels import make_kernel
from repro.sim import SimulationSession
from repro.trace.generator import generate_trace
from repro.trace.profiles import PARSEC_PROFILES

TRACE_LEN = int(os.environ.get("REPRO_TRACE_LEN", "6000"))
ROUNDS = int(os.environ.get("REPRO_SCHED_ROUNDS", "5"))
# Strict mode (default) gates every row at parity with dense — the
# adaptive-policy acceptance bar, run locally on a quiet machine.  CI
# smoke runs set REPRO_SCHED_STRICT=0: shared runners are too noisy to
# gate on small wall-clock margins, so they only guard against a gross
# regression while still recording the exact numbers in the artifact.
STRICT = os.environ.get("REPRO_SCHED_STRICT", "1") == "1"
MIN_SPEEDUP = 1.0 if STRICT else 0.85
# Timing jitter allowance: where the adaptive policy selects the dense
# loop, both sides of the ratio run identical code, yet the median
# paired ratio still wobbles ~±5 % on shared hosts.  A real regression
# of the kind this gate exists for (the pre-adaptive 4-engine event
# loop ran ~12 % slow) clears the allowance with margin.
JITTER = 0.05


def _out_path() -> Path:
    override = os.environ.get("REPRO_BENCH_OUT")
    if override:
        return Path(override)
    return Path(__file__).resolve().parent.parent / "BENCH_sched.json"


#: Backends timed against the dense reference (trend entry per each).
BACKENDS = ("scalar", "vector", "compiled")
#: Acceptance target for the C-compiled hotpath at the 12-µcore
#: headline point: ≥3x the vector backend's wall-clock (gated only
#: when a compiled artifact is live — the interpreted fallback is held
#: to dense parity like every other configuration).
COMPILED_TARGET = 3.0


def _sessions(engines: int):
    """(dense reference, adaptive scalar, adaptive vector, adaptive
    compiled) sessions on identically built systems."""
    def fresh(dense, backend):
        return SimulationSession(
            FireGuardSystem([make_kernel("asan")],
                            engines_per_kernel={"asan": engines}),
            dense=dense, backend=backend)
    return (fresh(True, "scalar"), fresh(None, "scalar"),
            fresh(None, "vector"), fresh(None, "compiled"))


def _run_all(session, traces):
    results = []
    for trace in traces:
        if session.dirty:
            session.reset()
        results.append(session.run(trace))
    return results


def _measure(engines: int) -> dict:
    """Interleaved best-of-N timing of dense / scalar / vector /
    compiled over the benchmark set; returns one snapshot row.

    One untimed warm-up pass first (interpreter and cache warm-up),
    then each timed round measures all four strategies back to back,
    rotating which goes first so no contender systematically lands on
    the noisy slice of a shared host.  Times and speedups both use
    best-of-rounds: scheduling noise only ever *adds* time, so the
    minimum is the least-contaminated estimate of each strategy's
    true cost.
    """
    traces = [generate_trace(PARSEC_PROFILES[name], seed=5,
                             length=TRACE_LEN)
              for name in bench_set()]
    dense_sess, scalar_sess, vector_sess, compiled_sess = \
        _sessions(engines)
    reference = _run_all(dense_sess, traces)
    assert reference == _run_all(scalar_sess, traces), \
        f"scalar session diverged from dense at {engines} engines"
    assert reference == _run_all(vector_sess, traces), \
        f"vector backend diverged from dense at {engines} engines"
    assert reference == _run_all(compiled_sess, traces), \
        f"compiled backend diverged from dense at {engines} engines"
    sim_cycles = sum(result.cycles for result in reference)

    contenders = [(dense_sess, "dense"), (scalar_sess, "scalar"),
                  (vector_sess, "vector"), (compiled_sess, "compiled")]
    best = {name: float("inf") for _, name in contenders}
    for round_index in range(ROUNDS):
        shift = round_index % len(contenders)
        order = contenders[shift:] + contenders[:shift]
        for session, which in order:
            t0 = time.perf_counter()
            _run_all(session, traces)
            elapsed = time.perf_counter() - t0
            best[which] = min(best[which], elapsed)
    speedup = {which: best["dense"] / best[which]
               for which in BACKENDS}

    # Untimed pass to aggregate skip statistics across the whole set
    # (session reset zeroes counters between traces).
    keys = ("low_cycles_skipped", "high_cycles_fastforwarded",
            "engine_ticks_skipped")
    totals = dict.fromkeys(keys, 0)
    for trace in traces:
        if vector_sess.dirty:
            vector_sess.reset()
        vector_sess.run(trace)
        stats = vector_sess.stats()
        for key in keys:
            totals[key] += stats[key]
    return {
        "engines": engines,
        "benchmarks": list(bench_set()),
        "trace_len": TRACE_LEN,
        "dense_s": round(best["dense"], 4),
        "scalar_s": round(best["scalar"], 4),
        "vector_s": round(best["vector"], 4),
        "compiled_s": round(best["compiled"], 4),
        "scalar_speedup": round(speedup["scalar"], 4),
        "vector_speedup": round(speedup["vector"], 4),
        "compiled_speedup": round(speedup["compiled"], 4),
        "compiled_vs_vector": round(
            best["vector"] / best["compiled"], 4),
        "hotpath_compiled": compiled_sess.hotpath_compiled,
        "sim_cycles": sim_cycles,
        "vector_cycle_rate": round(sim_cycles / best["vector"], 1),
        "compiled_cycle_rate": round(
            sim_cycles / best["compiled"], 1),
        **totals,
    }


def _measure_gated(engines: int) -> dict:
    """Measure, re-measuring once if a speedup lands under the gate.

    The container's background load arrives in multi-second bursts
    that can swallow every round of one contender; a genuine
    regression reproduces across two independent measurements, a
    burst does not.  The merged row keeps each strategy's overall
    best time and the better of the two speedup estimates.
    """
    row = _measure(engines)
    floor = MIN_SPEEDUP - JITTER
    if min(row[f"{which}_speedup"] for which in BACKENDS) >= floor:
        return row
    retry = _measure(engines)
    for which in ("dense", *BACKENDS):
        row[f"{which}_s"] = min(row[f"{which}_s"], retry[f"{which}_s"])
    for which in BACKENDS:
        key = f"{which}_speedup"
        row[key] = max(row[key], retry[key])
    row["compiled_vs_vector"] = round(
        row["vector_s"] / row["compiled_s"], 4)
    for which in ("vector", "compiled"):
        row[f"{which}_cycle_rate"] = round(
            row["sim_cycles"] / row[f"{which}_s"], 1)
    return row


def _load_trend(path: Path) -> list[dict]:
    """Existing trend entries, migrating any pre-trend snapshot rows
    (the overwrite-era format) into backend-tagged entries once."""
    trend = load_trend(path)
    if trend or not path.exists():
        return trend
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError):
        return []
    for row in data.get("rows", []):
        if "event_s" in row:  # overwrite-era schema
            trend.append({
                "git_sha": "pre-trend", "date": None,
                "backend": "scalar", "engines": row.get("engines"),
                "trace_len": row.get("trace_len"),
                "dense_s": row.get("dense_s"),
                "seconds": row.get("event_s"),
                "speedup": row.get("speedup"),
            })
    return trend


def _trend_entries(rows: list[dict], stamp: dict) -> list[dict]:
    entries = []
    for row in rows:
        for backend in BACKENDS:
            entry = {
                **stamp,
                "backend": backend,
                "engines": row["engines"],
                "trace_len": row["trace_len"],
                "dense_s": row["dense_s"],
                "seconds": row[f"{backend}_s"],
                "speedup": row[f"{backend}_speedup"],
            }
            if backend in ("vector", "compiled"):
                entry["cycle_rate"] = row[f"{backend}_cycle_rate"]
            if backend == "compiled":
                # Compiled rates are only comparable within one mode:
                # the interpreted fallback is ~an order of magnitude
                # off the C build, so entries carry the mode and the
                # gate filters on it.
                entry["hotpath_compiled"] = row["hotpath_compiled"]
                entry["vs_vector"] = row["compiled_vs_vector"]
            entries.append(entry)
    return entries


def _check_perf_gate(rows: list[dict], trend: list[dict]) -> None:
    """Fail when the vector or compiled cycle rate regresses >15 %
    below the best rate the trend has recorded for the same
    configuration (and, for compiled, the same hotpath mode)."""
    for row in rows:
        for backend in ("vector", "compiled"):
            reference = [
                entry.get("cycle_rate") for entry in trend
                if entry.get("backend") == backend
                and entry.get("engines") == row["engines"]
                and entry.get("trace_len") == row["trace_len"]
                and entry.get("cycle_rate")
                and (backend != "compiled"
                     or entry.get("hotpath_compiled")
                     == row["hotpath_compiled"])]
            if not reference:
                continue
            floor = max(reference) * (1.0 - PERF_GATE_DROP)
            rate = row[f"{backend}_cycle_rate"]
            assert rate >= floor, (
                f"{backend} cycle rate regressed at "
                f"{row['engines']} engines: {rate}/s vs best recorded "
                f"{max(reference)}/s (floor {floor:.1f}/s)")


def _print_profile(engines: int) -> None:
    """One profiled run of the headline configuration: print the
    session's per-component wall-time breakdown (``REPRO_PROFILE=1``
    is read by the session constructor, so the sessions built here are
    already wrapped)."""
    trace = generate_trace(PARSEC_PROFILES[bench_set()[0]], seed=5,
                           length=TRACE_LEN)
    *_, compiled_sess = _sessions(engines)
    compiled_sess.run(trace)
    stats = compiled_sess.stats()
    buckets = {key[len("profile_"):]: value
               for key, value in stats.items()
               if key.startswith("profile_")}
    total = sum(buckets.values()) or 1.0
    print(f"\nper-component profile ({engines} µcores, "
          f"{bench_set()[0]}, compiled backend, "
          f"hotpath_compiled={compiled_sess.hotpath_compiled}):")
    for bucket, seconds in sorted(buckets.items(),
                                  key=lambda item: -item[1]):
        print(f"  {bucket:<10} {seconds * 1e3:9.2f} ms "
              f"({100 * seconds / total:5.1f} %)")


def test_backend_speedups_and_trend(benchmark):
    """The acceptance points: the vector backend beats dense at 12
    µcores, no tracked configuration is slower than dense under any
    backend (the compiled backend's interpreted fallback included),
    and the measurement lands in the trend artifact."""
    row12 = _measure_gated(engines=12)

    # Give pytest-benchmark one representative timed run for its table.
    trace = generate_trace(PARSEC_PROFILES[bench_set()[0]], seed=5,
                           length=TRACE_LEN)
    _, _, vector_sess, _ = _sessions(12)

    def run():
        if vector_sess.dirty:
            vector_sess.reset()
        return vector_sess.run(trace).cycles

    assert benchmark.pedantic(run, rounds=1, iterations=1) > 0

    rows = [row12, _measure_gated(engines=4)]
    out = _out_path()
    trend = _load_trend(out)
    if PERF_GATE:
        _check_perf_gate(rows, trend)
    trend = append_trend(trend, _trend_entries(rows, trend_stamp()),
                         config_keys=("backend", "engines",
                                      "trace_len"))
    # Peak RSS rides along so the bounded-memory trajectory (see
    # bench_stream.py) is tracked across every BENCH_* artifact.
    peak_rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    out.write_text(json.dumps({"rows": rows,
                               "trend": trend,
                               "peak_rss_kb": peak_rss_kb},
                              indent=2) + "\n")

    if os.environ.get("REPRO_PROFILE", "") == "1":
        _print_profile(engines=12)

    assert row12["low_cycles_skipped"] > 0
    # "No configuration slower than dense": every row, every backend.
    for row in rows:
        for backend in BACKENDS:
            speedup = row[f"{backend}_speedup"]
            assert speedup >= MIN_SPEEDUP - JITTER, (
                f"{backend} backend slower than dense at "
                f"{row['engines']} engines: {row}")
    # The headline point keeps a genuine margin, not just parity: the
    # better backend at 12 µcores must beat dense even after jitter.
    assert max(row12["scalar_speedup"], row12["vector_speedup"],
               row12["compiled_speedup"]) >= MIN_SPEEDUP + JITTER, (
        f"no backend meaningfully faster at 12 µcores: {row12}")
    # The compiled acceptance target (≥3x over vector at 12 µcores)
    # only applies when a C build is live, and only under the perf
    # gate — wall-clock multiples are not for noisy default runs.
    if PERF_GATE and row12["hotpath_compiled"]:
        assert row12["compiled_vs_vector"] >= COMPILED_TARGET, (
            f"compiled hotpath under its {COMPILED_TARGET}x target "
            f"over vector at 12 µcores: {row12}")
