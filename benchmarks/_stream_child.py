"""Child process for bench_stream.py: one measured cell per process.

Runs one scenario workload through the full pipeline (compose →
simulate with an asan-monitored system) in the requested mode and
prints a JSON line with the memory watermarks:

    python _stream_child.py <stream|inmem> <repeats> <trace-file>

Peak RSS is a per-process high-water mark, so each (mode, scale) cell
runs in its own interpreter — an in-memory 10x run would otherwise
contaminate the streamed run's watermark.  tracemalloc's traced peak
rides along as the noise-free Python-allocation view of the same
claim.
"""

import json
import resource
import sys
import tracemalloc

from repro.core.system import FireGuardSystem
from repro.kernels import make_kernel
from repro.sim import SimulationSession
from repro.trace.scenario import compose_stream, compose_trace, \
    make_scenario
from repro.trace.stream import StreamedTrace

SCENARIO = "quiescent-idle"


def main() -> None:
    mode, repeats, trace_path = (sys.argv[1], int(sys.argv[2]),
                                 sys.argv[3])
    scenario = make_scenario(SCENARIO).repeated(repeats)

    session = SimulationSession(FireGuardSystem(
        [make_kernel("asan")], engines_per_kernel={"asan": 2}))

    tracemalloc.start()
    if mode == "stream":
        trace, _ = compose_stream(scenario, seed=11, path=trace_path)
        digest = trace.digest
    else:
        trace, _ = compose_trace(scenario, seed=11)
        digest = ""
    result = session.run(trace)
    traced_peak = tracemalloc.get_traced_memory()[1]
    tracemalloc.stop()

    print(json.dumps({
        "mode": mode,
        "repeats": repeats,
        "records": len(trace),
        "cycles": result.cycles,
        "detections": len(result.detections),
        "digest": digest,
        "traced_peak_bytes": traced_peak,
        "maxrss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    }))


if __name__ == "__main__":
    main()
