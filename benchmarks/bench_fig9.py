"""Fig 9 benchmark: bottlenecks vs event-filter width."""

from conftest import bench_set

from repro.analysis.report import format_table
from repro.experiments import fig9


def test_fig9_filter_width_bottlenecks(benchmark):
    reports = benchmark.pedantic(
        lambda: fig9.run(benchmarks=bench_set()),
        rounds=1, iterations=1)
    table = [["benchmark", "width", "slowdown", "filter_full",
              "mapper_blocked", "cdc_full", "msgq_full"]]
    table.extend(r.as_row() for r in reports)
    print()
    print(format_table(table,
                       title="Fig 9: bottlenecks vs filter width"))
    gms = fig9.width_geomeans(reports)
    print(f"geomeans: width4={gms[4]:.3f} width2={gms[2]:.3f} "
          f"width1={gms[1]:.3f}")
    # Shape: narrower filters are strictly no faster.
    assert gms[1] >= gms[2] - 1e-9
    assert gms[2] >= gms[4] - 1e-9
