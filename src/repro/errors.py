"""Exception hierarchy for the FireGuard reproduction.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type to handle any library failure.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigError(ReproError):
    """A configuration value is missing, out of range, or inconsistent."""


class EncodingError(ReproError):
    """An instruction could not be encoded or decoded."""


class AssemblyError(ReproError):
    """µcore assembly source could not be assembled."""

    def __init__(self, message: str, line: int | None = None):
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)
        self.line = line


class SimulationError(ReproError):
    """The simulator reached an inconsistent state."""


class QueueError(ReproError):
    """Illegal operation on a hardware queue (e.g. pop from empty)."""


class TraceError(ReproError):
    """A workload trace is malformed or cannot be generated."""


class KernelError(ReproError):
    """A guardian kernel was misconfigured or misbehaved."""


class StoreError(ReproError):
    """A persistent result-store entry is unusable or required but
    missing (see :mod:`repro.service.store`)."""


class RunCancelled(ReproError):
    """A submitted run was cancelled before it produced a record."""


class FabricError(ReproError):
    """A distributed-fabric operation failed: unreachable master,
    broken connection, protocol violation, or a spec that exhausted
    its retries on the fleet (see :mod:`repro.fabric`)."""
