"""Instruction groups: the GID space shared by all kernels.

A mini-filter SRAM entry holds exactly one GID per (opcode, funct3)
index, so GIDs name *instruction groups*, not kernels; the
distributor's SE_Bitmap fans a group out to every interested kernel
(§III-C).  Three groups cover the paper's kernels:

* ``GROUP_MEM``   — loads and stores (PMC, ASan, UaF);
* ``GROUP_CTRL``  — calls, returns and other jumps (shadow stack);
* ``GROUP_EVENT`` — allocator events, custom0.f0/f1 (ASan, UaF).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import DP_FTQ, DP_LSQ, DP_PRF
from repro.isa import opcodes as op

GROUP_MEM = 1
GROUP_CTRL = 2
GROUP_EVENT = 3


@dataclass(frozen=True)
class GroupRule:
    """Filter programming for one group: which SRAM rows to write."""

    gid: int
    dp_sel: int
    # (opcode, funct3) pairs; funct3 None means "all eight rows"
    # (needed when bits [14:12] are immediate bits, e.g. jal).
    rows: tuple[tuple[int, int | None], ...]


_MEM_ROWS = tuple(
    [(op.OP_LOAD, f3) for f3 in sorted(op.LOAD_MNEMONICS)]
    + [(op.OP_STORE, f3) for f3 in sorted(op.STORE_MNEMONICS)]
)

_CTRL_ROWS = (
    (op.OP_JAL, None),     # jal: funct3 bits are immediate bits
    (op.OP_JALR, 0),       # jalr: funct3 is genuinely 0
)

_EVENT_ROWS = (
    (op.OP_CUSTOM0, 0),    # allocation marker
    (op.OP_CUSTOM0, 1),    # free marker
)

_RULES = {
    GROUP_MEM: GroupRule(gid=GROUP_MEM, dp_sel=DP_LSQ | DP_PRF,
                         rows=_MEM_ROWS),
    GROUP_CTRL: GroupRule(gid=GROUP_CTRL, dp_sel=DP_FTQ, rows=_CTRL_ROWS),
    GROUP_EVENT: GroupRule(gid=GROUP_EVENT, dp_sel=DP_PRF,
                           rows=_EVENT_ROWS),
}


def group_rules(gid: int) -> GroupRule:
    """The filter rule for one instruction group."""
    return _RULES[gid]
