"""PMC guardian kernel: custom performance counter with bounds check.

Counts monitored memory events and flags any access outside the fence
registers [s1, s2).  This is the kernel the paper's programming-model
study (Fig 11) sweeps, so all four strategies are implemented:

* ``CONVENTIONAL`` — single-iteration loop: count check + pop per
  packet, consuming each result immediately (maximum hazards);
* ``DUFF`` — one count check covers a batch of up to four packets
  (Duff's-device-style dispatch);
* ``UNROLLED`` — no count checks: blocking pops, with queue reads
  scheduled away from their uses so no hazard bubbles remain;
* ``HYBRID`` — count once; full batches take the unrolled path, the
  tail takes the Duff path.  Uniformly best in the paper.
"""

from __future__ import annotations

from repro.core.accelerator import PmcAccelerator
from repro.core.msgqueue import MessageQueue
from repro.core.scheduling import SchedulingPolicy
from repro.kernels.base import GuardianKernel, KernelStrategy
from repro.kernels.groups import GROUP_MEM

# Bounds registers: s1 = x9 (low), s2 = x18 (high).  The defaults fence
# the legitimate address space (code/global/heap regions).
DEFAULT_BOUND_LO = 0x0
DEFAULT_BOUND_HI = 0x0000_0010_0000_0000
ALERT_CODE = 2


def _naive_body(tag: str) -> str:
    """One packet processed the conventional way: the pop result is
    consumed immediately (hazard bubble), the counter updated per
    packet.  (PMC subscribes only to the memory group, so every packet
    is a load/store — no class test is needed.)"""
    return f"""
    qpop    a1, 128            # accessed address
    bltu    a1, s1, bad_{tag}  # immediate use of qpop: bubble
    bgeu    a1, s2, bad_{tag}
    addi    s5, s5, 1
    j       done_{tag}
bad_{tag}:
    alerti  {ALERT_CODE}
    addi    s5, s5, 1
done_{tag}:
"""


def _scheduled_pair(tag: str) -> str:
    """Two packets with queue reads hoisted ahead of their uses (no
    hazard bubbles) and the event counter updated once per pair."""
    return f"""
    qpop    a2, 128
    qpop    a3, 128
    addi    s5, s5, 2
    bltu    a2, s1, bad0_{tag}
    bgeu    a2, s2, bad0_{tag}
chk1_{tag}:
    bltu    a3, s1, bad1_{tag}
    bgeu    a3, s2, bad1_{tag}
    j       done_{tag}
bad0_{tag}:
    alerti  {ALERT_CODE}
    j       chk1_{tag}
bad1_{tag}:
    alerti  {ALERT_CODE}
done_{tag}:
"""


class PmcKernel(GuardianKernel):
    name = "pmc"
    groups = (GROUP_MEM,)
    policy = SchedulingPolicy.ROUND_ROBIN
    has_accelerator = True

    def __init__(self, strategy: KernelStrategy = KernelStrategy.HYBRID,
                 bound_lo: int = DEFAULT_BOUND_LO,
                 bound_hi: int = DEFAULT_BOUND_HI):
        super().__init__(strategy)
        self.bound_lo = bound_lo
        self.bound_hi = bound_hi

    def preset_registers(self, engine_id, engine_ids, position):
        regs = super().preset_registers(engine_id, engine_ids, position)
        regs[9] = self.bound_lo    # s1
        regs[18] = self.bound_hi   # s2
        return regs

    def make_accelerator(self, engine_id: int, queue: MessageQueue,
                         on_alert) -> PmcAccelerator:
        return PmcAccelerator(engine_id, queue, on_alert,
                              bound_lo=self.bound_lo,
                              bound_hi=self.bound_hi)

    # -- programming models -------------------------------------------------
    def program_source(self) -> str:
        if self.strategy is KernelStrategy.CONVENTIONAL:
            return self._conventional()
        if self.strategy is KernelStrategy.DUFF:
            return self._duff()
        if self.strategy is KernelStrategy.UNROLLED:
            return self._unrolled()
        return self._hybrid()

    def _conventional(self) -> str:
        return f"""
# PMC, conventional single-iteration loop (Fig 11 baseline).
loop:
    qcount  t0, 0
    beqz    t0, loop           # immediate use of qcount: bubble
{_naive_body("c0")}
    j       loop
"""

    def _duff(self) -> str:
        return f"""
# PMC, Duff's device: one count check per batch of up to 4.
loop:
    qcount  t0, 0
    beqz    t0, loop
    li      t1, 4
    bltu    t0, t1, tail
{_naive_body("d0")}
{_naive_body("d1")}
{_naive_body("d2")}
{_naive_body("d3")}
    j       loop
tail:
{_naive_body("t0")}
    j       loop
"""

    def _unrolled(self) -> str:
        return f"""
# PMC, pure unrolling: blocking pops scheduled away from uses.
loop:
{_scheduled_pair("u0")}
{_scheduled_pair("u1")}
    j       loop
"""

    def _hybrid(self) -> str:
        return f"""
# PMC, hybrid: unrolled batches when the queue is full enough,
# Duff-style tail otherwise (uniformly best — Fig 11).
loop:
    qcount  t0, 0
    beqz    t0, loop
    li      t1, 4
    bltu    t0, t1, tail
{_scheduled_pair("h0")}
{_scheduled_pair("h1")}
    j       loop
tail:
{_naive_body("ht")}
    j       loop
"""
