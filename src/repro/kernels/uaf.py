"""Use-after-free guardian kernel (§IV: MineSweeper-based).

Follows MineSweeper's quarantine discipline: freed regions are
quarantined — recorded in a per-engine ring, their shadow poisoned
only after the free has aged past the engines' in-flight window, and
released (shadow cleared) once the ring cycles.  Loads and stores
check the quarantine shadow byte.

The deferred poisoning matters for precision: checking is
asynchronous and distributed, so an access committed just *before* a
free could be checked just *after* the poisoning landed; ageing the
free past the worst-case engine skew removes those false alarms, at
the cost of a short detection blind spot right after each free —
exactly the trade MineSweeper's quarantine makes.

The quarantine bookkeeping (ring maintenance, poison and release
sweeps) is per-free serial work that more µcores cannot parallelise
away — the reason dedup's UaF overhead stays flat in Fig 10(d).
"""

from __future__ import annotations

from repro.core.scheduling import SchedulingPolicy
from repro.kernels.base import GuardianKernel, KernelStrategy
from repro.kernels.groups import GROUP_EVENT, GROUP_MEM

ALERT_CODE = 4
QUARANTINE_POISON = 0xFD
QUARANTINE_POISON_WIDE = 0xFDFDFDFDFDFDFDFD
RING_ENTRIES = 64   # (base, size) pairs per engine before release
FREE_DELAY_PACKETS = 48


class UafKernel(GuardianKernel):
    name = "uaf"
    groups = (GROUP_MEM, GROUP_EVENT)
    policy = SchedulingPolicy.ROUND_ROBIN

    # Own shadow region: when combined with ASan (Fig 7(b)) the two
    # kernels must not fight over poison bytes.
    SHADOW_OFFSET = 0x0800_0000_0000

    def __init__(self, strategy: KernelStrategy = KernelStrategy.HYBRID):
        super().__init__(strategy)

    def preset_registers(self, engine_id, engine_ids, position):
        regs = super().preset_registers(engine_id, engine_ids, position)
        regs[8] = regs[8] + self.SHADOW_OFFSET
        return regs

    def program_source(self) -> str:
        # s0 = shadow base; s3 = per-engine scratch (quarantine ring:
        # slot i at s3 + i*16 holds (base, size)); s7 = ring cursor;
        # s9 = packets since last free; s10/s11 = pending free.
        return f"""
# Use-after-free detection with MineSweeper-style quarantine.
# Hot path hand-scheduled as §III-D advocates (see the ASan kernel).
init:
    li      s7, 0
    li      s10, 0
    li      s6, {QUARANTINE_POISON}
    li      s9, 1000000        # deferred-poison countdown: idle value
loop:
    qpop    a0, 0              # meta word
    qrecent a1, 128            # address, hoisted ahead of use
    addi    s9, s9, -1
    andi    t0, a0, 3          # load|store
    srli    t1, a1, 4
    add     t1, t1, s0
    beqz    s9, age            # pending free has aged: quarantine it
resume:
    beqz    t0, slow
    lbu     t2, 0(t1)
    bne     t2, s6, loop       # not quarantined: next packet
bad:
    qrecent a2, 64             # PC only fetched on a hit
    alerti  {ALERT_CODE}
    j       loop

age:
    li      s9, 1000000
    beqz    s10, resume
    jal     ra, flush_free
    andi    t0, a0, 3          # flush clobbered the temporaries
    srli    t1, a1, 4
    add     t1, t1, s0
    j       resume

slow:
    andi    t0, a0, 32         # free
    bnez    t0, do_free
    andi    t0, a0, 16         # alloc
    bnez    t0, do_alloc
    j       loop

do_alloc:
    # Bump allocation never reuses quarantined memory; clear the body
    # in case of shadow aliasing (wide stores).
    qrecent a1, 128
    qrecent a2, 192
    srli    t1, a1, 4
    add     t1, t1, s0
    srli    t5, a2, 4
    srli    t6, t5, 3
    andi    t5, t5, 7
al_wide:
    beqz    t6, al_tail
    sd      zero, 0(t1)
    addi    t1, t1, 8
    addi    t6, t6, -1
    j       al_wide
al_tail:
    beqz    t5, loop
    sb      zero, 0(t1)
    addi    t1, t1, 1
    addi    t5, t5, -1
    j       al_tail

do_free:
    beqz    s10, stash
    jal     ra, flush_free     # age out the previous free first
stash:
    qrecent s10, 128
    qrecent s11, 192
    li      s9, {FREE_DELAY_PACKETS}
    j       loop

# flush_free: quarantine the pending region — release the ring slot
# being overwritten (unpoison the oldest quarantined region), record
# the pending (base, size), and poison its shadow.  Returns via ra.
flush_free:
    # 1. Release the slot we are about to overwrite.
    slli    t0, s7, 4
    add     t0, t0, s3
    ld      t1, 0(t0)          # old base (0 = slot unused)
    beqz    t1, record
    ld      t2, 8(t0)          # old size
    srli    t1, t1, 4
    add     t1, t1, s0
    srli    t2, t2, 4
    srli    t6, t2, 3
    andi    t2, t2, 7
rl_wide:
    beqz    t6, rl_tail
    sd      zero, 0(t1)
    addi    t1, t1, 8
    addi    t6, t6, -1
    j       rl_wide
rl_tail:
    beqz    t2, record
    sb      zero, 0(t1)
    addi    t1, t1, 1
    addi    t2, t2, -1
    j       rl_tail
record:
    # 2. Record the pending region in the ring.
    sd      s10, 0(t0)
    sd      s11, 8(t0)
    addi    s7, s7, 1
    li      t1, {RING_ENTRIES}
    blt     s7, t1, poison_pending
    li      s7, 0
poison_pending:
    # 3. Poison the pending region's shadow (wide stores).
    srli    t1, s10, 4
    add     t1, t1, s0
    srli    t5, s11, 4
    srli    t6, t5, 3
    andi    t5, t5, 7
    li      t4, {QUARANTINE_POISON_WIDE}
    li      t3, {QUARANTINE_POISON}
po_wide:
    beqz    t6, po_tail
    sd      t4, 0(t1)
    addi    t1, t1, 8
    addi    t6, t6, -1
    j       po_wide
po_tail:
    beqz    t5, po_done
    sb      t3, 0(t1)
    addi    t1, t1, 1
    addi    t5, t5, -1
    j       po_tail
po_done:
    li      s10, 0
    ret
"""
