"""Guardian-kernel interface.

A kernel contributes: the instruction groups it consumes, its mapper
scheduling policy, the µcore program (assembly text, possibly per
programming-model strategy — Fig 11), per-engine configuration
registers, and optionally a hardware-accelerator factory.

Register conventions for kernel programs (preset before the run):

====  =====  =====================================================
reg   ABI    meaning
====  =====  =====================================================
x8    s0     shadow-memory base (ASan/UaF)
x9    s1     config A (PMC: lower bound; SS: shadow region base)
x18   s2     config B (PMC: upper bound)
x19   s3     per-engine scratch region base
x20   s4     number of engines running this kernel
x22   s6     next engine id (for NoC hand-off rings)
x24   s8     this engine's position within the kernel's group
====  =====  =====================================================
"""

from __future__ import annotations

from enum import Enum

from repro.core.accelerator import HardwareAccelerator
from repro.core.msgqueue import MessageQueue
from repro.core.scheduling import SchedulingPolicy
from repro.errors import KernelError

SHADOW_BASE = 0x0000_4000_0000_0000
SCRATCH_BASE = 0x0000_6000_0000_0000
SCRATCH_STRIDE = 0x0100_0000
SHADOW_STACK_BASE = 0x0000_5000_0000_0000


class KernelStrategy(Enum):
    """Programming-model strategies (§III-D, Fig 11)."""

    CONVENTIONAL = "conventional"
    DUFF = "duff"
    UNROLLED = "unrolled"
    HYBRID = "hybrid"


class GuardianKernel:
    """Base class; concrete kernels override the class attributes and
    the program source."""

    name = "kernel"
    groups: tuple[int, ...] = ()
    policy = SchedulingPolicy.ROUND_ROBIN
    block_size = 16           # packets per engine in BLOCK mode
    has_accelerator = False

    def __init__(self, strategy: KernelStrategy = KernelStrategy.HYBRID):
        if not self.groups:
            raise KernelError(f"kernel {self.name}: no instruction groups")
        self.strategy = strategy

    # -- µcore side ----------------------------------------------------
    def program_source(self) -> str:
        """Assembly text of the kernel program."""
        raise NotImplementedError

    def preset_registers(self, engine_id: int, engine_ids: list[int],
                         position: int) -> dict[int, int]:
        """Configuration registers for the engine at ``position`` within
        this kernel's engine group ``engine_ids``."""
        nxt = engine_ids[(position + 1) % len(engine_ids)]
        return {
            8: SHADOW_BASE,
            19: SCRATCH_BASE + engine_id * SCRATCH_STRIDE,
            20: len(engine_ids),
            22: nxt,
            24: position,
        }

    # -- hardware-accelerator variant ------------------------------------
    def make_accelerator(self, engine_id: int, queue: MessageQueue,
                         on_alert) -> HardwareAccelerator:
        raise KernelError(f"kernel {self.name} has no accelerator variant")

    # -- ground truth (used by tests) -----------------------------------
    def describe(self) -> str:
        return f"{self.name} ({self.strategy.value}, {self.policy.value})"
