"""Shadow-stack guardian kernel (§IV: 2.1 % overhead at 4 µcores).

Calls push their return address onto a shadow stack; returns pop and
compare the actual target.  Program order matters, so the mapper uses
BLOCK scheduling (message locality — §III-C), and engines pass the
shadow stack pointer around a ring through the routing NoC: after
processing a block of packets an engine pushes its stack pointer to
the next engine and waits for its own turn (the "pipelined
parallelism" §III-D's output queues exist for).

The shadow stack itself lives in shared memory, so only the stack
pointer needs to travel.
"""

from __future__ import annotations

from repro.core.accelerator import ShadowStackAccelerator
from repro.core.msgqueue import MessageQueue
from repro.core.scheduling import SchedulingPolicy
from repro.kernels.base import (
    SHADOW_STACK_BASE,
    GuardianKernel,
    KernelStrategy,
)
from repro.kernels.groups import GROUP_CTRL

ALERT_CODE = 3


class ShadowStackKernel(GuardianKernel):
    name = "shadow_stack"
    groups = (GROUP_CTRL,)
    policy = SchedulingPolicy.BLOCK
    block_size = 16
    has_accelerator = True

    def __init__(self, strategy: KernelStrategy = KernelStrategy.HYBRID):
        super().__init__(strategy)

    def preset_registers(self, engine_id, engine_ids, position):
        regs = super().preset_registers(engine_id, engine_ids, position)
        regs[9] = SHADOW_STACK_BASE  # s1: initial shadow stack pointer
        return regs

    def make_accelerator(self, engine_id: int, queue: MessageQueue,
                         on_alert) -> ShadowStackAccelerator:
        return ShadowStackAccelerator(engine_id, queue, on_alert)

    def program_source(self) -> str:
        # s1 = initial shadow SP, s4 = #engines, s6 = next engine id,
        # s5 = live shadow SP, s7 = block budget.
        return f"""
# Shadow stack with NoC ring hand-off of the stack pointer.
# s8 = position within the group: position 0 owns the SP first.
init:
    mv      s5, s1
    li      t1, 1
    beq     s4, t1, loop     # single engine: no hand-off partner
    beqz    s8, loop         # position 0 starts with the live SP
    ppop    s5               # blocking: receive shadow SP for my turn
loop:
    li      s7, {self.block_size}
body:
    qpop    a0, 0            # meta word
    andi    t0, a0, 4        # call flag
    bnez    t0, docall
    andi    t0, a0, 8        # ret flag
    bnez    t0, doret
next:
    addi    s7, s7, -1
    bnez    s7, body
    # Block complete: hand the stack pointer to the next engine.
    li      t1, 1
    beq     s4, t1, loop     # single engine keeps it
    qdest   s6
    qpush   s5
    ppop    s5               # wait for my next turn's SP
    j       loop
docall:
    qrecent a1, 192          # debug data = return address (PC+4)
    sd      a1, 0(s5)
    addi    s5, s5, 8
    j       next
doret:
    qrecent a1, 128          # actual jump target
    addi    s5, s5, -8
    ld      t1, 0(s5)
    beq     t1, a1, next
    alerti  {ALERT_CODE}
    j       next
"""
