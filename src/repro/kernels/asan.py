"""AddressSanitizer guardian kernel (§IV: 39 % at 4 µcores, 6 % at 12).

Classic shadow-memory sanitiser at 16-byte granularity: allocations
poison one redzone granule on each side and clear the body; frees
poison the body; every monitored load/store checks its granule's
shadow byte.  The shadow lives in shared memory at ``s0``
(:data:`repro.kernels.base.SHADOW_BASE`), so shadow loads traverse the
µcore's small L1/TLB — the source of the Fig 8 tail latencies.

Two implementation details mirror production sanitisers:

* shadow writes use wide (8-byte) stores, one per eight granules;
* free-time poisoning is *deferred* until the free has aged past the
  engines' in-flight window (a counter of subsequently processed
  packets).  Checking is asynchronous and distributed, so an access
  committed just before a free could otherwise be checked just after
  another engine poisoned the region — the quarantine-delay discipline
  MineSweeper applies for exactly this reason.

The per-allocation poisoning loop costs cycles proportional to object
size: allocation-heavy workloads (dedup) keep engines busy with
serial work that extra µcores cannot absorb (§IV-D).
"""

from __future__ import annotations

from repro.core.accelerator import AsanAccelerator
from repro.core.msgqueue import MessageQueue
from repro.core.scheduling import SchedulingPolicy
from repro.kernels.base import GuardianKernel, KernelStrategy
from repro.kernels.groups import GROUP_EVENT, GROUP_MEM

ALERT_CODE = 1
POISON_LEFT = 0xF1
POISON_RIGHT = 0xF3
POISON_FREED = 0xFD
POISON_FREED_WIDE = 0xFDFDFDFDFDFDFDFD
# Packets a free must age before its poisoning lands: covers the
# worst-case skew between engines (queue depth x engine count).
FREE_DELAY_PACKETS = 48


class AsanKernel(GuardianKernel):
    name = "asan"
    groups = (GROUP_MEM, GROUP_EVENT)
    policy = SchedulingPolicy.ROUND_ROBIN
    has_accelerator = True

    def __init__(self, strategy: KernelStrategy = KernelStrategy.HYBRID):
        super().__init__(strategy)

    def make_accelerator(self, engine_id: int, queue: MessageQueue,
                         on_alert) -> AsanAccelerator:
        return AsanAccelerator(engine_id, queue, on_alert)

    def program_source(self) -> str:
        # s0 = shadow base; shadow(addr) = s0 + (addr >> 4).
        # s9 = packets since last free; s10/s11 = pending free
        # (base/size, 0 = none).
        return f"""
# AddressSanitizer: shadow-memory checks at 16-byte granularity.
# The hot path (a monitored load/store) is hand-scheduled the way
# §III-D advocates: queue reads hoisted ahead of their uses, the
# common case falling through, the loop-back branch shared.
init:
    li      s10, 0
    li      s9, 1000000        # deferred-poison countdown: idle value
loop:
    qpop    a0, 0              # meta word
    qrecent a1, 128            # address (fetched before use: no bubble)
    addi    s9, s9, -1         # ageing countdown for the pending free
    andi    t0, a0, 3          # load|store flags
    srli    t1, a1, 4
    add     t1, t1, s0
    beqz    s9, age            # pending free has aged: flush it
resume:
    beqz    t0, slow           # not a memory packet: rare slow path
    lbu     t2, 0(t1)          # shadow byte (µcore D$/TLB traffic)
    beqz    t2, loop           # clean: back for the next packet
bad:
    qrecent a2, 64             # the PC, fetched only on error (§III-D)
    alerti  {ALERT_CODE}
    j       loop

age:
    li      s9, 1000000
    beqz    s10, resume
    jal     ra, flush_free
    andi    t0, a0, 3          # flush clobbered the temporaries
    srli    t1, a1, 4
    add     t1, t1, s0
    j       resume

slow:
    andi    t0, a0, 16         # alloc flag
    bnez    t0, do_alloc
    andi    t0, a0, 32         # free flag
    bnez    t0, do_free
    j       loop

do_alloc:
    qrecent a1, 128            # region base
    qrecent a2, 192            # region size
    srli    t1, a1, 4
    add     t1, t1, s0         # shadow cursor at base
    li      t3, {POISON_LEFT}
    sb      t3, -1(t1)         # left redzone granule
    add     t4, a1, a2
    srli    t4, t4, 4
    add     t4, t4, s0
    li      t3, {POISON_RIGHT}
    sb      t3, 0(t4)          # right redzone granule
    # Clear the body with wide stores (8 granules per sd).
    srli    t5, a2, 4
    srli    t6, t5, 3
    andi    t5, t5, 7
clr_wide:
    beqz    t6, clr_tail
    sd      zero, 0(t1)
    addi    t1, t1, 8
    addi    t6, t6, -1
    j       clr_wide
clr_tail:
    beqz    t5, loop
    sb      zero, 0(t1)
    addi    t1, t1, 1
    addi    t5, t5, -1
    j       clr_tail

do_free:
    beqz    s10, stash         # nothing pending: just record
    jal     ra, flush_free     # poison the previous free first
stash:
    qrecent s10, 128           # pending base
    qrecent s11, 192           # pending size
    li      s9, {FREE_DELAY_PACKETS}
    j       loop

# flush_free: poison the pending freed region [s10, s10+s11) with
# 0xFD, using wide stores; clears the pending slot.  Returns via ra.
flush_free:
    srli    t1, s10, 4
    add     t1, t1, s0
    srli    t5, s11, 4
    srli    t6, t5, 3
    andi    t5, t5, 7
    li      t4, {POISON_FREED_WIDE}
    li      t3, {POISON_FREED}
fl_wide:
    beqz    t6, fl_tail
    sd      t4, 0(t1)
    addi    t1, t1, 8
    addi    t6, t6, -1
    j       fl_wide
fl_tail:
    beqz    t5, fl_done
    sb      t3, 0(t1)
    addi    t1, t1, 1
    addi    t5, t5, -1
    j       fl_tail
fl_done:
    li      s10, 0
    ret
"""
