"""Kernel registry: name → class, for experiment harnesses and CLIs."""

from __future__ import annotations

from repro.errors import KernelError
from repro.kernels.asan import AsanKernel
from repro.kernels.base import GuardianKernel, KernelStrategy
from repro.kernels.pmc import PmcKernel
from repro.kernels.shadow_stack import ShadowStackKernel
from repro.kernels.uaf import UafKernel

KERNELS: dict[str, type[GuardianKernel]] = {
    "pmc": PmcKernel,
    "shadow_stack": ShadowStackKernel,
    "asan": AsanKernel,
    "uaf": UafKernel,
}


def make_kernel(name: str,
                strategy: KernelStrategy = KernelStrategy.HYBRID,
                **kwargs) -> GuardianKernel:
    """Instantiate a kernel by name."""
    if name not in KERNELS:
        raise KernelError(
            f"unknown kernel {name!r}; available: {sorted(KERNELS)}")
    return KERNELS[name](strategy=strategy, **kwargs)
