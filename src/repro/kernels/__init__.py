"""Guardian kernels: the security checks running on analysis engines.

The paper evaluates four kernels (§IV): a custom performance counter
with bounds check (PMC), a shadow stack, AddressSanitizer, and a
MineSweeper-style use-after-free detector.  Each is written in real
µcore assembly against the ISAX queue instructions, with hardware-
accelerator variants for PMC and the shadow stack.
"""

from repro.kernels.asan import AsanKernel
from repro.kernels.base import GuardianKernel, KernelStrategy
from repro.kernels.groups import (
    GROUP_CTRL,
    GROUP_EVENT,
    GROUP_MEM,
    GroupRule,
    group_rules,
)
from repro.kernels.pmc import PmcKernel
from repro.kernels.registry import KERNELS, make_kernel
from repro.kernels.shadow_stack import ShadowStackKernel
from repro.kernels.uaf import UafKernel

__all__ = [
    "AsanKernel",
    "GROUP_CTRL",
    "GROUP_EVENT",
    "GROUP_MEM",
    "GroupRule",
    "GuardianKernel",
    "KERNELS",
    "KernelStrategy",
    "PmcKernel",
    "ShadowStackKernel",
    "UafKernel",
    "group_rules",
    "make_kernel",
]
