"""Decode µcore programs into the hotpath's flat representation.

:func:`decode_ucore_program` turns a ``list[UInstr]`` into one flat
``list[int]`` with :data:`~repro.hotpath.ucore_kernel.STRIDE` fields
per pc (op code, dispatch kind, registers, immediate, the *next*
instruction's read-register bitmask for hazard checks, and the memory
access size) — the only program representation
:func:`~repro.hotpath.ucore_kernel.ucore_tick` reads.

Decoded programs are cached by content digest: a FireGuard system
builds one :class:`MicroCore` per engine from the *same* assembled
kernel program, and sweep harnesses build many systems from the same
kernels, so repeated construction (and ``reset()`` + run session
cycles across fresh builds) skips the re-decode entirely.  The cache
helps every backend — the interpreted fallback included.

This module stays interpreted (it runs once per distinct program, not
per cycle); only the kernels in ``ucore_kernel``/``ooo_kernel`` are
compiled.
"""

from __future__ import annotations

import hashlib

from repro.hotpath import ucore_kernel as _uk
from repro.ucore.isa import (
    BRANCH_OPS,
    LOAD_OPS,
    MEM_SIZES,
    QUEUE_OPS,
    STORE_OPS,
    Op,
    UInstr,
)

#: Op → dense kernel op code, mapped by member name so the enum in
#: ``repro.ucore.isa`` stays the single source of truth.
_OP_CODE: dict[Op, int] = {
    op: getattr(_uk, "OP_" + op.name) for op in Op}

_KIND_CODE: dict[Op, int] = {
    op: (_uk.K_QUEUE if op in QUEUE_OPS
         else _uk.K_LOAD if op in LOAD_OPS
         else _uk.K_STORE if op in STORE_OPS
         else _uk.K_BRANCH if op in BRANCH_OPS
         else _uk.K_OTHER)
    for op in Op}


class DecodedProgram:
    """One decoded program: the flat array plus its identity."""

    __slots__ = ("prog", "length", "digest")

    def __init__(self, prog: list[int], length: int, digest: str):
        self.prog = prog
        self.length = length
        self.digest = digest


_CACHE: dict[str, DecodedProgram] = {}
_CACHE_LIMIT = 128
_HITS = 0
_MISSES = 0


def program_digest(program: list[UInstr]) -> str:
    """Content digest of an assembled program (cache key; also stable
    across processes for a given kernel source)."""
    text = "\n".join(
        f"{instr.op.name} {instr.rd} {instr.rs1} {instr.rs2} {instr.imm}"
        for instr in program)
    return hashlib.sha256(text.encode()).hexdigest()


def _read_mask(instr: UInstr) -> int:
    """Bitmask of the registers ``instr`` reads, excluding x0."""
    mask = 0
    for reg in instr.reads():
        if reg:
            mask |= 1 << reg
    return mask


def _decode(program: list[UInstr], digest: str) -> DecodedProgram:
    stride = _uk.STRIDE
    length = len(program)
    prog = [0] * (stride * length)
    for index, instr in enumerate(program):
        base = index * stride
        prog[base + _uk.F_OP] = _OP_CODE[instr.op]
        prog[base + _uk.F_KIND] = _KIND_CODE[instr.op]
        prog[base + _uk.F_RD] = instr.rd
        prog[base + _uk.F_RS1] = instr.rs1
        prog[base + _uk.F_RS2] = instr.rs2
        prog[base + _uk.F_IMM] = instr.imm
        if index + 1 < length:
            prog[base + _uk.F_MASK] = _read_mask(program[index + 1])
        prog[base + _uk.F_SIZE] = MEM_SIZES.get(instr.op, 0)
    return DecodedProgram(prog, length, digest)


def decode_ucore_program(program: list[UInstr]) -> DecodedProgram:
    """Decode ``program``, served from the digest-keyed cache when an
    identical program was decoded before (any engine, any system)."""
    global _HITS, _MISSES
    digest = program_digest(program)
    cached = _CACHE.get(digest)
    if cached is not None:
        _HITS += 1
        return cached
    _MISSES += 1
    decoded = _decode(program, digest)
    if len(_CACHE) >= _CACHE_LIMIT:
        _CACHE.clear()
    _CACHE[digest] = decoded
    return decoded


def decode_cache_stats() -> dict[str, int]:
    """Hit/miss counters (observability + tests)."""
    return {"hits": _HITS, "misses": _MISSES, "entries": len(_CACHE)}


def clear_decode_cache() -> None:
    """Drop the cache and zero its counters (tests)."""
    global _HITS, _MISSES
    _CACHE.clear()
    _HITS = 0
    _MISSES = 0
