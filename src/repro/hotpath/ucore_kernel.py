"""Compilable µcore inner tick (DESIGN.md: hotpath layer).

This module is THE implementation of :meth:`MicroCore.tick` for every
backend — ``repro.ucore.core`` calls :func:`ucore_tick` with its state
flattened into plain ``list[int]`` arrays.  ``REPRO_BACKEND=compiled``
merely swaps in the C-compiled build of this same source
(``repro.hotpath._compiled.ucore_kernel``, produced by
``python -m repro.hotpath.build``), so the semantics are single-sourced
and the interpreted and compiled variants are bit-identical by
construction.

Extraction rules (what may live here):

* **Flat state only.** Mutable per-engine state lives in ``st``
  (``list[int]``, indexed by the ``ST_*``/slot constants below) and
  ``regs`` (``list[int]``, the 32 architectural registers); the decoded
  program is one flat ``list[int]`` with :data:`STRIDE` fields per pc
  (see :mod:`repro.hotpath.decode`).  No dataclasses, no dicts, no
  allocation on the per-tick path.
* **Escape calls for shared components.** Caches, TLB, functional
  memory, the queue controller, the ISAX cost model and the alert
  callback stay interpreted objects reached through ``mc`` (the owning
  :class:`MicroCore`) — they carry their own statistics and are shared
  across engines, so flattening them would fork semantics.  Escape
  calls are boxed under mypyc; they are not on the hot path for the
  common ALU/branch instructions.
* **Fully annotated, no fancy types.** Both mypyc and Cython
  (pure-Python mode) must compile this file unmodified: module-level
  ``Final`` int constants, ``list[int]`` arguments, no closures, no
  ``*args``, no decorators.

The op codes below are this module's private dense encoding of
:class:`repro.ucore.isa.Op`; :mod:`repro.hotpath.decode` builds the
mapping by name, so the enum stays the single source of truth for the
instruction set.
"""

from typing import Any, Final

from repro.errors import SimulationError

MASK64: Final = (1 << 64) - 1
_SIGN64: Final = 1 << 63

# -- st slots (one list[int] per engine) --------------------------------
PC: Final = 0
HALTED: Final = 1
BLOCKED: Final = 2
STALL_UNTIL: Final = 3
PREV_QOP: Final = 4
SINCE_EFFECT: Final = 5
BLOCKED_ON: Final = 6           # WAIT_* code, 0 = not blocked
STAT_INSTR: Final = 7
STAT_STALL: Final = 8
STAT_POPS: Final = 9
STAT_ALERTS: Final = 10
ENGINE_ID: Final = 11
NUM_ENGINES: Final = 12         # max(1, config.num_engines), for QDEST
PROG_LEN: Final = 13
L2_LAT: Final = 14              # config.ucore_l2_latency (L1D fill)
ST_LEN: Final = 15

# -- blocked-on codes (st[BLOCKED_ON]) ----------------------------------
WAIT_NONE: Final = 0
WAIT_INPUT: Final = 1
WAIT_PEER: Final = 2
WAIT_OUTPUT: Final = 3

# -- decoded-program layout (STRIDE ints per pc) ------------------------
STRIDE: Final = 8
F_OP: Final = 0
F_KIND: Final = 1
F_RD: Final = 2
F_RS1: Final = 3
F_RS2: Final = 4
F_IMM: Final = 5
F_MASK: Final = 6               # bitmask of the NEXT instr's read regs
F_SIZE: Final = 7               # memory access size (loads/stores)

# -- dispatch kinds (F_KIND) --------------------------------------------
K_OTHER: Final = 0
K_QUEUE: Final = 1
K_LOAD: Final = 2
K_STORE: Final = 3
K_BRANCH: Final = 4

# -- op codes (dense encoding of repro.ucore.isa.Op, mapped by name) ----
OP_ADD: Final = 0
OP_SUB: Final = 1
OP_AND: Final = 2
OP_OR: Final = 3
OP_XOR: Final = 4
OP_SLL: Final = 5
OP_SRL: Final = 6
OP_SRA: Final = 7
OP_SLT: Final = 8
OP_SLTU: Final = 9
OP_MUL: Final = 10
OP_DIV: Final = 11
OP_ADDI: Final = 12
OP_ANDI: Final = 13
OP_ORI: Final = 14
OP_XORI: Final = 15
OP_SLLI: Final = 16
OP_SRLI: Final = 17
OP_SLTI: Final = 18
OP_LI: Final = 19
OP_LD: Final = 20
OP_LW: Final = 21
OP_LB: Final = 22
OP_LBU: Final = 23
OP_SD: Final = 24
OP_SW: Final = 25
OP_SB: Final = 26
OP_BEQ: Final = 27
OP_BNE: Final = 28
OP_BLT: Final = 29
OP_BGE: Final = 30
OP_BLTU: Final = 31
OP_BGEU: Final = 32
OP_JAL: Final = 33
OP_JALR: Final = 34
OP_QCOUNT: Final = 35
OP_QTOP: Final = 36
OP_QPOP: Final = 37
OP_QRECENT: Final = 38
OP_QPUSH: Final = 39
OP_QDEST: Final = 40
OP_PCOUNT: Final = 41
OP_PPOP: Final = 42
OP_ALERT: Final = 43
OP_ALERTI: Final = 44
OP_CSRR: Final = 45
OP_NOP: Final = 46
OP_HALT: Final = 47


def _sx(value: int) -> int:
    """Sign-extend a 64-bit value to a Python int."""
    return (value ^ _SIGN64) - _SIGN64


def _raise_alert(mc: Any, st: "list[int]", code: int,
                 low_cycle: int) -> None:
    st[STAT_ALERTS] += 1
    st[SINCE_EFFECT] = 0
    cb = mc.on_alert
    if cb is not None:
        cb(st[ENGINE_ID], code, low_cycle)


def _execute_load(mc: Any, st: "list[int]", regs: "list[int]",
                  prog: "list[int]", pc: int, base: int, op: int,
                  low_cycle: int) -> int:
    addr = (regs[prog[base + F_RS1]] + prog[base + F_IMM]) & MASK64
    size = prog[base + F_SIZE]
    data = mc.memory.data
    if op == OP_LB:
        value = data.load_signed(addr, size) & MASK64
    else:
        value = data.load(addr, size)
    rd = prog[base + F_RD]
    if rd:
        regs[rd] = value
    cost = 1 + mc.tlb.translate(addr)
    hit, mshr = mc.l1d.lookup(addr, low_cycle, st[L2_LAT])
    cost += mshr
    if not hit:
        cost += mc.memory.miss_latency(addr, low_cycle)
    if (prog[base + F_MASK] >> rd) & 1:
        cost += 1  # load-use bubble
    st[PC] = pc + 1
    return cost


def _execute_store(mc: Any, st: "list[int]", regs: "list[int]",
                   prog: "list[int]", pc: int, base: int,
                   low_cycle: int) -> int:
    addr = (regs[prog[base + F_RS1]] + prog[base + F_IMM]) & MASK64
    mc.memory.data.store(addr, regs[prog[base + F_RS2]],
                         prog[base + F_SIZE])
    cost = 1 + mc.tlb.translate(addr)
    # Write-allocate: a missing line is fetched before the write.
    hit, mshr = mc.l1d.lookup(addr, low_cycle, st[L2_LAT])
    cost += mshr
    if not hit:
        cost += mc.memory.miss_latency(addr, low_cycle)
    st[SINCE_EFFECT] = 0
    st[PC] = pc + 1
    return cost


def _execute_queue(mc: Any, st: "list[int]", regs: "list[int]",
                   prog: "list[int]", pc: int, base: int,
                   op: int) -> int:
    ctrl = mc.controller
    result = 0
    wb = False

    if op == OP_QCOUNT:
        result = ctrl.count(prog[base + F_IMM])
        wb = True
    elif op == OP_QTOP:
        queue = ctrl.input_queue
        if queue.empty:
            st[BLOCKED_ON] = WAIT_INPUT
            return 0
        result = queue.top(prog[base + F_IMM])
        wb = True
    elif op == OP_QPOP:
        queue = ctrl.input_queue
        if queue.empty:
            st[BLOCKED_ON] = WAIT_INPUT
            return 0
        result = queue.pop(prog[base + F_IMM])
        wb = True
        st[STAT_POPS] += 1
        st[SINCE_EFFECT] = 0
    elif op == OP_QRECENT:
        result = ctrl.input_queue.recent(prog[base + F_IMM])
        wb = True
    elif op == OP_PCOUNT:
        result = len(ctrl.peer_queue)
        wb = True
    elif op == OP_PPOP:
        queue = ctrl.peer_queue
        if queue.empty:
            st[BLOCKED_ON] = WAIT_PEER
            return 0
        result = queue.pop()
        wb = True
        st[SINCE_EFFECT] = 0
    elif op == OP_QPUSH:
        if not ctrl.push(regs[prog[base + F_RS1]]):
            st[BLOCKED_ON] = WAIT_OUTPUT
            return 0
        st[SINCE_EFFECT] = 0
    elif op == OP_QDEST:
        ctrl.dest_register = regs[prog[base + F_RS1]] % st[NUM_ENGINES]
    else:  # pragma: no cover - exhaustive
        raise SimulationError(f"unhandled queue op code {op}")

    rd = prog[base + F_RD]
    if wb and rd:
        regs[rd] = result

    used_next = wb and ((prog[base + F_MASK] >> rd) & 1) != 0
    cost = mc.isax.cost(result_used_next=used_next,
                        back_to_back=st[PREV_QOP] == 1)
    st[PC] = pc + 1
    return cost


def _execute(mc: Any, st: "list[int]", regs: "list[int]",
             prog: "list[int]", pc: int, base: int, op: int, kind: int,
             low_cycle: int) -> int:
    """Execute one instruction; return its cycle cost, or 0 when the
    instruction is blocked and must retry."""
    if kind == K_QUEUE:
        return _execute_queue(mc, st, regs, prog, pc, base, op)
    if kind == K_LOAD:
        return _execute_load(mc, st, regs, prog, pc, base, op, low_cycle)
    if kind == K_STORE:
        return _execute_store(mc, st, regs, prog, pc, base, low_cycle)

    r1 = regs[prog[base + F_RS1]]
    r2 = regs[prog[base + F_RS2]]

    if kind == K_BRANCH:
        if op == OP_BEQ:
            taken = r1 == r2
        elif op == OP_BNE:
            taken = r1 != r2
        elif op == OP_BLT:
            taken = _sx(r1) < _sx(r2)
        elif op == OP_BGE:
            taken = _sx(r1) >= _sx(r2)
        elif op == OP_BLTU:
            taken = r1 < r2
        else:  # BGEU
            taken = r1 >= r2
        if taken:
            st[PC] = prog[base + F_IMM]
            return 2  # redirect bubble
        st[PC] = pc + 1
        return 1

    cost = 1
    if op == OP_ADD:
        result = (r1 + r2) & MASK64
    elif op == OP_SUB:
        result = (r1 - r2) & MASK64
    elif op == OP_AND:
        result = r1 & r2
    elif op == OP_OR:
        result = r1 | r2
    elif op == OP_XOR:
        result = r1 ^ r2
    elif op == OP_SLL:
        result = (r1 << (r2 & 63)) & MASK64
    elif op == OP_SRL:
        result = r1 >> (r2 & 63)
    elif op == OP_SRA:
        result = (_sx(r1) >> (r2 & 63)) & MASK64
    elif op == OP_SLT:
        result = 1 if _sx(r1) < _sx(r2) else 0
    elif op == OP_SLTU:
        result = 1 if r1 < r2 else 0
    elif op == OP_MUL:
        result = (r1 * r2) & MASK64
        cost = 2
    elif op == OP_DIV:
        result = (r1 // r2) & MASK64 if r2 else MASK64
        cost = 8
    elif op == OP_ADDI:
        result = (r1 + prog[base + F_IMM]) & MASK64
    elif op == OP_ANDI:
        result = r1 & (prog[base + F_IMM] & MASK64)
    elif op == OP_ORI:
        result = r1 | (prog[base + F_IMM] & MASK64)
    elif op == OP_XORI:
        result = r1 ^ (prog[base + F_IMM] & MASK64)
    elif op == OP_SLLI:
        result = (r1 << (prog[base + F_IMM] & 63)) & MASK64
    elif op == OP_SRLI:
        result = r1 >> (prog[base + F_IMM] & 63)
    elif op == OP_SLTI:
        result = 1 if _sx(r1) < prog[base + F_IMM] else 0
    elif op == OP_LI:
        result = prog[base + F_IMM] & MASK64
    elif op == OP_JAL:
        rd = prog[base + F_RD]
        if rd:
            regs[rd] = pc + 1
        st[PC] = prog[base + F_IMM]
        return 2
    elif op == OP_JALR:
        target = (r1 + prog[base + F_IMM]) & MASK64
        rd = prog[base + F_RD]
        if rd:
            regs[rd] = pc + 1
        st[PC] = target
        return 2
    elif op == OP_ALERT:
        _raise_alert(mc, st, r1, low_cycle)
        st[PC] = pc + 1
        return 1
    elif op == OP_ALERTI:
        _raise_alert(mc, st, prog[base + F_IMM], low_cycle)
        st[PC] = pc + 1
        return 1
    elif op == OP_CSRR:
        result = st[ENGINE_ID]
    elif op == OP_NOP:
        st[PC] = pc + 1
        return 1
    elif op == OP_HALT:
        st[HALTED] = 1
        return 1
    else:  # pragma: no cover - exhaustive
        raise SimulationError(f"unhandled op code {op}")

    rd = prog[base + F_RD]
    if rd:
        regs[rd] = result
        if op == OP_MUL and (prog[base + F_MASK] >> rd) & 1:
            cost += 1
    st[PC] = pc + 1
    return cost


def ucore_tick(mc: Any, st: "list[int]", regs: "list[int]",
               prog: "list[int]", low_cycle: int) -> None:
    """Advance at most one instruction at this low-domain cycle.

    Faithful port of the pre-hotpath ``MicroCore.tick``: the cost/stall
    accounting, blocked-retry behaviour and the pre-execute capture of
    the queue-op kind (for ``back_to_back`` ISAX costing) are
    bit-identical.
    """
    if st[HALTED]:
        return
    if low_cycle < st[STALL_UNTIL]:
        st[STAT_STALL] += 1
        return
    pc = st[PC]
    if pc >= st[PROG_LEN] or pc < 0:
        st[HALTED] = 1
        return
    base = pc * STRIDE
    op = prog[base + F_OP]
    kind = prog[base + F_KIND]
    cost = _execute(mc, st, regs, prog, pc, base, op, kind, low_cycle)
    if cost == 0:
        # Blocked: retry the same instruction next cycle.
        st[BLOCKED] = 1
        st[STAT_STALL] += 1
        st[STALL_UNTIL] = low_cycle + 1
        return
    st[BLOCKED] = 0
    st[BLOCKED_ON] = WAIT_NONE
    st[STAT_INSTR] += 1
    st[SINCE_EFFECT] += 1
    st[STALL_UNTIL] = low_cycle + cost
    st[PREV_QOP] = 1 if kind == K_QUEUE else 0
