"""Compilable OoO-core cycle step (DESIGN.md: hotpath layer).

This module is THE implementation of :meth:`MainCore.step` for every
backend — ``repro.ooo.core`` calls :func:`core_step` with its ROB,
LSQ occupancy and register-ready scoreboard flattened into preallocated
arrays.  ``REPRO_BACKEND=compiled`` swaps in the C-compiled build of
this same source (``repro.hotpath._compiled.ooo_kernel``), so the
interpreted and compiled variants are bit-identical by construction.

Flattening map (vs the pre-hotpath object graph):

* ``ReorderBuffer`` (deque of ``RobEntry``) → two preallocated rings:
  ``rob_rec`` (record references, cleared on commit) and ``rob_done``
  (completion cycles), with head index / count in ``st``;
* ``LoadStoreQueues`` → two occupancy counters in ``st`` (the classes
  survive in :mod:`repro.ooo` for direct unit testing);
* ``_reg_ready: dict[int, int]`` → a flat ``list[int]`` indexed by
  architectural register, 0 meaning "never written" (equivalent to a
  dict miss: any real completion cycle is ≥ 1);
* core parameters (width, capacities, latencies) → ``st`` constants
  filled at ``begin()``.

Escape calls — the branch predictor, memory hierarchy, PRF read-port
arbiter, FU pool, the commit observer (FireGuard's event filter) and
``core.result`` — stay interpreted objects reached through ``core``:
they are shared with the rest of the system and carry their own
statistics.  Same compilation constraints as
:mod:`repro.hotpath.ucore_kernel`: full annotations, flat ints,
no allocation on the per-cycle path.
"""

from typing import Any, Final

from repro.errors import SimulationError
from repro.isa.opcodes import InstrClass

# -- st slots (one list[int] per core) ----------------------------------
NEXT_DISPATCH: Final = 0
FETCH_STALL_UNTIL: Final = 1
LAST_FETCH_LINE: Final = 2
IN_FLIGHT: Final = 3
STALL_REDIRECT: Final = 4       # 1 = fetch stall is a redirect refill
ROB_HEAD: Final = 5
ROB_COUNT: Final = 6
LDQ_COUNT: Final = 7
STQ_COUNT: Final = 8
RECORD_TIMES: Final = 9         # 1 = record per-attack commit times
TRACE_LEN: Final = 10
ROB_CAP: Final = 11
LDQ_CAP: Final = 12
STQ_CAP: Final = 13
WIDTH: Final = 14
REDIRECT_PENALTY: Final = 15
LAT_STORE: Final = 16
L2_HIT: Final = 17              # L2 hit latency (store L1D fill)
L1I_HIT: Final = 18             # L1I hit latency (fetch stall floor)
ST_LEN: Final = 19

LINE_SHIFT: Final = 6

# Enum members bound once at import: identity checks against these are
# exactly the `record.iclass is InstrClass.X` tests of the pre-hotpath
# code, without re-resolving the enum attribute per record.
IC_LOAD: Final[Any] = InstrClass.LOAD
IC_STORE: Final[Any] = InstrClass.STORE
IC_BRANCH: Final[Any] = InstrClass.BRANCH
IC_JUMP: Final[Any] = InstrClass.JUMP
IC_CALL: Final[Any] = InstrClass.CALL
IC_RET: Final[Any] = InstrClass.RET


def _commit(core: Any, st: "list[int]", rob_rec: "list[Any]",
            rob_done: "list[int]", cycle: int) -> None:
    observer = core._observer
    width = st[WIDTH]
    if observer is not None:
        # A filter narrower than the core bounds commits per cycle
        # (Fig 9's 1- and 2-wide configurations).
        lanes = observer.lanes
        if lanes < width:
            width = lanes
    result = core.result
    head = st[ROB_HEAD]
    count = st[ROB_COUNT]
    cap = st[ROB_CAP]
    committed = 0
    while committed < width:
        if count == 0 or rob_done[head] > cycle:
            break
        record = rob_rec[head]
        if observer is not None and not observer.offer(
                record, committed, cycle):
            result.stall_backpressure += 1
            break
        iclass = record.iclass
        if iclass is IC_LOAD:
            if st[LDQ_COUNT] == 0:  # pragma: no cover - invariant
                raise SimulationError("LDQ commit underflow")
            st[LDQ_COUNT] -= 1
        elif iclass is IC_STORE:
            if st[STQ_COUNT] == 0:  # pragma: no cover - invariant
                raise SimulationError("STQ commit underflow")
            st[STQ_COUNT] -= 1
        rob_rec[head] = None
        head += 1
        if head == cap:
            head = 0
        count -= 1
        st[IN_FLIGHT] -= 1
        result.committed += 1
        if st[RECORD_TIMES]:
            attack_id = record.attack_id
            if attack_id is not None:
                result.commit_times[attack_id] = cycle
        committed += 1
    st[ROB_HEAD] = head
    st[ROB_COUNT] = count


def _fetch_line(core: Any, st: "list[int]", pc: int, cycle: int) -> None:
    line = pc >> LINE_SHIFT
    last = st[LAST_FETCH_LINE]
    if line == last:
        return
    sequential = line == last + 1
    st[LAST_FETCH_LINE] = line
    access = core.hierarchy.access_instr(pc, cycle)
    hit_latency = st[L1I_HIT]
    latency = access.latency
    if latency > hit_latency and not sequential:
        # Discontinuous fetch to a missing line stalls the front end;
        # sequential misses are hidden by next-line prefetch.
        new_stall = cycle + latency - hit_latency
        if new_stall > st[FETCH_STALL_UNTIL]:
            st[FETCH_STALL_UNTIL] = new_stall
            st[STALL_REDIRECT] = 0


def _schedule(core: Any, st: "list[int]", reg_ready: "list[int]",
              record: Any, iclass: Any, cycle: int) -> int:
    """Compute the completion cycle of a dispatched instruction."""
    ready = cycle + 1
    srcs = record.srcs
    n = len(reg_ready)
    for src in srcs:
        if src and src < n:  # x0 is always ready
            src_ready = reg_ready[src]
            if src_ready > ready:
                ready = src_ready

    # PRF read ports (shared with the forwarding channel).
    ready = core.prf.acquire_read_ports(ready, len(srcs))
    issue = core.fu_pool.acquire(iclass, ready)

    if iclass is IC_LOAD:
        latency = core.hierarchy.access_data(record.mem_addr,
                                             issue).latency
    elif iclass is IC_STORE:
        # Store data is written back at commit; address translation
        # happens at issue.  Charge translation only.
        latency = st[LAT_STORE]
        latency += core.hierarchy.dtlb.translate(record.mem_addr)
        core.hierarchy.l1d.lookup(record.mem_addr, issue, st[L2_HIT])
    else:
        latency = core.fu_pool.latency(iclass)

    completion = issue + latency
    dst = record.dst
    if dst:
        while dst >= n:
            reg_ready.append(0)
            n += 1
        reg_ready[dst] = completion
    return completion


def _dispatch(core: Any, st: "list[int]", rob_rec: "list[Any]",
              rob_done: "list[int]", reg_ready: "list[int]",
              trace: Any, cycle: int) -> None:
    result = core.result
    if cycle < st[FETCH_STALL_UNTIL]:
        result.stall_fetch += 1
        if st[STALL_REDIRECT]:
            result.stall_fetch_redirect += 1
        else:
            result.stall_fetch_icache += 1
        return
    nd = st[NEXT_DISPATCH]
    trace_len = st[TRACE_LEN]
    cap = st[ROB_CAP]
    width = st[WIDTH]
    for _ in range(width):
        if nd >= trace_len:
            break
        if st[ROB_COUNT] == cap:
            result.stall_rob_full += 1
            break
        record = trace[nd]
        iclass = record.iclass
        if iclass is IC_LOAD:
            if st[LDQ_COUNT] >= st[LDQ_CAP]:
                result.stall_lsq_full += 1
                break
        elif iclass is IC_STORE:
            if st[STQ_COUNT] >= st[STQ_CAP]:
                result.stall_lsq_full += 1
                break

        _fetch_line(core, st, record.pc, cycle)
        completion = _schedule(core, st, reg_ready, record, iclass,
                               cycle)
        tail = st[ROB_HEAD] + st[ROB_COUNT]
        if tail >= cap:
            tail -= cap
        rob_rec[tail] = record
        rob_done[tail] = completion
        st[ROB_COUNT] += 1
        if iclass is IC_LOAD:
            st[LDQ_COUNT] += 1
        elif iclass is IC_STORE:
            st[STQ_COUNT] += 1
        st[IN_FLIGHT] += 1
        nd += 1

        if (iclass is IC_BRANCH or iclass is IC_JUMP
                or iclass is IC_CALL or iclass is IC_RET):
            mispredicted = core.predictor.predict_and_train(
                iclass, record.pc, record.taken, record.target)
            if mispredicted:
                result.mispredicts += 1
                st[FETCH_STALL_UNTIL] = (completion
                                         + st[REDIRECT_PENALTY])
                st[STALL_REDIRECT] = 1
                break  # redirect ends this dispatch group
    st[NEXT_DISPATCH] = nd


def core_step(core: Any, st: "list[int]", rob_rec: "list[Any]",
              rob_done: "list[int]", reg_ready: "list[int]",
              trace: Any, cycle: int) -> None:
    """Advance one core cycle: commit, then dispatch.

    Faithful port of the pre-hotpath ``MainCore.step`` over the
    flattened state; every counter and every stall-priority decision is
    bit-identical.
    """
    _commit(core, st, rob_rec, rob_done, cycle)
    _dispatch(core, st, rob_rec, rob_done, reg_ready, trace, cycle)
    core.result.cycles = cycle + 1
