"""Compiled hot path behind ``REPRO_BACKEND=compiled`` (DESIGN.md).

The per-cycle inner loops — the µcore ISS tick and the OoO core step —
live in :mod:`repro.hotpath.ucore_kernel` and
:mod:`repro.hotpath.ooo_kernel` as tight, fully annotated functions
over flat ``list[int]`` state.  Those modules are the *only*
implementation of the two ticks: every backend runs them interpreted
by default, and ``REPRO_BACKEND=compiled`` swaps in the C-compiled
build of the same sources (``repro/hotpath/_compiled/``, produced
opportunistically by ``python -m repro.hotpath.build`` with mypyc or
Cython).  Because both variants are compiled from one source, they are
bit-identical by construction — the four-way differential grid in
``tests/test_vector_identity.py`` pins it.

With no toolchain or build artifact, ``REPRO_BACKEND=compiled`` warns
once and runs the interpreted kernels, so the flag is always safe to
set.  ``REPRO_HOTPATH=interpreted`` forces the interpreted variant
without a warning (the forced-interpreted grid cell and the
no-toolchain CI path use it).
"""

from __future__ import annotations

import importlib
import os
import warnings
from types import ModuleType

from repro.hotpath import ooo_kernel as _interp_ooo
from repro.hotpath import ucore_kernel as _interp_ucore

#: Environment variable forcing a hotpath variant: ``interpreted``
#: pins the pure-Python kernels (no warning); anything else (or unset)
#: prefers the compiled build when one exists.
HOTPATH_ENV = "REPRO_HOTPATH"

_compiled_ucore: ModuleType | None = None
_compiled_ooo: ModuleType | None = None
_probed = False
_warned_missing = False


def _is_extension(module: ModuleType) -> bool:
    """True for a real C-extension build (rejects the staged source
    copies ``repro.hotpath.build`` leaves next to the artifacts)."""
    path = getattr(module, "__file__", "") or ""
    return path.endswith((".so", ".pyd"))


def _probe_compiled() -> None:
    """Import the compiled kernels once per process, if present."""
    global _compiled_ucore, _compiled_ooo, _probed
    if _probed:
        return
    _probed = True
    try:
        ucore = importlib.import_module(
            "repro.hotpath._compiled.ucore_kernel")
        ooo = importlib.import_module(
            "repro.hotpath._compiled.ooo_kernel")
    except ImportError:
        return
    if _is_extension(ucore) and _is_extension(ooo):
        _compiled_ucore = ucore
        _compiled_ooo = ooo


def _warn_missing_artifact() -> None:
    """Warn exactly once per process that compiled was requested but
    only the interpreted (bit-identical) kernels are available."""
    global _warned_missing
    if _warned_missing:
        return
    _warned_missing = True
    warnings.warn(
        "REPRO_BACKEND=compiled: no compiled hotpath artifact found "
        "(build one with `python -m repro.hotpath.build`); running the "
        "interpreted hotpath kernels, which are bit-identical",
        RuntimeWarning, stacklevel=4)


def _reset_for_tests() -> None:
    """Forget the probe and warning state (unit tests only)."""
    global _compiled_ucore, _compiled_ooo, _probed, _warned_missing
    _compiled_ucore = None
    _compiled_ooo = None
    _probed = False
    _warned_missing = False


def force_interpreted() -> bool:
    """True when ``REPRO_HOTPATH=interpreted`` pins the pure-Python
    kernels."""
    return (os.environ.get(HOTPATH_ENV, "").strip().lower()
            == "interpreted")


def compiled_available() -> bool:
    """True when a C-compiled kernel build is importable."""
    _probe_compiled()
    return _compiled_ucore is not None


def active_kernels() -> tuple[ModuleType, ModuleType, bool]:
    """The kernel modules ``REPRO_BACKEND=compiled`` should install:
    ``(ucore_kernel, ooo_kernel, compiled_live)``."""
    if force_interpreted():
        return _interp_ucore, _interp_ooo, False
    _probe_compiled()
    if _compiled_ucore is not None and _compiled_ooo is not None:
        return _compiled_ucore, _compiled_ooo, True
    _warn_missing_artifact()
    return _interp_ucore, _interp_ooo, False


def install_hotpath(system) -> bool:
    """Swap ``system``'s cores onto the variant :func:`active_kernels`
    selects; returns True when compiled code is live.

    Safe to call repeatedly (sessions call it per ``run()``) and a
    no-op for engines without a kernel slot (hardware accelerators)."""
    ucore_mod, ooo_mod, compiled = active_kernels()
    system.core.set_kernel(ooo_mod)
    for engine in system.engines:
        set_kernel = getattr(engine, "set_kernel", None)
        if set_kernel is not None:
            set_kernel(ucore_mod)
    return compiled
