"""DRAM latency/occupancy model (Table II: DDR3-1066, max 32 requests)."""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.utils.stats import Instrumented


@dataclass(frozen=True)
class DramParams:
    latency_cycles: int = 192   # ~60 ns at the 3.2 GHz core clock
    max_requests: int = 32
    service_interval: int = 4   # cycles between grants (bandwidth cap)

    def __post_init__(self) -> None:
        if self.latency_cycles <= 0 or self.max_requests <= 0:
            raise ConfigError("DRAM latency and request window must be positive")
        if self.service_interval <= 0:
            raise ConfigError("DRAM service interval must be positive")


class DramModel(Instrumented):
    """Fixed-latency DRAM with a bounded in-flight request window.

    When the window is full, new requests queue behind the oldest
    outstanding one — this creates memory-level parallelism limits that
    show up as the LLC-miss plateau in scaling experiments.
    """

    def __init__(self, params: DramParams):
        self.params = params
        self._completion_heap: list[int] = []
        self._last_grant = -params.service_interval
        self.stat_requests = 0
        self.stat_queue_cycles = 0

    def access(self, cycle: int) -> int:
        """Issue a request at ``cycle``; return its total latency."""
        heap = self._completion_heap
        while heap and heap[0] <= cycle:
            heapq.heappop(heap)

        start = max(cycle, self._last_grant + self.params.service_interval)
        if len(heap) >= self.params.max_requests:
            earliest = heapq.heappop(heap)
            start = max(start, earliest)
        self._last_grant = start
        done = start + self.params.latency_cycles
        heapq.heappush(heap, done)

        self.stat_requests += 1
        self.stat_queue_cycles += start - cycle
        return done - cycle

    def reset(self) -> None:
        """Drop outstanding requests and counters (session reset)."""
        self._completion_heap.clear()
        self._last_grant = -self.params.service_interval
        self.reset_stats()
