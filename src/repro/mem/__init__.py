"""Memory substrate: caches with MSHRs, TLBs, DRAM, sparse memory."""

from repro.mem.cache import CacheParams, SetAssocCache
from repro.mem.dram import DramModel, DramParams
from repro.mem.hierarchy import AccessResult, HierarchyParams, MemoryHierarchy
from repro.mem.sparse import SparseMemory
from repro.mem.tlb import Tlb, TlbParams

__all__ = [
    "AccessResult",
    "CacheParams",
    "DramModel",
    "DramParams",
    "HierarchyParams",
    "MemoryHierarchy",
    "SetAssocCache",
    "SparseMemory",
    "Tlb",
    "TlbParams",
]
