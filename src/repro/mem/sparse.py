"""Sparse byte-addressable memory for the µcore ISS.

Guardian kernels keep shadow memory, quarantine lists and shadow stacks
in (shared) memory; a dict-backed sparse store gives a full 64-bit
address space without allocation.
"""

from __future__ import annotations

from repro.errors import SimulationError

_MASK64 = (1 << 64) - 1


class SparseMemory:
    """Byte-granular sparse memory; unwritten bytes read as zero."""

    __slots__ = ("_bytes",)

    def __init__(self) -> None:
        self._bytes: dict[int, int] = {}

    def load(self, addr: int, size: int) -> int:
        """Little-endian unsigned load of ``size`` bytes."""
        if size not in (1, 2, 4, 8):
            raise SimulationError(f"unsupported load size {size}")
        data = self._bytes
        value = 0
        for i in range(size):
            value |= data.get((addr + i) & _MASK64, 0) << (8 * i)
        return value

    def store(self, addr: int, value: int, size: int) -> None:
        """Little-endian store of the low ``size`` bytes of ``value``."""
        if size not in (1, 2, 4, 8):
            raise SimulationError(f"unsupported store size {size}")
        data = self._bytes
        for i in range(size):
            data[(addr + i) & _MASK64] = (value >> (8 * i)) & 0xFF

    def load_signed(self, addr: int, size: int) -> int:
        raw = self.load(addr, size)
        sign_bit = 1 << (size * 8 - 1)
        return (raw ^ sign_bit) - sign_bit

    def fill(self, addr: int, value: int, length: int) -> None:
        """Set ``length`` bytes starting at ``addr`` to ``value``."""
        byte = value & 0xFF
        data = self._bytes
        for i in range(length):
            data[(addr + i) & _MASK64] = byte

    def footprint(self) -> int:
        """Number of bytes ever written (for tests/diagnostics)."""
        return len(self._bytes)
