"""TLB timing model.

Fig 8's AddressSanitizer tail (>2 µs) comes from TLB and cache misses
co-occurring on shadow-memory accesses; the paper stresses that FireSim
models TLB misses accurately.  We model a small fully-associative TLB
with an LRU stack and a fixed page-walk cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.utils.stats import Instrumented


@dataclass(frozen=True)
class TlbParams:
    name: str
    entries: int = 32
    page_bytes: int = 4096
    walk_latency: int = 60  # cycles: multi-level table walk through caches

    def __post_init__(self) -> None:
        if self.entries <= 0:
            raise ConfigError(f"tlb {self.name}: needs at least one entry")
        if self.page_bytes & (self.page_bytes - 1):
            raise ConfigError(f"tlb {self.name}: page size must be power of two")
        if self.walk_latency < 0:
            raise ConfigError(f"tlb {self.name}: negative walk latency")


class Tlb(Instrumented):
    """Fully-associative LRU TLB; ``translate`` returns the added latency."""

    def __init__(self, params: TlbParams):
        self.params = params
        self._page_shift = params.page_bytes.bit_length() - 1
        self._pages: list[int] = []  # MRU last
        self.stat_hits = 0
        self.stat_misses = 0

    def translate(self, addr: int) -> int:
        """Return extra cycles for this access's translation (0 on hit)."""
        page = addr >> self._page_shift
        pages = self._pages
        if page in pages:
            pages.remove(page)
            pages.append(page)
            self.stat_hits += 1
            return 0
        self.stat_misses += 1
        pages.append(page)
        if len(pages) > self.params.entries:
            pages.pop(0)
        return self.params.walk_latency

    def flush(self) -> None:
        self._pages.clear()

    def reset(self) -> None:
        """Cold TLB: flush entries and zero counters."""
        self.flush()
        self.reset_stats()

    @property
    def miss_rate(self) -> float:
        total = self.stat_hits + self.stat_misses
        return self.stat_misses / total if total else 0.0
