"""Set-associative cache timing model with MSHR occupancy.

This is a timing (not data-carrying) cache: it tracks which lines are
resident and how many misses are outstanding, returning hit/miss so the
hierarchy can charge latencies.  MSHR exhaustion delays further misses,
which matters for the paper's L1/L2 configurations (8/12 MSHRs).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.utils.stats import Instrumented


@dataclass(frozen=True)
class CacheParams:
    """Geometry + latency of one cache level (Table II rows)."""

    name: str
    size_bytes: int
    ways: int
    line_bytes: int = 64
    hit_latency: int = 2
    mshrs: int = 8

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.ways <= 0 or self.line_bytes <= 0:
            raise ConfigError(f"cache {self.name}: sizes must be positive")
        if self.size_bytes % (self.ways * self.line_bytes) != 0:
            raise ConfigError(
                f"cache {self.name}: size {self.size_bytes} not divisible by "
                f"ways*line ({self.ways}*{self.line_bytes})"
            )
        if self.mshrs <= 0:
            raise ConfigError(f"cache {self.name}: needs at least one MSHR")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.ways * self.line_bytes)


class SetAssocCache(Instrumented):
    """LRU set-associative cache with an MSHR occupancy model.

    ``lookup`` probes and fills; the return value says whether the probe
    hit and how long the requester must additionally wait for a free
    MSHR when it missed while all MSHRs were busy.
    """

    def __init__(self, params: CacheParams):
        self.params = params
        self._line_shift = params.line_bytes.bit_length() - 1
        if 1 << self._line_shift != params.line_bytes:
            raise ConfigError(
                f"cache {params.name}: line size must be a power of two"
            )
        self._set_mask = params.num_sets - 1
        if params.num_sets & self._set_mask:
            raise ConfigError(
                f"cache {params.name}: set count must be a power of two"
            )
        # Per-set list of tags, most recently used last.
        self._sets: list[list[int]] = [[] for _ in range(params.num_sets)]
        # Min-heap of cycles at which outstanding misses complete.
        self._mshr_free_at: list[int] = []
        self.stat_hits = 0
        self.stat_misses = 0
        self.stat_mshr_stall_cycles = 0

    def _index(self, addr: int) -> tuple[int, int]:
        line = addr >> self._line_shift
        return line & self._set_mask, line >> (self._set_mask.bit_length())

    def lookup(self, addr: int, cycle: int, fill_latency: int) -> tuple[bool, int]:
        """Probe the cache at ``cycle``.

        Returns ``(hit, mshr_delay)``.  On a miss the line is filled
        (this model fills immediately for occupancy purposes; timing is
        charged by the hierarchy) and an MSHR is held until
        ``cycle + fill_latency``.  ``mshr_delay`` is the extra wait when
        no MSHR was free at ``cycle``.
        """
        set_idx, tag = self._index(addr)
        tags = self._sets[set_idx]
        if tag in tags:
            # LRU update: move to the back.
            tags.remove(tag)
            tags.append(tag)
            self.stat_hits += 1
            return True, 0

        self.stat_misses += 1
        mshr_delay = self._acquire_mshr(cycle, fill_latency)
        tags.append(tag)
        if len(tags) > self.params.ways:
            tags.pop(0)  # evict LRU
        return False, mshr_delay

    def _acquire_mshr(self, cycle: int, fill_latency: int) -> int:
        heap = self._mshr_free_at
        while heap and heap[0] <= cycle:
            heapq.heappop(heap)
        delay = 0
        if len(heap) >= self.params.mshrs:
            # All MSHRs busy: wait for the earliest to free.
            earliest = heapq.heappop(heap)
            delay = max(0, earliest - cycle)
            self.stat_mshr_stall_cycles += delay
        heapq.heappush(heap, cycle + delay + fill_latency)
        return delay

    def contains(self, addr: int) -> bool:
        """Probe without updating LRU or statistics."""
        set_idx, tag = self._index(addr)
        return tag in self._sets[set_idx]

    def prefill(self, addr: int) -> None:
        """Insert a line without timing side effects (simulation
        warm-up: no MSHR occupancy, no statistics)."""
        set_idx, tag = self._index(addr)
        tags = self._sets[set_idx]
        if tag in tags:
            tags.remove(tag)
        tags.append(tag)
        if len(tags) > self.params.ways:
            tags.pop(0)

    def flush(self) -> None:
        for tags in self._sets:
            tags.clear()
        self._mshr_free_at.clear()

    def reset(self) -> None:
        """Cold cache: flush contents and zero counters."""
        self.flush()
        self.reset_stats()

    @property
    def miss_rate(self) -> float:
        total = self.stat_hits + self.stat_misses
        return self.stat_misses / total if total else 0.0
