"""Memory hierarchy wiring: L1 → L2 → LLC → DRAM (Table II).

``access`` walks levels until it hits, charging each level's latency
plus MSHR and TLB delays, and returns a single latency figure for the
core's timing model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mem.cache import CacheParams, SetAssocCache
from repro.mem.dram import DramModel, DramParams
from repro.mem.tlb import Tlb, TlbParams


@dataclass(frozen=True)
class HierarchyParams:
    """Default geometry mirrors Table II's memory rows."""

    l1i: CacheParams = field(default_factory=lambda: CacheParams(
        name="L1I", size_bytes=32 * 1024, ways=8, hit_latency=1, mshrs=8))
    l1d: CacheParams = field(default_factory=lambda: CacheParams(
        name="L1D", size_bytes=32 * 1024, ways=8, hit_latency=3, mshrs=8))
    l2: CacheParams = field(default_factory=lambda: CacheParams(
        name="L2", size_bytes=512 * 1024, ways=8, hit_latency=12, mshrs=12))
    llc: CacheParams = field(default_factory=lambda: CacheParams(
        name="LLC", size_bytes=4 * 1024 * 1024, ways=8, hit_latency=30,
        mshrs=8))
    dram: DramParams = field(default_factory=DramParams)
    dtlb: TlbParams = field(default_factory=lambda: TlbParams(
        name="DTLB", entries=32))
    itlb: TlbParams = field(default_factory=lambda: TlbParams(
        name="ITLB", entries=32))


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one memory access."""

    latency: int
    hit_level: str        # "L1", "L2", "LLC", or "DRAM"
    tlb_miss: bool


class MemoryHierarchy:
    """Shared timing model for data and instruction accesses."""

    def __init__(self, params: HierarchyParams | None = None):
        self.params = params or HierarchyParams()
        self.l1i = SetAssocCache(self.params.l1i)
        self.l1d = SetAssocCache(self.params.l1d)
        self.l2 = SetAssocCache(self.params.l2)
        self.llc = SetAssocCache(self.params.llc)
        self.dram = DramModel(self.params.dram)
        self.dtlb = Tlb(self.params.dtlb)
        self.itlb = Tlb(self.params.itlb)

    def reset(self) -> None:
        """Cold hierarchy: flush every level, TLBs and DRAM state."""
        self.l1i.reset()
        self.l1d.reset()
        self.l2.reset()
        self.llc.reset()
        self.dram.reset()
        self.dtlb.reset()
        self.itlb.reset()

    def access_data(self, addr: int, cycle: int) -> AccessResult:
        """A load/store data access through DTLB + L1D → … → DRAM."""
        return self._access(addr, cycle, self.l1d, self.dtlb)

    def access_instr(self, addr: int, cycle: int) -> AccessResult:
        """An instruction fetch through ITLB + L1I → … → DRAM."""
        return self._access(addr, cycle, self.l1i, self.itlb)

    def _access(self, addr: int, cycle: int, l1: SetAssocCache,
                tlb: Tlb) -> AccessResult:
        tlb_latency = tlb.translate(addr)
        tlb_missed = tlb_latency > 0
        latency = tlb_latency + l1.params.hit_latency

        hit, mshr = l1.lookup(addr, cycle, self.l2.params.hit_latency)
        latency += mshr
        if hit:
            return AccessResult(latency, "L1", tlb_missed)

        latency += self.l2.params.hit_latency
        hit, mshr = self.l2.lookup(addr, cycle, self.llc.params.hit_latency)
        latency += mshr
        if hit:
            return AccessResult(latency, "L2", tlb_missed)

        latency += self.llc.params.hit_latency
        hit, mshr = self.llc.lookup(
            addr, cycle, self.params.dram.latency_cycles)
        latency += mshr
        if hit:
            return AccessResult(latency, "LLC", tlb_missed)

        latency += self.dram.access(cycle + latency)
        return AccessResult(latency, "DRAM", tlb_missed)
