"""RISC-V instruction format encoders/decoders (R/I/S/B/U/J).

These implement the standard 32-bit base formats bit-for-bit; the
decoder tests round-trip every format against them.
"""

from __future__ import annotations

from repro.errors import EncodingError
from repro.utils.bitfield import bits, sign_extend


def _check_reg(name: str, value: int) -> None:
    if not 0 <= value < 32:
        raise EncodingError(f"{name} must be in [0, 31], got {value}")


def _check_range(name: str, value: int, lo: int, hi: int) -> None:
    if not lo <= value <= hi:
        raise EncodingError(f"{name} must be in [{lo}, {hi}], got {value}")


def encode_r(opcode: int, rd: int, funct3: int, rs1: int, rs2: int,
             funct7: int) -> int:
    _check_range("opcode", opcode, 0, 0x7F)
    _check_reg("rd", rd)
    _check_range("funct3", funct3, 0, 7)
    _check_reg("rs1", rs1)
    _check_reg("rs2", rs2)
    _check_range("funct7", funct7, 0, 0x7F)
    return (funct7 << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) \
        | (rd << 7) | opcode


def encode_i(opcode: int, rd: int, funct3: int, rs1: int, imm: int) -> int:
    _check_range("opcode", opcode, 0, 0x7F)
    _check_reg("rd", rd)
    _check_range("funct3", funct3, 0, 7)
    _check_reg("rs1", rs1)
    _check_range("imm", imm, -2048, 2047)
    return ((imm & 0xFFF) << 20) | (rs1 << 15) | (funct3 << 12) \
        | (rd << 7) | opcode


def encode_s(opcode: int, funct3: int, rs1: int, rs2: int, imm: int) -> int:
    _check_range("opcode", opcode, 0, 0x7F)
    _check_range("funct3", funct3, 0, 7)
    _check_reg("rs1", rs1)
    _check_reg("rs2", rs2)
    _check_range("imm", imm, -2048, 2047)
    imm &= 0xFFF
    imm_hi = bits(imm, 11, 5)
    imm_lo = bits(imm, 4, 0)
    return (imm_hi << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) \
        | (imm_lo << 7) | opcode


def encode_b(opcode: int, funct3: int, rs1: int, rs2: int, imm: int) -> int:
    _check_range("opcode", opcode, 0, 0x7F)
    _check_range("funct3", funct3, 0, 7)
    _check_reg("rs1", rs1)
    _check_reg("rs2", rs2)
    _check_range("imm", imm, -4096, 4094)
    if imm & 1:
        raise EncodingError(f"branch immediate must be even, got {imm}")
    imm &= 0x1FFF
    b12 = bits(imm, 12, 12)
    b11 = bits(imm, 11, 11)
    b10_5 = bits(imm, 10, 5)
    b4_1 = bits(imm, 4, 1)
    return (b12 << 31) | (b10_5 << 25) | (rs2 << 20) | (rs1 << 15) \
        | (funct3 << 12) | (b4_1 << 8) | (b11 << 7) | opcode


def encode_u(opcode: int, rd: int, imm: int) -> int:
    _check_range("opcode", opcode, 0, 0x7F)
    _check_reg("rd", rd)
    _check_range("imm20", imm, 0, 0xFFFFF)
    return (imm << 12) | (rd << 7) | opcode


def encode_j(opcode: int, rd: int, imm: int) -> int:
    _check_range("opcode", opcode, 0, 0x7F)
    _check_reg("rd", rd)
    _check_range("imm", imm, -(1 << 20), (1 << 20) - 2)
    if imm & 1:
        raise EncodingError(f"jump immediate must be even, got {imm}")
    imm &= 0x1FFFFF
    b20 = bits(imm, 20, 20)
    b19_12 = bits(imm, 19, 12)
    b11 = bits(imm, 11, 11)
    b10_1 = bits(imm, 10, 1)
    return (b20 << 31) | (b10_1 << 21) | (b11 << 20) | (b19_12 << 12) \
        | (rd << 7) | opcode


def decode_i_imm(word: int) -> int:
    return sign_extend(bits(word, 31, 20), 12)


def decode_s_imm(word: int) -> int:
    return sign_extend((bits(word, 31, 25) << 5) | bits(word, 11, 7), 12)


def decode_b_imm(word: int) -> int:
    imm = (bits(word, 31, 31) << 12) | (bits(word, 7, 7) << 11) \
        | (bits(word, 30, 25) << 5) | (bits(word, 11, 8) << 1)
    return sign_extend(imm, 13)


def decode_u_imm(word: int) -> int:
    return bits(word, 31, 12)


def decode_j_imm(word: int) -> int:
    imm = (bits(word, 31, 31) << 20) | (bits(word, 19, 12) << 12) \
        | (bits(word, 20, 20) << 11) | (bits(word, 30, 21) << 1)
    return sign_extend(imm, 21)
