"""The mini-filter's 10-bit SRAM index (§III-B, Fig 3).

The paper indexes each mini-filter's look-up table by the concatenation
of the instruction's funct3 ("function code, higher 3 bits") and its
7-bit opcode ("lower 7 bits"): ``index = funct3 << 7 | opcode``.  The
paper's own examples confirm the layout: 0x03 indexes ``lb`` (funct3=0,
opcode=0x03) and 0x23 indexes ``sb`` (funct3=0, opcode=0x23).
"""

from __future__ import annotations

from repro.errors import EncodingError

FILTER_INDEX_BITS = 10
FILTER_TABLE_SIZE = 1 << FILTER_INDEX_BITS  # 1024 entries (0x000-0x3FF)


def filter_index(opcode: int, funct3: int) -> int:
    """Build the 10-bit SRAM index from opcode and funct3."""
    if not 0 <= opcode <= 0x7F:
        raise EncodingError(f"opcode {opcode:#x} outside 7 bits")
    if not 0 <= funct3 <= 0x7:
        raise EncodingError(f"funct3 {funct3:#x} outside 3 bits")
    return (funct3 << 7) | opcode


def split_filter_index(index: int) -> tuple[int, int]:
    """Inverse of :func:`filter_index`: returns ``(opcode, funct3)``."""
    if not 0 <= index < FILTER_TABLE_SIZE:
        raise EncodingError(f"filter index {index:#x} outside 10 bits")
    return index & 0x7F, index >> 7
