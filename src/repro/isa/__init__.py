"""RISC-V ISA substrate.

FireGuard's mini-filters are indexed by the concatenation of an
instruction's ``funct3`` and 7-bit opcode (§III-B, Fig 3).  This package
provides the opcode/funct tables, instruction encode/decode for the
RV64IM subset the simulator uses, and the 10-bit filter index mapping.
"""

from repro.isa.decode import DecodedInstr, decode, encode_instr
from repro.isa.encoding import (
    decode_b_imm,
    decode_i_imm,
    decode_j_imm,
    decode_s_imm,
    decode_u_imm,
    encode_b,
    encode_i,
    encode_j,
    encode_r,
    encode_s,
    encode_u,
)
from repro.isa.filter_index import (
    FILTER_INDEX_BITS,
    FILTER_TABLE_SIZE,
    filter_index,
    split_filter_index,
)
from repro.isa.opcodes import (
    OP_AMO,
    OP_AUIPC,
    OP_BRANCH,
    OP_CUSTOM0,
    OP_CUSTOM1,
    OP_JAL,
    OP_JALR,
    OP_LOAD,
    OP_LOAD_FP,
    OP_LUI,
    OP_MISC_MEM,
    OP_OP,
    OP_OP_32,
    OP_OP_FP,
    OP_OP_IMM,
    OP_OP_IMM_32,
    OP_STORE,
    OP_STORE_FP,
    OP_SYSTEM,
    InstrClass,
    classify,
)
from repro.isa.registers import REG_ABI_NAMES, reg_name, reg_number

__all__ = [
    "DecodedInstr",
    "FILTER_INDEX_BITS",
    "FILTER_TABLE_SIZE",
    "InstrClass",
    "OP_AMO",
    "OP_AUIPC",
    "OP_BRANCH",
    "OP_CUSTOM0",
    "OP_CUSTOM1",
    "OP_JAL",
    "OP_JALR",
    "OP_LOAD",
    "OP_LOAD_FP",
    "OP_LUI",
    "OP_MISC_MEM",
    "OP_OP",
    "OP_OP_32",
    "OP_OP_FP",
    "OP_OP_IMM",
    "OP_OP_IMM_32",
    "OP_STORE",
    "OP_STORE_FP",
    "OP_SYSTEM",
    "REG_ABI_NAMES",
    "classify",
    "decode",
    "decode_b_imm",
    "decode_i_imm",
    "decode_j_imm",
    "decode_s_imm",
    "decode_u_imm",
    "encode_b",
    "encode_i",
    "encode_instr",
    "encode_j",
    "encode_r",
    "encode_s",
    "encode_u",
    "filter_index",
    "reg_name",
    "reg_number",
    "split_filter_index",
]
