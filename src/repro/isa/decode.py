"""Instruction decoder / mnemonic-level encoder for the RV64IM subset.

The trace generator emits real encoded instruction words so the event
filter indexes its SRAM exactly the way the hardware does; the decoder
recovers fields for the data-forwarding channel and for disassembly in
debug output.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import EncodingError
from repro.isa import opcodes as op
from repro.isa.encoding import (
    decode_b_imm,
    decode_i_imm,
    decode_j_imm,
    decode_s_imm,
    decode_u_imm,
    encode_b,
    encode_i,
    encode_j,
    encode_r,
    encode_s,
    encode_u,
)
from repro.isa.registers import reg_name
from repro.utils.bitfield import bits


@dataclass(frozen=True)
class DecodedInstr:
    """Decoded fields of one 32-bit instruction word."""

    word: int
    opcode: int
    funct3: int
    funct7: int
    rd: int
    rs1: int
    rs2: int
    imm: int
    mnemonic: str
    iclass: op.InstrClass

    def disassemble(self) -> str:
        """Human-readable rendering (debug output only)."""
        m = self.mnemonic
        if self.opcode in (op.OP_LOAD, op.OP_JALR):
            return f"{m} {reg_name(self.rd)}, {self.imm}({reg_name(self.rs1)})"
        if self.opcode == op.OP_STORE:
            return f"{m} {reg_name(self.rs2)}, {self.imm}({reg_name(self.rs1)})"
        if self.opcode == op.OP_BRANCH:
            return f"{m} {reg_name(self.rs1)}, {reg_name(self.rs2)}, {self.imm}"
        if self.opcode == op.OP_JAL:
            return f"{m} {reg_name(self.rd)}, {self.imm}"
        if self.opcode in (op.OP_LUI, op.OP_AUIPC):
            return f"{m} {reg_name(self.rd)}, {self.imm:#x}"
        if self.opcode == op.OP_OP_IMM:
            return f"{m} {reg_name(self.rd)}, {reg_name(self.rs1)}, {self.imm}"
        return (f"{m} {reg_name(self.rd)}, {reg_name(self.rs1)}, "
                f"{reg_name(self.rs2)}")


_OP_MNEMONICS = {
    (op.F3_ADD_SUB, op.F7_STANDARD): "add",
    (op.F3_ADD_SUB, op.F7_ALT): "sub",
    (op.F3_SLL, op.F7_STANDARD): "sll",
    (op.F3_SLT, op.F7_STANDARD): "slt",
    (op.F3_SLTU, op.F7_STANDARD): "sltu",
    (op.F3_XOR, op.F7_STANDARD): "xor",
    (op.F3_SRL_SRA, op.F7_STANDARD): "srl",
    (op.F3_SRL_SRA, op.F7_ALT): "sra",
    (op.F3_OR, op.F7_STANDARD): "or",
    (op.F3_AND, op.F7_STANDARD): "and",
    (op.F3_MUL, op.F7_MULDIV): "mul",
    (op.F3_MULH, op.F7_MULDIV): "mulh",
    (op.F3_MULHSU, op.F7_MULDIV): "mulhsu",
    (op.F3_MULHU, op.F7_MULDIV): "mulhu",
    (op.F3_DIV, op.F7_MULDIV): "div",
    (op.F3_DIVU, op.F7_MULDIV): "divu",
    (op.F3_REM, op.F7_MULDIV): "rem",
    (op.F3_REMU, op.F7_MULDIV): "remu",
}

_OP_IMM_MNEMONICS = {
    op.F3_ADD_SUB: "addi", op.F3_SLL: "slli", op.F3_SLT: "slti",
    op.F3_SLTU: "sltiu", op.F3_XOR: "xori", op.F3_SRL_SRA: "srli",
    op.F3_OR: "ori", op.F3_AND: "andi",
}


def decode(word: int) -> DecodedInstr:
    """Decode a 32-bit instruction word into fields + class.

    Unknown encodings decode with mnemonic ``"unknown"`` rather than
    raising: the filter must index *any* committed instruction, and the
    hardware SRAM has an entry for every 10-bit index.
    """
    if not 0 <= word <= 0xFFFFFFFF:
        raise EncodingError(f"instruction word {word:#x} outside 32 bits")
    opcode = bits(word, 6, 0)
    rd = bits(word, 11, 7)
    funct3 = bits(word, 14, 12)
    rs1 = bits(word, 19, 15)
    rs2 = bits(word, 24, 20)
    funct7 = bits(word, 31, 25)
    imm = 0
    mnemonic = "unknown"

    if opcode == op.OP_LOAD:
        imm = decode_i_imm(word)
        mnemonic = op.LOAD_MNEMONICS.get(funct3, "unknown")
    elif opcode == op.OP_STORE:
        imm = decode_s_imm(word)
        mnemonic = op.STORE_MNEMONICS.get(funct3, "unknown")
    elif opcode == op.OP_BRANCH:
        imm = decode_b_imm(word)
        mnemonic = op.BRANCH_MNEMONICS.get(funct3, "unknown")
    elif opcode == op.OP_JAL:
        imm = decode_j_imm(word)
        mnemonic = "jal"
    elif opcode == op.OP_JALR:
        imm = decode_i_imm(word)
        mnemonic = "jalr"
    elif opcode == op.OP_LUI:
        imm = decode_u_imm(word)
        mnemonic = "lui"
    elif opcode == op.OP_AUIPC:
        imm = decode_u_imm(word)
        mnemonic = "auipc"
    elif opcode == op.OP_OP_IMM:
        imm = decode_i_imm(word)
        mnemonic = _OP_IMM_MNEMONICS.get(funct3, "unknown")
    elif opcode == op.OP_OP:
        mnemonic = _OP_MNEMONICS.get((funct3, funct7), "unknown")
    elif opcode == op.OP_SYSTEM:
        imm = decode_i_imm(word)
        mnemonic = "csr" if funct3 != 0 else ("ecall" if imm == 0 else "ebreak")
    elif opcode == op.OP_MISC_MEM:
        mnemonic = "fence"
    elif opcode in (op.OP_CUSTOM0, op.OP_CUSTOM1):
        mnemonic = f"custom{0 if opcode == op.OP_CUSTOM0 else 1}.f{funct3}"
    elif opcode == op.OP_OP_FP:
        mnemonic = "fp-op"
    elif opcode == op.OP_LOAD_FP:
        imm = decode_i_imm(word)
        mnemonic = "flw"
    elif opcode == op.OP_STORE_FP:
        imm = decode_s_imm(word)
        mnemonic = "fsw"

    iclass = op.classify(opcode, funct3, rd=rd, rs1=rs1, funct7=funct7)
    return DecodedInstr(word=word, opcode=opcode, funct3=funct3,
                        funct7=funct7, rd=rd, rs1=rs1, rs2=rs2, imm=imm,
                        mnemonic=mnemonic, iclass=iclass)


_R_BY_MNEMONIC = {m: (f3, f7) for (f3, f7), m in _OP_MNEMONICS.items()}
_I_BY_MNEMONIC = {m: f3 for f3, m in _OP_IMM_MNEMONICS.items()}
_LOAD_BY_MNEMONIC = {m: f3 for f3, m in op.LOAD_MNEMONICS.items()}
_STORE_BY_MNEMONIC = {m: f3 for f3, m in op.STORE_MNEMONICS.items()}
_BRANCH_BY_MNEMONIC = {m: f3 for f3, m in op.BRANCH_MNEMONICS.items()}


def encode_instr(mnemonic: str, rd: int = 0, rs1: int = 0, rs2: int = 0,
                 imm: int = 0) -> int:
    """Encode an instruction by mnemonic (the trace generator's entry
    point).  Supports the RV64IM subset that :func:`decode` knows."""
    m = mnemonic.lower()
    if m in _R_BY_MNEMONIC:
        funct3, funct7 = _R_BY_MNEMONIC[m]
        return encode_r(op.OP_OP, rd, funct3, rs1, rs2, funct7)
    if m in _I_BY_MNEMONIC:
        return encode_i(op.OP_OP_IMM, rd, _I_BY_MNEMONIC[m], rs1, imm)
    if m in _LOAD_BY_MNEMONIC:
        return encode_i(op.OP_LOAD, rd, _LOAD_BY_MNEMONIC[m], rs1, imm)
    if m in _STORE_BY_MNEMONIC:
        return encode_s(op.OP_STORE, _STORE_BY_MNEMONIC[m], rs1, rs2, imm)
    if m in _BRANCH_BY_MNEMONIC:
        return encode_b(op.OP_BRANCH, _BRANCH_BY_MNEMONIC[m], rs1, rs2, imm)
    if m == "jal":
        return encode_j(op.OP_JAL, rd, imm)
    if m == "jalr":
        return encode_i(op.OP_JALR, rd, 0, rs1, imm)
    if m == "lui":
        return encode_u(op.OP_LUI, rd, imm)
    if m == "auipc":
        return encode_u(op.OP_AUIPC, rd, imm)
    if m == "fence":
        return encode_i(op.OP_MISC_MEM, 0, 0, 0, 0)
    if m == "ecall":
        return encode_i(op.OP_SYSTEM, 0, 0, 0, 0)
    if m == "csrrw":
        return encode_i(op.OP_SYSTEM, rd, 1, rs1, imm)
    if m == "flw":
        return encode_i(op.OP_LOAD_FP, rd, op.F3_LW, rs1, imm)
    if m == "fsw":
        return encode_s(op.OP_STORE_FP, op.F3_SW, rs1, rs2, imm)
    if m == "fadd":
        return encode_r(op.OP_OP_FP, rd, 0, rs1, rs2, 0)
    if m.startswith("custom0.f"):
        return encode_r(op.OP_CUSTOM0, rd, int(m[-1]), rs1, rs2, 0)
    if m.startswith("custom1.f"):
        return encode_r(op.OP_CUSTOM1, rd, int(m[-1]), rs1, rs2, 0)
    raise EncodingError(f"cannot encode unknown mnemonic {mnemonic!r}")
