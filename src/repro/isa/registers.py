"""RISC-V integer register ABI names."""

from __future__ import annotations

from repro.errors import EncodingError

REG_ABI_NAMES = (
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
    "s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
    "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
    "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
)

_NAME_TO_NUM = {name: i for i, name in enumerate(REG_ABI_NAMES)}
_NAME_TO_NUM.update({f"x{i}": i for i in range(32)})
_NAME_TO_NUM["fp"] = 8  # alias for s0


def reg_name(num: int) -> str:
    """ABI name of register ``num``."""
    if not 0 <= num < 32:
        raise EncodingError(f"register number {num} outside [0, 31]")
    return REG_ABI_NAMES[num]


def reg_number(name: str) -> int:
    """Register number for an ABI or ``xN`` name."""
    key = name.strip().lower()
    if key not in _NAME_TO_NUM:
        raise EncodingError(f"unknown register name {name!r}")
    return _NAME_TO_NUM[key]
