"""RISC-V opcode constants, funct tables, and instruction classification.

Only fields the simulator and filter actually consult are defined; the
tables follow the RV64IM base encoding (plus the two custom opcode
spaces, which FireGuard uses for allocator events and ISAX extensions).
"""

from __future__ import annotations

from enum import Enum, auto

# --- 7-bit major opcodes (base RV encoding quadrant 3) -------------------
OP_LOAD = 0x03
OP_LOAD_FP = 0x07
OP_CUSTOM0 = 0x0B
OP_MISC_MEM = 0x0F
OP_OP_IMM = 0x13
OP_AUIPC = 0x17
OP_OP_IMM_32 = 0x1B
OP_STORE = 0x23
OP_STORE_FP = 0x27
OP_CUSTOM1 = 0x2B
OP_AMO = 0x2F
OP_OP = 0x33
OP_LUI = 0x37
OP_OP_32 = 0x3B
OP_MADD = 0x43
OP_MSUB = 0x47
OP_NMSUB = 0x4B
OP_NMADD = 0x4F
OP_OP_FP = 0x53
OP_BRANCH = 0x63
OP_JALR = 0x67
OP_JAL = 0x6F
OP_SYSTEM = 0x73

ALL_MAJOR_OPCODES = (
    OP_LOAD, OP_LOAD_FP, OP_CUSTOM0, OP_MISC_MEM, OP_OP_IMM, OP_AUIPC,
    OP_OP_IMM_32, OP_STORE, OP_STORE_FP, OP_CUSTOM1, OP_AMO, OP_OP,
    OP_LUI, OP_OP_32, OP_MADD, OP_MSUB, OP_NMSUB, OP_NMADD, OP_OP_FP,
    OP_BRANCH, OP_JALR, OP_JAL, OP_SYSTEM,
)

# --- funct3 values --------------------------------------------------------
# Loads (opcode OP_LOAD)
F3_LB, F3_LH, F3_LW, F3_LD = 0x0, 0x1, 0x2, 0x3
F3_LBU, F3_LHU, F3_LWU = 0x4, 0x5, 0x6
# Stores (opcode OP_STORE)
F3_SB, F3_SH, F3_SW, F3_SD = 0x0, 0x1, 0x2, 0x3
# Branches (opcode OP_BRANCH)
F3_BEQ, F3_BNE = 0x0, 0x1
F3_BLT, F3_BGE, F3_BLTU, F3_BGEU = 0x4, 0x5, 0x6, 0x7
# OP / OP_IMM arithmetic
F3_ADD_SUB, F3_SLL, F3_SLT, F3_SLTU = 0x0, 0x1, 0x2, 0x3
F3_XOR, F3_SRL_SRA, F3_OR, F3_AND = 0x4, 0x5, 0x6, 0x7
# M extension (funct7 = 0x01 under OP)
F3_MUL, F3_MULH, F3_MULHSU, F3_MULHU = 0x0, 0x1, 0x2, 0x3
F3_DIV, F3_DIVU, F3_REM, F3_REMU = 0x4, 0x5, 0x6, 0x7

F7_STANDARD = 0x00
F7_ALT = 0x20  # SUB / SRA
F7_MULDIV = 0x01

LOAD_MNEMONICS = {
    F3_LB: "lb", F3_LH: "lh", F3_LW: "lw", F3_LD: "ld",
    F3_LBU: "lbu", F3_LHU: "lhu", F3_LWU: "lwu",
}
STORE_MNEMONICS = {F3_SB: "sb", F3_SH: "sh", F3_SW: "sw", F3_SD: "sd"}
BRANCH_MNEMONICS = {
    F3_BEQ: "beq", F3_BNE: "bne", F3_BLT: "blt",
    F3_BGE: "bge", F3_BLTU: "bltu", F3_BGEU: "bgeu",
}
LOAD_SIZES = {
    F3_LB: 1, F3_LBU: 1, F3_LH: 2, F3_LHU: 2,
    F3_LW: 4, F3_LWU: 4, F3_LD: 8,
}
STORE_SIZES = {F3_SB: 1, F3_SH: 2, F3_SW: 4, F3_SD: 8}


class InstrClass(Enum):
    """Coarse instruction classes used by the core's FU model and by
    the trace generator's instruction mixes."""

    INT_ALU = auto()
    INT_MUL = auto()
    INT_DIV = auto()
    FP_ALU = auto()
    LOAD = auto()
    STORE = auto()
    BRANCH = auto()
    JUMP = auto()        # jal/jalr that are not call/ret (computed jumps)
    CALL = auto()        # jal/jalr with rd == ra
    RET = auto()         # jalr x0, 0(ra)
    CSR = auto()
    FENCE = auto()
    CUSTOM = auto()      # custom0/custom1 — FireGuard event markers / ISAX
    SYSTEM = auto()


def classify(opcode: int, funct3: int, rd: int = 0, rs1: int = 0,
             funct7: int = 0) -> InstrClass:
    """Classify an instruction from its encoded fields.

    Call/return discrimination follows the RISC-V calling convention
    hint bits: ``jal ra, ...`` / ``jalr ra, ...`` are calls and
    ``jalr x0, 0(ra)`` is a return — the same heuristic BOOM's RAS uses.
    """
    if opcode in (OP_LOAD, OP_LOAD_FP, OP_AMO):
        return InstrClass.LOAD
    if opcode in (OP_STORE, OP_STORE_FP):
        return InstrClass.STORE
    if opcode == OP_BRANCH:
        return InstrClass.BRANCH
    if opcode == OP_JAL or opcode == OP_JALR:
        if rd == 1:
            return InstrClass.CALL
        if opcode == OP_JALR and rd == 0 and rs1 == 1:
            return InstrClass.RET
        return InstrClass.JUMP
    if opcode == OP_SYSTEM:
        return InstrClass.CSR if funct3 != 0 else InstrClass.SYSTEM
    if opcode == OP_MISC_MEM:
        return InstrClass.FENCE
    if opcode in (OP_CUSTOM0, OP_CUSTOM1):
        return InstrClass.CUSTOM
    if opcode in (OP_OP_FP, OP_MADD, OP_MSUB, OP_NMADD, OP_NMSUB):
        return InstrClass.FP_ALU
    if opcode in (OP_OP, OP_OP_32) and funct7 == F7_MULDIV:
        if funct3 in (F3_DIV, F3_DIVU, F3_REM, F3_REMU):
            return InstrClass.INT_DIV
        return InstrClass.INT_MUL
    return InstrClass.INT_ALU


# Classes whose committed results live in the PRF (data-forwarding
# channel reads them through the preempted PRF read ports, §III-A).
PRF_RESULT_CLASSES = frozenset({
    InstrClass.INT_ALU, InstrClass.INT_MUL, InstrClass.INT_DIV,
    InstrClass.FP_ALU, InstrClass.LOAD, InstrClass.CALL,
    InstrClass.JUMP, InstrClass.CSR,
})

# Classes whose debug data comes from the load/store queues.
LSQ_CLASSES = frozenset({InstrClass.LOAD, InstrClass.STORE})

# Classes whose debug data (targets) comes from the FTQ.
FTQ_CLASSES = frozenset({
    InstrClass.BRANCH, InstrClass.JUMP, InstrClass.CALL, InstrClass.RET,
})
