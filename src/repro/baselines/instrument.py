"""Trace instrumentation: inline software security checks.

Each scheme defines, per protected event, the instruction sequence a
compiler would emit.  Inserted instructions use scratch registers the
workload generator never allocates (x4, x10, x11) so they perturb the
original dependence structure the way real instrumentation does —
through added work and cache pressure, not through false hazards.

Expansion factors per scheme follow the published instrumentation
shapes: ASan-AArch64 emits a longer sequence than x86-64 (no complex
addressing modes, more moves), which is why the paper measures 163.5 %
vs 91.5 % overhead; DangSan's per-free bookkeeping dominates
allocation-heavy workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TraceError
from repro.isa.decode import decode, encode_instr
from repro.isa.opcodes import InstrClass
from repro.kernels.base import SHADOW_BASE, SHADOW_STACK_BASE
from repro.ooo.core import MainCore
from repro.ooo.params import CoreParams
from repro.trace.record import InstrRecord, Trace

_SCRATCH_A = 4    # tp — never used by the workload generator
_SCRATCH_B = 10   # a0
_SCRATCH_C = 11   # a1

_WORD_CACHE: dict[tuple, int] = {}


def _mk(seq: int, pc: int, mnemonic: str, rd: int = 0, rs1: int = 0,
        rs2: int = 0, mem_addr: int | None = None, mem_size: int = 0,
        srcs: tuple[int, ...] = (), dst: int | None = None) -> InstrRecord:
    key = (mnemonic, rd, rs1, rs2)
    word = _WORD_CACHE.get(key)
    if word is None:
        word = encode_instr(mnemonic, rd=rd, rs1=rs1, rs2=rs2)
        _WORD_CACHE[key] = word
    decoded = decode(word)
    return InstrRecord(seq=seq, pc=pc, word=word, opcode=decoded.opcode,
                       funct3=decoded.funct3, iclass=decoded.iclass,
                       dst=dst, srcs=srcs, mem_addr=mem_addr,
                       mem_size=mem_size)


@dataclass(frozen=True)
class InstrumentationScheme:
    """One software scheme: a name plus per-event emit functions."""

    name: str
    description: str
    # How many inline instructions per protected event (used by the
    # emitters below and reported in docs).
    per_mem: int = 0
    per_call: int = 0
    per_ret: int = 0
    per_alloc: int = 0
    per_free: int = 0
    shadow_shift: int = 3

    def emit_mem(self, rec: InstrRecord, seq: int) -> list[InstrRecord]:
        """Check sequence before a protected load/store."""
        if not self.per_mem:
            return []
        out = []
        shadow = SHADOW_BASE + ((rec.mem_addr or 0) >> self.shadow_shift)
        # Address arithmetic then one shadow load, then compare/branch;
        # pad to the scheme's sequence length with ALU ops.
        out.append(_mk(seq, rec.pc, "srli", rd=_SCRATCH_A,
                       rs1=rec.srcs[0] if rec.srcs else 0,
                       srcs=rec.srcs[:1], dst=_SCRATCH_A))
        out.append(_mk(seq, rec.pc, "add", rd=_SCRATCH_A, rs1=_SCRATCH_A,
                       rs2=0, srcs=(_SCRATCH_A,), dst=_SCRATCH_A))
        out.append(_mk(seq, rec.pc, "lbu", rd=_SCRATCH_B, rs1=_SCRATCH_A,
                       mem_addr=shadow, mem_size=1, srcs=(_SCRATCH_A,),
                       dst=_SCRATCH_B))
        out.append(_mk(seq, rec.pc, "bne", rs1=_SCRATCH_B, rs2=0,
                       srcs=(_SCRATCH_B,)))
        for _ in range(self.per_mem - 4):
            out.append(_mk(seq, rec.pc, "andi", rd=_SCRATCH_C,
                           rs1=_SCRATCH_B, srcs=(_SCRATCH_B,),
                           dst=_SCRATCH_C))
        return out

    def emit_call(self, rec: InstrRecord, seq: int,
                  depth: int) -> list[InstrRecord]:
        if not self.per_call:
            return []
        slot = SHADOW_STACK_BASE + (depth % 4096) * 8
        out = [_mk(seq, rec.pc, "sd", rs1=_SCRATCH_A, rs2=1,
                   mem_addr=slot, mem_size=8, srcs=(1,))]
        for _ in range(self.per_call - 1):
            out.append(_mk(seq, rec.pc, "addi", rd=_SCRATCH_A,
                           rs1=_SCRATCH_A, srcs=(_SCRATCH_A,),
                           dst=_SCRATCH_A))
        return out

    def emit_ret(self, rec: InstrRecord, seq: int,
                 depth: int) -> list[InstrRecord]:
        if not self.per_ret:
            return []
        slot = SHADOW_STACK_BASE + (depth % 4096) * 8
        out = [
            _mk(seq, rec.pc, "ld", rd=_SCRATCH_B, rs1=_SCRATCH_A,
                mem_addr=slot, mem_size=8, srcs=(_SCRATCH_A,),
                dst=_SCRATCH_B),
            _mk(seq, rec.pc, "bne", rs1=_SCRATCH_B, rs2=1,
                srcs=(_SCRATCH_B, 1)),
        ]
        for _ in range(self.per_ret - 2):
            out.append(_mk(seq, rec.pc, "addi", rd=_SCRATCH_A,
                           rs1=_SCRATCH_A, srcs=(_SCRATCH_A,),
                           dst=_SCRATCH_A))
        return out

    def emit_event(self, rec: InstrRecord, seq: int,
                   is_free: bool) -> list[InstrRecord]:
        count = self.per_free if is_free else self.per_alloc
        out = []
        base = rec.mem_addr or 0
        for i in range(count):
            if i % 3 == 2:
                shadow = SHADOW_BASE + (base >> self.shadow_shift) + i
                out.append(_mk(seq, rec.pc, "sb", rs1=_SCRATCH_A,
                               rs2=_SCRATCH_B, mem_addr=shadow,
                               mem_size=1, srcs=(_SCRATCH_A, _SCRATCH_B)))
            else:
                out.append(_mk(seq, rec.pc, "addi", rd=_SCRATCH_A,
                               rs1=_SCRATCH_A, srcs=(_SCRATCH_A,),
                               dst=_SCRATCH_A))
        return out


SCHEMES: dict[str, InstrumentationScheme] = {
    # LLVM shadow stack (AArch64): save/check the link register around
    # calls and returns — the paper measures 7.9 % overhead.
    "shadow_stack_sw": InstrumentationScheme(
        name="shadow_stack_sw",
        description="LLVM ShadowCallStack-style, AArch64",
        per_call=2, per_ret=3),
    # AddressSanitizer, AArch64 flavour: long check sequences.
    "asan_aarch64": InstrumentationScheme(
        name="asan_aarch64",
        description="AddressSanitizer, AArch64 LLVM instrumentation",
        per_mem=9, per_alloc=24, per_free=16),
    # AddressSanitizer, x86-64 flavour: denser addressing, fewer ops.
    "asan_x86": InstrumentationScheme(
        name="asan_x86",
        description="AddressSanitizer, x86-64 LLVM instrumentation",
        per_mem=5, per_alloc=18, per_free=12),
    # DangSan: pointer-tracking stores plus heavy free-time work.
    "dangsan": InstrumentationScheme(
        name="dangsan",
        description="DangSan use-after-free detection, x86-64",
        per_mem=2, per_alloc=20, per_free=60),
}


def instrument_trace(trace: Trace, scheme: InstrumentationScheme) -> Trace:
    """Splice the scheme's check sequences into a trace."""
    out: list[InstrRecord] = []
    depth = 0
    for rec in trace.records:
        seq = len(out)
        if rec.is_mem and scheme.per_mem:
            for ins in scheme.emit_mem(rec, seq):
                ins.seq = len(out)
                out.append(ins)
        elif rec.iclass is InstrClass.CALL and scheme.per_call:
            for ins in scheme.emit_call(rec, seq, depth):
                ins.seq = len(out)
                out.append(ins)
        elif rec.iclass is InstrClass.RET and scheme.per_ret:
            depth = max(0, depth - 1)
            for ins in scheme.emit_ret(rec, seq, depth):
                ins.seq = len(out)
                out.append(ins)
        elif rec.iclass is InstrClass.CUSTOM:
            is_free = rec.funct3 == 1
            for ins in scheme.emit_event(rec, seq, is_free):
                ins.seq = len(out)
                out.append(ins)
        if rec.iclass is InstrClass.CALL:
            depth += 1
        clone = InstrRecord(
            seq=len(out), pc=rec.pc, word=rec.word, opcode=rec.opcode,
            funct3=rec.funct3, iclass=rec.iclass, dst=rec.dst,
            srcs=rec.srcs, mem_addr=rec.mem_addr, mem_size=rec.mem_size,
            taken=rec.taken, target=rec.target, result=rec.result,
            attack_id=rec.attack_id)
        out.append(clone)
    if len(out) < len(trace.records):
        raise TraceError("instrumentation shrank the trace")
    return Trace(name=f"{trace.name}+{scheme.name}", seed=trace.seed,
                 records=out, objects=trace.objects,
                 heap_base=trace.heap_base, heap_end=trace.heap_end,
                 global_base=trace.global_base, global_end=trace.global_end)


def software_slowdown(trace: Trace, scheme_name: str,
                      core_params: CoreParams | None = None) -> float:
    """Slowdown of the instrumented trace vs the plain trace."""
    if scheme_name not in SCHEMES:
        raise TraceError(f"unknown scheme {scheme_name!r}; "
                         f"available: {sorted(SCHEMES)}")
    params = core_params or CoreParams()
    plain = MainCore(params).run_standalone(trace).cycles
    instrumented = instrument_trace(trace, SCHEMES[scheme_name])
    inst = MainCore(params).run_standalone(instrumented).cycles
    return inst / plain
