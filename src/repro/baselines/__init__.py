"""Software baselines (Fig 7(a)'s comparison points).

The paper compares FireGuard against LLVM-instrumented software
schemes: a shadow stack (AArch64), AddressSanitizer (AArch64 and
x86-64 expansion factors), and DangSan for use-after-free.  Software
instrumentation *is* inline instruction expansion plus extra memory
traffic, so the baselines are trace transformers: they splice each
scheme's check sequence into the workload trace and run it on the
same unmonitored core.
"""

from repro.baselines.instrument import (
    SCHEMES,
    InstrumentationScheme,
    instrument_trace,
    software_slowdown,
)

__all__ = [
    "SCHEMES",
    "InstrumentationScheme",
    "instrument_trace",
    "software_slowdown",
]
