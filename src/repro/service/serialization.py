"""Versioned, canonical JSON codec for specs and records.

The persistent :class:`~repro.service.store.ResultStore` keeps one
JSON document per executed :class:`~repro.runner.spec.RunSpec`; this
module defines that document.  Three properties matter:

* **Round-trip exactness** — ``record_from_dict(record_to_dict(r))``
  compares equal to ``r`` field for field (dataclass equality), so a
  warm store hit is bit-identical to the simulation it replaces.  Ints
  stay ints (JSON object keys that encode integer ids are re-parsed),
  enums come back as the same members, frozen dataclasses
  (``FireGuardConfig``, ``Scenario`` phases, custom workload profiles)
  are rebuilt from their fields.
* **Byte stability** — :func:`canonical_dumps` sorts object keys and
  serializes set-like fields in sorted order, so the same record
  produces the same bytes under any ``PYTHONHASHSEED``.  The store's
  concurrent-writer story leans on this: two workers racing on one key
  write identical files, so whichever ``os.replace`` lands last
  changes nothing.
* **Versioning** — every document is stamped with
  :data:`SCHEMA_VERSION`; loading a document with a different stamp
  raises :class:`SchemaMismatchError`, which the store treats as a
  miss (forces a re-run) rather than a corruption.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import Any

from repro.core.config import FireGuardConfig
from repro.core.isax import IsaxStyle
from repro.core.system import Alert, SystemResult
from repro.errors import StoreError
from repro.kernels.base import KernelStrategy
from repro.runner.spec import RunRecord, RunSpec
from repro.trace.attacks import AttackKind, AttackPlan
from repro.trace.profiles import WorkloadProfile
from repro.trace.scenario import Phase, Scenario

__all__ = [
    "SCHEMA_VERSION",
    "SchemaMismatchError",
    "canonical_dumps",
    "dumps_record",
    "loads_record",
    "record_from_dict",
    "record_to_dict",
    "spec_from_dict",
    "spec_to_dict",
]

#: Bump whenever the document layout changes incompatibly; stored
#: entries with any other stamp are ignored (re-run), never reused.
#: v2: AttackPlan gained ``placement``.
SCHEMA_VERSION = 2


class SchemaMismatchError(StoreError):
    """The entry was written under a different schema version."""


def canonical_dumps(payload: dict) -> bytes:
    """The one serialization every writer uses: sorted keys, compact
    separators, ASCII — identical input, identical bytes."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      ensure_ascii=True).encode("ascii")


# -- leaf codecs -------------------------------------------------------------

def _plan_to_dict(plan: AttackPlan) -> dict:
    return {"kind": plan.kind.name, "count": plan.count,
            "pmc_bounds": list(plan.pmc_bounds)
            if plan.pmc_bounds is not None else None,
            "placement": plan.placement}


def _plan_from_dict(d: dict) -> AttackPlan:
    bounds = d["pmc_bounds"]
    return AttackPlan(kind=AttackKind[d["kind"]], count=d["count"],
                      pmc_bounds=tuple(bounds)
                      if bounds is not None else None,
                      placement=d["placement"])


def _profile_to_dict(profile: WorkloadProfile) -> dict:
    return asdict(profile)


def _phase_to_dict(phase: Phase) -> dict:
    profile: Any = phase.profile
    if isinstance(profile, str):
        profile = {"ref": profile}
    else:
        profile = {"custom": _profile_to_dict(profile)}
    return {"profile": profile, "length": phase.length,
            "attacks": [_plan_to_dict(p) for p in phase.attacks],
            "label": phase.label}


def _phase_from_dict(d: dict) -> Phase:
    profile = d["profile"]
    if "ref" in profile:
        resolved: str | WorkloadProfile = profile["ref"]
    else:
        resolved = WorkloadProfile(**profile["custom"])
    return Phase(profile=resolved, length=d["length"],
                 attacks=tuple(_plan_from_dict(p)
                               for p in d["attacks"]),
                 label=d["label"])


def _scenario_to_dict(scenario: Scenario) -> dict:
    return {"name": scenario.name,
            "phases": [_phase_to_dict(p) for p in scenario.phases]}


def _scenario_from_dict(d: dict) -> Scenario:
    return Scenario(name=d["name"],
                    phases=tuple(_phase_from_dict(p)
                                 for p in d["phases"]))


# -- spec --------------------------------------------------------------------

def spec_to_dict(spec: RunSpec) -> dict:
    scenario: dict | None = None
    if isinstance(spec.scenario, str):
        scenario = {"ref": spec.scenario}
    elif spec.scenario is not None:
        scenario = {"inline": _scenario_to_dict(spec.scenario)}
    return {
        "benchmark": spec.benchmark,
        "kernels": list(spec.kernels),
        "engines_per_kernel": spec.engines_per_kernel,
        # frozenset: serialized sorted so bytes ignore PYTHONHASHSEED.
        "accelerated": sorted(spec.accelerated),
        "strategy": spec.strategy.value,
        "isax_style": spec.isax_style.value,
        "config": asdict(spec.config),
        "block_size": spec.block_size,
        "seed": spec.seed,
        "length": spec.length,
        "attacks": _plan_to_dict(spec.attacks)
        if spec.attacks is not None else None,
        "software": spec.software,
        "need_baseline": spec.need_baseline,
        "scenario": scenario,
        "stream": spec.stream,
    }


def spec_from_dict(d: dict) -> RunSpec:
    scenario: Scenario | str | None = None
    if d["scenario"] is not None:
        if "ref" in d["scenario"]:
            scenario = d["scenario"]["ref"]
        else:
            scenario = _scenario_from_dict(d["scenario"]["inline"])
    return RunSpec(
        benchmark=d["benchmark"],
        kernels=tuple(d["kernels"]),
        engines_per_kernel=d["engines_per_kernel"],
        accelerated=frozenset(d["accelerated"]),
        strategy=KernelStrategy(d["strategy"]),
        isax_style=IsaxStyle(d["isax_style"]),
        config=FireGuardConfig(**d["config"]),
        block_size=d["block_size"],
        seed=d["seed"],
        length=d["length"],
        attacks=_plan_from_dict(d["attacks"])
        if d["attacks"] is not None else None,
        software=d["software"],
        need_baseline=d["need_baseline"],
        scenario=scenario,
        stream=d["stream"],
    )


# -- result ------------------------------------------------------------------

def _alert_to_dict(alert: Alert) -> dict:
    return {"engine_id": alert.engine_id, "code": alert.code,
            "time_ns": alert.time_ns, "attack_id": alert.attack_id,
            "pc": alert.pc}


def _result_to_dict(result: SystemResult) -> dict:
    return {
        "cycles": result.cycles,
        "committed": result.committed,
        "time_ns": result.time_ns,
        "stall_backpressure": result.stall_backpressure,
        # Alerts keep simulation order (deterministic); detections are
        # an id-keyed dict, serialized as sorted pairs because JSON
        # keys are strings and dict equality ignores ordering anyway.
        "alerts": [_alert_to_dict(a) for a in result.alerts],
        "detections": sorted([k, v] for k, v in
                             result.detections.items()),
        "filter_full_cycles": result.filter_full_cycles,
        "mapper_blocked_cycles": result.mapper_blocked_cycles,
        "cdc_full_cycles": result.cdc_full_cycles,
        "msgq_full_cycles": result.msgq_full_cycles,
        "packets_filtered": result.packets_filtered,
        "packets_delivered": result.packets_delivered,
        "engine_instructions": result.engine_instructions,
        "prf_preemptions": result.prf_preemptions,
        "noc_words": result.noc_words,
    }


def _result_from_dict(d: dict) -> SystemResult:
    return SystemResult(
        cycles=d["cycles"],
        committed=d["committed"],
        time_ns=d["time_ns"],
        stall_backpressure=d["stall_backpressure"],
        alerts=[Alert(**a) for a in d["alerts"]],
        detections={int(k): v for k, v in d["detections"]},
        filter_full_cycles=d["filter_full_cycles"],
        mapper_blocked_cycles=d["mapper_blocked_cycles"],
        cdc_full_cycles=d["cdc_full_cycles"],
        msgq_full_cycles=d["msgq_full_cycles"],
        packets_filtered=d["packets_filtered"],
        packets_delivered=d["packets_delivered"],
        engine_instructions=d["engine_instructions"],
        prf_preemptions=d["prf_preemptions"],
        noc_words=d["noc_words"],
    )


# -- record ------------------------------------------------------------------

def record_to_dict(record: RunRecord, key: str | None = None) -> dict:
    """The full store document.  ``key`` is the cache key the record
    is filed under; stamping it in the document lets readers verify an
    entry against its filename without recomputing the key (which
    would drift for ``length=None`` specs if ``REPRO_TRACE_LEN``
    changed between write and read)."""
    return {
        "schema": SCHEMA_VERSION,
        "key": key if key is not None else record.spec.cache_key(),
        "spec": spec_to_dict(record.spec),
        "result": _result_to_dict(record.result),
        "baseline_cycles": record.baseline_cycles,
        "injected_attacks": record.injected_attacks,
        "trace_digest": record.trace_digest,
    }


def record_from_dict(d: dict, expect_key: str | None = None,
                     ) -> RunRecord:
    """Decode and validate a store document.

    Raises :class:`SchemaMismatchError` on a version-stamp mismatch
    (the caller should re-run) and :class:`StoreError` on anything
    structurally wrong (the caller should quarantine).
    """
    if not isinstance(d, dict):
        raise StoreError(f"store entry is {type(d).__name__}, "
                         "expected an object")
    version = d.get("schema")
    if version != SCHEMA_VERSION:
        raise SchemaMismatchError(
            f"store entry schema {version!r} != {SCHEMA_VERSION}")
    if expect_key is not None and d.get("key") != expect_key:
        raise StoreError(
            f"store entry key {d.get('key')!r} does not match the "
            f"requested key {expect_key!r}")
    try:
        return RunRecord(
            spec=spec_from_dict(d["spec"]),
            result=_result_from_dict(d["result"]),
            baseline_cycles=d["baseline_cycles"],
            injected_attacks=d["injected_attacks"],
            trace_digest=d["trace_digest"],
        )
    except SchemaMismatchError:
        raise
    except Exception as exc:
        raise StoreError(f"malformed store entry: {exc}") from exc


def dumps_record(record: RunRecord, key: str | None = None) -> bytes:
    """Canonical bytes for a record (what the store writes)."""
    return canonical_dumps(record_to_dict(record, key=key))


def loads_record(data: bytes, expect_key: str | None = None,
                 ) -> RunRecord:
    """Parse store bytes back into a record (see
    :func:`record_from_dict` for the error contract)."""
    try:
        payload = json.loads(data)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise StoreError(f"undecodable store entry: {exc}") from exc
    return record_from_dict(payload, expect_key=expect_key)
