"""The service-grade execution client.

`Client` is the single entry point every harness, benchmark and
example submits work through.  It inverts the old batch-shaped API
(``SweepRunner.run`` blocked until a whole grid finished): ``submit``
returns a future-like :class:`RunHandle` immediately, ``map`` streams
records back in submission order as they complete, and
``as_completed`` yields handles in completion order — a figure harness
can render rows while the tail of its grid is still simulating.

Results are remembered at three levels, checked in order:

1. the in-memory record cache (one process, ``cache=True``);
2. the persistent :class:`~repro.service.store.ResultStore`
   (cross-process, cross-session; ``REPRO_RESULT_STORE``);
3. in-flight deduplication — a key already submitted but not yet
   finished shares its future instead of re-simulating.

Only a miss at all three dispatches a simulation, onto one of two
backends: a single background thread (``workers <= 1``, shares the
per-process build/trace caches in :mod:`repro.runner.worker`) or a
``ProcessPoolExecutor`` (``workers > 1``), which groups same-system
specs into chunks so each worker pays every expensive system build
once.  Records are bit-identical across backends, worker counts and
store round-trips — the differential tests in
``tests/test_service_client.py`` hold that line.

Cancellation is cooperative: ``RunHandle.cancel`` withdraws a run that
has not started, and asks a running one to stop at its next checkpoint
(trace materialisation, baseline, monitored run — see
:func:`repro.runner.worker.execute_spec`).  Cross-process requests
travel as marker files in a cancel directory (``REPRO_CANCEL_DIR`` or
a per-client temporary directory).  Cancellation state is scoped to
one *dispatch generation* of a key: handles that coalesced onto a
doomed run all observe the cancellation, while a later resubmission of
the same spec gets a fresh generation that the old cancel cannot touch
(and vice versa — the resubmission cannot revive the doomed run).

A third backend reaches beyond this host: ``REPRO_FABRIC=host:port``
(or ``Client(fabric=...)``) dispatches uncached specs to a
master/worker fleet (:mod:`repro.fabric`) instead of a local pool —
same records, same cancellation semantics, network scale.
"""

from __future__ import annotations

import atexit
import concurrent.futures as futures
import os
import shutil
import tempfile
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.errors import ReproError, RunCancelled, StoreError
from repro.runner.spec import RunRecord, RunSpec
from repro.runner.worker import ENV_REQUIRE_HIT, execute_spec
from repro.service.store import ResultStore

__all__ = ["Client", "ClientStats", "RunHandle", "default_client"]

#: Environment variable naming a shared cancellation directory.
ENV_CANCEL_DIR = "REPRO_CANCEL_DIR"

#: ``host:port`` of a fabric master (mirrors
#: :data:`repro.fabric.remote.ENV_FABRIC`; kept as a literal here so
#: the service layer never imports the fabric until it is used).
ENV_FABRIC = "REPRO_FABRIC"


class _CancelToken:
    """Cancellation state for one dispatch generation of one key.

    The executing task closes over its own token, so a cancel always
    reaches exactly the generation it was aimed at: every handle
    coalesced onto that generation observes it, and a later
    resubmission (which gets a new token) is untouched.
    """

    __slots__ = ("requested", "marker")

    def __init__(self, marker: str):
        self.requested = False
        #: Marker-file name for cross-process delivery — generation
        #: scoped, so clearing/creating one generation's marker never
        #: affects another's.
        self.marker = marker


def _env_workers() -> int:
    """Worker count from ``REPRO_WORKERS`` (default 1 = in-process)."""
    return int(os.environ.get("REPRO_WORKERS", "1"))


@dataclass
class ClientStats:
    """Where this client's submissions were answered from.

    ``executed`` counts dispatches to a simulation backend — the
    number the warm-store acceptance tests pin at zero; ``coalesced``
    counts submissions that attached to an identical in-flight run.
    """

    submitted: int = 0
    memory_hits: int = 0
    store_hits: int = 0
    coalesced: int = 0
    executed: int = 0
    cancel_requests: int = 0

    def as_dict(self) -> dict:
        return dict(self.__dict__)


class RunHandle:
    """Future-like view of one submitted spec.

    Handles for duplicate submissions of one key share a single
    underlying future: cancelling one cancels them all.
    """

    __slots__ = ("spec", "key", "source", "_future", "_client")

    def __init__(self, spec: RunSpec, key: str, future: futures.Future,
                 client: "Client", source: str):
        self.spec = spec
        self.key = key
        #: Where the record came from at submit time: ``"memory"``,
        #: ``"store"``, ``"coalesced"`` or ``"executed"``.
        self.source = source
        self._future = future
        self._client = client

    def result(self, timeout: float | None = None) -> RunRecord:
        """Block until the record is available.  Raises
        :class:`~repro.errors.RunCancelled` if the run was cancelled
        (before or during execution)."""
        try:
            return self._future.result(timeout)
        except futures.CancelledError as exc:
            raise RunCancelled(
                f"run {self.key[:12]}… was cancelled before it "
                "started") from exc

    def exception(self, timeout: float | None = None):
        try:
            return self._future.exception(timeout)
        except futures.CancelledError as exc:
            return RunCancelled(str(exc))

    def done(self) -> bool:
        return self._future.done()

    def running(self) -> bool:
        return self._future.running()

    def cancelled(self) -> bool:
        """True once the run is certain to never yield a record."""
        if self._future.cancelled():
            return True
        if self._future.done():
            return isinstance(self._future.exception(), RunCancelled)
        return False

    def cancel(self) -> bool:
        """Withdraw the run if it has not started; otherwise request a
        cooperative stop at its next checkpoint.  Returns False only
        when the record already exists (too late to cancel)."""
        if self._future.done():
            return self.cancelled()
        # Cooperative request first (covers a run that is already
        # executing), then withdraw outright if it never started.
        self._client._request_cancel(self.key)
        self._future.cancel()
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = ("done" if self.done() else
                 "running" if self.running() else "pending")
        return (f"RunHandle({self.spec.benchmark!r}, "
                f"key={self.key[:12]}…, {state}, {self.source})")


def _execute_chunk(items: list[tuple[RunSpec, str]],
                   store_root: str | None,
                   cancel_dir: str | None) -> list[tuple]:
    """Pool-side unit of work: one same-system group of specs.

    Returns ``("ok", record)`` / ``("cancelled", None)`` per spec so a
    cancellation inside a chunk doesn't poison its siblings.  Each
    worker re-opens the store from its root (read-through catches
    records a sibling worker finished first) and polls the cancel
    directory for each spec's generation-scoped marker file.
    """
    store = ResultStore(store_root) if store_root else False
    out: list[tuple] = []
    for spec, marker_name in items:
        if cancel_dir:
            marker = Path(cancel_dir) / marker_name
            cancel = marker.exists
        else:
            cancel = None
        try:
            out.append(("ok", execute_spec(spec, store=store,
                                           cancel=cancel)))
        except RunCancelled:
            out.append(("cancelled", None))
    return out


class Client:
    """Submission front end over the execution backends.

    ``workers`` — None reads ``REPRO_WORKERS`` (default 1).
    ``store`` — None opens ``REPRO_RESULT_STORE`` if set, ``False``
    disables persistence, a path or :class:`ResultStore` uses that
    store.  ``cache`` — keep completed records in memory and answer
    repeat submissions without touching the store.  ``fabric`` — None
    reads ``REPRO_FABRIC`` (``host:port`` of a fleet master), ``False``
    forces local execution even when the variable is set, a string is
    the master's address; when active, uncached specs are dispatched
    to the fleet instead of a local thread/pool backend.
    """

    def __init__(self, workers: int | None = None,
                 store: "ResultStore | str | Path | bool | None" = None,
                 cache: bool = True,
                 fabric: "str | bool | None" = None):
        self.workers = workers
        if store is None:
            self.store = ResultStore.from_env()
        elif store is False:
            self.store = None
        elif isinstance(store, (str, Path)):
            self.store = ResultStore(store)
        else:
            self.store = store
        if fabric is None:
            self.fabric_address = os.environ.get(ENV_FABRIC) or None
        elif fabric is False:
            self.fabric_address = None
        else:
            self.fabric_address = fabric
        self.stats = ClientStats()
        self._cache: dict[str, RunRecord] | None = {} if cache else None
        self._inflight: dict[str, futures.Future] = {}
        self._tokens: dict[str, _CancelToken] = {}
        self._generations: dict[str, int] = {}
        self._lock = threading.RLock()
        self._executor: futures.Executor | None = None
        self._fabric = None  # lazily created FabricExecutor
        self._pooled = False
        self._cancel_dir: Path | None = None
        self._own_cancel_dir = False
        self._closed = False

    # -- lifecycle ---------------------------------------------------------
    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self, wait: bool = True) -> None:
        """Shut the backend down; pending work is cancelled when
        ``wait`` is False."""
        with self._lock:
            executor, self._executor = self._executor, None
            fabric, self._fabric = self._fabric, None
            self._closed = True
            inflight = list(self._inflight.values())
            if not wait:
                # Ask running work to stop at its next checkpoint and
                # withdraw anything still queued, so no handle is left
                # waiting on a torn-down backend.
                for token in self._tokens.values():
                    token.requested = True
        if fabric is not None:
            fabric.close()
        if executor is not None:
            executor.shutdown(wait=wait, cancel_futures=not wait)
        if not wait:
            for future in inflight:
                future.cancel()
        if self._own_cancel_dir and self._cancel_dir is not None:
            shutil.rmtree(self._cancel_dir, ignore_errors=True)
            self._cancel_dir = None

    def shrink(self, wait: bool = True) -> None:
        """Release the execution backend (worker processes/thread,
        fabric connection) but keep the client usable: caches, store
        connection and stats survive, and the next dispatch recreates
        the backend.  The deprecated ``SweepRunner`` facade calls this
        after each batch to match the historical pool-per-run resource
        profile."""
        with self._lock:
            executor, self._executor = self._executor, None
            fabric, self._fabric = self._fabric, None
            self._pooled = False
        if fabric is not None:
            fabric.close()
        if executor is not None:
            executor.shutdown(wait=wait)

    def _resolved_workers(self) -> int:
        workers = self.workers if self.workers is not None \
            else _env_workers()
        return max(1, workers)

    def _ensure_executor(self) -> futures.Executor:
        if self._closed:
            raise ReproError("client is closed")
        if self._executor is None:
            workers = self._resolved_workers()
            if workers <= 1:
                # One background thread: submissions return instantly,
                # execution shares this process's worker caches and
                # stays strictly in submission order.
                self._executor = futures.ThreadPoolExecutor(
                    max_workers=1, thread_name_prefix="repro-client")
                self._pooled = False
            else:
                self._executor = futures.ProcessPoolExecutor(
                    max_workers=workers)
                self._pooled = True
                configured = os.environ.get(ENV_CANCEL_DIR)
                if configured:
                    self._cancel_dir = Path(configured)
                    self._cancel_dir.mkdir(parents=True, exist_ok=True)
                else:
                    self._cancel_dir = Path(
                        tempfile.mkdtemp(prefix="repro-cancel-"))
                    self._own_cancel_dir = True
        return self._executor

    def _ensure_fabric(self):
        """The lazily-connected fleet backend (import deferred so the
        service layer stays import-light without a fabric)."""
        if self._closed:
            raise ReproError("client is closed")
        if self._fabric is None:
            from repro.fabric.remote import FabricExecutor

            self._fabric = FabricExecutor(self.fabric_address)
        return self._fabric

    def fabric_stats(self) -> dict:
        """Live counters/roster of the connected fabric master."""
        if self.fabric_address is None:
            raise ReproError("no fabric is configured "
                             f"(set {ENV_FABRIC} or fabric=)")
        return self._ensure_fabric().stats()

    # -- cancellation ------------------------------------------------------
    def _new_token(self, key: str) -> _CancelToken:
        """A fresh cancellation generation for ``key`` (caller holds
        the lock).  The old generation's token — still referenced by
        any task already executing — is deliberately left untouched."""
        generation = self._generations.get(key, 0) + 1
        self._generations[key] = generation
        token = _CancelToken(marker=f"{key}.g{generation}")
        self._tokens[key] = token
        return token

    def _request_cancel(self, key: str) -> None:
        with self._lock:
            self.stats.cancel_requests += 1
            token = self._tokens.get(key)
            if token is not None:
                token.requested = True
            cancel_dir = self._cancel_dir
            fabric = self._fabric
        if token is not None and cancel_dir is not None:
            try:
                (cancel_dir / token.marker).touch()
            except OSError:  # pragma: no cover - cancel is best-effort
                pass
        if fabric is not None:
            fabric.cancel(key)

    # -- submission --------------------------------------------------------
    def submit(self, spec: RunSpec) -> RunHandle:
        """Submit one spec; returns immediately with a handle."""
        return self._submit_batch([spec])[0]

    def submit_many(self, specs: Sequence[RunSpec]) -> list[RunHandle]:
        """Submit a batch; uncached specs are grouped by system
        configuration before fanning out (build-once/run-many on the
        pool backend)."""
        return self._submit_batch(list(specs))

    def map(self, specs: Iterable[RunSpec]) -> Iterator[RunRecord]:
        """Submit ``specs`` and stream their records back in
        submission order, each yielded as soon as it (and every
        earlier one) is complete."""
        handles = self._submit_batch(list(specs))
        for handle in handles:
            yield handle.result()

    def as_completed(self, specs: Iterable[RunSpec],
                     timeout: float | None = None,
                     ) -> Iterator[RunHandle]:
        """Submit ``specs`` and yield handles in completion order —
        the incremental-streaming primitive."""
        handles = self._submit_batch(list(specs))
        by_future: dict[futures.Future, list[RunHandle]] = {}
        for handle in handles:
            by_future.setdefault(handle._future, []).append(handle)
        for future in futures.as_completed(by_future, timeout=timeout):
            yield from by_future[future]

    def run(self, specs: Sequence[RunSpec]) -> list[RunRecord]:
        """Submit and gather a whole batch (the ``SweepRunner.run``
        contract: records in submission order)."""
        return [handle.result()
                for handle in self._submit_batch(list(specs))]

    def run_one(self, spec: RunSpec) -> RunRecord:
        return self.submit(spec).result()

    # -- internals ---------------------------------------------------------
    def _done_future(self, record: RunRecord) -> futures.Future:
        future: futures.Future = futures.Future()
        future.set_result(record)
        return future

    def _on_spec_done(self, key: str, future: futures.Future) -> None:
        with self._lock:
            if self._inflight.get(key) is future:
                del self._inflight[key]
                # Retire this generation's token; a resubmission may
                # already have installed a newer one, which the
                # identity guard above leaves in place.
                self._tokens.pop(key, None)
            if (self._cache is not None and not future.cancelled()
                    and future.exception() is None):
                self._cache[key] = future.result()

    def _submit_batch(self, specs: list[RunSpec]) -> list[RunHandle]:
        with self._lock:
            handles: list[RunHandle | None] = [None] * len(specs)
            pending: list[tuple[int, str, RunSpec]] = []
            batch_futures: dict[str, futures.Future] = {}
            for index, spec in enumerate(specs):
                key = spec.cache_key()
                self.stats.submitted += 1
                record = None if self._cache is None \
                    else self._cache.get(key)
                if record is not None:
                    self.stats.memory_hits += 1
                    handles[index] = RunHandle(
                        spec, key, self._done_future(record), self,
                        "memory")
                    continue
                shared = batch_futures.get(key) \
                    or self._inflight.get(key)
                token = self._tokens.get(key)
                if shared is not None and not shared.cancelled() \
                        and not (token is not None and token.requested):
                    # A cancel-requested in-flight run is doomed:
                    # don't attach new handles to it.
                    self.stats.coalesced += 1
                    handles[index] = RunHandle(spec, key, shared, self,
                                               "coalesced")
                    continue
                if self.store is not None:
                    record = self.store.get(key)
                    if record is not None:
                        if self._cache is not None:
                            self._cache[key] = record
                        self.stats.store_hits += 1
                        handles[index] = RunHandle(
                            spec, key, self._done_future(record), self,
                            "store")
                        continue
                future = futures.Future()
                batch_futures[key] = future
                pending.append((index, key, spec))
                handles[index] = RunHandle(spec, key, future, self,
                                           "executed")

            if pending and os.environ.get(ENV_REQUIRE_HIT) == "1" \
                    and self.fabric_address is None:
                # With a fabric, enforcement moves to the fleet: the
                # master's store read-through answers warm specs, and
                # any spec that does reach a worker trips the same
                # check inside execute_spec there.
                missed = ", ".join(
                    f"{key[:12]}… ({spec.benchmark!r})"
                    for _, key, spec in pending[:4])
                raise StoreError(
                    f"{ENV_REQUIRE_HIT}=1 but {len(pending)} spec(s) "
                    f"missed the result store: {missed}")
            if pending:
                self._dispatch(pending, batch_futures)
            return handles  # type: ignore[return-value]

    def _dispatch(self, pending: list[tuple[int, str, RunSpec]],
                  batch_futures: dict[str, futures.Future]) -> None:
        """Send uncached specs to the backend (caller holds the
        lock)."""
        self.stats.executed += len(pending)
        tokens: dict[str, _CancelToken] = {}
        for _, key, _spec in pending:
            tokens[key] = self._new_token(key)
            self._inflight[key] = batch_futures[key]
            self._finalize(key, batch_futures[key])

        if self.fabric_address is not None:
            # Fleet backend: one submit request to the master; the
            # executor's poller resolves the futures as workers
            # finish.  Cancellation rides _request_cancel -> master.
            self._ensure_fabric().dispatch(
                [(key, spec) for _, key, spec in pending],
                {key: batch_futures[key] for _, key, _ in pending})
            return

        executor = self._ensure_executor()
        store = self.store if self.store is not None else False
        if not self._pooled:
            for _, key, spec in pending:
                executor.submit(self._run_local, key, spec, store,
                                batch_futures[key], tokens[key])
            return

        # Pool backend: same-system specs grouped into chunks so each
        # worker pays every distinct system build once per chunk.
        ordered = sorted(pending,
                         key=lambda item: repr(item[2].system_key()))
        workers = min(self._resolved_workers(), len(ordered))
        target = max(1, -(-len(ordered) // (workers * 2)))
        store_root = str(self.store.root) \
            if self.store is not None else None
        cancel_dir = str(self._cancel_dir) if self._cancel_dir else None
        start = 0
        groups: list[list[tuple[int, str, RunSpec]]] = []
        for end in range(1, len(ordered) + 1):
            if end == len(ordered) or ordered[end][2].system_key() \
                    != ordered[start][2].system_key():
                group = ordered[start:end]
                groups.extend(group[i:i + target]
                              for i in range(0, len(group), target))
                start = end
        for group in groups:
            # Handle futures go RUNNING at dispatch: from here on the
            # only way to stop a spec is the cooperative marker file
            # the chunk worker polls before (and during) each run.
            for _, key, _spec in group:
                batch_futures[key].set_running_or_notify_cancel()
            chunk_future = executor.submit(
                _execute_chunk,
                [(spec, tokens[key].marker) for _, key, spec in group],
                store_root, cancel_dir)
            slots = [(batch_futures[key], key) for _, key, _ in group]
            chunk_future.add_done_callback(
                lambda done, slots=slots: self._distribute(done, slots))

    def _run_local(self, key: str, spec: RunSpec, store,
                   outer: futures.Future, token: _CancelToken) -> None:
        """Thread-backend unit of work: flips the handle future to
        RUNNING at actual start — so ``cancel()`` genuinely withdraws
        a queued run (this body is skipped) and falls back to the
        cooperative checkpoint flag for a running one.  The flag is
        this dispatch's own token, so a cancel aimed at it can never
        leak into (or be erased by) a resubmission of the same key."""
        if not outer.set_running_or_notify_cancel():
            return  # withdrawn while still queued
        try:
            record = execute_spec(
                spec, store=store,
                cancel=lambda: token.requested)
        except BaseException as exc:
            outer.set_exception(exc)
        else:
            outer.set_result(record)

    def _finalize(self, key: str, future: futures.Future) -> None:
        future.add_done_callback(
            lambda done, key=key: self._on_spec_done(key, done))

    def _distribute(self, chunk_future: futures.Future,
                    slots: list[tuple[futures.Future, str]]) -> None:
        """Fan a finished chunk's payload out to its per-spec futures
        (all RUNNING since dispatch)."""
        if chunk_future.cancelled():  # executor shut down mid-flight
            for future, key in slots:
                if not future.done():
                    future.set_exception(RunCancelled(
                        f"run {key[:12]}… was cancelled with the "
                        "executor"))
            return
        exc = chunk_future.exception()
        payload = None if exc is not None else chunk_future.result()
        for position, (future, key) in enumerate(slots):
            if exc is not None:
                future.set_exception(exc)
                continue
            status, record = payload[position]
            if status == "ok":
                future.set_result(record)
            else:
                future.set_exception(RunCancelled(
                    f"run {key[:12]}… was cancelled in the worker"))


_DEFAULT_CLIENT: Client | None = None


def default_client() -> Client:
    """Process-wide shared client: one memory cache and one store
    connection for every harness, so figures that revisit a
    configuration reuse its record."""
    global _DEFAULT_CLIENT
    if _DEFAULT_CLIENT is None:
        _DEFAULT_CLIENT = Client()
        atexit.register(_DEFAULT_CLIENT.close)
    return _DEFAULT_CLIENT
