"""Persistent, content-addressed result store.

One directory, one JSON document per executed spec, filed under the
spec's deterministic ``cache_key()``.  Point ``REPRO_RESULT_STORE`` at
a directory and every process — workers in a pool, successive CI jobs,
figure harnesses run weeks apart — shares one memo table: a warm rerun
of a whole figure grid loads records instead of simulating.

Concurrency and failure model:

* **Writers never collide.**  Each ``put`` writes to a process-unique
  temporary file in the store directory and ``os.replace``-s it over
  the final name — atomic on POSIX and Windows.  Two workers racing on
  one key both write the same canonical bytes (the codec is
  deterministic), so either winner is correct and readers never see a
  partial document.
* **Corruption is quarantined, not fatal.**  A truncated or mangled
  entry (killed writer on a non-atomic filesystem, disk trouble,
  manual editing) is moved aside into ``quarantine/`` with a
  :class:`StoreWarning`, and the lookup reports a miss — the run is
  simply re-simulated and re-stored.
* **Old schemas force re-runs.**  An entry stamped with a different
  :data:`~repro.service.serialization.SCHEMA_VERSION` is left in place
  but reported as a miss; the subsequent ``put`` overwrites it with a
  current document.
* **The index is advisory.**  ``index.sqlite`` in the store root
  memoizes ``(key, schema, size)`` per entry so ``count()`` and the
  fabric master's stats never have to glob a large directory; it is
  maintained write-through by ``put``, rebuilt from the filesystem by
  ``reindex()``, and every reader falls back to a directory scan if
  SQLite is unavailable or the file is damaged — the JSON documents
  remain the only ground truth.

``gc()`` is the compaction companion: it reclaims quarantined
corpses, abandoned temporary files and (optionally) entries stamped
with a stale schema version, leaving live current-schema records
untouched, then rebuilds the index.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import warnings
from pathlib import Path
from typing import Iterator

try:
    import sqlite3
except ImportError:  # pragma: no cover - stdlib, but stay optional
    sqlite3 = None  # type: ignore[assignment]

from repro.errors import StoreError
from repro.runner.spec import RunRecord
from repro.service.serialization import (
    SCHEMA_VERSION,
    SchemaMismatchError,
    dumps_record,
    loads_record,
)

__all__ = ["ENV_RESULT_STORE", "ResultStore", "StoreWarning"]

#: Environment variable naming the store directory.
ENV_RESULT_STORE = "REPRO_RESULT_STORE"

_QUARANTINE = "quarantine"

#: SQLite index file kept next to the entries (shared by every
#: process that opens the store; advisory — see module docstring).
_INDEX_NAME = "index.sqlite"


class StoreWarning(UserWarning):
    """A store entry was unusable and has been quarantined."""


class ResultStore:
    """Filesystem-backed map from cache key to
    :class:`~repro.runner.spec.RunRecord`."""

    _tmp_seq = itertools.count()

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.quarantined = 0
        self.schema_misses = 0
        self._index_conn = None
        self._index_dead = sqlite3 is None
        self._index_lock = threading.Lock()

    @classmethod
    def from_env(cls) -> "ResultStore | None":
        """The store named by ``REPRO_RESULT_STORE``, or None."""
        root = os.environ.get(ENV_RESULT_STORE)
        return cls(root) if root else None

    # -- paths -------------------------------------------------------------
    def path_for(self, key: str) -> Path:
        if not key or any(c in key for c in "/\\."):
            raise StoreError(f"illegal store key {key!r}")
        return self.root / f"{key}.json"

    def _quarantine(self, path: Path, reason: Exception) -> None:
        qdir = self.root / _QUARANTINE
        qdir.mkdir(exist_ok=True)
        target = qdir / f"{path.name}.{os.getpid()}.corrupt"
        try:
            path.replace(target)
        except OSError:
            # A racing reader quarantined it first; nothing to move.
            return
        self.quarantined += 1
        self._index_drop(path.stem)
        warnings.warn(
            f"result store quarantined corrupted entry {path.name} "
            f"-> {target.relative_to(self.root)}: {reason}",
            StoreWarning, stacklevel=3)

    # -- index -------------------------------------------------------------
    @property
    def index_path(self) -> Path:
        return self.root / _INDEX_NAME

    def _index(self):
        """The shared SQLite index connection, or None when SQLite is
        unavailable or the index file is unusable (the store then
        falls back to directory scans — never an exception)."""
        if self._index_dead:
            return None
        with self._index_lock:
            if self._index_conn is not None:
                return self._index_conn
            try:
                conn = sqlite3.connect(
                    self.index_path, timeout=5.0,
                    check_same_thread=False)
                conn.execute("PRAGMA journal_mode=WAL")
                conn.execute(
                    "CREATE TABLE IF NOT EXISTS entries ("
                    "  key    TEXT PRIMARY KEY,"
                    "  schema INTEGER,"
                    "  size   INTEGER NOT NULL)")
                conn.commit()
                empty = conn.execute(
                    "SELECT 1 FROM entries LIMIT 1").fetchone() is None
            except Exception:
                self._index_dead = True
                return None
            self._index_conn = conn
        if empty and next(self.root.glob("*.json"), None) is not None:
            # Pre-index store directory (or a rebuilt index file):
            # adopt the existing entries so count() is right from the
            # first call.
            self.reindex()
        return self._index_conn

    def _index_put(self, key: str, schema: "int | None",
                   size: int) -> None:
        conn = self._index()
        if conn is None:
            return
        try:
            with self._index_lock:
                conn.execute(
                    "INSERT OR REPLACE INTO entries (key, schema, size)"
                    " VALUES (?, ?, ?)", (key, schema, size))
                conn.commit()
        except Exception:
            # Advisory index: a locked or damaged file never blocks a
            # write that already landed on the filesystem.
            self._index_dead = True

    def _index_drop(self, key: str) -> None:
        conn = self._index()
        if conn is None:
            return
        try:
            with self._index_lock:
                conn.execute("DELETE FROM entries WHERE key = ?",
                             (key,))
                conn.commit()
        except Exception:
            self._index_dead = True

    def count(self) -> int:
        """Number of entries, from the index when available (O(1) for
        the fabric master's stats) with a directory-scan fallback."""
        conn = self._index()
        if conn is not None:
            try:
                with self._index_lock:
                    row = conn.execute(
                        "SELECT COUNT(*) FROM entries").fetchone()
                return int(row[0])
            except Exception:
                self._index_dead = True
        return sum(1 for _ in self.keys())

    def reindex(self) -> int:
        """Rebuild the index from the filesystem (the ground truth);
        returns the number of entries indexed.  Safe to call on a
        store that predates the index or whose index drifted."""
        rows = []
        for path in self.root.glob("*.json"):
            try:
                data = path.read_bytes()
                schema = json.loads(data).get("schema")
                if not isinstance(schema, int):
                    schema = None
            except Exception:
                data, schema = b"", None
            rows.append((path.stem, schema, len(data)))
        conn = self._index()
        if conn is not None:
            try:
                with self._index_lock:
                    conn.execute("DELETE FROM entries")
                    conn.executemany(
                        "INSERT OR REPLACE INTO entries "
                        "(key, schema, size) VALUES (?, ?, ?)", rows)
                    conn.commit()
            except Exception:
                self._index_dead = True
        return len(rows)

    # -- compaction --------------------------------------------------------
    def gc(self, keep_latest_schema: bool = True) -> dict:
        """Compact the store directory.

        Reclaims quarantined corpses, abandoned ``.tmp-*`` files from
        killed writers, undecodable entries, and — when
        ``keep_latest_schema`` — entries stamped with a schema version
        other than the current one (they are dead weight: every read
        already treats them as misses).  Live current-schema records
        are never touched.  Rebuilds the index afterwards and returns
        a summary dict.
        """
        removed_quarantined = removed_tmp = 0
        removed_stale_schema = removed_corrupt = 0
        reclaimed = 0

        qdir = self.root / _QUARANTINE
        if qdir.is_dir():
            for path in qdir.iterdir():
                try:
                    size = path.stat().st_size
                    path.unlink()
                except OSError:
                    continue
                removed_quarantined += 1
                reclaimed += size
            try:
                qdir.rmdir()
            except OSError:  # pragma: no cover - racing writer
                pass

        for path in self.root.glob(".tmp-*"):
            try:
                size = path.stat().st_size
                path.unlink()
            except OSError:
                continue
            removed_tmp += 1
            reclaimed += size

        kept = 0
        for path in self.root.glob("*.json"):
            try:
                payload = json.loads(path.read_bytes())
                schema = payload["schema"] if isinstance(payload, dict) \
                    else None
            except Exception:
                schema = None
            if schema is None:
                stale = True  # undecodable: any reader would quarantine
            elif keep_latest_schema:
                stale = schema != SCHEMA_VERSION
            else:
                stale = False
            if not stale:
                kept += 1
                continue
            try:
                size = path.stat().st_size
                path.unlink()
            except OSError:
                continue
            if schema is None:
                removed_corrupt += 1
            else:
                removed_stale_schema += 1
            reclaimed += size

        self.reindex()
        return {
            "kept": kept,
            "removed_quarantined": removed_quarantined,
            "removed_tmp": removed_tmp,
            "removed_stale_schema": removed_stale_schema,
            "removed_corrupt": removed_corrupt,
            "reclaimed_bytes": reclaimed,
        }

    # -- mapping -----------------------------------------------------------
    def get(self, key: str) -> RunRecord | None:
        """The stored record for ``key``, or None (miss, stale schema,
        or quarantined corruption — never an exception)."""
        path = self.path_for(key)
        try:
            data = path.read_bytes()
        except OSError:
            self.misses += 1
            return None
        try:
            record = loads_record(data, expect_key=key)
        except SchemaMismatchError:
            self.schema_misses += 1
            self.misses += 1
            return None
        except Exception as exc:  # corrupt: quarantine, report a miss
            self._quarantine(path, exc)
            self.misses += 1
            return None
        self.hits += 1
        return record

    def put(self, key: str, record: RunRecord) -> Path:
        """Persist ``record`` under ``key`` atomically; concurrent
        writers on one key are safe (identical canonical bytes)."""
        path = self.path_for(key)
        payload = dumps_record(record, key=key)
        tmp = self.root / (f".tmp-{os.getpid()}"
                           f"-{next(self._tmp_seq)}-{key[:8]}")
        tmp.write_bytes(payload)
        os.replace(tmp, path)
        self.writes += 1
        self._index_put(key, SCHEMA_VERSION, len(payload))
        return path

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def keys(self) -> Iterator[str]:
        for path in self.root.glob("*.json"):
            yield path.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def __bool__(self) -> bool:
        # An empty store is still a store: never let ``len == 0``
        # disable read-through/write-back via truthiness.
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ResultStore({str(self.root)!r}, entries={len(self)}, "
                f"hits={self.hits}, misses={self.misses})")
