"""Persistent, content-addressed result store.

One directory, one JSON document per executed spec, filed under the
spec's deterministic ``cache_key()``.  Point ``REPRO_RESULT_STORE`` at
a directory and every process — workers in a pool, successive CI jobs,
figure harnesses run weeks apart — shares one memo table: a warm rerun
of a whole figure grid loads records instead of simulating.

Concurrency and failure model:

* **Writers never collide.**  Each ``put`` writes to a process-unique
  temporary file in the store directory and ``os.replace``-s it over
  the final name — atomic on POSIX and Windows.  Two workers racing on
  one key both write the same canonical bytes (the codec is
  deterministic), so either winner is correct and readers never see a
  partial document.
* **Corruption is quarantined, not fatal.**  A truncated or mangled
  entry (killed writer on a non-atomic filesystem, disk trouble,
  manual editing) is moved aside into ``quarantine/`` with a
  :class:`StoreWarning`, and the lookup reports a miss — the run is
  simply re-simulated and re-stored.
* **Old schemas force re-runs.**  An entry stamped with a different
  :data:`~repro.service.serialization.SCHEMA_VERSION` is left in place
  but reported as a miss; the subsequent ``put`` overwrites it with a
  current document.
"""

from __future__ import annotations

import itertools
import os
import warnings
from pathlib import Path
from typing import Iterator

from repro.errors import StoreError
from repro.runner.spec import RunRecord
from repro.service.serialization import (
    SchemaMismatchError,
    dumps_record,
    loads_record,
)

__all__ = ["ENV_RESULT_STORE", "ResultStore", "StoreWarning"]

#: Environment variable naming the store directory.
ENV_RESULT_STORE = "REPRO_RESULT_STORE"

_QUARANTINE = "quarantine"


class StoreWarning(UserWarning):
    """A store entry was unusable and has been quarantined."""


class ResultStore:
    """Filesystem-backed map from cache key to
    :class:`~repro.runner.spec.RunRecord`."""

    _tmp_seq = itertools.count()

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.quarantined = 0
        self.schema_misses = 0

    @classmethod
    def from_env(cls) -> "ResultStore | None":
        """The store named by ``REPRO_RESULT_STORE``, or None."""
        root = os.environ.get(ENV_RESULT_STORE)
        return cls(root) if root else None

    # -- paths -------------------------------------------------------------
    def path_for(self, key: str) -> Path:
        if not key or any(c in key for c in "/\\."):
            raise StoreError(f"illegal store key {key!r}")
        return self.root / f"{key}.json"

    def _quarantine(self, path: Path, reason: Exception) -> None:
        qdir = self.root / _QUARANTINE
        qdir.mkdir(exist_ok=True)
        target = qdir / f"{path.name}.{os.getpid()}.corrupt"
        try:
            path.replace(target)
        except OSError:
            # A racing reader quarantined it first; nothing to move.
            return
        self.quarantined += 1
        warnings.warn(
            f"result store quarantined corrupted entry {path.name} "
            f"-> {target.relative_to(self.root)}: {reason}",
            StoreWarning, stacklevel=3)

    # -- mapping -----------------------------------------------------------
    def get(self, key: str) -> RunRecord | None:
        """The stored record for ``key``, or None (miss, stale schema,
        or quarantined corruption — never an exception)."""
        path = self.path_for(key)
        try:
            data = path.read_bytes()
        except OSError:
            self.misses += 1
            return None
        try:
            record = loads_record(data, expect_key=key)
        except SchemaMismatchError:
            self.schema_misses += 1
            self.misses += 1
            return None
        except Exception as exc:  # corrupt: quarantine, report a miss
            self._quarantine(path, exc)
            self.misses += 1
            return None
        self.hits += 1
        return record

    def put(self, key: str, record: RunRecord) -> Path:
        """Persist ``record`` under ``key`` atomically; concurrent
        writers on one key are safe (identical canonical bytes)."""
        path = self.path_for(key)
        payload = dumps_record(record, key=key)
        tmp = self.root / (f".tmp-{os.getpid()}"
                           f"-{next(self._tmp_seq)}-{key[:8]}")
        tmp.write_bytes(payload)
        os.replace(tmp, path)
        self.writes += 1
        return path

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def keys(self) -> Iterator[str]:
        for path in self.root.glob("*.json"):
            yield path.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def __bool__(self) -> bool:
        # An empty store is still a store: never let ``len == 0``
        # disable read-through/write-back via truthiness.
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ResultStore({str(self.root)!r}, entries={len(self)}, "
                f"hits={self.hits}, misses={self.misses})")
