"""Service layer (DESIGN.md: service layer).

The top-level execution API: an async :class:`Client` with future-like
:class:`RunHandle`\\ s, incremental streaming (``map`` /
``as_completed``) and a persistent content-addressed
:class:`ResultStore`::

    from repro.service import Client
    from repro.runner import RunSpec, sweep

    with Client(workers=4, store="results/") as client:
        handle = client.submit(RunSpec(benchmark="x264",
                                       kernels=("asan",)))
        print(handle.done())                  # submission is async
        specs = sweep(("x264", "dedup"), kernels=("asan",),
                      engines_per_kernel=[2, 4, 8])
        for record in client.map(specs):      # streams, in order
            print(record.spec.benchmark, record.slowdown)

A warm rerun against the same store executes zero simulations
(``client.stats.executed == 0``); records loaded from the store are
bit-identical to the simulations that produced them.
"""

from repro.service.client import (
    Client,
    ClientStats,
    RunHandle,
    default_client,
)
from repro.service.serialization import (
    SCHEMA_VERSION,
    SchemaMismatchError,
    dumps_record,
    loads_record,
    record_from_dict,
    record_to_dict,
    spec_from_dict,
    spec_to_dict,
)
from repro.service.store import ResultStore, StoreWarning

__all__ = [
    "Client",
    "ClientStats",
    "ResultStore",
    "RunHandle",
    "SCHEMA_VERSION",
    "SchemaMismatchError",
    "StoreWarning",
    "default_client",
    "dumps_record",
    "loads_record",
    "record_from_dict",
    "record_to_dict",
    "spec_from_dict",
    "spec_to_dict",
]
