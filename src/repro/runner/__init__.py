"""Parallel sweep runner (DESIGN.md: runner layer).

Declarative experiment execution over the session layer::

    from repro.runner import RunSpec, SweepRunner, sweep

    specs = sweep(("swaptions", "dedup"),
                  kernels=[("pmc",), ("asan",)],
                  engines_per_kernel=[2, 4, 8])
    records = SweepRunner(workers=4).run(specs)
    for record in records:
        print(record.spec.benchmark, record.slowdown)

Specs are hashable descriptions of a run; the runner memoises records
by deterministic cache key and fans uncached work out over processes,
each of which builds every distinct system once and resets its session
between traces.
"""

from repro.runner.runner import SweepRunner, default_runner, default_workers
from repro.runner.spec import (
    DEFAULT_SEED,
    DEFAULT_TRACE_LEN,
    AttackPlan,
    RunRecord,
    RunSpec,
    sweep,
    trace_length,
)
from repro.runner.worker import execute_spec

__all__ = [
    "AttackPlan",
    "DEFAULT_SEED",
    "DEFAULT_TRACE_LEN",
    "RunRecord",
    "RunSpec",
    "SweepRunner",
    "default_runner",
    "default_workers",
    "execute_spec",
    "sweep",
    "trace_length",
]
