"""Declarative run specs and the execution backend (DESIGN.md:
runner layer).

Specs are hashable descriptions of a run::

    from repro.runner import RunSpec, sweep
    from repro.service import Client

    specs = sweep(("swaptions", "dedup"),
                  kernels=[("pmc",), ("asan",)],
                  engines_per_kernel=[2, 4, 8])
    for record in Client(workers=4).map(specs):
        print(record.spec.benchmark, record.slowdown)

Execution goes through :mod:`repro.service`: the async ``Client``
memoises records in memory, reads through the persistent result store
(``REPRO_RESULT_STORE``), and fans uncached work out over processes,
each of which builds every distinct system once and resets its session
between traces (:mod:`repro.runner.worker`).  The blocking
``SweepRunner`` facade is kept for backward compatibility and is
deprecated.
"""

from repro.runner.runner import SweepRunner, default_runner, default_workers
from repro.runner.spec import (
    DEFAULT_SEED,
    DEFAULT_TRACE_LEN,
    AttackPlan,
    RunRecord,
    RunSpec,
    sweep,
    trace_length,
)
from repro.runner.worker import execute_spec, simulations_executed

__all__ = [
    "AttackPlan",
    "DEFAULT_SEED",
    "DEFAULT_TRACE_LEN",
    "RunRecord",
    "RunSpec",
    "SweepRunner",
    "default_runner",
    "default_workers",
    "execute_spec",
    "simulations_executed",
    "sweep",
    "trace_length",
]
