"""Deprecated batch facade over the service client.

``SweepRunner`` was the original top-level execution API: a blocking
``run(specs) -> records`` with per-process memoisation and a
``ProcessPoolExecutor`` fan-out.  That machinery now lives behind
:class:`repro.service.client.Client`, which adds what the batch API
could not express — ``submit`` returning immediately, incremental
streaming via ``map``/``as_completed``, a persistent cross-process
result store, and cooperative cancellation.

This module keeps the old names working as a thin shim: ``SweepRunner``
wraps a private client and preserves the historical contract exactly
(records in submission order, duplicate specs in a batch run once,
``run_one`` answered from the memo cache by identity).  New code
should use :class:`~repro.service.client.Client` directly.
"""

from __future__ import annotations

import warnings
from typing import Sequence

from repro.runner.spec import RunRecord, RunSpec
from repro.service.client import Client, _env_workers, default_client


def default_workers() -> int:
    """Worker count from ``REPRO_WORKERS`` (default 1 = in-process)."""
    return _env_workers()


class SweepRunner:
    """Deprecated: use :class:`repro.service.client.Client`.

    Executes spec batches with memoisation and parallel fan-out; a
    blocking facade over the async client (including the persistent
    ``REPRO_RESULT_STORE`` read-through the client gained).
    """

    def __init__(self, workers: int | None = None, cache: bool = True,
                 client: Client | None = None):
        warnings.warn(
            "SweepRunner is deprecated; submit specs through "
            "repro.service.Client (submit/map/as_completed)",
            DeprecationWarning, stacklevel=2)
        self._client = client if client is not None \
            else Client(workers=workers, cache=cache)

    @property
    def workers(self) -> int | None:
        return self._client.workers

    def run(self, specs: Sequence[RunSpec]) -> list[RunRecord]:
        """Execute ``specs``; returns records in submission order."""
        records = self._client.run(list(specs))
        if self._client._resolved_workers() > 1:
            # Historical contract: the parallel runner opened one pool
            # per batch; don't leave idle worker processes behind.
            self._client.shrink()
        return records

    def run_one(self, spec: RunSpec) -> RunRecord:
        return self._client.run_one(spec)


_DEFAULT_RUNNER: SweepRunner | None = None


def default_runner() -> SweepRunner:
    """Deprecated facade over :func:`repro.service.default_client`:
    the same process-wide record cache, behind the old blocking API."""
    global _DEFAULT_RUNNER
    if _DEFAULT_RUNNER is None:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            _DEFAULT_RUNNER = SweepRunner(client=default_client())
    return _DEFAULT_RUNNER
