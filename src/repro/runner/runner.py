"""The sweep runner: cached, optionally parallel spec execution.

``SweepRunner.run`` takes an ordered list of
:class:`~repro.runner.spec.RunSpec` and returns matching
:class:`~repro.runner.spec.RunRecord` in the same order.  Results are
memoised per spec (deterministic ``cache_key``), so overlapping
sweeps — e.g. the asan/4-µcore point shared by Figs 7a, 9 and 10 —
simulate once per process.

With ``workers > 1`` the uncached specs fan out over a
``ProcessPoolExecutor``; the per-process caches in
:mod:`repro.runner.worker` give each worker the build-once/run-many
benefit, and chunked submission keeps consecutive same-system specs
on the same worker.  Results are deterministic regardless of worker
count because every run starts from a reset session.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Iterable, Sequence

from repro.runner.spec import RunRecord, RunSpec
from repro.runner.worker import execute_spec, execute_specs


def default_workers() -> int:
    """Worker count from ``REPRO_WORKERS`` (default 1 = in-process)."""
    return int(os.environ.get("REPRO_WORKERS", "1"))


class SweepRunner:
    """Executes spec batches with memoisation and parallel fan-out."""

    def __init__(self, workers: int | None = None,
                 cache: bool = True):
        self.workers = workers
        self._cache: dict[str, RunRecord] | None = {} if cache else None

    def _resolved_workers(self, pending: int) -> int:
        workers = self.workers if self.workers is not None \
            else default_workers()
        return max(1, min(workers, pending))

    def run(self, specs: Sequence[RunSpec]) -> list[RunRecord]:
        """Execute ``specs``; returns records in submission order."""
        specs = list(specs)
        keys = [spec.cache_key() for spec in specs]
        records: dict[int, RunRecord] = {}
        pending: list[tuple[int, RunSpec]] = []
        claimed: set[str] = set()
        for index, (spec, key) in enumerate(zip(specs, keys)):
            cached = None if self._cache is None else self._cache.get(key)
            if cached is not None:
                records[index] = cached
            elif key in claimed:
                continue  # duplicate within this batch: run once
            else:
                claimed.add(key)
                pending.append((index, spec))

        if pending:
            workers = self._resolved_workers(len(pending))
            if workers > 1:
                # Group same-system specs so a chunk lands its whole
                # run of builds on one worker (records are re-keyed by
                # index below, so reordering is invisible to callers).
                pending.sort(
                    key=lambda item: repr(item[1].system_key()))
            fresh = self._execute(
                [spec for _, spec in pending], workers)
            for (index, spec), record in zip(pending, fresh):
                records[index] = record
                if self._cache is not None:
                    self._cache[keys[index]] = record

        # Fill batch-internal duplicates from the freshly run copies.
        by_key = {keys[i]: rec for i, rec in records.items()}
        return [records.get(i) or by_key[keys[i]]
                for i in range(len(specs))]

    def run_one(self, spec: RunSpec) -> RunRecord:
        return self.run([spec])[0]

    def _execute(self, specs: list[RunSpec],
                 workers: int) -> list[RunRecord]:
        if workers <= 1:
            return [execute_spec(spec) for spec in specs]
        # Specs arrive sorted by system key.  Each task is one
        # same-system group (split only when a group exceeds the
        # load-balancing target), so a worker pays each expensive
        # system build exactly once per group it receives.
        target = max(1, -(-len(specs) // (workers * 2)))
        chunks: list[list[RunSpec]] = []
        start = 0
        for end in range(1, len(specs) + 1):
            if end == len(specs) or specs[end].system_key() \
                    != specs[start].system_key():
                group = specs[start:end]
                chunks.extend(group[i:i + target]
                              for i in range(0, len(group), target))
                start = end
        with ProcessPoolExecutor(max_workers=workers) as pool:
            batches = pool.map(execute_specs, chunks)
            return [record for batch in batches for record in batch]


_DEFAULT_RUNNER: SweepRunner | None = None


def default_runner() -> SweepRunner:
    """Process-wide shared runner: one result cache for every harness,
    so figures that revisit a configuration reuse its record."""
    global _DEFAULT_RUNNER
    if _DEFAULT_RUNNER is None:
        _DEFAULT_RUNNER = SweepRunner()
    return _DEFAULT_RUNNER
