"""Spec execution with per-process build/trace/baseline caches.

This module is the unit of work shared by the serial backend and the
``ProcessPoolExecutor`` backend: :func:`execute_spec` turns one
:class:`~repro.runner.spec.RunSpec` into a
:class:`~repro.runner.spec.RunRecord`.

The module-level caches are deliberate: under the process pool each
worker imports this module once and keeps its caches for the life of
the pool, so a sweep that runs many traces through the same system
configuration pays the expensive build (filter SRAM programming,
kernel assembly, engine construction) once per worker and resets the
session between traces — the ARTIQ-style "initialise once, run the
batch" idiom.  Everything here is deterministic, so cached and fresh
executions are bit-identical — including across the session's two
cycle-loop implementations (event-driven default, dense under
``REPRO_DENSE_LOOP=1``; see repro.sched and DESIGN.md).

Streamed specs (``RunSpec.stream``) spool their workload to disk as
FGTRACE1 and simulate through a bounded-memory reader.  The spool is
content-addressed: each file is renamed to its sha256 digest, and the
trace cache maps spec workload keys to digests — two specs that
compose identical bytes share one file, and the digest is the
determinism witness the cross-worker tests compare
(``RunRecord.trace_digest``).

On top of the per-process caches sits the *persistent* layer:
:func:`execute_spec` reads through and writes back a
:class:`~repro.service.store.ResultStore` (explicit argument, or the
directory named by ``REPRO_RESULT_STORE``), so identical
configurations are simulated once per store, not once per process.
``REPRO_REQUIRE_STORE_HIT=1`` turns a store miss into a
:class:`~repro.errors.StoreError` — CI's warm-store job uses it to
prove a second pass over a figure grid simulates nothing.  The
``cancel`` hook makes long submissions abortable: the zero-argument
callable is polled at the expensive boundaries (before trace
materialisation, before the baseline run, before the monitored run)
and a True return raises :class:`~repro.errors.RunCancelled`.
"""

from __future__ import annotations

import atexit
import os
import shutil
import tempfile
from pathlib import Path
from typing import TYPE_CHECKING, Callable

from repro.baselines import SCHEMES, instrument_trace
from repro.errors import RunCancelled, StoreError
from repro.core.system import FireGuardSystem
from repro.kernels import make_kernel
from repro.ooo.core import MainCore
from repro.runner.spec import RunRecord, RunSpec
from repro.sim.session import SimulationSession
from repro.trace.attacks import inject_attacks
from repro.trace.generator import TraceGenerator, generate_trace
from repro.trace.profiles import PARSEC_PROFILES
from repro.trace.record import Trace
from repro.trace.scenario import (
    Scenario,
    ScenarioComposer,
    compose_trace,
    make_scenario,
)
from repro.trace.stream import StreamedTrace, TraceWriter

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.service.store import ResultStore

#: ``store=`` sentinel: resolve the store from ``REPRO_RESULT_STORE``.
ENV_STORE = object()

#: ``REPRO_REQUIRE_STORE_HIT=1`` forbids simulation: every spec must be
#: answered by the result store (the warm-rerun assertion).
ENV_REQUIRE_HIT = "REPRO_REQUIRE_STORE_HIT"

# Per-process caches (worker lifetime).
_SESSIONS: dict[tuple, SimulationSession] = {}
_TRACES: dict[tuple, Trace] = {}
_BASELINES: dict[tuple, int] = {}
# Composed scenario traces: never mutated after composition (attacks
# are injected phase by phase inside the compositor), so one copy is
# shared process-wide like clean traces are.
_SCENARIO_TRACES: dict[tuple, tuple[Trace, int]] = {}
# Streamed workloads: workload key -> (digest, injected attack count).
# Files live in the spool directory under their digest, so identical
# workloads reached through different keys share bytes on disk.
_STREAMED: dict[tuple, tuple[str, int]] = {}

_SPOOL_DIR: Path | None = None
_SPOOL_SEQ = 0

# Simulations actually executed by this process (store hits excluded):
# the witness the warm-store tests assert stays at zero.
_SIM_EXECUTIONS = 0

# Lazily resolved REPRO_RESULT_STORE store (False = not resolved yet).
_ENV_STORE_CACHE: "ResultStore | None | bool" = False


def simulations_executed() -> int:
    """How many specs this process simulated (rather than answered
    from the persistent store or a cache)."""
    return _SIM_EXECUTIONS


def _resolve_store(store) -> "ResultStore | None":
    """Normalise the ``store=`` argument: an explicit store instance,
    ``None``/``False`` to disable, or :data:`ENV_STORE` to read
    ``REPRO_RESULT_STORE`` once per process."""
    global _ENV_STORE_CACHE
    if store is not ENV_STORE:
        return None if (store is None or store is False) else store
    if _ENV_STORE_CACHE is False:
        from repro.service.store import ResultStore

        _ENV_STORE_CACHE = ResultStore.from_env()
    return _ENV_STORE_CACHE


def _check_cancel(cancel: Callable[[], bool] | None,
                  spec: RunSpec) -> None:
    if cancel is not None and cancel():
        raise RunCancelled(
            f"run of {spec.benchmark!r} (key "
            f"{spec.cache_key()[:12]}…) was cancelled")


def _spool_dir() -> Path:
    """The per-process trace spool (``REPRO_TRACE_SPOOL`` or a
    temporary directory removed at interpreter exit)."""
    global _SPOOL_DIR
    if _SPOOL_DIR is None:
        configured = os.environ.get("REPRO_TRACE_SPOOL")
        if configured:
            _SPOOL_DIR = Path(configured)
            _SPOOL_DIR.mkdir(parents=True, exist_ok=True)
        else:
            _SPOOL_DIR = Path(tempfile.mkdtemp(prefix="repro-traces-"))
            atexit.register(shutil.rmtree, _SPOOL_DIR,
                            ignore_errors=True)
    return _SPOOL_DIR


def clear_caches() -> None:
    """Drop every per-process cache (tests and memory control), and
    re-resolve the environment store on next use."""
    global _ENV_STORE_CACHE
    _SESSIONS.clear()
    _TRACES.clear()
    _BASELINES.clear()
    _SCENARIO_TRACES.clear()
    _STREAMED.clear()
    _ENV_STORE_CACHE = False


def cached_trace(benchmark: str, seed: int, length: int) -> Trace:
    """The (cached) clean trace for a workload.  Runs never mutate
    traces, so one copy is shared process-wide."""
    key = (benchmark, seed, length)
    trace = _TRACES.get(key)
    if trace is None:
        trace = generate_trace(PARSEC_PROFILES[benchmark], seed=seed,
                               length=length)
        _TRACES[key] = trace
    return trace


def _resolved_scenario(spec: RunSpec) -> Scenario:
    """The spec's scenario instance, rescaled to the spec's length."""
    scenario = spec.scenario
    if isinstance(scenario, str):
        scenario = make_scenario(scenario)
    return scenario.with_length(spec.resolved_length())


def _spool_path(digest: str) -> Path:
    return _spool_dir() / f"{digest}.fgt"


def _admit_spooled(writer_path: Path, digest: str) -> Path:
    """Move a freshly finalized trace into the content-addressed
    spool; identical bytes spooled earlier win."""
    target = _spool_path(digest)
    if target.exists():
        writer_path.unlink()
    else:
        writer_path.replace(target)
    return target


def _stream_scenario(spec: RunSpec) -> tuple[StreamedTrace, int, str]:
    """Compose the spec's scenario to disk (phase-bounded memory) and
    return a reader over the spooled file."""
    global _SPOOL_SEQ
    scenario = _resolved_scenario(spec)
    key = ("scenario", scenario.cache_token(), spec.seed)
    cached = _STREAMED.get(key)
    if cached is None:
        _SPOOL_SEQ += 1
        tmp = _spool_dir() / f"compose-{os.getpid()}-{_SPOOL_SEQ}.fgt"
        composer = ScenarioComposer(scenario, spec.seed)
        with TraceWriter(tmp, name=scenario.name,
                         seed=spec.seed) as writer:
            for records in composer.phases():
                writer.extend(records)
            digest = writer.finalize(**composer.meta_kwargs())
        _admit_spooled(tmp, digest)
        cached = (digest, len(composer.sites))
        _STREAMED[key] = cached
    digest, injected = cached
    return (StreamedTrace(_spool_path(digest), digest=digest),
            injected, digest)


def _stream_plain(spec: RunSpec) -> tuple[StreamedTrace, int, str]:
    """Spool a single-profile workload.

    Clean traces stream straight from the generator (bounded memory);
    attacked traces are injected in memory first — the injector scans
    whole-trace candidate sets — then spooled, so only the simulation
    is bounded.  Long attacked workloads should use scenarios, whose
    phase-wise injection keeps composition bounded too.
    """
    global _SPOOL_SEQ
    length = spec.resolved_length()
    attacks = spec.attacks
    token = None if attacks is None else (
        attacks.kind.name, attacks.count, attacks.pmc_bounds,
        attacks.placement)
    key = ("plain", spec.benchmark, spec.seed, length, token)
    cached = _STREAMED.get(key)
    if cached is None:
        _SPOOL_SEQ += 1
        tmp = _spool_dir() / f"gen-{os.getpid()}-{_SPOOL_SEQ}.fgt"
        injected = 0
        profile = PARSEC_PROFILES[spec.benchmark]
        if attacks is None:
            gen = TraceGenerator(profile, seed=spec.seed, length=length)
            with TraceWriter(tmp, name=profile.name,
                             seed=spec.seed) as writer:
                writer.extend(gen.iter_records())
                digest = writer.finalize(**gen.final_meta())
        else:
            trace = generate_trace(profile, seed=spec.seed,
                                   length=length)
            sites = inject_attacks(trace, attacks.kind, attacks.count,
                                   pmc_bounds=attacks.pmc_bounds,
                                   placement=attacks.placement)
            injected = len(sites)
            with TraceWriter(tmp, name=trace.name,
                             seed=trace.seed) as writer:
                writer.extend(trace.records)
                digest = writer.finalize(
                    objects=trace.objects, heap_base=trace.heap_base,
                    heap_end=trace.heap_end,
                    global_base=trace.global_base,
                    global_end=trace.global_end,
                    warm_end=trace.warm_end)
        _admit_spooled(tmp, digest)
        cached = (digest, injected)
        _STREAMED[key] = cached
    digest, injected = cached
    return (StreamedTrace(_spool_path(digest), digest=digest),
            injected, digest)


def _composed_trace(spec: RunSpec) -> tuple[Trace, int]:
    """The (cached) in-memory composition of the spec's scenario."""
    scenario = _resolved_scenario(spec)
    key = (scenario.cache_token(), spec.seed)
    cached = _SCENARIO_TRACES.get(key)
    if cached is None:
        trace, sites = compose_trace(scenario, spec.seed)
        cached = (trace, len(sites))
        _SCENARIO_TRACES[key] = cached
    return cached


def _trace_for(spec: RunSpec) -> tuple["Trace | StreamedTrace", int, str]:
    """The spec's trace source, injected-attack count, and on-disk
    digest ("" for in-memory workloads).

    Single-profile attacked traces are generated fresh because
    ``inject_attacks`` mutates records in place; scenario traces are
    composed with their attacks baked in and therefore cacheable.
    """
    if spec.scenario is not None:
        if spec.stream:
            return _stream_scenario(spec)
        trace, injected = _composed_trace(spec)
        return trace, injected, ""
    if spec.stream:
        return _stream_plain(spec)
    length = spec.resolved_length()
    if spec.attacks is None:
        return cached_trace(spec.benchmark, spec.seed, length), 0, ""
    trace = generate_trace(PARSEC_PROFILES[spec.benchmark],
                           seed=spec.seed, length=length)
    sites = inject_attacks(trace, spec.attacks.kind, spec.attacks.count,
                           pmc_bounds=spec.attacks.pmc_bounds,
                           placement=spec.attacks.placement)
    return trace, len(sites), ""


def baseline_cycles(benchmark: str, seed: int, length: int) -> int:
    """Unmonitored-core cycles for a clean workload (the slowdown
    denominator), cached process-wide."""
    key = (benchmark, seed, length, None)
    cycles = _BASELINES.get(key)
    if cycles is None:
        cycles = MainCore().run_standalone(
            cached_trace(benchmark, seed, length)).cycles
        _BASELINES[key] = cycles
    return cycles


def _baseline_for(spec: RunSpec, trace) -> int:
    """Baseline cycles for the spec's (possibly attacked or composed)
    trace.  Streamed and in-memory variants of the same workload share
    one cache entry: their record streams are bit-identical."""
    if spec.scenario is not None:
        scenario = _resolved_scenario(spec)
        key = ("scenario", scenario.cache_token(), spec.seed)
    elif spec.attacks is None and not spec.stream:
        return baseline_cycles(spec.benchmark, spec.seed,
                               spec.resolved_length())
    else:
        # Streamed clean specs share the baseline_cycles key (their
        # record stream is bit-identical to the in-memory trace) but
        # run the baseline on the streamed source, so stream=True
        # never materialises the workload just for the denominator.
        attacks = spec.attacks
        token = None if attacks is None else (
            attacks.kind.name, attacks.count, attacks.pmc_bounds,
            attacks.placement)
        key = (spec.benchmark, spec.seed, spec.resolved_length(),
               token)
    cycles = _BASELINES.get(key)
    if cycles is None:
        cycles = MainCore().run_standalone(trace).cycles
        _BASELINES[key] = cycles
    return cycles


def _session_for(spec: RunSpec) -> SimulationSession:
    """A clean session for the spec's system configuration, building
    the system only on first use in this process."""
    key = spec.system_key()
    session = _SESSIONS.get(key)
    if session is None:
        kernels = [make_kernel(name, strategy=spec.strategy)
                   for name in spec.kernels]
        if spec.block_size is not None:
            for kernel in kernels:
                kernel.block_size = spec.block_size
        system = FireGuardSystem(
            kernels,
            config=spec.config,
            engines_per_kernel={name: spec.engines_per_kernel
                                for name in spec.kernels},
            accelerated=spec.accelerated,
            isax_style=spec.isax_style)
        session = system.session()
        _SESSIONS[key] = session
    elif session.dirty:
        session.reset()
    return session


def _run_software(spec: RunSpec, trace: Trace) -> "SystemResult":
    """Run the trace under an LLVM-instrumentation baseline scheme on
    an unmonitored core (Fig 7a's software columns)."""
    from repro.core.system import SystemResult

    scheme = SCHEMES[spec.software]
    instrumented = instrument_trace(trace, scheme)
    core_result = MainCore().run_standalone(instrumented)
    return SystemResult(cycles=core_result.cycles,
                        committed=core_result.committed,
                        time_ns=0.0,
                        stall_backpressure=0)


def execute_spec(spec: RunSpec, store=ENV_STORE,
                 cancel: Callable[[], bool] | None = None) -> RunRecord:
    """Execute one spec in this process and return its record.

    ``store`` — a :class:`~repro.service.store.ResultStore` to read
    through and write back, ``None``/``False`` to disable persistence,
    or the default :data:`ENV_STORE` to honour ``REPRO_RESULT_STORE``.
    ``cancel`` — optional zero-argument callable polled at the
    expensive boundaries; returning True raises
    :class:`~repro.errors.RunCancelled`.
    """
    global _SIM_EXECUTIONS
    _check_cancel(cancel, spec)
    resolved = _resolve_store(store)
    key = spec.cache_key() if resolved is not None else None
    if resolved is not None:
        record = resolved.get(key)
        if record is not None:
            return record
    if os.environ.get(ENV_REQUIRE_HIT) == "1":
        raise StoreError(
            f"{ENV_REQUIRE_HIT}=1 but spec {spec.cache_key()[:12]}… "
            f"({spec.benchmark!r}) missed the result store"
            + ("" if resolved is not None
               else " (no store is configured)"))
    _SIM_EXECUTIONS += 1
    trace, injected, digest = _trace_for(spec)
    _check_cancel(cancel, spec)
    baseline = _baseline_for(spec, trace) if spec.need_baseline else 0
    _check_cancel(cancel, spec)
    if spec.software is not None:
        result = _run_software(spec, trace)
    else:
        result = _session_for(spec).run(trace)
    record = RunRecord(spec=spec, result=result,
                       baseline_cycles=baseline,
                       injected_attacks=injected, trace_digest=digest)
    if resolved is not None:
        resolved.put(key, record)
    return record
