"""Spec execution with per-process build/trace/baseline caches.

This module is the unit of work shared by the serial backend and the
``ProcessPoolExecutor`` backend: :func:`execute_spec` turns one
:class:`~repro.runner.spec.RunSpec` into a
:class:`~repro.runner.spec.RunRecord`.

The module-level caches are deliberate: under the process pool each
worker imports this module once and keeps its caches for the life of
the pool, so a sweep that runs many traces through the same system
configuration pays the expensive build (filter SRAM programming,
kernel assembly, engine construction) once per worker and resets the
session between traces — the ARTIQ-style "initialise once, run the
batch" idiom.  Everything here is deterministic, so cached and fresh
executions are bit-identical — including across the session's two
cycle-loop implementations (event-driven default, dense under
``REPRO_DENSE_LOOP=1``; see repro.sched and DESIGN.md).
"""

from __future__ import annotations

from repro.baselines import SCHEMES, instrument_trace
from repro.core.system import FireGuardSystem
from repro.kernels import make_kernel
from repro.ooo.core import MainCore
from repro.runner.spec import RunRecord, RunSpec
from repro.sim.session import SimulationSession
from repro.trace.attacks import inject_attacks
from repro.trace.generator import generate_trace
from repro.trace.profiles import PARSEC_PROFILES
from repro.trace.record import Trace

# Per-process caches (worker lifetime).
_SESSIONS: dict[tuple, SimulationSession] = {}
_TRACES: dict[tuple, Trace] = {}
_BASELINES: dict[tuple, int] = {}


def clear_caches() -> None:
    """Drop every per-process cache (tests and memory control)."""
    _SESSIONS.clear()
    _TRACES.clear()
    _BASELINES.clear()


def cached_trace(benchmark: str, seed: int, length: int) -> Trace:
    """The (cached) clean trace for a workload.  Runs never mutate
    traces, so one copy is shared process-wide."""
    key = (benchmark, seed, length)
    trace = _TRACES.get(key)
    if trace is None:
        trace = generate_trace(PARSEC_PROFILES[benchmark], seed=seed,
                               length=length)
        _TRACES[key] = trace
    return trace


def _trace_for(spec: RunSpec) -> tuple[Trace, int]:
    """The spec's trace and the number of injected attacks.

    Attacked traces are generated fresh because ``inject_attacks``
    mutates records in place.
    """
    length = spec.resolved_length()
    if spec.attacks is None:
        return cached_trace(spec.benchmark, spec.seed, length), 0
    trace = generate_trace(PARSEC_PROFILES[spec.benchmark],
                           seed=spec.seed, length=length)
    sites = inject_attacks(trace, spec.attacks.kind, spec.attacks.count,
                           pmc_bounds=spec.attacks.pmc_bounds)
    return trace, len(sites)


def baseline_cycles(benchmark: str, seed: int, length: int) -> int:
    """Unmonitored-core cycles for a clean workload (the slowdown
    denominator), cached process-wide."""
    key = (benchmark, seed, length, None)
    cycles = _BASELINES.get(key)
    if cycles is None:
        cycles = MainCore().run_standalone(
            cached_trace(benchmark, seed, length)).cycles
        _BASELINES[key] = cycles
    return cycles


def _baseline_for(spec: RunSpec, trace: Trace) -> int:
    """Baseline cycles for the spec's (possibly attacked) trace."""
    attacks = spec.attacks
    if attacks is None:
        return baseline_cycles(spec.benchmark, spec.seed,
                               spec.resolved_length())
    key = (spec.benchmark, spec.seed, spec.resolved_length(),
           (attacks.kind.name, attacks.count, attacks.pmc_bounds))
    cycles = _BASELINES.get(key)
    if cycles is None:
        cycles = MainCore().run_standalone(trace).cycles
        _BASELINES[key] = cycles
    return cycles


def _session_for(spec: RunSpec) -> SimulationSession:
    """A clean session for the spec's system configuration, building
    the system only on first use in this process."""
    key = spec.system_key()
    session = _SESSIONS.get(key)
    if session is None:
        kernels = [make_kernel(name, strategy=spec.strategy)
                   for name in spec.kernels]
        if spec.block_size is not None:
            for kernel in kernels:
                kernel.block_size = spec.block_size
        system = FireGuardSystem(
            kernels,
            config=spec.config,
            engines_per_kernel={name: spec.engines_per_kernel
                                for name in spec.kernels},
            accelerated=spec.accelerated,
            isax_style=spec.isax_style)
        session = system.session()
        _SESSIONS[key] = session
    elif session.dirty:
        session.reset()
    return session


def _run_software(spec: RunSpec, trace: Trace) -> "SystemResult":
    """Run the trace under an LLVM-instrumentation baseline scheme on
    an unmonitored core (Fig 7a's software columns)."""
    from repro.core.system import SystemResult

    scheme = SCHEMES[spec.software]
    instrumented = instrument_trace(trace, scheme)
    core_result = MainCore().run_standalone(instrumented)
    return SystemResult(cycles=core_result.cycles,
                        committed=core_result.committed,
                        time_ns=0.0,
                        stall_backpressure=0)


def execute_spec(spec: RunSpec) -> RunRecord:
    """Execute one spec in this process and return its record."""
    trace, injected = _trace_for(spec)
    baseline = _baseline_for(spec, trace) if spec.need_baseline else 0
    if spec.software is not None:
        result = _run_software(spec, trace)
    else:
        result = _session_for(spec).run(trace)
    return RunRecord(spec=spec, result=result, baseline_cycles=baseline,
                     injected_attacks=injected)


def execute_specs(specs: list[RunSpec]) -> list[RunRecord]:
    """Execute a batch of specs in order in this process.

    The pool backend submits one same-system group per task, so the
    whole group shares this worker's built system via session reset.
    """
    return [execute_spec(spec) for spec in specs]
