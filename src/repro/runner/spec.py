"""Declarative run specifications (DESIGN.md: runner layer).

A :class:`RunSpec` names everything that determines one simulation's
outcome — benchmark, kernel set, configuration, seed, attack plan —
without holding any simulator object, so specs are hashable, picklable
across worker processes, and stable cache keys.  :func:`sweep` builds
grids of specs declaratively; :class:`RunRecord` is the structured
result the runner hands back.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field, replace
from itertools import product
from typing import Any, Iterable

from repro.baselines import SCHEMES
from repro.core.config import FireGuardConfig
from repro.core.isax import IsaxStyle
from repro.core.system import SystemResult
from repro.errors import ConfigError
from repro.kernels import KERNELS
from repro.kernels.base import KernelStrategy
from repro.trace.attacks import AttackPlan
from repro.trace.profiles import PARSEC_PROFILES
from repro.trace.scenario import SCENARIOS, Scenario

__all__ = ["AttackPlan", "RunRecord", "RunSpec", "sweep", "trace_length"]

DEFAULT_TRACE_LEN = 8000
DEFAULT_SEED = 7


def trace_length() -> int:
    """Default trace length, overridable via ``REPRO_TRACE_LEN``."""
    return int(os.environ.get("REPRO_TRACE_LEN", DEFAULT_TRACE_LEN))


@dataclass(frozen=True)
class RunSpec:
    """One simulation to run: workload × kernel set × configuration.

    ``kernels`` may be empty only when ``software`` names an
    LLVM-instrumentation baseline scheme (the trace is instrumented
    and run on an unmonitored core instead of building a FireGuard
    system).

    ``scenario`` replaces the single-profile workload with a
    multi-phase :class:`~repro.trace.scenario.Scenario` (an instance,
    or a library name resolved in the worker); ``benchmark`` then only
    labels the row, and phase lengths are rescaled so the composed
    trace totals ``resolved_length()`` records.  Scenario phases carry
    their own attack mixes, so ``attacks`` must stay unset.

    ``stream`` runs the workload through the on-disk FGTRACE1
    pipeline: the trace is spooled (composed phase by phase for
    scenarios, streamed straight from the generator otherwise), cached
    content-addressed by its digest, and the simulation consumes a
    bounded-memory reader.  Results are bit-identical to ``stream =
    False``; the differential tests in
    ``tests/test_stream_identity.py`` hold that line.
    """

    benchmark: str
    kernels: tuple[str, ...] = ()
    engines_per_kernel: int = 4
    accelerated: frozenset[str] = frozenset()
    strategy: KernelStrategy = KernelStrategy.HYBRID
    isax_style: IsaxStyle = IsaxStyle.MA_STAGE
    config: FireGuardConfig = field(default_factory=FireGuardConfig)
    block_size: int | None = None
    seed: int = DEFAULT_SEED
    length: int | None = None
    attacks: AttackPlan | None = None
    software: str | None = None
    need_baseline: bool = True
    scenario: Scenario | str | None = None
    stream: bool = False

    def __post_init__(self) -> None:
        if not self.kernels and self.software is None:
            raise ConfigError(
                "RunSpec needs kernels or a software scheme")
        if self.kernels and self.software is not None:
            raise ConfigError(
                "RunSpec cannot mix kernels with a software scheme")
        if self.scenario is not None and self.attacks is not None:
            raise ConfigError(
                "scenario phases carry their own attack plans; "
                "leave RunSpec.attacks unset")
        if self.stream and self.software is not None:
            raise ConfigError(
                "software baseline schemes instrument in memory and "
                "cannot run streamed; use stream=False")
        if self.engines_per_kernel <= 0:
            raise ConfigError("engines_per_kernel must be positive")
        # Normalise collection types so equal specs hash equally.
        if not isinstance(self.kernels, tuple):
            object.__setattr__(self, "kernels", tuple(self.kernels))
        if not isinstance(self.accelerated, frozenset):
            object.__setattr__(self, "accelerated",
                               frozenset(self.accelerated))
        # Name lookups fail here, at construction, rather than minutes
        # later inside a sweep worker.
        for name in self.kernels:
            if name not in KERNELS:
                raise ConfigError(
                    f"RunSpec.kernels: unknown kernel {name!r}; "
                    f"available: {sorted(KERNELS)}")
        if self.software is not None and self.software not in SCHEMES:
            raise ConfigError(
                f"RunSpec.software: unknown instrumentation scheme "
                f"{self.software!r}; available: {sorted(SCHEMES)}")
        if isinstance(self.scenario, str) \
                and self.scenario not in SCENARIOS:
            raise ConfigError(
                f"RunSpec.scenario: unknown scenario "
                f"{self.scenario!r}; available: {sorted(SCENARIOS)}")
        if self.scenario is None \
                and self.benchmark not in PARSEC_PROFILES:
            raise ConfigError(
                f"RunSpec.benchmark: unknown workload "
                f"{self.benchmark!r}; available: "
                f"{sorted(PARSEC_PROFILES)} (or set scenario=)")

    # -- derived keys ------------------------------------------------------
    def resolved_length(self) -> int:
        """Trace length with the environment default applied."""
        return self.length if self.length is not None else trace_length()

    def system_key(self) -> tuple:
        """Everything that shapes the *built* system (not the trace).

        Specs sharing a system key can reuse one built
        ``FireGuardSystem`` through session reset — the build-once /
        run-many contract the worker exploits.
        """
        return (self.kernels, self.engines_per_kernel,
                tuple(sorted(self.accelerated)), self.strategy.value,
                self.isax_style.value, self.config, self.block_size)

    def scenario_token(self) -> tuple | None:
        """A stable identity for the spec's scenario (name reference
        or inline definition), or None."""
        if self.scenario is None:
            return None
        if isinstance(self.scenario, str):
            return ("name", self.scenario)
        return ("inline",) + self.scenario.cache_token()

    def _canonical(self) -> tuple:
        attacks = None
        if self.attacks is not None:
            attacks = (self.attacks.kind.name, self.attacks.count,
                       self.attacks.pmc_bounds,
                       self.attacks.placement)
        return (self.benchmark, self.system_key(), self.seed,
                self.resolved_length(), attacks, self.software,
                self.need_baseline, self.scenario_token(), self.stream)

    def cache_key(self) -> str:
        """Deterministic digest of the spec (stable across processes
        and hash randomisation) for the runner's per-spec cache."""
        return hashlib.sha256(
            repr(self._canonical()).encode()).hexdigest()

    def with_(self, **changes: Any) -> "RunSpec":
        """A copy with fields replaced (grid-building convenience)."""
        return replace(self, **changes)


@dataclass(frozen=True)
class RunRecord:
    """Structured outcome of one executed spec.

    ``trace_digest`` is the sha256 of the on-disk FGTRACE1 file for
    streamed specs ("" otherwise): the determinism tests compare it
    across generator runs and worker processes.
    """

    spec: RunSpec
    result: SystemResult
    baseline_cycles: int = 0
    injected_attacks: int = 0
    trace_digest: str = ""

    @property
    def slowdown(self) -> float:
        """Monitored cycles over unmonitored-baseline cycles (the
        ratio every figure reports)."""
        if self.baseline_cycles <= 0:
            raise ConfigError(
                "spec was executed with need_baseline=False")
        return self.result.cycles / self.baseline_cycles

    @property
    def detected_attacks(self) -> int:
        return len(self.result.detections)


_LIST_FIELDS = {f for f in RunSpec.__dataclass_fields__}


def sweep(benchmarks: Iterable[str], **axes: Iterable[Any] | Any,
          ) -> list[RunSpec]:
    """Build the cartesian grid of specs over ``benchmarks`` × axes.

    Each keyword is a ``RunSpec`` field; list/tuple values become sweep
    axes, scalars are fixed.  Axes expand in keyword order with the
    benchmark as the outermost axis (the runner itself groups specs by
    system configuration before fanning out)::

        sweep(("swaptions", "dedup"),
              kernels=[("pmc",), ("asan",)],
              engines_per_kernel=[2, 4, 8])      # 2*2*3 = 12 specs
    """
    names: list[str] = []
    values: list[list[Any]] = []
    fixed: dict[str, Any] = {}
    for name, value in axes.items():
        if name not in _LIST_FIELDS:
            raise ConfigError(f"unknown RunSpec field {name!r}")
        if isinstance(value, (list, tuple)) and name not in (
                "kernels", "accelerated"):
            names.append(name)
            values.append(list(value))
        elif name in ("kernels", "accelerated") and value \
                and isinstance(value, (list, tuple)) \
                and isinstance(next(iter(value)), (list, tuple,
                                                   frozenset, set)):
            # A list of kernel sets / accelerated sets is an axis.
            names.append(name)
            values.append(list(value))
        else:
            fixed[name] = value
    specs = []
    for benchmark in benchmarks:
        for combo in product(*values):
            specs.append(RunSpec(benchmark=benchmark,
                                 **dict(zip(names, combo)), **fixed))
    return specs
