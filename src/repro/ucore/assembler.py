"""Two-pass assembler for µcore (guardian-kernel) programs.

Syntax, one instruction per line::

    # comment
    loop:                       # label
        qcount  t0, 0           # ISAX: packets in queue 0
        beqz    t0, loop        # pseudo: beq t0, zero, loop
        qpop    a0, 0           # pop metadata word (bit offset 0)
        andi    t1, a0, 1       # test the load flag
        bnez    t1, handle_load
        j       loop            # pseudo: jal zero, loop

Registers use ABI names (zero/ra/sp/t0-t6/a0-a7/s0-s11) or xN.
Immediates are decimal or 0x-hex, optionally negative.  Memory
operands are written ``imm(reg)``.  Branch/jump targets are labels.
"""

from __future__ import annotations

import re

from repro.errors import AssemblyError
from repro.isa.registers import reg_number
from repro.ucore.isa import Op, UInstr

_THREE_REG = {
    "add": Op.ADD, "sub": Op.SUB, "and": Op.AND, "or": Op.OR,
    "xor": Op.XOR, "sll": Op.SLL, "srl": Op.SRL, "sra": Op.SRA,
    "slt": Op.SLT, "sltu": Op.SLTU, "mul": Op.MUL, "div": Op.DIV,
}
_TWO_REG_IMM = {
    "addi": Op.ADDI, "andi": Op.ANDI, "ori": Op.ORI, "xori": Op.XORI,
    "slli": Op.SLLI, "srli": Op.SRLI, "slti": Op.SLTI,
}
_LOADS = {"ld": Op.LD, "lw": Op.LW, "lb": Op.LB, "lbu": Op.LBU}
_STORES = {"sd": Op.SD, "sw": Op.SW, "sb": Op.SB}
_BRANCHES = {
    "beq": Op.BEQ, "bne": Op.BNE, "blt": Op.BLT, "bge": Op.BGE,
    "bltu": Op.BLTU, "bgeu": Op.BGEU,
}
_QUEUE_RD_IMM = {
    "qcount": Op.QCOUNT, "qtop": Op.QTOP, "qpop": Op.QPOP,
    "qrecent": Op.QRECENT, "pcount": Op.PCOUNT,
}

_LABEL_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


def _parse_imm(text: str, line: int) -> int:
    try:
        return int(text, 0)
    except ValueError:
        raise AssemblyError(f"bad immediate {text!r}", line) from None


def _parse_reg(text: str, line: int) -> int:
    try:
        return reg_number(text)
    except Exception:
        raise AssemblyError(f"bad register {text!r}", line) from None


def _parse_mem_operand(text: str, line: int) -> tuple[int, int]:
    """``imm(reg)`` → (imm, reg)."""
    m = re.fullmatch(r"(-?(?:0x)?[0-9a-fA-F]+)?\((\w+)\)", text.strip())
    if not m:
        raise AssemblyError(f"bad memory operand {text!r}", line)
    imm = _parse_imm(m.group(1), line) if m.group(1) else 0
    return imm, _parse_reg(m.group(2), line)


def _tokenize(source: str):
    """Yield (line_number, label or None, mnemonic or None, operands)."""
    for line_no, raw in enumerate(source.splitlines(), start=1):
        code = raw.split("#", 1)[0].strip()
        if not code:
            continue
        label = None
        if ":" in code:
            label_part, code = code.split(":", 1)
            label = label_part.strip()
            if not _LABEL_RE.match(label):
                raise AssemblyError(f"bad label {label!r}", line_no)
            code = code.strip()
        if not code:
            yield line_no, label, None, []
            continue
        parts = code.split(None, 1)
        mnemonic = parts[0].lower()
        operands = []
        if len(parts) > 1:
            operands = [p.strip() for p in parts[1].split(",")]
        yield line_no, label, mnemonic, operands


def assemble(source: str) -> list[UInstr]:
    """Assemble µcore assembly text into a program."""
    # Pass 1: label addresses (instruction indices).
    labels: dict[str, int] = {}
    entries: list[tuple[int, str, list[str]]] = []
    for line_no, label, mnemonic, operands in _tokenize(source):
        if label is not None:
            if label in labels:
                raise AssemblyError(f"duplicate label {label!r}", line_no)
            labels[label] = len(entries)
        if mnemonic is not None:
            entries.append((line_no, mnemonic, operands))

    # Pass 2: encode.
    program: list[UInstr] = []
    for index, (line, m, ops) in enumerate(entries):
        program.append(_encode(line, index, m, ops, labels))
    return program


def _target(name: str, labels: dict[str, int], line: int) -> int:
    if name not in labels:
        raise AssemblyError(f"unknown label {name!r}", line)
    return labels[name]


def _expect(ops: list[str], count: int, mnemonic: str, line: int) -> None:
    if len(ops) != count:
        raise AssemblyError(
            f"{mnemonic} expects {count} operand(s), got {len(ops)}", line)


def _encode(line: int, index: int, m: str, ops: list[str],
            labels: dict[str, int]) -> UInstr:
    if m in _THREE_REG:
        _expect(ops, 3, m, line)
        return UInstr(_THREE_REG[m], rd=_parse_reg(ops[0], line),
                      rs1=_parse_reg(ops[1], line),
                      rs2=_parse_reg(ops[2], line))
    if m in _TWO_REG_IMM:
        _expect(ops, 3, m, line)
        return UInstr(_TWO_REG_IMM[m], rd=_parse_reg(ops[0], line),
                      rs1=_parse_reg(ops[1], line),
                      imm=_parse_imm(ops[2], line))
    if m == "li":
        _expect(ops, 2, m, line)
        return UInstr(Op.LI, rd=_parse_reg(ops[0], line),
                      imm=_parse_imm(ops[1], line))
    if m == "mv":
        _expect(ops, 2, m, line)
        return UInstr(Op.ADDI, rd=_parse_reg(ops[0], line),
                      rs1=_parse_reg(ops[1], line), imm=0)
    if m in _LOADS:
        _expect(ops, 2, m, line)
        imm, base = _parse_mem_operand(ops[1], line)
        return UInstr(_LOADS[m], rd=_parse_reg(ops[0], line), rs1=base,
                      imm=imm)
    if m in _STORES:
        _expect(ops, 2, m, line)
        imm, base = _parse_mem_operand(ops[1], line)
        return UInstr(_STORES[m], rs1=base, rs2=_parse_reg(ops[0], line),
                      imm=imm)
    if m in _BRANCHES:
        _expect(ops, 3, m, line)
        return UInstr(_BRANCHES[m], rs1=_parse_reg(ops[0], line),
                      rs2=_parse_reg(ops[1], line),
                      imm=_target(ops[2], labels, line))
    if m == "beqz":
        _expect(ops, 2, m, line)
        return UInstr(Op.BEQ, rs1=_parse_reg(ops[0], line), rs2=0,
                      imm=_target(ops[1], labels, line))
    if m == "bnez":
        _expect(ops, 2, m, line)
        return UInstr(Op.BNE, rs1=_parse_reg(ops[0], line), rs2=0,
                      imm=_target(ops[1], labels, line))
    if m == "j":
        _expect(ops, 1, m, line)
        return UInstr(Op.JAL, rd=0, imm=_target(ops[0], labels, line))
    if m == "jal":
        _expect(ops, 2, m, line)
        return UInstr(Op.JAL, rd=_parse_reg(ops[0], line),
                      imm=_target(ops[1], labels, line))
    if m == "jalr":
        _expect(ops, 3, m, line)
        return UInstr(Op.JALR, rd=_parse_reg(ops[0], line),
                      rs1=_parse_reg(ops[1], line),
                      imm=_parse_imm(ops[2], line))
    if m == "ret":
        _expect(ops, 0, m, line)
        return UInstr(Op.JALR, rd=0, rs1=1, imm=0)
    if m in _QUEUE_RD_IMM:
        if m == "pcount":
            _expect(ops, 1, m, line)
            return UInstr(Op.PCOUNT, rd=_parse_reg(ops[0], line))
        _expect(ops, 2, m, line)
        return UInstr(_QUEUE_RD_IMM[m], rd=_parse_reg(ops[0], line),
                      imm=_parse_imm(ops[1], line))
    if m == "ppop":
        _expect(ops, 1, m, line)
        return UInstr(Op.PPOP, rd=_parse_reg(ops[0], line))
    if m == "qpush":
        _expect(ops, 1, m, line)
        return UInstr(Op.QPUSH, rs1=_parse_reg(ops[0], line))
    if m == "qdest":
        _expect(ops, 1, m, line)
        return UInstr(Op.QDEST, rs1=_parse_reg(ops[0], line))
    if m == "alert":
        _expect(ops, 1, m, line)
        return UInstr(Op.ALERT, rs1=_parse_reg(ops[0], line))
    if m == "alerti":
        _expect(ops, 1, m, line)
        return UInstr(Op.ALERTI, imm=_parse_imm(ops[0], line))
    if m == "csrr":
        _expect(ops, 2, m, line)
        csr = ops[1].lower()
        csr_ids = {"id": 0, "engineid": 0}
        if csr not in csr_ids:
            raise AssemblyError(f"unknown CSR {ops[1]!r}", line)
        return UInstr(Op.CSRR, rd=_parse_reg(ops[0], line),
                      imm=csr_ids[csr])
    if m == "nop":
        return UInstr(Op.NOP)
    if m == "halt":
        return UInstr(Op.HALT)
    raise AssemblyError(f"unknown mnemonic {m!r}", line)
