"""The µcore: functional + timing ISS for analysis engines.

A Rocket-like 5-stage in-order scalar pipeline at 1.6 GHz (Table II).
The model executes guardian-kernel programs functionally and charges
cycle costs that reproduce the pipeline behaviours the paper's
programming-model study (Fig 11) depends on:

* late-result (MA-stage) producers — loads and ISAX queue ops — cost a
  bubble when the very next instruction consumes the result;
* taken branches cost a redirect bubble;
* the ISAX interface style (post-commit vs MA-stage) sets queue-op
  cost via :class:`repro.core.isax.IsaxInterface`;
* D-cache misses stall for the shared-L2/LLC/DRAM latency, with a
  small TLB whose walks produce the Fig 8 tail latencies.

Blocking semantics: ``qpop``/``qtop``/``ppop`` on an empty queue and
``qpush`` into a full output queue stall the pipeline until the
operation can complete — the hardware handshake the message-queue
controller implements.

The per-cycle interpreter itself lives in
:mod:`repro.hotpath.ucore_kernel` (DESIGN.md: hotpath layer): this
class owns the engine's flat state arrays, decodes the program once
through the digest-keyed cache in :mod:`repro.hotpath.decode`, and
delegates :meth:`tick` to the active kernel variant — interpreted by
default, the C-compiled build under ``REPRO_BACKEND=compiled``.
"""

from __future__ import annotations

from typing import Callable

from repro.core.config import FireGuardConfig
from repro.core.isax import IsaxInterface, IsaxStyle
from repro.core.msgqueue import QueueController
from repro.errors import SimulationError
from repro.hotpath import ucore_kernel as _uk
from repro.hotpath.decode import decode_ucore_program
from repro.mem.cache import CacheParams, SetAssocCache
from repro.mem.sparse import SparseMemory
from repro.mem.tlb import Tlb, TlbParams
from repro.utils.stats import Instrumented
from repro.ucore.isa import UInstr

_MASK64 = (1 << 64) - 1

AlertCallback = Callable[[int, int, int], None]
"""(engine_id, alert_code, low_cycle)."""


class UcoreMemory:
    """Shared memory side for all µcores: one functional store, one
    shared timing L2, and fixed deeper latencies (Fig 6: the µcores
    hang off the shared L2/memory)."""

    def __init__(self, config: FireGuardConfig,
                 data: SparseMemory | None = None):
        self.config = config
        self.data = data if data is not None else SparseMemory()
        self.l2 = SetAssocCache(CacheParams(
            name="uL2", size_bytes=512 * 1024, ways=8,
            hit_latency=config.ucore_l2_latency, mshrs=12))
        self.llc = SetAssocCache(CacheParams(
            name="uLLC", size_bytes=4 * 1024 * 1024, ways=8,
            hit_latency=config.ucore_llc_latency, mshrs=8))

    def reset(self) -> None:
        """Fresh shared memory: new functional store (shadow memory,
        quarantine lists and shadow stacks from the previous trace must
        not leak into the next run) and cold shared caches."""
        self.data = SparseMemory()
        self.l2.reset()
        self.llc.reset()

    def miss_latency(self, addr: int, low_cycle: int) -> int:
        """Latency beyond the µcore's L1 for a missing line."""
        latency = self.config.ucore_l2_latency
        hit, mshr = self.l2.lookup(addr, low_cycle,
                                   self.config.ucore_llc_latency)
        latency += mshr
        if hit:
            return latency
        latency += self.config.ucore_llc_latency
        hit, mshr = self.llc.lookup(addr, low_cycle,
                                    self.config.ucore_dram_latency)
        latency += mshr
        if hit:
            return latency
        return latency + self.config.ucore_dram_latency


class MicroCore(Instrumented):
    """One analysis engine executing a guardian-kernel program.

    Architectural and timing state is flattened into ``self._st`` (a
    ``list[int]`` indexed by the slot constants in
    :mod:`repro.hotpath.ucore_kernel`) and ``self.regs``; the familiar
    attributes (``pc``, ``halted``, ``blocked``, ``stat_*``) are
    read/write views over those slots, so tests and tools keep their
    surface while the per-cycle path runs on flat ints.
    """

    SPIN_IDLE_WINDOW = 64

    def __init__(self, engine_id: int, program: list[UInstr],
                 controller: QueueController, memory: UcoreMemory,
                 config: FireGuardConfig,
                 isax: IsaxInterface | None = None,
                 on_alert: AlertCallback | None = None,
                 name: str = "ucore"):
        if not program:
            raise SimulationError(f"{name}: empty program")
        self.engine_id = engine_id
        self.program = program
        self.controller = controller
        self.memory = memory
        self.config = config
        self.isax = isax or IsaxInterface(IsaxStyle.MA_STAGE)
        self.on_alert = on_alert
        self.name = name

        self.regs = [0] * 32
        self.regs[2] = 0x0000_7000_0000_0000 + engine_id * 0x1_0000  # sp

        self.l1d = SetAssocCache(CacheParams(
            name=f"{name}{engine_id}.L1D",
            size_bytes=config.ucore_l1_kb * 1024,
            ways=config.ucore_l1_ways, hit_latency=1, mshrs=2))
        self.tlb = Tlb(TlbParams(
            name=f"{name}{engine_id}.TLB",
            entries=config.ucore_tlb_entries,
            walk_latency=config.ucore_tlb_walk))

        self._presets: dict[int, int] = {}

        # Flat per-engine state + the decoded program (digest-cached:
        # every engine built from the same assembled kernel shares one
        # decode).
        self._decoded = decode_ucore_program(program)
        self._prog = self._decoded.prog
        st = [0] * _uk.ST_LEN
        st[_uk.ENGINE_ID] = engine_id
        st[_uk.NUM_ENGINES] = max(1, config.num_engines)
        st[_uk.PROG_LEN] = len(program)
        st[_uk.L2_LAT] = config.ucore_l2_latency
        self._st = st
        self._kernel = _uk
        self._tick = _uk.ucore_tick

    # -- kernel selection --------------------------------------------------
    def set_kernel(self, kernel) -> None:
        """Select the hotpath kernel module driving :meth:`tick` —
        the interpreted :mod:`repro.hotpath.ucore_kernel` (default) or
        its compiled build (``repro.hotpath.install_hotpath``).  Both
        read the same flat state, so switching is always safe."""
        self._kernel = kernel
        self._tick = kernel.ucore_tick

    # -- state views (flat slots behind the classic attribute surface) ----
    @property
    def pc(self) -> int:
        return self._st[_uk.PC]

    @pc.setter
    def pc(self, value: int) -> None:
        self._st[_uk.PC] = value

    @property
    def halted(self) -> bool:
        return self._st[_uk.HALTED] != 0

    @halted.setter
    def halted(self, value: bool) -> None:
        self._st[_uk.HALTED] = 1 if value else 0

    @property
    def blocked(self) -> bool:
        return self._st[_uk.BLOCKED] != 0

    @blocked.setter
    def blocked(self, value: bool) -> None:
        self._st[_uk.BLOCKED] = 1 if value else 0

    @property
    def stat_instructions(self) -> int:
        return self._st[_uk.STAT_INSTR]

    @stat_instructions.setter
    def stat_instructions(self, value: int) -> None:
        self._st[_uk.STAT_INSTR] = value

    @property
    def stat_stall_cycles(self) -> int:
        return self._st[_uk.STAT_STALL]

    @stat_stall_cycles.setter
    def stat_stall_cycles(self, value: int) -> None:
        self._st[_uk.STAT_STALL] = value

    @property
    def stat_pops(self) -> int:
        return self._st[_uk.STAT_POPS]

    @stat_pops.setter
    def stat_pops(self, value: int) -> None:
        self._st[_uk.STAT_POPS] = value

    @property
    def stat_alerts(self) -> int:
        return self._st[_uk.STAT_ALERTS]

    @stat_alerts.setter
    def stat_alerts(self, value: int) -> None:
        self._st[_uk.STAT_ALERTS] = value

    def stats(self) -> dict[str, int]:
        """Counters live in flat slots, not ``stat_*`` attributes, so
        the :class:`Instrumented` ``vars()`` scan cannot see them."""
        st = self._st
        return {
            "instructions": st[_uk.STAT_INSTR],
            "stall_cycles": st[_uk.STAT_STALL],
            "pops": st[_uk.STAT_POPS],
            "alerts": st[_uk.STAT_ALERTS],
        }

    def reset_stats(self) -> None:
        st = self._st
        st[_uk.STAT_INSTR] = 0
        st[_uk.STAT_STALL] = 0
        st[_uk.STAT_POPS] = 0
        st[_uk.STAT_ALERTS] = 0

    # -- setup -------------------------------------------------------------
    def preset_registers(self, values: dict[int, int]) -> None:
        """Load kernel configuration registers before the run.

        The values are remembered so :meth:`reset` can restore them."""
        for reg, value in values.items():
            if not 0 < reg < 32:
                raise SimulationError(f"cannot preset register x{reg}")
            self.regs[reg] = value & _MASK64
            self._presets[reg] = value & _MASK64

    def reset(self) -> None:
        """Power-on state with the program and presets retained: the
        session reuses one assembled engine across many traces."""
        self.regs = [0] * 32
        self.regs[2] = 0x0000_7000_0000_0000 + self.engine_id * 0x1_0000
        for reg, value in self._presets.items():
            self.regs[reg] = value
        self.l1d.reset()
        self.tlb.reset()
        st = self._st
        st[_uk.PC] = 0
        st[_uk.HALTED] = 0
        st[_uk.BLOCKED] = 0
        st[_uk.STALL_UNTIL] = 0
        st[_uk.PREV_QOP] = 0
        st[_uk.SINCE_EFFECT] = 0
        st[_uk.BLOCKED_ON] = _uk.WAIT_NONE
        self.reset_stats()

    # -- idle / drain detection --------------------------------------------
    def idle_at(self, low_cycle: int) -> bool:
        """True when the µcore has no work it could make progress on —
        either blocked on an empty queue, halted, or spinning a poll
        loop with nothing to poll."""
        st = self._st
        if st[_uk.HALTED]:
            return True
        ctrl = self.controller
        if not ctrl.input_queue.empty or not ctrl.peer_queue.empty:
            return False
        if st[_uk.BLOCKED]:
            return True
        # Spinning: many executed instructions with no architectural
        # effect (pop/push/store/alert) — a poll loop with nothing to
        # poll.  Counting instructions rather than cycles keeps long
        # D$-miss stalls from looking like idleness (a kernel doing
        # real work issues an effect at least every few instructions).
        return st[_uk.SINCE_EFFECT] > self.SPIN_IDLE_WINDOW

    def can_skip(self) -> bool:
        """True when ``tick`` is provably a no-op this cycle, so the
        session's low-domain loop may skip the engine entirely.

        Unlike :meth:`idle_at` (a drain heuristic that also covers
        spin loops), this is conservative: only a halted engine, or one
        blocked on a queue whose state cannot let the retried
        instruction complete, qualifies.  Blocked engines skip stall
        accounting while parked; architectural state is unaffected."""
        st = self._st
        if st[_uk.HALTED]:
            return True
        if not st[_uk.BLOCKED]:
            return False
        ctrl = self.controller
        waiting = st[_uk.BLOCKED_ON]
        if waiting == _uk.WAIT_INPUT:
            return ctrl.input_queue.empty
        if waiting == _uk.WAIT_PEER:
            return ctrl.peer_queue.empty
        if waiting == _uk.WAIT_OUTPUT:
            return not ctrl.can_push()
        return False

    def next_event_cycle(self, now: int) -> int | None:
        """Wakeable protocol (:mod:`repro.sched`): when ``tick`` next
        needs to run.

        A halted engine never does; a blocked one sleeps until the
        queue transition that can unblock it posts an explicit wake
        (the queue hooks the session wires up); a stalled engine wakes
        when its multi-cycle instruction completes; a runnable engine
        must tick every cycle.  Sleeping through a stall skips only the
        per-cycle stall accounting (``stat_stall_cycles``), never
        architectural state — the same contract ``can_skip`` gives the
        dense loop for blocked engines.
        """
        st = self._st
        if st[_uk.HALTED] or st[_uk.BLOCKED]:
            return None
        stall_until = st[_uk.STALL_UNTIL]
        if stall_until > now + 1:
            return stall_until
        return now + 1

    # -- execution ---------------------------------------------------------
    def tick(self, low_cycle: int) -> None:
        """Advance at most one instruction at this low-domain cycle."""
        self._tick(self, self._st, self.regs, self._prog, low_cycle)

    def config_engines(self) -> range:
        return range(self.config.num_engines)
