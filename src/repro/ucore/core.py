"""The µcore: functional + timing ISS for analysis engines.

A Rocket-like 5-stage in-order scalar pipeline at 1.6 GHz (Table II).
The model executes guardian-kernel programs functionally and charges
cycle costs that reproduce the pipeline behaviours the paper's
programming-model study (Fig 11) depends on:

* late-result (MA-stage) producers — loads and ISAX queue ops — cost a
  bubble when the very next instruction consumes the result;
* taken branches cost a redirect bubble;
* the ISAX interface style (post-commit vs MA-stage) sets queue-op
  cost via :class:`repro.core.isax.IsaxInterface`;
* D-cache misses stall for the shared-L2/LLC/DRAM latency, with a
  small TLB whose walks produce the Fig 8 tail latencies.

Blocking semantics: ``qpop``/``qtop``/``ppop`` on an empty queue and
``qpush`` into a full output queue stall the pipeline until the
operation can complete — the hardware handshake the message-queue
controller implements.
"""

from __future__ import annotations

from typing import Callable

from repro.core.config import FireGuardConfig
from repro.core.isax import IsaxInterface, IsaxStyle
from repro.core.msgqueue import QueueController
from repro.errors import SimulationError
from repro.mem.cache import CacheParams, SetAssocCache
from repro.mem.sparse import SparseMemory
from repro.mem.tlb import Tlb, TlbParams
from repro.utils.stats import Instrumented
from repro.ucore.isa import (
    BRANCH_OPS,
    LATE_RESULT_OPS,
    LOAD_OPS,
    MEM_SIZES,
    QUEUE_OPS,
    STORE_OPS,
    Op,
    UInstr,
)

_MASK64 = (1 << 64) - 1

AlertCallback = Callable[[int, int, int], None]
"""(engine_id, alert_code, low_cycle)."""


def _signed(value: int) -> int:
    return (value ^ (1 << 63)) - (1 << 63)


class UcoreMemory:
    """Shared memory side for all µcores: one functional store, one
    shared timing L2, and fixed deeper latencies (Fig 6: the µcores
    hang off the shared L2/memory)."""

    def __init__(self, config: FireGuardConfig,
                 data: SparseMemory | None = None):
        self.config = config
        self.data = data if data is not None else SparseMemory()
        self.l2 = SetAssocCache(CacheParams(
            name="uL2", size_bytes=512 * 1024, ways=8,
            hit_latency=config.ucore_l2_latency, mshrs=12))
        self.llc = SetAssocCache(CacheParams(
            name="uLLC", size_bytes=4 * 1024 * 1024, ways=8,
            hit_latency=config.ucore_llc_latency, mshrs=8))

    def reset(self) -> None:
        """Fresh shared memory: new functional store (shadow memory,
        quarantine lists and shadow stacks from the previous trace must
        not leak into the next run) and cold shared caches."""
        self.data = SparseMemory()
        self.l2.reset()
        self.llc.reset()

    def miss_latency(self, addr: int, low_cycle: int) -> int:
        """Latency beyond the µcore's L1 for a missing line."""
        latency = self.config.ucore_l2_latency
        hit, mshr = self.l2.lookup(addr, low_cycle,
                                   self.config.ucore_llc_latency)
        latency += mshr
        if hit:
            return latency
        latency += self.config.ucore_llc_latency
        hit, mshr = self.llc.lookup(addr, low_cycle,
                                    self.config.ucore_dram_latency)
        latency += mshr
        if hit:
            return latency
        return latency + self.config.ucore_dram_latency


class MicroCore(Instrumented):
    """One analysis engine executing a guardian-kernel program."""

    SPIN_IDLE_WINDOW = 64

    # What a blocked engine is waiting for (drives the session's
    # idle-skip: a blocked engine need not tick until its wait can
    # possibly resolve).
    _WAIT_INPUT = "input"
    _WAIT_PEER = "peer"
    _WAIT_OUTPUT = "output"

    # Instruction dispatch kinds (per-pc table, see __init__).
    _K_OTHER, _K_QUEUE, _K_LOAD, _K_STORE, _K_BRANCH = range(5)

    def __init__(self, engine_id: int, program: list[UInstr],
                 controller: QueueController, memory: UcoreMemory,
                 config: FireGuardConfig,
                 isax: IsaxInterface | None = None,
                 on_alert: AlertCallback | None = None,
                 name: str = "ucore"):
        if not program:
            raise SimulationError(f"{name}: empty program")
        self.engine_id = engine_id
        self.program = program
        self.controller = controller
        self.memory = memory
        self.config = config
        self.isax = isax or IsaxInterface(IsaxStyle.MA_STAGE)
        self.on_alert = on_alert
        self.name = name

        self.regs = [0] * 32
        self.regs[2] = 0x0000_7000_0000_0000 + engine_id * 0x1_0000  # sp
        self.pc = 0
        self.halted = False
        self.blocked = False

        self.l1d = SetAssocCache(CacheParams(
            name=f"{name}{engine_id}.L1D",
            size_bytes=config.ucore_l1_kb * 1024,
            ways=config.ucore_l1_ways, hit_latency=1, mshrs=2))
        self.tlb = Tlb(TlbParams(
            name=f"{name}{engine_id}.TLB",
            entries=config.ucore_tlb_entries,
            walk_latency=config.ucore_tlb_walk))

        self._stall_until = 0
        self._prev_was_queue_op = False
        self._instrs_since_effect = 0
        self._blocked_on: str | None = None
        self._presets: dict[int, int] = {}
        self.stat_instructions = 0
        self.stat_stall_cycles = 0
        self.stat_pops = 0
        self.stat_alerts = 0

        # Per-pc tables, precomputed once (the program is immutable
        # for the engine's lifetime): the next instruction's read set
        # for hazard checks and the dispatch kind, so the per-tick hot
        # path indexes lists instead of hashing Op members into the
        # classification frozensets.
        self._next_reads: list[tuple[int, ...]] = [
            program[index + 1].reads() if index + 1 < len(program)
            else ()
            for index in range(len(program))]
        self._kind: list[int] = [
            self._K_QUEUE if instr.op in QUEUE_OPS
            else self._K_LOAD if instr.op in LOAD_OPS
            else self._K_STORE if instr.op in STORE_OPS
            else self._K_BRANCH if instr.op in BRANCH_OPS
            else self._K_OTHER
            for instr in program]

    # -- setup -------------------------------------------------------------
    def preset_registers(self, values: dict[int, int]) -> None:
        """Load kernel configuration registers before the run.

        The values are remembered so :meth:`reset` can restore them."""
        for reg, value in values.items():
            if not 0 < reg < 32:
                raise SimulationError(f"cannot preset register x{reg}")
            self.regs[reg] = value & _MASK64
            self._presets[reg] = value & _MASK64

    def reset(self) -> None:
        """Power-on state with the program and presets retained: the
        session reuses one assembled engine across many traces."""
        self.regs = [0] * 32
        self.regs[2] = 0x0000_7000_0000_0000 + self.engine_id * 0x1_0000
        for reg, value in self._presets.items():
            self.regs[reg] = value
        self.pc = 0
        self.halted = False
        self.blocked = False
        self.l1d.reset()
        self.tlb.reset()
        self._stall_until = 0
        self._prev_was_queue_op = False
        self._instrs_since_effect = 0
        self._blocked_on = None
        self.reset_stats()

    # -- idle / drain detection --------------------------------------------
    def idle_at(self, low_cycle: int) -> bool:
        """True when the µcore has no work it could make progress on —
        either blocked on an empty queue, halted, or spinning a poll
        loop with nothing to poll."""
        if self.halted:
            return True
        ctrl = self.controller
        if not ctrl.input_queue.empty or not ctrl.peer_queue.empty:
            return False
        if self.blocked:
            return True
        # Spinning: many executed instructions with no architectural
        # effect (pop/push/store/alert) — a poll loop with nothing to
        # poll.  Counting instructions rather than cycles keeps long
        # D$-miss stalls from looking like idleness (a kernel doing
        # real work issues an effect at least every few instructions).
        return self._instrs_since_effect > self.SPIN_IDLE_WINDOW

    def can_skip(self) -> bool:
        """True when ``tick`` is provably a no-op this cycle, so the
        session's low-domain loop may skip the engine entirely.

        Unlike :meth:`idle_at` (a drain heuristic that also covers
        spin loops), this is conservative: only a halted engine, or one
        blocked on a queue whose state cannot let the retried
        instruction complete, qualifies.  Blocked engines skip stall
        accounting while parked; architectural state is unaffected."""
        if self.halted:
            return True
        if not self.blocked:
            return False
        ctrl = self.controller
        waiting = self._blocked_on
        if waiting == self._WAIT_INPUT:
            return ctrl.input_queue.empty
        if waiting == self._WAIT_PEER:
            return ctrl.peer_queue.empty
        if waiting == self._WAIT_OUTPUT:
            return not ctrl.can_push()
        return False

    def next_event_cycle(self, now: int) -> int | None:
        """Wakeable protocol (:mod:`repro.sched`): when ``tick`` next
        needs to run.

        A halted engine never does; a blocked one sleeps until the
        queue transition that can unblock it posts an explicit wake
        (the queue hooks the session wires up); a stalled engine wakes
        when its multi-cycle instruction completes; a runnable engine
        must tick every cycle.  Sleeping through a stall skips only the
        per-cycle stall accounting (``stat_stall_cycles``), never
        architectural state — the same contract ``can_skip`` gives the
        dense loop for blocked engines.
        """
        if self.halted or self.blocked:
            return None
        if self._stall_until > now + 1:
            return self._stall_until
        return now + 1

    # -- execution ---------------------------------------------------------
    def tick(self, low_cycle: int) -> None:
        """Advance at most one instruction at this low-domain cycle."""
        if self.halted:
            return
        if low_cycle < self._stall_until:
            self.stat_stall_cycles += 1
            return
        pc = self.pc
        if pc >= len(self.program) or pc < 0:
            self.halted = True
            return
        instr = self.program[pc]
        cost = self._execute(instr, low_cycle)
        if cost == 0:
            # Blocked: retry the same instruction next cycle.
            self.blocked = True
            self.stat_stall_cycles += 1
            self._stall_until = low_cycle + 1
            return
        self.blocked = False
        self._blocked_on = None
        self.stat_instructions += 1
        self._instrs_since_effect += 1
        self._stall_until = low_cycle + cost
        self._prev_was_queue_op = self._kind[pc] == self._K_QUEUE

    def _hazard_next_uses(self, rd: int) -> bool:
        """Does the next sequential instruction read ``rd``?"""
        return rd != 0 and rd in self._next_reads[self.pc]

    def _execute(self, instr: UInstr, low_cycle: int) -> int:
        """Execute one instruction; return its cycle cost, or 0 when
        the instruction is blocked and must retry."""
        kind = self._kind[self.pc]
        if kind == self._K_QUEUE:
            return self._execute_queue_op(instr, low_cycle)

        op = instr.op
        regs = self.regs
        r1 = regs[instr.rs1]
        r2 = regs[instr.rs2]

        cost = 1
        advance = True

        if op == Op.ADD:
            result = (r1 + r2) & _MASK64
        elif op == Op.SUB:
            result = (r1 - r2) & _MASK64
        elif op == Op.AND:
            result = r1 & r2
        elif op == Op.OR:
            result = r1 | r2
        elif op == Op.XOR:
            result = r1 ^ r2
        elif op == Op.SLL:
            result = (r1 << (r2 & 63)) & _MASK64
        elif op == Op.SRL:
            result = r1 >> (r2 & 63)
        elif op == Op.SRA:
            result = (_signed(r1) >> (r2 & 63)) & _MASK64
        elif op == Op.SLT:
            result = 1 if _signed(r1) < _signed(r2) else 0
        elif op == Op.SLTU:
            result = 1 if r1 < r2 else 0
        elif op == Op.MUL:
            result = (r1 * r2) & _MASK64
            cost = 2
        elif op == Op.DIV:
            result = (r1 // r2) & _MASK64 if r2 else _MASK64
            cost = 8
        elif op == Op.ADDI:
            result = (r1 + instr.imm) & _MASK64
        elif op == Op.ANDI:
            result = r1 & (instr.imm & _MASK64)
        elif op == Op.ORI:
            result = r1 | (instr.imm & _MASK64)
        elif op == Op.XORI:
            result = r1 ^ (instr.imm & _MASK64)
        elif op == Op.SLLI:
            result = (r1 << (instr.imm & 63)) & _MASK64
        elif op == Op.SRLI:
            result = r1 >> (instr.imm & 63)
        elif op == Op.SLTI:
            result = 1 if _signed(r1) < instr.imm else 0
        elif op == Op.LI:
            result = instr.imm & _MASK64
        elif kind == self._K_LOAD:
            return self._execute_load(instr, low_cycle)
        elif kind == self._K_STORE:
            return self._execute_store(instr, low_cycle)
        elif kind == self._K_BRANCH:
            taken = self._branch_taken(op, r1, r2)
            if taken:
                self.pc = instr.imm
                return 2  # redirect bubble
            self.pc += 1
            return 1
        elif op == Op.JAL:
            if instr.rd:
                regs[instr.rd] = self.pc + 1
            self.pc = instr.imm
            return 2
        elif op == Op.JALR:
            target = (r1 + instr.imm) & _MASK64
            if instr.rd:
                regs[instr.rd] = self.pc + 1
            self.pc = target
            return 2
        elif op == Op.ALERT:
            self._raise_alert(r1, low_cycle)
            result = None
            advance = True
            self.pc += 1
            return 1
        elif op == Op.ALERTI:
            self._raise_alert(instr.imm, low_cycle)
            self.pc += 1
            return 1
        elif op == Op.CSRR:
            result = self.engine_id
        elif op == Op.NOP:
            result = None
        elif op == Op.HALT:
            self.halted = True
            return 1
        else:  # pragma: no cover - exhaustive
            raise SimulationError(f"unhandled op {op}")

        if result is not None and instr.rd:
            regs[instr.rd] = result
            if op == Op.MUL and self._hazard_next_uses(instr.rd):
                cost += 1
        if advance:
            self.pc += 1
        return cost

    def _branch_taken(self, op: Op, r1: int, r2: int) -> bool:
        if op == Op.BEQ:
            return r1 == r2
        if op == Op.BNE:
            return r1 != r2
        if op == Op.BLT:
            return _signed(r1) < _signed(r2)
        if op == Op.BGE:
            return _signed(r1) >= _signed(r2)
        if op == Op.BLTU:
            return r1 < r2
        return r1 >= r2  # BGEU

    def _execute_load(self, instr: UInstr, low_cycle: int) -> int:
        addr = (self.regs[instr.rs1] + instr.imm) & _MASK64
        size = MEM_SIZES[instr.op]
        if instr.op == Op.LB:
            value = self.memory.data.load_signed(addr, size) & _MASK64
        else:
            value = self.memory.data.load(addr, size)
        if instr.rd:
            self.regs[instr.rd] = value
        cost = 1 + self.tlb.translate(addr)
        hit, mshr = self.l1d.lookup(addr, low_cycle,
                                    self.config.ucore_l2_latency)
        cost += mshr
        if not hit:
            cost += self.memory.miss_latency(addr, low_cycle)
        if self._hazard_next_uses(instr.rd):
            cost += 1  # load-use bubble
        self.pc += 1
        return cost

    def _execute_store(self, instr: UInstr, low_cycle: int) -> int:
        addr = (self.regs[instr.rs1] + instr.imm) & _MASK64
        size = MEM_SIZES[instr.op]
        self.memory.data.store(addr, self.regs[instr.rs2], size)
        cost = 1 + self.tlb.translate(addr)
        # Write-allocate: a missing line is fetched before the write.
        hit, mshr = self.l1d.lookup(addr, low_cycle,
                                    self.config.ucore_l2_latency)
        cost += mshr
        if not hit:
            cost += self.memory.miss_latency(addr, low_cycle)
        self._instrs_since_effect = 0
        self.pc += 1
        return cost

    def _execute_queue_op(self, instr: UInstr, low_cycle: int) -> int:
        op = instr.op
        ctrl = self.controller
        regs = self.regs
        result: int | None = None

        if op == Op.QCOUNT:
            result = ctrl.count(instr.imm)
        elif op == Op.QTOP:
            if ctrl.input_queue.empty:
                self._blocked_on = self._WAIT_INPUT
                return 0
            result = ctrl.input_queue.top(instr.imm)
        elif op == Op.QPOP:
            if ctrl.input_queue.empty:
                self._blocked_on = self._WAIT_INPUT
                return 0
            result = ctrl.input_queue.pop(instr.imm)
            self.stat_pops += 1
            self._instrs_since_effect = 0
        elif op == Op.QRECENT:
            result = ctrl.input_queue.recent(instr.imm)
        elif op == Op.PCOUNT:
            result = len(ctrl.peer_queue)
        elif op == Op.PPOP:
            if ctrl.peer_queue.empty:
                self._blocked_on = self._WAIT_PEER
                return 0
            result = ctrl.peer_queue.pop()
            self._instrs_since_effect = 0
        elif op == Op.QPUSH:
            if not ctrl.push(regs[instr.rs1]):
                self._blocked_on = self._WAIT_OUTPUT
                return 0
            self._instrs_since_effect = 0
        elif op == Op.QDEST:
            ctrl.dest_register = regs[instr.rs1] % max(
                1, len(self.config_engines()))
        else:  # pragma: no cover - exhaustive
            raise SimulationError(f"unhandled queue op {op}")

        if result is not None and instr.rd:
            regs[instr.rd] = result

        used_next = (result is not None
                     and self._hazard_next_uses(instr.rd))
        cost = self.isax.cost(result_used_next=used_next,
                              back_to_back=self._prev_was_queue_op)
        self.pc += 1
        return cost

    def config_engines(self) -> range:
        return range(self.config.num_engines)

    def _raise_alert(self, code: int, low_cycle: int) -> None:
        self.stat_alerts += 1
        self._instrs_since_effect = 0
        if self.on_alert is not None:
            self.on_alert(self.engine_id, code, low_cycle)
