"""Analysis-engine substrate: Rocket-like in-order µcores.

A µcore is a 5-stage in-order scalar core (Table II: 1.6 GHz, 4 KB
2-way L1s, 32-entry message queues, no FPU) running a guardian kernel.
The kernel is real assembly: :mod:`repro.ucore.assembler` turns text
into programs, and :class:`repro.ucore.core.MicroCore` executes them
functionally with pipeline-accurate hazard timing — including the ISAX
queue instructions of Table I.
"""

from repro.ucore.assembler import assemble
from repro.ucore.core import MicroCore, UcoreMemory
from repro.ucore.isa import Op, UInstr

__all__ = ["MicroCore", "Op", "UInstr", "UcoreMemory", "assemble"]
