"""µcore instruction set.

RV64I-flavoured base ops plus the FireGuard ISAX extension (Table I):
``qcount/qtop/qpop/qrecent/qpush`` operate the message queues,
``qdest`` sets the routing destination status register, ``ppop`` /
``pcount`` read the peer (NoC) queue, and ``alert`` raises a
detection.  Queue-op operands follow Table I: the second operand of
top/pop/recent is the *bit offset* selecting the 64-bit field of the
packet ([rs1+63:rs1]).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto


class Op(Enum):
    # ALU register-register
    ADD = auto(); SUB = auto(); AND = auto(); OR = auto(); XOR = auto()
    SLL = auto(); SRL = auto(); SRA = auto(); SLT = auto(); SLTU = auto()
    MUL = auto(); DIV = auto()
    # ALU register-immediate
    ADDI = auto(); ANDI = auto(); ORI = auto(); XORI = auto()
    SLLI = auto(); SRLI = auto(); SLTI = auto()
    LI = auto()          # pseudo: load (arbitrary 64-bit) immediate
    # Memory
    LD = auto(); LW = auto(); LB = auto(); LBU = auto()
    SD = auto(); SW = auto(); SB = auto()
    # Control
    BEQ = auto(); BNE = auto(); BLT = auto(); BGE = auto()
    BLTU = auto(); BGEU = auto()
    JAL = auto(); JALR = auto()
    # ISAX queue extension (Table I)
    QCOUNT = auto(); QTOP = auto(); QPOP = auto(); QRECENT = auto()
    QPUSH = auto(); QDEST = auto()
    PCOUNT = auto(); PPOP = auto()
    ALERT = auto(); ALERTI = auto()
    # Misc
    CSRR = auto(); NOP = auto(); HALT = auto()


# Ops whose results arrive late (MA stage): consuming them in the very
# next instruction costs a bubble, exactly like a load-use hazard.
LATE_RESULT_OPS = frozenset({
    Op.LD, Op.LW, Op.LB, Op.LBU,
    Op.QCOUNT, Op.QTOP, Op.QPOP, Op.QRECENT, Op.PCOUNT, Op.PPOP,
})

QUEUE_OPS = frozenset({
    Op.QCOUNT, Op.QTOP, Op.QPOP, Op.QRECENT, Op.QPUSH, Op.QDEST,
    Op.PCOUNT, Op.PPOP,
})

BRANCH_OPS = frozenset({
    Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.BLTU, Op.BGEU,
})

LOAD_OPS = frozenset({Op.LD, Op.LW, Op.LB, Op.LBU})
STORE_OPS = frozenset({Op.SD, Op.SW, Op.SB})

MEM_SIZES = {
    Op.LD: 8, Op.LW: 4, Op.LB: 1, Op.LBU: 1,
    Op.SD: 8, Op.SW: 4, Op.SB: 1,
}


@dataclass(frozen=True)
class UInstr:
    """One decoded µcore instruction.  ``imm`` doubles as the branch /
    jump target (program index) after assembly."""

    op: Op
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0

    def reads(self) -> tuple[int, ...]:
        """Registers this instruction reads (for hazard detection)."""
        op = self.op
        if op in (Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR, Op.SLL, Op.SRL,
                  Op.SRA, Op.SLT, Op.SLTU, Op.MUL, Op.DIV):
            return (self.rs1, self.rs2)
        if op in (Op.ADDI, Op.ANDI, Op.ORI, Op.XORI, Op.SLLI, Op.SRLI,
                  Op.SLTI, Op.JALR):
            return (self.rs1,)
        if op in LOAD_OPS:
            return (self.rs1,)
        if op in STORE_OPS:
            return (self.rs1, self.rs2)
        if op in BRANCH_OPS:
            return (self.rs1, self.rs2)
        if op in (Op.QPUSH, Op.QDEST, Op.ALERT):
            return (self.rs1,)
        return ()

    def writes(self) -> int | None:
        """Destination register, or None."""
        op = self.op
        if op in (Op.SD, Op.SW, Op.SB, *BRANCH_OPS, Op.QPUSH, Op.QDEST,
                  Op.ALERT, Op.ALERTI, Op.NOP, Op.HALT):
            return None
        if op == Op.JAL or op == Op.JALR:
            return self.rd if self.rd else None
        return self.rd if self.rd else None
