"""FireGuard proper: the paper's contribution (Fig 1).

* data-forwarding channel (§III-A): buffer-free bypass taps at commit;
* event filter (§III-B): per-lane SRAM mini-filters, paired FIFOs, an
  in-order arbiter;
* mapper (§III-C): scalable allocator (distributor + Scheduling
  Engines) and distributed fabric (multicast channel + mesh NoC);
* ISA & programming model (§III-D): message queues with
  count/top/pop/recent/push custom instructions, coupled into the
  µcore's MA stage;
* hardware accelerators and the assembled system.
"""

from repro.core.accelerator import (
    HardwareAccelerator,
    PmcAccelerator,
    ShadowStackAccelerator,
)
from repro.core.allocator import Allocator, Distributor
from repro.core.cdc import CdcFifo
from repro.core.config import DP_FTQ, DP_LSQ, DP_PRF, FireGuardConfig
from repro.core.event_filter import EventFilter
from repro.core.fabric import MulticastChannel
from repro.core.forwarding import DataForwardingChannel
from repro.core.isax import IsaxInterface, IsaxStyle
from repro.core.minifilter import FilterEntry, MiniFilter
from repro.core.msgqueue import MessageQueue, QueueController
from repro.core.noc import MeshNoc
from repro.core.packet import (
    META_ALLOC,
    META_CALL,
    META_FREE,
    META_LOAD,
    META_RET,
    META_STORE,
    Packet,
)
from repro.core.scheduling import SchedulingEngine, SchedulingPolicy
from repro.core.system import FireGuardSystem, SystemResult

__all__ = [
    "Allocator",
    "CdcFifo",
    "DP_FTQ",
    "DP_LSQ",
    "DP_PRF",
    "DataForwardingChannel",
    "Distributor",
    "EventFilter",
    "FilterEntry",
    "FireGuardConfig",
    "FireGuardSystem",
    "HardwareAccelerator",
    "IsaxInterface",
    "IsaxStyle",
    "MeshNoc",
    "MessageQueue",
    "META_ALLOC",
    "META_CALL",
    "META_FREE",
    "META_LOAD",
    "META_RET",
    "META_STORE",
    "MiniFilter",
    "MulticastChannel",
    "Packet",
    "PmcAccelerator",
    "QueueController",
    "SchedulingEngine",
    "SchedulingPolicy",
    "ShadowStackAccelerator",
    "SystemResult",
]
