"""FireGuard configuration (Table II, "FireGuard and Interconnects")."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.clock.domain import ClockDomain
from repro.errors import ConfigError

# Data-path selection flags stored in each mini-filter SRAM entry: which
# bypass circuits the forwarding channel should read for this
# instruction group (Fig 3: "PRF, LSQ and/or FTQ").
DP_PRF = 0x1
DP_LSQ = 0x2
DP_FTQ = 0x4


@dataclass(frozen=True)
class FireGuardConfig:
    """Microarchitectural parameters of the FireGuard elements.

    Defaults mirror Table II: a 4-width event filter with 16-entry
    FIFOs, 4 Scheduling Engines, an 8-entry CDC, the fabric at 1.6 GHz,
    Rocket µcores at 1.6 GHz with 32-entry message queues.
    """

    filter_width: int = 4
    fifo_depth: int = 16
    num_sched_engines: int = 4
    cdc_depth: int = 8
    # Packets the mapper moves per cycle.  The paper's design is
    # deliberately scalar (1; <0.5 % slowdown on a 4-wide BOOM);
    # §III-C footnote 5 sketches a superscalar variant with duplicated
    # channels/SEs and extra arbiters — set 2+ to model it.
    mapper_width: int = 1
    num_engines: int = 4            # µcores (Fig 10 sweeps this)
    msgq_depth: int = 32
    peer_queue_depth: int = 32      # NoC receive queue per engine
    max_gids: int = 16
    high_freq_ghz: float = 3.2
    low_freq_ghz: float = 1.6
    noc_hop_cycles: int = 1
    # µcore memory (Table II: 4 KB 2-way L1s; shared L2 beyond).
    ucore_l1_kb: int = 4
    ucore_l1_ways: int = 2
    ucore_l2_latency: int = 10      # low-domain cycles on L1 miss
    ucore_llc_latency: int = 24
    ucore_dram_latency: int = 96
    ucore_tlb_entries: int = 16
    ucore_tlb_walk: int = 30

    def __post_init__(self) -> None:
        if self.filter_width <= 0:
            raise ConfigError("filter width must be positive")
        if self.mapper_width <= 0:
            raise ConfigError("mapper width must be positive")
        if self.fifo_depth <= 0 or self.cdc_depth <= 0:
            raise ConfigError("queue depths must be positive")
        if self.num_sched_engines <= 0:
            raise ConfigError("need at least one Scheduling Engine")
        if self.num_engines <= 0:
            raise ConfigError("need at least one analysis engine")
        if self.max_gids <= 0 or self.max_gids > 256:
            raise ConfigError("max_gids must be in [1, 256]")
        if self.low_freq_ghz > self.high_freq_ghz:
            raise ConfigError("low-frequency domain faster than high")

    def high_domain(self) -> ClockDomain:
        return ClockDomain("core", self.high_freq_ghz)

    def low_domain(self) -> ClockDomain:
        return ClockDomain("fabric", self.low_freq_ghz)

    def mesh_shape(self) -> tuple[int, int]:
        """Smallest near-square mesh holding all engines (Manhattan
        grid NoC, §III-C)."""
        cols = 1
        while cols * cols < self.num_engines:
            cols += 1
        rows = (self.num_engines + cols - 1) // cols
        return rows, cols


@dataclass(frozen=True)
class KernelBinding:
    """How one guardian kernel plugs into the mapper: the GIDs it
    consumes, its Scheduling Engine, and which analysis engines run it."""

    kernel_name: str
    gids: tuple[int, ...]
    se_index: int
    engine_indices: tuple[int, ...]
    policy: str = "round_robin"

    def __post_init__(self) -> None:
        if not self.gids:
            raise ConfigError(f"kernel {self.kernel_name}: no GIDs bound")
        if not self.engine_indices:
            raise ConfigError(
                f"kernel {self.kernel_name}: no analysis engines bound")
