"""FireGuard system assembly (Fig 1).

``FireGuardSystem`` wires a BOOM-like main core to the FireGuard
elements — data-forwarding channel, event filter, allocator, CDC,
multicast channel, mesh NoC — and a set of analysis engines (µcores
running guardian kernels, or hardware accelerators).

The cycle loop lives in :class:`repro.sim.session.SimulationSession`
(DESIGN.md: session layer): construction here is the expensive,
build-once part (filter SRAM programming, kernel assembly, engine
partitioning); the session executes traces — event-driven over
:mod:`repro.sched` wakeups by default, dense behind
``REPRO_DENSE_LOOP=1`` — and can ``reset()`` the built system so many
traces run on one build.  ``run`` below is a convenience wrapper over
a private session.

Engines are partitioned per kernel (the paper gives each kernel its
own group of µcores or one HA); the mapper's distributor fans shared
instruction groups out to every subscribed kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from repro.core.allocator import Allocator, Distributor
from repro.core.cdc import CdcFifo
from repro.core.config import FireGuardConfig
from repro.core.event_filter import EventFilter
from repro.core.fabric import MulticastChannel
from repro.core.forwarding import DataForwardingChannel
from repro.core.isax import IsaxInterface, IsaxStyle
from repro.core.minifilter import FilterEntry
from repro.core.msgqueue import QueueController
from repro.core.noc import MeshNoc, NocParams
from repro.core.packet import Packet
from repro.core.scheduling import SchedulingEngine
from repro.errors import ConfigError
from repro.kernels.base import GuardianKernel
from repro.kernels.groups import group_rules
from repro.mem.sparse import SparseMemory
from repro.ooo.core import MainCore
from repro.ooo.params import CoreParams
from repro.trace.record import Trace
from repro.ucore.assembler import assemble
from repro.ucore.core import MicroCore, UcoreMemory

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.session import SimulationSession


@dataclass
class Alert:
    """One detection raised by an engine."""

    engine_id: int
    code: int
    time_ns: float
    attack_id: int | None
    pc: int


@dataclass
class SystemResult:
    """Outcome of one monitored run."""

    cycles: int
    committed: int
    time_ns: float
    stall_backpressure: int
    alerts: list[Alert] = field(default_factory=list)
    detections: dict[int, float] = field(default_factory=dict)  # id → ns
    filter_full_cycles: int = 0
    mapper_blocked_cycles: int = 0
    cdc_full_cycles: int = 0
    msgq_full_cycles: int = 0
    packets_filtered: int = 0
    packets_delivered: int = 0
    engine_instructions: int = 0
    prf_preemptions: int = 0
    noc_words: int = 0

    @property
    def ipc(self) -> float:
        return self.committed / self.cycles if self.cycles else 0.0

    def detection_latencies(self) -> list[float]:
        return sorted(self.detections.values())


class FireGuardSystem:
    """A main core plus FireGuard frontend/backend running kernels."""

    def __init__(self, kernels: list[GuardianKernel],
                 config: FireGuardConfig | None = None,
                 core_params: CoreParams | None = None,
                 engines_per_kernel: dict[str, int] | None = None,
                 accelerated: frozenset[str] | set[str] = frozenset(),
                 isax_style: IsaxStyle = IsaxStyle.MA_STAGE):
        if not kernels:
            raise ConfigError("FireGuardSystem needs at least one kernel")
        names = [k.name for k in kernels]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate kernel names: {names}")

        base_config = config or FireGuardConfig()
        self.kernels = kernels
        self.accelerated = frozenset(accelerated)
        self.isax_style = isax_style

        # -- engine partitioning ----------------------------------------
        engines_per_kernel = engines_per_kernel or {}
        self._groups: dict[str, list[int]] = {}
        next_engine = 0
        for kernel in kernels:
            if kernel.name in self.accelerated:
                if not kernel.has_accelerator:
                    raise ConfigError(
                        f"kernel {kernel.name} has no accelerator variant")
                count = 1
            else:
                count = engines_per_kernel.get(kernel.name,
                                               base_config.num_engines)
            if count <= 0:
                raise ConfigError(f"kernel {kernel.name}: no engines")
            self._groups[kernel.name] = list(
                range(next_engine, next_engine + count))
            next_engine += count
        total_engines = next_engine

        # One config sized for the full engine complement.  ``replace``
        # keeps every other field (a field-by-field rebuild once
        # silently dropped ``mapper_width``).
        self.config = replace(base_config,
                              num_sched_engines=len(kernels),
                              num_engines=total_engines)

        # -- main core + frontend ------------------------------------------
        self.core = MainCore(core_params or CoreParams())
        self.forwarding = DataForwardingChannel(self.core.prf)
        high_period = 1.0 / self.config.high_freq_ghz
        self.filter = EventFilter(
            width=self.config.filter_width,
            fifo_depth=self.config.fifo_depth,
            forwarding=self.forwarding,
            high_period_ns=high_period)
        self._program_filter()

        # -- mapper ----------------------------------------------------------
        self.distributor = Distributor(self.config.max_gids, len(kernels))
        self.ses: list[SchedulingEngine] = []
        for se_index, kernel in enumerate(kernels):
            se = SchedulingEngine(
                se_index=se_index,
                engines=self._groups[kernel.name],
                num_engines_total=total_engines,
                policy=kernel.policy,
                block_size=kernel.block_size)
            self.ses.append(se)
            for gid in kernel.groups:
                self.distributor.subscribe(gid, se_index)
        self.allocator = Allocator(self.distributor, self.ses,
                                   total_engines)
        self.cdc = CdcFifo(self.config.cdc_depth)

        # -- backend ----------------------------------------------------------
        self.memory = UcoreMemory(self.config, SparseMemory())
        self.controllers = [
            QueueController(engine_id=i,
                            input_depth=self.config.msgq_depth,
                            peer_depth=self.config.peer_queue_depth)
            for i in range(total_engines)
        ]
        # The mapper is scalar per *core* cycle (§III-C); the fabric at
        # half the clock therefore moves mapper_width x 2 packets per
        # fabric cycle, with dual-ported message queues to match.
        clock_ratio = max(1, round(self.config.high_freq_ghz
                                   / self.config.low_freq_ghz))
        self.multicast = MulticastChannel(
            [c.input_queue for c in self.controllers],
            width=self.config.mapper_width * clock_ratio,
            queue_ports=clock_ratio)
        rows, cols = self.config.mesh_shape()
        self.noc = MeshNoc(
            NocParams(rows=rows, cols=cols,
                      hop_cycles=self.config.noc_hop_cycles),
            [c.peer_queue for c in self.controllers])

        self.engines: list = []
        self._build_engines()

        # -- run state (written by the active SimulationSession) ----------
        self._now_ns = 0.0
        self._result: SystemResult | None = None
        self._session: SimulationSession | None = None

    # -- construction helpers ---------------------------------------------
    def _program_filter(self) -> None:
        """Write the union of all kernels' group rules into the SRAM."""
        seen: dict[tuple[int, int | None], FilterEntry] = {}
        for kernel in self.kernels:
            for gid in kernel.groups:
                rule = group_rules(gid)
                for opcode, funct3 in rule.rows:
                    key = (opcode, funct3)
                    prev = seen.get(key)
                    if prev is not None and prev.gid != rule.gid:
                        raise ConfigError(
                            f"filter row {key} claimed by GIDs "
                            f"{prev.gid} and {rule.gid}")
                    dp_sel = rule.dp_sel | (prev.dp_sel if prev else 0)
                    entry = FilterEntry(gid=rule.gid, dp_sel=dp_sel)
                    seen[key] = entry
                    if funct3 is None:
                        self.filter.program_all_funct3(opcode, entry)
                    else:
                        self.filter.program(opcode, funct3, entry)

    def _build_engines(self) -> None:
        for kernel in self.kernels:
            engine_ids = self._groups[kernel.name]
            if kernel.name in self.accelerated:
                engine_id = engine_ids[0]
                ha = kernel.make_accelerator(
                    engine_id,
                    self.controllers[engine_id].input_queue,
                    self._on_ha_alert)
                self.engines.append(ha)
                continue
            program = assemble(kernel.program_source())
            for position, engine_id in enumerate(engine_ids):
                ucore = MicroCore(
                    engine_id=engine_id,
                    program=program,
                    controller=self.controllers[engine_id],
                    memory=self.memory,
                    config=self.config,
                    isax=IsaxInterface(self.isax_style),
                    on_alert=self._on_ucore_alert,
                    name=kernel.name)
                ucore.preset_registers(kernel.preset_registers(
                    engine_id, engine_ids, position))
                self.engines.append(ucore)

    # -- alert plumbing ------------------------------------------------------
    def _record_alert(self, engine_id: int, code: int,
                      packet: Packet | None) -> None:
        result = self._result
        if result is None:
            return
        attack_id = packet.attack_id if packet is not None else None
        pc = packet.pc if packet is not None else 0
        result.alerts.append(Alert(engine_id=engine_id, code=code,
                                   time_ns=self._now_ns,
                                   attack_id=attack_id, pc=pc))
        if attack_id is not None and attack_id not in result.detections:
            latency = self._now_ns - packet.commit_ns
            result.detections[attack_id] = max(latency, 0.0)

    def _on_ucore_alert(self, engine_id: int, code: int,
                        _low_cycle: int) -> None:
        queue = self.controllers[engine_id].input_queue
        packet = queue.recent_packet
        if packet is not None and packet.attack_id is None:
            # Unrolled kernels check packets a few pops after removal;
            # attribute to the newest recently-popped attack packet.
            for candidate in queue.recently_popped():
                if candidate.attack_id is not None:
                    packet = candidate
                    break
        self._record_alert(engine_id, code, packet)

    def _on_ha_alert(self, engine_id: int, packet: Packet,
                     _low_cycle: int) -> None:
        self._record_alert(engine_id, 0, packet)

    # -- simulation -------------------------------------------------------
    def session(self) -> "SimulationSession":
        """The (lazily created) session driving this system.

        Use it directly for build-once/run-many workflows::

            session = system.session()
            first = session.run(trace_a)
            session.reset()
            second = session.run(trace_b)
        """
        if self._session is None:
            from repro.sim.session import SimulationSession
            self._session = SimulationSession(self)
        return self._session

    def run(self, trace: Trace,
            max_cycles: int = 50_000_000) -> SystemResult:
        """Run one workload to completion (trace consumed, queues
        drained, engines idle) and return the system result.

        Convenience wrapper over :meth:`session`: resets the session
        first when it has already executed a trace, so repeated calls
        behave like runs on freshly built systems.
        """
        session = self.session()
        if session.dirty:
            session.reset()
        return session.run(trace, max_cycles)


def run_baseline(trace: Trace,
                 core_params: CoreParams | None = None) -> int:
    """Cycles for the same trace on an unmonitored core (the slowdown
    denominator used throughout §IV)."""
    core = MainCore(core_params or CoreParams())
    result = core.run_standalone(trace)
    return result.cycles
