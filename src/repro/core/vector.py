"""Vectorized execution backend (``REPRO_BACKEND=vector``).

The scalar hot path classifies one committed instruction at a time:
an SRAM lookup, an ``InstrClass`` test, packet meta bit-packing, and a
PRF-preemption decision per record.  This module evaluates all of that
per *chunk* with numpy over the columnar trace view
(:mod:`repro.trace.columns`), then hands the results back to the
scalar fabric as plain Python rows:

* :class:`FrontEndPlan` — per-record filter decision (matched, GID,
  packet addr/data/meta words, PRF-preemption flag), precomputed from
  the programmed SRAM image and the trace columns.  The event filter
  consumes one row per accepted offer; only the sparse surviving
  packets are ever materialised as :class:`~repro.core.packet.Packet`
  objects (the "sparse packet hand-off" invariant — DESIGN.md).
* :class:`PmcCheckPlan` / :class:`ShadowCheckPlan` /
  :class:`AsanCheckPlan` — per-record pre-checks for the hardware
  accelerators: the array pass flags the rows that could possibly
  alert or mutate checker state ("interesting"); the accelerator falls
  back to its scalar ``check()`` only on those rows.

Bit-identity with the scalar backend is the load-bearing contract:
every observable side effect (packet words, mini-filter and
forwarding statistics, PRF preemption timing, alert order) is
reproduced exactly, pinned by the three-way differential grid in
``tests/test_vector_identity.py``.

Plans are windowed: chunks are classified lazily and dropped once
consumed, so a streamed trace keeps its bounded-memory guarantee.
Row consumption is strictly monotone — offers happen in commit order,
and each engine's queue delivers packets in sequence order.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.core.config import DP_PRF
from repro.core.packet import (
    META_ALLOC,
    META_CALL,
    META_FREE,
    META_LOAD,
    META_RET,
    META_STORE,
)
from repro.errors import SimulationError
from repro.isa.filter_index import FILTER_TABLE_SIZE
from repro.isa.opcodes import PRF_RESULT_CLASSES, InstrClass
from repro.trace.columns import CLASS_BY_INDEX, NO_ADDR, NUM_CLASSES
from repro.utils.npcompat import np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.system import FireGuardSystem

_MASK64 = (1 << 64) - 1

if np is not None:
    # Per-class lookup tables indexed by the FGTRACE1 class code.
    _FLAG_LUT = np.zeros(NUM_CLASSES, dtype=np.uint64)
    _CTRL_LUT = np.zeros(NUM_CLASSES, dtype=bool)
    _PRF_LUT = np.zeros(NUM_CLASSES, dtype=bool)
    _CALLRET_LUT = np.zeros(NUM_CLASSES, dtype=bool)
    _MEM_LUT = np.zeros(NUM_CLASSES, dtype=bool)
    for _code, _cls in enumerate(CLASS_BY_INDEX):
        if _cls is InstrClass.LOAD:
            _FLAG_LUT[_code] = META_LOAD
        elif _cls is InstrClass.STORE:
            _FLAG_LUT[_code] = META_STORE
        elif _cls is InstrClass.CALL:
            _FLAG_LUT[_code] = META_CALL
        elif _cls is InstrClass.RET:
            _FLAG_LUT[_code] = META_RET
        _CTRL_LUT[_code] = _cls in (InstrClass.BRANCH, InstrClass.JUMP,
                                    InstrClass.CALL, InstrClass.RET)
        _PRF_LUT[_code] = _cls in PRF_RESULT_CLASSES
        _CALLRET_LUT[_code] = _cls in (InstrClass.CALL, InstrClass.RET)
        _MEM_LUT[_code] = _cls in (InstrClass.LOAD, InstrClass.STORE)
    _CUSTOM_CODE = CLASS_BY_INDEX.index(InstrClass.CUSTOM)


class _ChunkedRows:
    """Forward-only windowed access to lazily classified chunk rows.

    The source yields ``(start_seq, rows)`` per chunk; ``_row(seq)``
    serves monotonically increasing sequence numbers, dropping each
    window as the next one loads (bounded memory over streamed
    traces)."""

    __slots__ = ("_source", "_start", "_rows")

    def __init__(self, source: Iterator[tuple[int, list]]):
        self._source = source
        self._start = 0
        self._rows: list = []

    def _row(self, seq: int):
        index = seq - self._start
        rows = self._rows
        while index >= len(rows):
            try:
                start, rows = next(self._source)
            except StopIteration:
                raise SimulationError(
                    f"vector plan exhausted at record {seq}: trace "
                    "shorter than the offer stream") from None
            self._start = start
            self._rows = rows
            index = seq - start
        if index < 0:
            raise SimulationError(
                f"vector plan consumed out of order (record {seq} "
                f"already passed, window starts at {self._start})")
        return rows[index]


class FrontEndPlan(_ChunkedRows):
    """Precomputed event-filter decisions, one row per trace record.

    Row ``seq`` is ``(matched, gid, addr, data, meta, prf)`` — exactly
    the values the scalar path derives in ``MiniFilter.lookup`` plus
    ``DataForwardingChannel.capture`` plus the ``Packet`` constructor.
    Commit order equals trace order (offers are in order and each
    record is accepted exactly once), so the filter's accepted-offer
    counter indexes the plan directly.
    """

    def __init__(self, trace, gid_table, dp_table, prf_enabled: bool):
        super().__init__(self._classify(trace, gid_table, dp_table,
                                        prf_enabled))

    @staticmethod
    def _classify(trace, gid_table, dp_table,
                  prf_enabled: bool) -> Iterator[tuple[int, list]]:
        from repro.trace.columns import iter_trace_columns

        for cols in iter_trace_columns(trace):
            opcode = cols.opcode
            funct3 = cols.funct3
            cls = cols.iclass_code
            index = (funct3.astype(np.uint16) << 7) | opcode
            gid = gid_table[index]
            dp = dp_table[index]
            matched = gid >= 0

            flags = _FLAG_LUT[cls]
            is_custom = cls == _CUSTOM_CODE
            alloc = is_custom & (funct3 == 0)
            free = is_custom & (funct3 == 1)
            meta = (flags
                    | alloc.astype(np.uint64) * np.uint64(META_ALLOC)
                    | free.astype(np.uint64) * np.uint64(META_FREE)
                    | (gid.astype(np.int64) & 0xFF).astype(np.uint64) << 8
                    | (opcode.astype(np.uint64) & 0x7F) << 16
                    | (funct3.astype(np.uint64) & 0x7) << 23
                    | (cols.mem_size.astype(np.uint64) & 0xFF) << 26
                    | (cols.word.astype(np.uint64) & 0x3FFFFFFF) << 34)

            mem_addr = cols.mem_addr
            addr = np.where(
                _CTRL_LUT[cls], cols.target,
                np.where(mem_addr != np.uint64(NO_ADDR), mem_addr,
                         np.uint64(0)))
            prf = matched & ((dp & DP_PRF) != 0) & _PRF_LUT[cls] \
                if prf_enabled else np.zeros(len(cols), dtype=bool)

            rows = list(zip(matched.tolist(), gid.tolist(),
                            addr.tolist(), cols.result.tolist(),
                            meta.tolist(), prf.tolist()))
            yield cols.start_seq, rows

    def take(self, seq: int):
        """The decision row for record ``seq`` (monotone access)."""
        return self._row(seq)


class EngineCheckPlan(_ChunkedRows):
    """Base for per-accelerator pre-check plans.

    Subclasses classify each record into a per-row fast-path value;
    :meth:`verdict` applies it to an arriving packet, falling back to
    the accelerator's scalar ``check()`` only where the array pass
    could not decide.  Each engine sees a subsequence of sequence
    numbers in increasing order, so the chunk window advances
    monotonically (skipped rows are simply never read).
    """

    def verdict(self, accelerator, packet, low_cycle: int) -> bool:
        raise NotImplementedError


class PmcCheckPlan(EngineCheckPlan):
    """PMC bounds checks as one array comparison per chunk.

    Row ``seq`` is the precomputed out-of-bounds verdict for the
    packet's address word; the event count (the PMC's only other state)
    advances by exactly one per packet regardless of the verdict."""

    def __init__(self, trace, bound_lo: int, bound_hi: int):
        super().__init__(self._classify(trace, bound_lo, bound_hi))

    @staticmethod
    def _classify(trace, bound_lo: int,
                  bound_hi: int) -> Iterator[tuple[int, list]]:
        from repro.trace.columns import iter_trace_columns

        lo = np.uint64(bound_lo & _MASK64)
        hi = np.uint64(bound_hi & _MASK64)
        for cols in iter_trace_columns(trace):
            cls = cols.iclass_code
            mem_addr = cols.mem_addr
            addr = np.where(
                _CTRL_LUT[cls], cols.target,
                np.where(mem_addr != np.uint64(NO_ADDR), mem_addr,
                         np.uint64(0)))
            bad = ~((addr >= lo) & (addr < hi))
            yield cols.start_seq, bad.tolist()

    def verdict(self, accelerator, packet, low_cycle: int) -> bool:
        accelerator.event_count += 1
        return self._row(packet.seq)


class ShadowCheckPlan(EngineCheckPlan):
    """Shadow-stack pre-check: only call/ret rows can push, pop, or
    alert; every other packet is a no-op verdict with no state touched
    (identical to the scalar ``check()``'s fall-through)."""

    def __init__(self, trace):
        super().__init__(self._classify(trace))

    @staticmethod
    def _classify(trace) -> Iterator[tuple[int, list]]:
        from repro.trace.columns import iter_trace_columns

        for cols in iter_trace_columns(trace):
            interesting = _CALLRET_LUT[cols.iclass_code]
            yield cols.start_seq, interesting.tolist()

    def verdict(self, accelerator, packet, low_cycle: int) -> bool:
        if self._row(packet.seq):
            return accelerator.check(packet, low_cycle)
        return False


class AsanCheckPlan(EngineCheckPlan):
    """ASan pre-check: shadow state is only written by allocator
    events, so a load or store can only read a poisoned granule if its
    address falls inside some alloc/free region seen so far.  The plan
    keeps a running min/max over event regions (widened one 16-byte
    granule each side for the redzones) and flags allocator events plus
    memory accesses inside that envelope; everything else is a clean
    verdict without the shadow lookup.  Heap metadata is deliberately
    not trusted — attack injection plants allocations above
    ``trace.heap_end``, so the envelope must come from the events
    themselves.  Accesses that precede the chunk's first event are
    over-approximated (flagged but provably clean), which only costs a
    scalar fall-back, never a verdict."""

    GRANULE = 16

    def __init__(self, trace):
        super().__init__(self._classify(trace))

    @classmethod
    def _classify(cls, trace) -> Iterator[tuple[int, list]]:
        from repro.trace.columns import iter_trace_columns

        region_lo: int | None = None   # running envelope over event
        region_hi = 0                  # regions [base, base+size)
        for cols in iter_trace_columns(trace):
            codes = cols.iclass_code
            funct3 = cols.funct3
            mem_addr = cols.mem_addr
            event = (codes == _CUSTOM_CODE) & (funct3 <= 1)
            if event.any():
                bases = mem_addr[event]
                ends = bases + cols.result[event]
                chunk_lo = int(bases.min())
                region_lo = (chunk_lo if region_lo is None
                             else min(region_lo, chunk_lo))
                region_hi = max(region_hi, int(ends.max()))
            if region_lo is None:
                yield cols.start_seq, event.tolist()
                continue
            # The left redzone granule ((base >> 4) - 1) reaches down
            # to the previous granule boundary, not just base - 16;
            # align the envelope outward to whole granules.
            lo = np.uint64(max(0, ((region_lo >> 4) - 1) << 4))
            hi = np.uint64((((region_hi >> 4) + 1) << 4) & _MASK64)
            near = (_MEM_LUT[codes]
                    & (mem_addr != np.uint64(NO_ADDR))
                    & (mem_addr >= lo) & (mem_addr < hi))
            yield cols.start_seq, (event | near).tolist()

    def verdict(self, accelerator, packet, low_cycle: int) -> bool:
        if self._row(packet.seq):
            return accelerator.check(packet, low_cycle)
        return False


# ---------------------------------------------------------------------------
# plan assembly
# ---------------------------------------------------------------------------

def _filter_tables(system: "FireGuardSystem"):
    """The programmed SRAM image as dense arrays: GID (−1 for
    unprogrammed rows) and data-path selection per filter index."""
    table = system.filter.minifilters[0].table
    gid_table = np.full(FILTER_TABLE_SIZE, -1, dtype=np.int16)
    dp_table = np.zeros(FILTER_TABLE_SIZE, dtype=np.uint8)
    for index, entry in enumerate(table):
        if entry is not None:
            gid_table[index] = entry.gid
            dp_table[index] = entry.dp_sel
    return gid_table, dp_table


def install_plans(system: "FireGuardSystem", trace) -> None:
    """Build and attach this run's vector plans.

    Installs the front-end plan on the event filter and a pre-check
    plan on each hardware accelerator that has one.  µcore engines are
    unaffected (their ISS is the semantics under test).  No-op without
    numpy — callers resolve the backend first.
    """
    if np is None:  # pragma: no cover - scalar fallback
        return
    from repro.core.accelerator import (
        AsanAccelerator,
        PmcAccelerator,
        ShadowStackAccelerator,
    )

    gid_table, dp_table = _filter_tables(system)
    prf_enabled = system.forwarding.prf_attached
    system.filter.use_plan(
        FrontEndPlan(trace, gid_table, dp_table, prf_enabled))
    for engine in system.engines:
        if isinstance(engine, PmcAccelerator):
            engine.use_plan(PmcCheckPlan(
                trace, engine.bound_lo, engine.bound_hi))
        elif isinstance(engine, ShadowStackAccelerator):
            engine.use_plan(ShadowCheckPlan(trace))
        elif isinstance(engine, AsanAccelerator):
            engine.use_plan(AsanCheckPlan(trace))
