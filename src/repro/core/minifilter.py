"""Mini-filter: the SRAM look-up table behind each commit lane (Fig 3).

The 10-bit read address is ``funct3:opcode`` of the committing
instruction; the entry holds the mapper GID and the data-path selection
(which bypass circuits to read: PRF / LSQ / FTQ).  An unprogrammed
entry means the instruction is irrelevant to every running kernel.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import DP_FTQ, DP_LSQ, DP_PRF
from repro.errors import ConfigError
from repro.isa.filter_index import FILTER_TABLE_SIZE, filter_index


@dataclass(frozen=True)
class FilterEntry:
    """One programmed SRAM entry."""

    gid: int
    dp_sel: int  # OR of DP_PRF / DP_LSQ / DP_FTQ

    def __post_init__(self) -> None:
        if not 0 <= self.gid <= 0xFF:
            raise ConfigError(f"GID {self.gid} outside 8 bits")
        if self.dp_sel & ~(DP_PRF | DP_LSQ | DP_FTQ):
            raise ConfigError(f"bad dp_sel {self.dp_sel:#x}")


class MiniFilter:
    """One SRAM mini-filter; the event filter deploys one per lane.

    All lanes share programming in practice (the config path writes
    every mini-filter identically) — modelled by sharing one table
    between `MiniFilter` instances created with the same ``table``.
    """

    def __init__(self, table: list[FilterEntry | None] | None = None):
        if table is None:
            table = [None] * FILTER_TABLE_SIZE
        if len(table) != FILTER_TABLE_SIZE:
            raise ConfigError(
                f"filter table must have {FILTER_TABLE_SIZE} entries")
        self.table = table
        self.stat_lookups = 0
        self.stat_matches = 0

    def program(self, opcode: int, funct3: int, entry: FilterEntry) -> None:
        """Write one SRAM entry via the config path."""
        self.table[filter_index(opcode, funct3)] = entry

    def program_all_funct3(self, opcode: int, entry: FilterEntry) -> None:
        """Program every funct3 row of an opcode.

        Needed for jal/jalr-style opcodes whose bits [14:12] are
        immediate bits, not a function code: any value can appear on
        the SRAM address lines, so all eight rows must match.
        """
        for funct3 in range(8):
            self.program(opcode, funct3, entry)

    def clear(self) -> None:
        for i in range(FILTER_TABLE_SIZE):
            self.table[i] = None

    def lookup(self, opcode: int, funct3: int) -> FilterEntry | None:
        """One SRAM read: returns the entry, or None if unprogrammed."""
        self.stat_lookups += 1
        entry = self.table[filter_index(opcode, funct3)]
        if entry is not None:
            self.stat_matches += 1
        return entry
