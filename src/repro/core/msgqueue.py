"""Message queues and their controller (§III-D, Fig 6(b), Table I).

Each analysis engine owns an input queue (packets from the multicast
channel), a peer queue (words from the routing NoC), and an output
queue (words the kernel pushes for transmission).  The queue
controller exposes the state the ISAX instructions read: count, head
fields, most-recently-popped element, plus status registers reachable
through the APB bridge.
"""

from __future__ import annotations

from collections import deque

from repro.core.packet import Packet
from repro.errors import ConfigError, QueueError
from repro.utils.stats import Instrumented


class MessageQueue(Instrumented):
    """Bounded FIFO of packets (input queue) with `recent` tracking."""

    # Recently popped packets kept for alert attribution: unrolled
    # kernels pop several packets before checking them, so the engine
    # may alert a few pops after the offending packet left the queue.
    ATTRIBUTION_WINDOW = 8

    def __init__(self, depth: int):
        if depth <= 0:
            raise ConfigError("message queue depth must be positive")
        self.depth = depth
        self._entries: deque[Packet] = deque()
        self._recent: Packet | None = None
        self._popped: deque[Packet] = deque(maxlen=self.ATTRIBUTION_WINDOW)
        # Wakeup hook (repro.sched): called after every successful
        # push so a consumer blocked on this queue can be woken in the
        # same fabric cycle the packet lands.
        self.wake_hook = None
        self.stat_pushes = 0
        self.stat_pops = 0
        self.stat_full_cycles = 0
        self.stat_peak = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.depth

    @property
    def empty(self) -> bool:
        return not self._entries

    def push(self, packet: Packet) -> bool:
        if self.full:
            return False
        self._entries.append(packet)
        self.stat_pushes += 1
        if len(self._entries) > self.stat_peak:
            self.stat_peak = len(self._entries)
        if self.wake_hook is not None:
            self.wake_hook()
        return True

    # -- ISAX-visible operations (Table I) --------------------------------
    def count(self) -> int:
        """`count rd, rs1`: number of buffered packets."""
        return len(self._entries)

    def top(self, bit_offset: int) -> int:
        """`top rd, rs1`: head element's field, without removal."""
        if not self._entries:
            raise QueueError("top on empty message queue")
        return self._entries[0].word(bit_offset)

    def pop(self, bit_offset: int) -> int:
        """`pop rd, rs1`: remove the head, return its field."""
        if not self._entries:
            raise QueueError("pop on empty message queue")
        packet = self._entries.popleft()
        self._recent = packet
        self._popped.append(packet)
        self.stat_pops += 1
        return packet.word(bit_offset)

    def recent(self, bit_offset: int) -> int:
        """`recent rd, rs1`: field of the most recently removed element
        (e.g. AddressSanitizer fetches the PC only on a detected
        error — §III-D)."""
        if self._recent is None:
            raise QueueError("recent before any pop")
        return self._recent.word(bit_offset)

    @property
    def recent_packet(self) -> Packet | None:
        return self._recent

    def recently_popped(self) -> tuple[Packet, ...]:
        """Newest-first window of popped packets (alert attribution)."""
        return tuple(reversed(self._popped))

    def note_cycle(self) -> bool:
        """Per-cycle statistics sample; returns whether the queue was
        full (callers use it to keep back-pressure bookkeeping)."""
        if self.full:
            self.stat_full_cycles += 1
            return True
        return False

    def reset(self) -> None:
        """Drop buffered packets, attribution state and counters."""
        self._entries.clear()
        self._recent = None
        self._popped.clear()
        self.reset_stats()


class WordQueue(Instrumented):
    """Bounded FIFO of raw 64-bit words (peer/output queues)."""

    def __init__(self, depth: int):
        if depth <= 0:
            raise ConfigError("word queue depth must be positive")
        self.depth = depth
        self._entries: deque[int] = deque()
        # Wakeup hook (repro.sched): see MessageQueue.wake_hook.
        self.wake_hook = None
        self.stat_pushes = 0
        self.stat_pops = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.depth

    @property
    def empty(self) -> bool:
        return not self._entries

    def push(self, word: int) -> bool:
        if self.full:
            return False
        self._entries.append(word)
        self.stat_pushes += 1
        if self.wake_hook is not None:
            self.wake_hook()
        return True

    def pop(self) -> int:
        if not self._entries:
            raise QueueError("pop on empty word queue")
        self.stat_pops += 1
        return self._entries.popleft()

    def head(self) -> int:
        if not self._entries:
            raise QueueError("head of empty word queue")
        return self._entries[0]

    def reset(self) -> None:
        """Drop buffered words and counters."""
        self._entries.clear()
        self.reset_stats()


class QueueController:
    """MSQ_Ctrl (Fig 6(b)): the ISAX-facing façade over the queues.

    Queue selector 0 is the packet input queue; selector 1 is the peer
    (NoC) queue.  Status registers (engine id, destination register for
    pushes) sit behind the APB bridge.
    """

    INPUT = 0
    PEER = 1

    def __init__(self, engine_id: int, input_depth: int, peer_depth: int,
                 output_depth: int = 8):
        self.engine_id = engine_id
        self.input_queue = MessageQueue(input_depth)
        self.peer_queue = WordQueue(peer_depth)
        self.output_queue: deque[tuple[int, int]] = deque()
        self._output_depth = output_depth
        # Wakeup hooks (repro.sched): ``drain_hook`` fires when the
        # fabric drains a word from the output queue, so an engine
        # blocked on a full `qpush` can be woken the cycle space
        # appears; ``busy_hook`` fires when a push gives the fabric
        # outgoing work to drain.
        self.drain_hook = None
        self.busy_hook = None
        self.dest_register = 0  # target engine for pushed words

    def count(self, selector: int) -> int:
        if selector == self.INPUT:
            return self.input_queue.count()
        if selector == self.PEER:
            return len(self.peer_queue)
        raise QueueError(f"bad queue selector {selector}")

    def can_push(self) -> bool:
        return len(self.output_queue) < self._output_depth

    def push(self, word: int) -> bool:
        """`push rs1`: enqueue a word for the routing channel, targeted
        at the engine named by the destination status register."""
        if not self.can_push():
            return False
        self.output_queue.append((self.dest_register, word))
        if self.busy_hook is not None:
            self.busy_hook()
        return True

    def take_outgoing(self) -> tuple[int, int] | None:
        """Fabric side: drain one (dest, word) pair per cycle."""
        if self.output_queue:
            item = self.output_queue.popleft()
            if self.drain_hook is not None:
                self.drain_hook()
            return item
        return None

    def reset(self) -> None:
        """Drop all three queues' contents and status registers."""
        self.input_queue.reset()
        self.peer_queue.reset()
        self.output_queue.clear()
        self.dest_register = 0

    def stats(self) -> dict[str, int]:
        """Uniform stats view: input/peer counters, prefixed."""
        merged = {f"input_{k}": v
                  for k, v in self.input_queue.stats().items()}
        merged.update({f"peer_{k}": v
                       for k, v in self.peer_queue.stats().items()})
        return merged

    def reset_stats(self) -> None:
        self.input_queue.reset_stats()
        self.peer_queue.reset_stats()
