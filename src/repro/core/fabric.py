"""Multicast channel (§III-C): the fabric's half-duplex 1-to-N path.

Multiplexers steer each packet from the CDC to every message queue
whose bit is set in the allocator's decision mask.  A multicast
completes atomically: if any target queue is full the packet waits,
back-pressuring the CDC and, transitively, commit — the queue-full
time Fig 9 attributes to the mapper/CDC.
"""

from __future__ import annotations

from repro.core.msgqueue import MessageQueue
from repro.core.packet import Packet
from repro.errors import ConfigError
from repro.utils.stats import Instrumented


class MulticastChannel(Instrumented):
    """Selective broadcast from the filter to the analysis engines.

    ``width`` channels may be in flight at once (the superscalar-mapper
    variant of §III-C footnote 5); each message queue still accepts at
    most one packet per cycle, so two in-flight multicasts aimed at the
    same engine serialise through the extra arbiter.
    """

    def __init__(self, queues: list[MessageQueue], width: int = 1,
                 queue_ports: int = 1):
        if not queues:
            raise ConfigError("multicast channel needs target queues")
        if width <= 0:
            raise ConfigError("multicast width must be positive")
        if queue_ports <= 0:
            raise ConfigError("queues need at least one write port")
        self.queues = queues
        self.width = width
        self.queue_ports = queue_ports
        self._pending: list[tuple[Packet, int]] = []
        self.stat_delivered = 0
        self.stat_blocked_cycles = 0
        self.stat_port_conflicts = 0

    def reset(self) -> None:
        """Drop in-flight multicasts and counters (session reset)."""
        self._pending.clear()
        self.reset_stats()

    @property
    def busy(self) -> bool:
        """True when no further packet can be accepted this cycle."""
        return len(self._pending) >= self.width

    @property
    def draining(self) -> bool:
        return bool(self._pending)

    @property
    def pending_count(self) -> int:
        """In-flight multicasts (drain diagnostics)."""
        return len(self._pending)

    def submit(self, packet: Packet, mask: int) -> bool:
        """Accept a packet for delivery; False when channels are full."""
        if self.busy:
            return False
        self._pending.append((packet, mask))
        return True

    def step(self, _low_cycle: int) -> Packet | None:
        """Attempt pending multicasts in order; returns the first
        packet fully delivered this cycle (None if all blocked)."""
        if not self._pending:
            return None
        delivered_first: Packet | None = None
        port_use: dict[int, int] = {}
        remaining: list[tuple[Packet, int]] = []
        blocked = False
        for packet, mask in self._pending:
            targets = [i for i in range(len(self.queues))
                       if mask >> i & 1]
            conflict = any(port_use.get(i, 0) >= self.queue_ports
                           for i in targets)
            if conflict:
                self.stat_port_conflicts += 1
            if blocked or conflict \
                    or any(self.queues[i].full for i in targets):
                # In-order delivery: a blocked multicast blocks the
                # ones behind it (they share the allocator's ordering).
                remaining.append((packet, mask))
                blocked = True
                continue
            for i in targets:
                self.queues[i].push(packet)
                port_use[i] = port_use.get(i, 0) + 1
            self.stat_delivered += 1
            if delivered_first is None:
                delivered_first = packet
        if blocked and delivered_first is None:
            self.stat_blocked_cycles += 1
        self._pending = remaining
        return delivered_first
