"""Data-forwarding channel (§III-A, Fig 2).

Buffer-free bypass circuits at the ROB, PRFs, LSQ and FTQ extract debug
data for committed instructions the mini-filters selected.  The only
microarchitectural cost is PRF read-port contention: when a packet
needs PRF data, the channel preempts the lane's read controller in the
cycle after retirement, delaying any issuing instruction that wanted
the same port (Fig 2 step c).  LDQ/STQ/FTQ reads come from the queue
tops and are contention-free (§III-A footnote 3).
"""

from __future__ import annotations

from repro.core.config import DP_PRF
from repro.core.minifilter import FilterEntry
from repro.core.packet import Packet
from repro.isa.opcodes import PRF_RESULT_CLASSES, InstrClass
from repro.ooo.prf import PhysicalRegisterFile
from repro.trace.record import InstrRecord
from repro.utils.stats import Instrumented


class DataForwardingChannel(Instrumented):
    """Builds packets from commit events and models the PRF bypass."""

    def __init__(self, prf: PhysicalRegisterFile | None):
        self._prf = prf
        self.stat_packets = 0
        self.stat_prf_reads = 0

    def capture(self, record: InstrRecord, entry: FilterEntry, seq: int,
                cycle: int, commit_ns: float) -> Packet:
        """Extract the selected debug data for a filtered instruction.

        The PRF read happens in the cycle after retirement (the
        mini-filter decision takes one cycle — Fig 2 step b), so the
        port preemption lands at ``cycle + 1``.
        """
        is_alloc = (record.iclass is InstrClass.CUSTOM
                    and record.funct3 == 0)
        is_free = (record.iclass is InstrClass.CUSTOM
                   and record.funct3 == 1)
        packet = Packet(seq=seq, gid=entry.gid, record=record,
                        commit_ns=commit_ns, is_alloc=is_alloc,
                        is_free=is_free)
        self.stat_packets += 1

        if (entry.dp_sel & DP_PRF
                and record.iclass in PRF_RESULT_CLASSES
                and self._prf is not None):
            self._prf.preempt_port(cycle + 1)
            self.stat_prf_reads += 1
        return packet

    @property
    def prf_attached(self) -> bool:
        """Whether captures can preempt a PRF port (plan building
        needs to bake the ``self._prf is not None`` leg of the
        condition above into the precomputed flag)."""
        return self._prf is not None

    def note_capture(self, prf_read: bool, cycle: int) -> None:
        """Account one capture whose packet was built from a
        precomputed plan row: same statistics and PRF-preemption
        timing as :meth:`capture`, without re-deriving the decision.
        ``prf_read`` already includes every leg of the scalar
        condition (dp_sel, result class, PRF attached)."""
        self.stat_packets += 1
        if prf_read:
            self._prf.preempt_port(cycle + 1)
            self.stat_prf_reads += 1
