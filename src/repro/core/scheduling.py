"""Scheduling Engines (§III-C, Fig 5).

Each SE is one-to-one associated with a guardian kernel.  It owns two
scheduling registers (PT_reg — previous target — and CT_reg — current
target), an AE_Bitmap naming the analysis engines running its kernel,
and a scheduling circuit implementing the paper's policies:

* ``FIXED`` — always the first engine in the group;
* ``ROUND_ROBIN`` — rotate per packet;
* ``BLOCK`` — keep sending to one engine for a fixed block of packets
  before moving on (message locality for e.g. the shadow stack).  The
  paper describes switching when the target queue fills; a fixed block
  length is the deterministic variant that lets kernels run a matching
  hand-off protocol over the routing NoC (see
  :mod:`repro.kernels.shadow_stack`).
"""

from __future__ import annotations

from enum import Enum
from typing import Sequence

from repro.errors import ConfigError
from repro.utils.bitfield import Bitmap
from repro.utils.stats import Instrumented


class SchedulingPolicy(Enum):
    FIXED = "fixed"
    ROUND_ROBIN = "round_robin"
    BLOCK = "block"

    @classmethod
    def parse(cls, name: str) -> "SchedulingPolicy":
        try:
            return cls(name)
        except ValueError:
            raise ConfigError(f"unknown scheduling policy {name!r}") from None


class SchedulingEngine(Instrumented):
    """One SE: selects the target analysis engine for each packet."""

    def __init__(self, se_index: int, engines: Sequence[int],
                 num_engines_total: int,
                 policy: SchedulingPolicy = SchedulingPolicy.ROUND_ROBIN,
                 block_size: int = 16):
        if not engines:
            raise ConfigError(f"SE {se_index}: empty engine group")
        for e in engines:
            if not 0 <= e < num_engines_total:
                raise ConfigError(
                    f"SE {se_index}: engine {e} outside "
                    f"[0, {num_engines_total})")
        if block_size <= 0:
            raise ConfigError(f"SE {se_index}: block size must be positive")
        self.se_index = se_index
        self.engines = tuple(engines)
        self.policy = policy
        self.block_size = block_size
        self.ae_bitmap = Bitmap(num_engines_total)
        self.pt_reg = 0   # previous target (position within the group)
        self.ct_reg = 0   # current target
        self._block_remaining = block_size
        self.stat_selections = 0
        self.stat_block_switches = 0

    def select(self) -> int:
        """Run the scheduling circuit: compute CT_reg from PT_reg, set
        the AE_Bitmap bit, and return the chosen engine index."""
        self.stat_selections += 1
        if self.policy is SchedulingPolicy.FIXED:
            position = 0
        elif self.policy is SchedulingPolicy.ROUND_ROBIN:
            position = ((self.pt_reg + 1) % len(self.engines)
                        if self.stat_selections > 1 else 0)
        else:  # BLOCK
            position = self._select_block()
        self.ct_reg = position
        engine = self.engines[position]
        self.ae_bitmap.clear_all()
        self.ae_bitmap.set(engine)
        self.pt_reg = self.ct_reg
        return engine

    def reset(self) -> None:
        """Return the scheduling registers to their power-on values
        (session reset; the AE group itself is build-time state)."""
        self.ae_bitmap.clear_all()
        self.pt_reg = 0
        self.ct_reg = 0
        self._block_remaining = self.block_size
        self.reset_stats()

    def _select_block(self) -> int:
        """BLOCK mode: stay on the previous target for ``block_size``
        packets, then advance around the group."""
        position = self.pt_reg
        if self._block_remaining == 0:
            position = (position + 1) % len(self.engines)
            self._block_remaining = self.block_size
            self.stat_block_switches += 1
        self._block_remaining -= 1
        return position
