"""Clock-domain-crossing FIFO (§III footnote 2; Table II: 8-entry CDC).

The allocator (high-frequency domain) pushes (packet, multicast-mask)
pairs; the fabric (low-frequency domain) pops them.  Handshake CDCs
add a fixed synchroniser delay on top of queue occupancy.
"""

from __future__ import annotations

from collections import deque

from repro.core.packet import Packet
from repro.errors import ConfigError
from repro.utils.stats import Instrumented


class CdcFifo(Instrumented):
    """Dual-clock FIFO with occupancy-based back-pressure."""

    def __init__(self, depth: int, sync_delay_low_cycles: int = 1):
        if depth <= 0:
            raise ConfigError("CDC depth must be positive")
        if sync_delay_low_cycles < 0:
            raise ConfigError("CDC sync delay cannot be negative")
        self.depth = depth
        self.sync_delay = sync_delay_low_cycles
        self._entries: deque[tuple[Packet, int, int]] = deque()
        self.stat_pushes = 0
        self.stat_full_cycles = 0
        self.stat_peak = 0

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.depth

    @property
    def empty(self) -> bool:
        return not self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def push(self, packet: Packet, mask: int, low_cycle: int) -> bool:
        """High-domain side: enqueue, or report full."""
        if self.full:
            return False
        # Entry becomes visible to the low domain after the
        # synchroniser delay.
        self._entries.append((packet, mask, low_cycle + self.sync_delay))
        self.stat_pushes += 1
        if len(self._entries) > self.stat_peak:
            self.stat_peak = len(self._entries)
        return True

    def pop(self, low_cycle: int) -> tuple[Packet, int] | None:
        """Low-domain side: dequeue the head if it has synchronised."""
        if not self._entries:
            return None
        packet, mask, visible_at = self._entries[0]
        if low_cycle < visible_at:
            return None
        self._entries.popleft()
        return packet, mask

    def note_cycle(self, _low_cycle: int) -> None:
        """Book-keeping hook: called once per low cycle for stats."""
        if self.full:
            self.stat_full_cycles += 1

    def next_event_cycle(self, now: int) -> int | None:
        """Wakeable protocol (:mod:`repro.sched`): the next low cycle
        the fabric must look at this FIFO.

        Empty means nothing scheduled (the mapper posts a wake on
        push).  A full FIFO needs every cycle (occupancy statistics
        accrue while full); otherwise the head's synchroniser expiry is
        the next interesting cycle.
        """
        if not self._entries:
            return None
        if self.full:
            return now + 1
        visible_at = self._entries[0][2]
        return visible_at if visible_at > now else now + 1

    def reset(self) -> None:
        """Drop queued entries and counters (session reset)."""
        self._entries.clear()
        self.reset_stats()
