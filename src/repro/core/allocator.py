"""Allocator: distributor + Scheduling Engines (§III-C, Fig 5).

The distributor keeps an ``SE_Bitmap`` register per GID: bit *s* set
means SE *s* is interested in that group.  On each packet it activates
the flagged SEs; each selects a target engine into its AE_Bitmap; the
AE_Bitmaps are OR-ed into the multicast decision.  One packet per
cycle — the mapper is deliberately scalar (§III-C: <0.5 % slowdown on a
4-wide BOOM).
"""

from __future__ import annotations

from repro.core.packet import Packet
from repro.core.scheduling import SchedulingEngine
from repro.errors import ConfigError
from repro.utils.bitfield import Bitmap
from repro.utils.stats import Instrumented


class Distributor:
    """Per-GID SE_Bitmap registers (Fig 5-a)."""

    def __init__(self, max_gids: int, num_ses: int):
        if max_gids <= 0 or num_ses <= 0:
            raise ConfigError("distributor needs positive GID/SE counts")
        self.num_ses = num_ses
        self._bitmaps = [Bitmap(num_ses) for _ in range(max_gids)]

    def subscribe(self, gid: int, se_index: int) -> None:
        """Set bit ``se_index`` in SE_Bitmap[gid]."""
        self._bitmap(gid).set(se_index)

    def unsubscribe(self, gid: int, se_index: int) -> None:
        self._bitmap(gid).clear(se_index)

    def interested_ses(self, gid: int) -> list[int]:
        return list(self._bitmap(gid).set_bits())

    def _bitmap(self, gid: int) -> Bitmap:
        if not 0 <= gid < len(self._bitmaps):
            raise ConfigError(f"GID {gid} outside distributor range")
        return self._bitmaps[gid]


class Allocator(Instrumented):
    """2-level indirection: GID → SEs → analysis engines."""

    def __init__(self, distributor: Distributor,
                 ses: list[SchedulingEngine], num_engines: int):
        if len(ses) != distributor.num_ses:
            raise ConfigError(
                f"{len(ses)} SEs but distributor sized for "
                f"{distributor.num_ses}")
        self.distributor = distributor
        self.ses = ses
        self.num_engines = num_engines
        self.stat_packets = 0
        self.stat_dropped = 0

    def route(self, packet: Packet) -> int:
        """Compute the multicast mask for one packet (one per cycle).

        Returns a bitmask over analysis engines (the OR of the
        activated SEs' AE_Bitmaps).  Zero means no SE was interested —
        the filter was programmed for a GID no kernel consumes.
        """
        self.stat_packets += 1
        decision = Bitmap(self.num_engines)
        for se_index in self.distributor.interested_ses(packet.gid):
            self.ses[se_index].select()
            decision.or_with(self.ses[se_index].ae_bitmap)
        if not decision:
            self.stat_dropped += 1
        return decision.value
