"""Hardware accelerators (§IV-A).

The paper shows that replacing the µcores with a single fixed-function
accelerator removes PMC and shadow-stack overhead entirely: an HA
consumes one packet per fabric cycle with a short pipeline, so it never
back-pressures the mapper.  These models implement the same checking
semantics as the corresponding guardian kernels, directly in Python
("hardwired" logic rather than a program on a µcore).
"""

from __future__ import annotations

from typing import Callable

from repro.core.msgqueue import MessageQueue
from repro.core.packet import (
    META_ALLOC,
    META_CALL,
    META_FREE,
    META_LOAD,
    META_RET,
    META_STORE,
    OFF_ADDR,
    OFF_DATA,
    Packet,
)
from repro.utils.stats import Instrumented

AlertCallback = Callable[[int, Packet, int], None]
"""(engine_id, packet, low_cycle) — invoked on each detection."""


class HardwareAccelerator(Instrumented):
    """Base: drains its message queue at the fabric's line rate.

    The fixed-function pipeline accepts several packets per fabric
    cycle (``throughput``, default sized to the core's commit width at
    the 2:1 clock ratio), which is what lets an HA remove PMC and
    shadow-stack overhead entirely (§IV-A).
    """

    name = "ha"

    def __init__(self, engine_id: int, queue: MessageQueue,
                 on_alert: AlertCallback, throughput: int = 8):
        self.engine_id = engine_id
        self.queue = queue
        self.on_alert = on_alert
        self.throughput = throughput
        # Per-run vectorized pre-check plan (REPRO_BACKEND=vector):
        # verdicts precomputed per record, scalar check() only on the
        # rows the array pass flagged as interesting.
        self._plan = None
        self.stat_packets = 0
        self.stat_alerts = 0

    def use_plan(self, plan) -> None:
        """Attach a :class:`~repro.core.vector.EngineCheckPlan` for
        the run about to start (cleared by :meth:`reset`)."""
        self._plan = plan

    def tick(self, low_cycle: int) -> None:
        plan = self._plan
        for _ in range(self.throughput):
            if self.queue.empty:
                return
            self.queue.pop(0)
            packet = self.queue.recent_packet
            self.stat_packets += 1
            if plan is not None:
                verdict = plan.verdict(self, packet, low_cycle)
            else:
                verdict = self.check(packet, low_cycle)
            if verdict:
                self.stat_alerts += 1
                self.on_alert(self.engine_id, packet, low_cycle)

    def check(self, packet: Packet, low_cycle: int) -> bool:
        """Return True when the packet violates the property."""
        raise NotImplementedError

    @property
    def idle(self) -> bool:
        return self.queue.empty

    def idle_at(self, _low_cycle: int) -> bool:
        """Uniform drain-check interface with :class:`MicroCore`."""
        return self.queue.empty

    def can_skip(self) -> bool:
        """Uniform idle-skip interface with :class:`MicroCore`: an HA
        with an empty queue has nothing to do this cycle."""
        return self.queue.empty

    def next_event_cycle(self, now: int) -> int | None:
        """Wakeable protocol (:mod:`repro.sched`): an HA drains its
        queue every cycle while work is buffered and sleeps otherwise
        (the queue's push hook wakes it when a packet lands)."""
        return None if self.queue.empty else now + 1

    def reset(self) -> None:
        """Power-on state (session reset); subclasses reset their
        checking state via :meth:`_reset_state`."""
        self._plan = None
        self._reset_state()
        self.reset_stats()

    def _reset_state(self) -> None:
        """Subclass hook: clear kernel-specific checking state."""


class PmcAccelerator(HardwareAccelerator):
    """Custom performance counter with bounds check, in hardware.

    Counts monitored events per class and flags any memory access
    outside the configured fence registers — the same semantics as the
    PMC guardian kernel.
    """

    name = "pmc_ha"

    def __init__(self, engine_id: int, queue: MessageQueue,
                 on_alert: AlertCallback, bound_lo: int, bound_hi: int):
        super().__init__(engine_id, queue, on_alert)
        self.bound_lo = bound_lo
        self.bound_hi = bound_hi
        self.event_count = 0

    def _reset_state(self) -> None:
        self.event_count = 0

    def check(self, packet: Packet, low_cycle: int) -> bool:
        self.event_count += 1
        addr = packet.word(OFF_ADDR)
        return not self.bound_lo <= addr < self.bound_hi


class ShadowStackAccelerator(HardwareAccelerator):
    """Shadow stack in dedicated hardware: a private LIFO of return
    addresses, pushed on calls and checked on returns."""

    name = "shadow_ha"

    def __init__(self, engine_id: int, queue: MessageQueue,
                 on_alert: AlertCallback, max_depth: int = 1024):
        super().__init__(engine_id, queue, on_alert)
        self._stack: list[int] = []
        self._max_depth = max_depth
        self.stat_overflows = 0

    def _reset_state(self) -> None:
        self._stack.clear()

    def check(self, packet: Packet, low_cycle: int) -> bool:
        meta = packet.meta
        if meta & META_CALL:
            if len(self._stack) >= self._max_depth:
                self._stack.pop(0)
                self.stat_overflows += 1
            # Debug data carries the return address (PC + 4).
            self._stack.append(packet.word(OFF_DATA))
            return False
        if meta & META_RET:
            target = packet.word(OFF_ADDR)
            if not self._stack:
                return True  # return with empty shadow stack
            expected = self._stack.pop()
            return target != expected
        return False


class AsanAccelerator(HardwareAccelerator):
    """Shadow-memory sanitiser in dedicated hardware (§IV-A).

    Same 16-byte-granule semantics as the ASan guardian kernel —
    allocations poison a redzone granule each side and clear the body,
    frees poison the body, monitored accesses check their granule —
    with one deliberate difference: free-time poisoning is synchronous.
    The µcore kernel defers it (FREE_DELAY_PACKETS) because checking is
    distributed across engines with in-flight skew; a single HA drains
    its queue in commit order, so there is no skew to quarantine
    against.
    """

    name = "asan_ha"

    # Poison bytes, mirroring repro.kernels.asan (kept literal here:
    # the kernels package layers above core and cannot be imported).
    POISON_LEFT = 0xF1
    POISON_RIGHT = 0xF3
    POISON_FREED = 0xFD
    GRANULE_SHIFT = 4

    def __init__(self, engine_id: int, queue: MessageQueue,
                 on_alert: AlertCallback):
        super().__init__(engine_id, queue, on_alert)
        # granule index -> poison byte; absent means addressable.
        self._shadow: dict[int, int] = {}

    def _reset_state(self) -> None:
        self._shadow.clear()

    def check(self, packet: Packet, low_cycle: int) -> bool:
        meta = packet.meta
        shift = self.GRANULE_SHIFT
        shadow = self._shadow
        if meta & (META_LOAD | META_STORE):
            granule = packet.word(OFF_ADDR) >> shift
            return shadow.get(granule, 0) != 0
        if meta & META_ALLOC:
            base = packet.word(OFF_ADDR)
            size = packet.word(OFF_DATA)
            first = base >> shift
            shadow[first - 1] = self.POISON_LEFT
            shadow[(base + size) >> shift] = self.POISON_RIGHT
            for granule in range(first, first + (size >> shift)):
                shadow.pop(granule, None)
            return False
        if meta & META_FREE:
            base = packet.word(OFF_ADDR)
            size = packet.word(OFF_DATA)
            first = base >> shift
            for granule in range(first, first + (size >> shift)):
                shadow[granule] = self.POISON_FREED
            return False
        return False
