"""Hardware accelerators (§IV-A).

The paper shows that replacing the µcores with a single fixed-function
accelerator removes PMC and shadow-stack overhead entirely: an HA
consumes one packet per fabric cycle with a short pipeline, so it never
back-pressures the mapper.  These models implement the same checking
semantics as the corresponding guardian kernels, directly in Python
("hardwired" logic rather than a program on a µcore).
"""

from __future__ import annotations

from typing import Callable

from repro.core.msgqueue import MessageQueue
from repro.core.packet import (
    META_CALL,
    META_RET,
    OFF_ADDR,
    OFF_DATA,
    Packet,
)
from repro.utils.stats import Instrumented

AlertCallback = Callable[[int, Packet, int], None]
"""(engine_id, packet, low_cycle) — invoked on each detection."""


class HardwareAccelerator(Instrumented):
    """Base: drains its message queue at the fabric's line rate.

    The fixed-function pipeline accepts several packets per fabric
    cycle (``throughput``, default sized to the core's commit width at
    the 2:1 clock ratio), which is what lets an HA remove PMC and
    shadow-stack overhead entirely (§IV-A).
    """

    name = "ha"

    def __init__(self, engine_id: int, queue: MessageQueue,
                 on_alert: AlertCallback, throughput: int = 8):
        self.engine_id = engine_id
        self.queue = queue
        self.on_alert = on_alert
        self.throughput = throughput
        self.stat_packets = 0
        self.stat_alerts = 0

    def tick(self, low_cycle: int) -> None:
        for _ in range(self.throughput):
            if self.queue.empty:
                return
            self.queue.pop(0)
            packet = self.queue.recent_packet
            self.stat_packets += 1
            if self.check(packet, low_cycle):
                self.stat_alerts += 1
                self.on_alert(self.engine_id, packet, low_cycle)

    def check(self, packet: Packet, low_cycle: int) -> bool:
        """Return True when the packet violates the property."""
        raise NotImplementedError

    @property
    def idle(self) -> bool:
        return self.queue.empty

    def idle_at(self, _low_cycle: int) -> bool:
        """Uniform drain-check interface with :class:`MicroCore`."""
        return self.queue.empty

    def can_skip(self) -> bool:
        """Uniform idle-skip interface with :class:`MicroCore`: an HA
        with an empty queue has nothing to do this cycle."""
        return self.queue.empty

    def next_event_cycle(self, now: int) -> int | None:
        """Wakeable protocol (:mod:`repro.sched`): an HA drains its
        queue every cycle while work is buffered and sleeps otherwise
        (the queue's push hook wakes it when a packet lands)."""
        return None if self.queue.empty else now + 1

    def reset(self) -> None:
        """Power-on state (session reset); subclasses reset their
        checking state via :meth:`_reset_state`."""
        self._reset_state()
        self.reset_stats()

    def _reset_state(self) -> None:
        """Subclass hook: clear kernel-specific checking state."""


class PmcAccelerator(HardwareAccelerator):
    """Custom performance counter with bounds check, in hardware.

    Counts monitored events per class and flags any memory access
    outside the configured fence registers — the same semantics as the
    PMC guardian kernel.
    """

    name = "pmc_ha"

    def __init__(self, engine_id: int, queue: MessageQueue,
                 on_alert: AlertCallback, bound_lo: int, bound_hi: int):
        super().__init__(engine_id, queue, on_alert)
        self.bound_lo = bound_lo
        self.bound_hi = bound_hi
        self.event_count = 0

    def _reset_state(self) -> None:
        self.event_count = 0

    def check(self, packet: Packet, low_cycle: int) -> bool:
        self.event_count += 1
        addr = packet.word(OFF_ADDR)
        return not self.bound_lo <= addr < self.bound_hi


class ShadowStackAccelerator(HardwareAccelerator):
    """Shadow stack in dedicated hardware: a private LIFO of return
    addresses, pushed on calls and checked on returns."""

    name = "shadow_ha"

    def __init__(self, engine_id: int, queue: MessageQueue,
                 on_alert: AlertCallback, max_depth: int = 1024):
        super().__init__(engine_id, queue, on_alert)
        self._stack: list[int] = []
        self._max_depth = max_depth
        self.stat_overflows = 0

    def _reset_state(self) -> None:
        self._stack.clear()

    def check(self, packet: Packet, low_cycle: int) -> bool:
        meta = packet.meta
        if meta & META_CALL:
            if len(self._stack) >= self._max_depth:
                self._stack.pop(0)
                self.stat_overflows += 1
            # Debug data carries the return address (PC + 4).
            self._stack.append(packet.word(OFF_DATA))
            return False
        if meta & META_RET:
            target = packet.word(OFF_ADDR)
            if not self._stack:
                return True  # return with empty shadow stack
            expected = self._stack.pop()
            return target != expected
        return False
