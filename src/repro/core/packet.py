"""Packet encapsulation (Fig 4(b): G_ID | Inst | PC | Addr | Debug_Data).

Packets are what flows from the event filter through the mapper into
the analysis engines' message queues.  Guardian kernels running on
µcores read packets as four 64-bit words through the ISAX queue
instructions (``pop rd, rs1`` returns bitfields ``[rs1+63:rs1]``), so
the field layout here is part of the programming model:

====  ==========  ====================================================
word  bit offset  contents
====  ==========  ====================================================
0     0           metadata: class flags[5:0] (load/store/call/ret/
                  alloc/free), GID[15:8], opcode[22:16], funct3[25:23],
                  mem_size[33:26], instruction word bits in [63:34]
1     64          PC of the committed instruction
2     128         memory address / branch target / allocation base
3     192         debug data (store value, return address, alloc size)
====  ==========  ====================================================

The class flags sit in the low bits so kernels can test them with one
``andi`` (12-bit immediate).
"""

from __future__ import annotations

from repro.isa.opcodes import InstrClass
from repro.trace.record import InstrRecord

# Class flag bits in metadata word bits [5:0].
META_LOAD = 1 << 0
META_STORE = 1 << 1
META_CALL = 1 << 2
META_RET = 1 << 3
META_ALLOC = 1 << 4
META_FREE = 1 << 5

# Word bit offsets for the ISAX pop/top/recent offset operand.
OFF_META = 0
OFF_PC = 64
OFF_ADDR = 128
OFF_DATA = 192

_CLASS_FLAGS = {
    InstrClass.LOAD: META_LOAD,
    InstrClass.STORE: META_STORE,
    InstrClass.CALL: META_CALL,
    InstrClass.RET: META_RET,
}

_MASK64 = (1 << 64) - 1


class Packet:
    """One filtered, encapsulated commit event."""

    __slots__ = ("seq", "gid", "valid", "pc", "addr", "data", "meta",
                 "attack_id", "commit_ns")

    def __init__(self, seq: int, gid: int, record: InstrRecord,
                 commit_ns: float, is_alloc: bool = False,
                 is_free: bool = False):
        self.seq = seq
        self.gid = gid
        self.valid = True
        self.pc = record.pc
        self.attack_id = record.attack_id
        self.commit_ns = commit_ns

        iclass = record.iclass
        if iclass in (InstrClass.BRANCH, InstrClass.JUMP, InstrClass.CALL,
                      InstrClass.RET):
            self.addr = record.target
        elif record.mem_addr is not None:
            self.addr = record.mem_addr
        else:
            self.addr = 0
        self.data = record.result & _MASK64

        meta = _CLASS_FLAGS.get(iclass, 0)
        if is_alloc:
            meta |= META_ALLOC
        if is_free:
            meta |= META_FREE
        meta |= (self.gid & 0xFF) << 8
        meta |= (record.opcode & 0x7F) << 16
        meta |= (record.funct3 & 0x7) << 23
        meta |= (record.mem_size & 0xFF) << 26
        meta |= (record.word & 0x3FFFFFFF) << 34
        self.meta = meta

    @classmethod
    def from_fields(cls, seq: int, gid: int, pc: int, addr: int,
                    data: int, meta: int, attack_id: int | None,
                    commit_ns: float) -> "Packet":
        """A valid packet from precomputed word values (the vector
        backend's sparse hand-off: the per-chunk array pass already
        derived ``addr``/``data``/``meta`` exactly as ``__init__``
        would from the record)."""
        pkt = object.__new__(cls)
        pkt.seq = seq
        pkt.gid = gid
        pkt.valid = True
        pkt.pc = pc
        pkt.addr = addr
        pkt.data = data
        pkt.meta = meta
        pkt.attack_id = attack_id
        pkt.commit_ns = commit_ns
        return pkt

    @classmethod
    def invalid(cls, seq: int) -> "Packet":
        """An ordering placeholder for a discarded instruction (§III-B:
        invalid packets keep FIFO contents in commit order; the arbiter
        skips them without consuming a cycle)."""
        pkt = object.__new__(cls)
        pkt.seq = seq
        pkt.gid = 0
        pkt.valid = False
        pkt.pc = 0
        pkt.addr = 0
        pkt.data = 0
        pkt.meta = 0
        pkt.attack_id = None
        pkt.commit_ns = 0.0
        return pkt

    def word(self, bit_offset: int) -> int:
        """The 64-bit field at ``bit_offset`` — what ``pop/top/recent``
        with that offset operand returns."""
        if bit_offset < 64:
            value = self.meta >> bit_offset
        elif bit_offset < 128:
            value = self.pc >> (bit_offset - 64)
        elif bit_offset < 192:
            value = self.addr >> (bit_offset - 128)
        else:
            value = self.data >> (bit_offset - 192)
        return value & _MASK64

    def __repr__(self) -> str:
        if not self.valid:
            return f"Packet(seq={self.seq}, invalid)"
        return (f"Packet(seq={self.seq}, gid={self.gid}, pc={self.pc:#x}, "
                f"addr={self.addr:#x})")
