"""Event filter (§III-B, Fig 1-b, Fig 4): mini-filters, paired FIFOs,
and the in-order arbiter.

One mini-filter hangs off each commit lane.  Every committed
instruction pushes *something* into its lane FIFO — a real packet if
the SRAM matched, an invalid placeholder otherwise — so commit order is
recoverable.  The arbiter walks packets in sequence order, skipping
invalid packets for free and emitting one valid packet per cycle
(§III-B footnote 4).

Back-pressure: when a lane FIFO is full, that commit lane (and, because
commit is in order, every younger lane) stalls — the mechanism Fig 9
measures as "proportion of time queues are full".
"""

from __future__ import annotations

from collections import deque

from repro.core.forwarding import DataForwardingChannel
from repro.core.minifilter import FilterEntry, MiniFilter
from repro.core.packet import Packet
from repro.errors import ConfigError
from repro.isa.filter_index import FILTER_TABLE_SIZE
from repro.trace.record import InstrRecord
from repro.utils.stats import Instrumented


class EventFilter(Instrumented):
    """Superscalar event filter, as wide as the core's commit."""

    def __init__(self, width: int, fifo_depth: int,
                 forwarding: DataForwardingChannel,
                 high_period_ns: float):
        if width <= 0:
            raise ConfigError("filter width must be positive")
        if fifo_depth <= 0:
            raise ConfigError("filter FIFO depth must be positive")
        self.width = width
        self.fifo_depth = fifo_depth
        self.forwarding = forwarding
        self._high_period_ns = high_period_ns

        # All mini-filters share one SRAM programming image.
        shared_table: list[FilterEntry | None] = [None] * FILTER_TABLE_SIZE
        self.minifilters = [MiniFilter(shared_table) for _ in range(width)]
        self._fifos: list[deque[Packet]] = [deque() for _ in range(width)]

        self._seq = 0            # commit-order sequence stamped on packets
        self._arbiter_next = 0   # next sequence number to emit
        self._lane_rr = 0
        self._pending = 0        # packets buffered across all FIFOs
        # Per-run vectorized decision plan (REPRO_BACKEND=vector); the
        # offer path consumes one precomputed row per accepted offer
        # instead of the per-record SRAM lookup + capture.
        self._plan = None
        self.stat_full_cycles = 0      # cycles some lane FIFO was full
        self.stat_valid_packets = 0
        self.stat_invalid_packets = 0
        self.stat_emitted = 0

    # -- programming -----------------------------------------------------
    def program(self, opcode: int, funct3: int, entry: FilterEntry) -> None:
        self.minifilters[0].program(opcode, funct3, entry)

    def program_all_funct3(self, opcode: int, entry: FilterEntry) -> None:
        self.minifilters[0].program_all_funct3(opcode, entry)

    def clear_programming(self) -> None:
        self.minifilters[0].clear()

    def use_plan(self, plan) -> None:
        """Attach a :class:`~repro.core.vector.FrontEndPlan` for the
        run about to start (cleared by :meth:`reset`).  The plan's rows
        are the precomputed outcome of exactly the lookups and captures
        the scalar path would perform, so every statistic and timing
        side effect below is reproduced bit for bit."""
        self._plan = plan

    # -- session reset -----------------------------------------------------
    def reset(self) -> None:
        """Drop all queued packets and counters; keep the SRAM
        programming (it is build-time state)."""
        for fifo in self._fifos:
            fifo.clear()
        self._seq = 0
        self._arbiter_next = 0
        self._lane_rr = 0
        self._pending = 0
        self._plan = None
        self.reset_stats()

    # -- commit side (high domain) ---------------------------------------
    def offer(self, record: InstrRecord, lane: int, cycle: int) -> bool:
        """Called by the commit stage for each retiring instruction.

        Returns False (stall) when the lane FIFO cannot take another
        entry this cycle.
        """
        fifo = self._fifos[lane % self.width]
        if len(fifo) >= self.fifo_depth:
            return False
        plan = self._plan
        if plan is not None:
            # Vector backend: the row for this commit-order sequence
            # number holds the precomputed lookup/capture outcome.
            # Mini-filter statistics still advance per offer (the SRAM
            # is still read in hardware; only the model is batched).
            seq = self._seq
            matched, gid, addr, data, meta, prf = plan.take(seq)
            mini = self.minifilters[lane % self.width]
            mini.stat_lookups += 1
            if not matched:
                fifo.append(Packet.invalid(seq))
                self.stat_invalid_packets += 1
            else:
                mini.stat_matches += 1
                self.forwarding.note_capture(prf, cycle)
                fifo.append(Packet.from_fields(
                    seq, gid, record.pc, addr, data, meta,
                    record.attack_id, cycle * self._high_period_ns))
                self.stat_valid_packets += 1
        else:
            mini = self.minifilters[lane % self.width]
            entry = mini.lookup(record.opcode, record.funct3)
            if entry is None:
                fifo.append(Packet.invalid(self._seq))
                self.stat_invalid_packets += 1
            else:
                commit_ns = cycle * self._high_period_ns
                fifo.append(self.forwarding.capture(
                    record, entry, self._seq, cycle, commit_ns))
                self.stat_valid_packets += 1
        self._seq += 1
        self._pending += 1
        return True

    @property
    def lanes(self) -> int:
        return self.width

    # -- arbiter side (high domain) ----------------------------------------
    def arbitrate(self, cycle: int) -> Packet | None:
        """Emit the next in-order valid packet, or None.

        Invalid packets are discarded without consuming the cycle; one
        valid packet is produced per call (the arbiter's FSM rate).
        """
        if any(len(f) >= self.fifo_depth for f in self._fifos):
            self.stat_full_cycles += 1

        while True:
            fifo = self._find_fifo_with(self._arbiter_next)
            if fifo is None:
                return None
            packet = fifo.popleft()
            self._arbiter_next += 1
            self._pending -= 1
            if packet.valid:
                self.stat_emitted += 1
                return packet
            # Invalid placeholders are skipped for free.

    def _find_fifo_with(self, seq: int) -> deque[Packet] | None:
        for fifo in self._fifos:
            if fifo and fifo[0].seq == seq:
                return fifo
        return None

    # -- drain state -------------------------------------------------------
    @property
    def pending(self) -> int:
        """Buffered packets across all lane FIFOs, O(1) — the session
        reads this every cycle once the core is done."""
        return self._pending

    def fifo_occupancy(self) -> list[int]:
        return [len(f) for f in self._fifos]
