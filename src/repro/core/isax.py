"""ISAX interface cost models (§III-D, Fig 6(a)).

Rocket's stock ISAX runs custom instructions *post-commit*: routing to
the peripheral blocks the core for at least 3 cycles per instruction,
stretching to ~13 under data hazards and contention.  FireGuard moves
the interface into the Memory Access (MA) stage, multiplexed with the
load-store unit: the queue op then behaves like a load — single-cycle
occupancy, one bubble only when the very next instruction consumes its
result.

The µcore pipeline asks this model how many cycles a queue instruction
costs given whether its result is consumed immediately.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import ConfigError


class IsaxStyle(Enum):
    """Which coupling the µcore uses."""

    POST_COMMIT = "post_commit"   # Rocket stock (baseline, §III-D)
    MA_STAGE = "ma_stage"         # FireGuard's redesign


@dataclass(frozen=True)
class IsaxCosts:
    """Cycle costs of one queue instruction."""

    base: int                 # pipeline occupancy of the op itself
    hazard_bubbles: int       # extra cycles if the next instr uses rd
    contention_extra: int     # extra when back-to-back ISAX ops overlap


class IsaxInterface:
    """Cost model for queue custom instructions."""

    _COSTS = {
        IsaxStyle.POST_COMMIT: IsaxCosts(base=3, hazard_bubbles=6,
                                         contention_extra=4),
        IsaxStyle.MA_STAGE: IsaxCosts(base=1, hazard_bubbles=1,
                                      contention_extra=0),
    }

    def __init__(self, style: IsaxStyle = IsaxStyle.MA_STAGE):
        if style not in self._COSTS:
            raise ConfigError(f"unknown ISAX style {style}")
        self.style = style
        self.costs = self._COSTS[style]
        self.stat_ops = 0
        self.stat_hazard_cycles = 0
        self.stat_contention_cycles = 0

    def cost(self, result_used_next: bool, back_to_back: bool) -> int:
        """Cycles consumed by one queue instruction."""
        self.stat_ops += 1
        cycles = self.costs.base
        if result_used_next:
            cycles += self.costs.hazard_bubbles
            self.stat_hazard_cycles += self.costs.hazard_bubbles
        if back_to_back:
            cycles += self.costs.contention_extra
            self.stat_contention_cycles += self.costs.contention_extra
        return cycles
