"""Routing channel: Manhattan-grid NoC mesh (§III-C).

The full-duplex N-to-N channel lets checkers exchange words (shadow
stack hand-off, UaF quarantine coordination).  Each router has five
bi-directional ports (N/S/E/W/local); routing is dimension-ordered
(XY).  The model tracks per-link occupancy: each hop takes
``hop_cycles`` and a link carries one flit per cycle, so contended
paths serialise — a latency/occupancy model rather than a
flit-by-flit one (documented in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappop, heappush

from repro.core.msgqueue import WordQueue
from repro.errors import ConfigError
from repro.utils.stats import Instrumented


@dataclass(frozen=True)
class NocParams:
    rows: int
    cols: int
    hop_cycles: int = 1

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ConfigError("mesh dimensions must be positive")
        if self.hop_cycles <= 0:
            raise ConfigError("hop latency must be positive")


class MeshNoc(Instrumented):
    """XY-routed mesh connecting the analysis engines."""

    def __init__(self, params: NocParams, peer_queues: list[WordQueue]):
        self.params = params
        if len(peer_queues) > params.rows * params.cols:
            raise ConfigError(
                f"{len(peer_queues)} engines exceed a "
                f"{params.rows}x{params.cols} mesh")
        self.peer_queues = peer_queues
        # Per-directed-link next-free cycle, keyed by (node, node).
        self._link_free: dict[tuple[int, int], int] = {}
        # In-flight words: (arrival_cycle, order, dst, word).
        self._in_flight: list[tuple[int, int, int, int]] = []
        self._order = 0
        self.stat_sent = 0
        self.stat_delivered = 0
        self.stat_total_hops = 0
        self.stat_link_waits = 0

    def _coords(self, node: int) -> tuple[int, int]:
        return divmod(node, self.params.cols)

    def xy_path(self, src: int, dst: int) -> list[int]:
        """Dimension-ordered route: X first, then Y."""
        r0, c0 = self._coords(src)
        r1, c1 = self._coords(dst)
        path = [src]
        r, c = r0, c0
        step = 1 if c1 > c0 else -1
        while c != c1:
            c += step
            path.append(r * self.params.cols + c)
        step = 1 if r1 > r0 else -1
        while r != r1:
            r += step
            path.append(r * self.params.cols + c)
        return path

    def send(self, src: int, dst: int, word: int, low_cycle: int) -> int:
        """Inject a word; returns its arrival cycle at ``dst``.

        Each link along the XY path is claimed at its earliest free
        cycle, so concurrent transfers over shared links serialise.
        """
        if src == dst:
            arrival = low_cycle + 1
        else:
            path = self.xy_path(src, dst)
            t = low_cycle
            for a, b in zip(path, path[1:]):
                link = (a, b)
                free = self._link_free.get(link, 0)
                start = max(t, free)
                self.stat_link_waits += start - t
                self._link_free[link] = start + 1
                t = start + self.params.hop_cycles
            arrival = t
            self.stat_total_hops += len(path) - 1
        self._order += 1
        heappush(self._in_flight, (arrival, self._order, dst, word))
        self.stat_sent += 1
        return arrival

    def step(self, low_cycle: int) -> None:
        """Deliver every word whose arrival cycle has come, in order.
        If the destination's peer queue is full the word waits at the
        ejection port (retried next cycle)."""
        requeue = []
        while self._in_flight and self._in_flight[0][0] <= low_cycle:
            arrival, order, dst, word = heappop(self._in_flight)
            if self.peer_queues[dst].push(word):
                self.stat_delivered += 1
            else:
                requeue.append((low_cycle + 1, order, dst, word))
        for item in requeue:
            heappush(self._in_flight, item)

    @property
    def idle(self) -> bool:
        return not self._in_flight

    @property
    def in_flight_count(self) -> int:
        """Words currently traversing the mesh (drain diagnostics)."""
        return len(self._in_flight)

    def next_event_cycle(self, now: int) -> int | None:
        """Wakeable protocol (:mod:`repro.sched`): the earliest
        in-flight arrival — the per-link next-free bookkeeping already
        timestamps every word, so the NoC never needs polling."""
        if not self._in_flight:
            return None
        arrival = self._in_flight[0][0]
        return arrival if arrival > now else now + 1

    def reset(self) -> None:
        """Drop in-flight words, link reservations and counters."""
        self._link_free.clear()
        self._in_flight.clear()
        self._order = 0
        self.reset_stats()

    def mean_hops(self) -> float:
        if not self.stat_sent:
            return 0.0
        return self.stat_total_hops / self.stat_sent
