"""Load/store queue occupancy model (Table II: 32-entry LDQ/STQ)."""

from __future__ import annotations

from repro.errors import ConfigError, SimulationError
from repro.isa.opcodes import InstrClass


class LoadStoreQueues:
    """Tracks LDQ/STQ occupancy; entries free at commit.

    The tops of these queues hold the most recently retired memory
    addresses — FireGuard's bypass circuits read them contention-free
    (§III-A footnote 3) — so this model also remembers the last
    committed load/store/jump data for the forwarding channel.
    """

    def __init__(self, ldq_entries: int, stq_entries: int):
        if ldq_entries <= 0 or stq_entries <= 0:
            raise ConfigError("LDQ/STQ need at least one entry each")
        self.ldq_capacity = ldq_entries
        self.stq_capacity = stq_entries
        self.ldq_count = 0
        self.stq_count = 0

    def reset(self) -> None:
        """Empty both queues (session reset)."""
        self.ldq_count = 0
        self.stq_count = 0

    def can_dispatch(self, iclass: InstrClass) -> bool:
        if iclass is InstrClass.LOAD:
            return self.ldq_count < self.ldq_capacity
        if iclass is InstrClass.STORE:
            return self.stq_count < self.stq_capacity
        return True

    def dispatch(self, iclass: InstrClass) -> None:
        if iclass is InstrClass.LOAD:
            if self.ldq_count >= self.ldq_capacity:
                raise SimulationError("dispatch into full LDQ")
            self.ldq_count += 1
        elif iclass is InstrClass.STORE:
            if self.stq_count >= self.stq_capacity:
                raise SimulationError("dispatch into full STQ")
            self.stq_count += 1

    def commit(self, iclass: InstrClass) -> None:
        if iclass is InstrClass.LOAD:
            if self.ldq_count <= 0:
                raise SimulationError("commit load with empty LDQ")
            self.ldq_count -= 1
        elif iclass is InstrClass.STORE:
            if self.stq_count <= 0:
                raise SimulationError("commit store with empty STQ")
            self.stq_count -= 1
