"""Functional-unit pool: issue bandwidth and structural hazards."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.isa.opcodes import InstrClass
from repro.utils.stats import Instrumented


@dataclass(frozen=True)
class FuParams:
    """Counts and latencies for one unit type."""

    count: int
    latency: int
    initiation_interval: int = 1  # cycles between issues to one unit

    def __post_init__(self) -> None:
        if self.count <= 0 or self.latency <= 0:
            raise ConfigError("FU count and latency must be positive")
        if self.initiation_interval <= 0:
            raise ConfigError("FU initiation interval must be positive")


class FunctionalUnitPool(Instrumented):
    """Greedy earliest-free unit selection per instruction class."""

    def __init__(self, units: dict[str, FuParams],
                 class_map: dict[InstrClass, str]):
        self._params = units
        self._class_map = class_map
        self._next_free: dict[str, list[int]] = {
            name: [0] * p.count for name, p in units.items()
        }
        self.stat_structural_waits = 0

    def reset(self) -> None:
        """Free every unit and zero counters (session reset)."""
        for name, params in self._params.items():
            self._next_free[name] = [0] * params.count
        self.reset_stats()

    def unit_for(self, iclass: InstrClass) -> str:
        name = self._class_map.get(iclass)
        if name is None:
            raise ConfigError(f"no functional unit mapped for {iclass}")
        return name

    def latency(self, iclass: InstrClass) -> int:
        return self._params[self.unit_for(iclass)].latency

    def acquire(self, iclass: InstrClass, earliest: int) -> int:
        """Claim a unit at or after ``earliest``; return the issue cycle."""
        name = self.unit_for(iclass)
        frees = self._next_free[name]
        best = min(range(len(frees)), key=frees.__getitem__)
        issue = max(earliest, frees[best])
        if issue > earliest:
            self.stat_structural_waits += issue - earliest
        frees[best] = issue + self._params[name].initiation_interval
        return issue
