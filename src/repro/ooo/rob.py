"""Reorder buffer: in-order commit window over out-of-order completion."""

from __future__ import annotations

from collections import deque

from repro.errors import ConfigError, SimulationError
from repro.trace.record import InstrRecord
from repro.utils.stats import Instrumented


class RobEntry:
    __slots__ = ("record", "completion")

    def __init__(self, record: InstrRecord, completion: int):
        self.record = record
        self.completion = completion


class ReorderBuffer(Instrumented):
    """Fixed-capacity FIFO of in-flight instructions."""

    def __init__(self, entries: int):
        if entries <= 0:
            raise ConfigError("ROB needs at least one entry")
        self.capacity = entries
        self._entries: deque[RobEntry] = deque()
        self.stat_peak_occupancy = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._entries

    def dispatch(self, record: InstrRecord, completion: int) -> None:
        if self.full:
            raise SimulationError("dispatch into full ROB")
        self._entries.append(RobEntry(record, completion))
        if len(self._entries) > self.stat_peak_occupancy:
            self.stat_peak_occupancy = len(self._entries)

    def head(self) -> RobEntry | None:
        return self._entries[0] if self._entries else None

    def commit_head(self) -> RobEntry:
        if not self._entries:
            raise SimulationError("commit from empty ROB")
        return self._entries.popleft()

    def reset(self) -> None:
        """Empty the window and zero counters (session reset)."""
        self._entries.clear()
        self.reset_stats()
