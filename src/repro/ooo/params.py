"""Main-core configuration (Table II, "Main core" rows)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.branch.predictor import PredictorParams
from repro.errors import ConfigError
from repro.mem.hierarchy import HierarchyParams


@dataclass(frozen=True)
class CoreParams:
    """4-wide out-of-order SonicBOOM at 3.2 GHz (Table II defaults)."""

    width: int = 4                  # fetch/dispatch/commit width
    rob_entries: int = 128
    issue_queue_entries: int = 96
    ldq_entries: int = 32
    stq_entries: int = 32
    phys_regs: int = 128
    prf_read_ports: int = 8
    redirect_penalty: int = 12      # front-end refill after mispredict
    freq_ghz: float = 3.2
    predictor: PredictorParams = field(default_factory=PredictorParams)
    hierarchy: HierarchyParams = field(default_factory=HierarchyParams)

    # Execution latencies (cycles).
    lat_int_alu: int = 1
    lat_mul: int = 3
    lat_div: int = 12
    lat_fp: int = 4
    lat_jump: int = 1
    lat_csr: int = 3
    lat_store: int = 1

    # Functional unit counts (Table II: 2 Int ALUs, 1 FP/Mul/Div,
    # 2 MEM, 1 Jump, 1 CSR).
    n_int_alu: int = 2
    n_fp_muldiv: int = 1
    n_mem: int = 2
    n_jump: int = 1
    n_csr: int = 1

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ConfigError("core width must be positive")
        if self.rob_entries < self.width:
            raise ConfigError("ROB must hold at least one dispatch group")
        if self.prf_read_ports < 2:
            raise ConfigError("PRF needs at least two read ports")
        if self.redirect_penalty < 0:
            raise ConfigError("redirect penalty cannot be negative")
