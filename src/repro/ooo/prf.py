"""Physical register file read-port model with filter preemption.

§III-A: the PRF read controllers are statically multiplexed between the
issue queues and the mini-filters; Mini-Filter[x] has *priority* access
to Read_Ctrl[x], so an instruction that wanted the same port that cycle
slips to the next cycle.  This model tracks per-cycle port usage by
issuing instructions and per-cycle preemptions by the data-forwarding
channel, and makes issue wait when the remaining ports are insufficient.
"""

from __future__ import annotations

from collections import defaultdict

from repro.errors import ConfigError
from repro.utils.stats import Instrumented


class PhysicalRegisterFile(Instrumented):
    def __init__(self, read_ports: int, phys_regs: int = 128):
        if read_ports <= 0:
            raise ConfigError("PRF needs at least one read port")
        self.read_ports = read_ports
        self.phys_regs = phys_regs
        self._used: defaultdict[int, int] = defaultdict(int)
        self._preempted: defaultdict[int, int] = defaultdict(int)
        self.stat_preemptions = 0
        self.stat_contention_slips = 0
        self._prune_mark = 0

    def reset(self) -> None:
        """Clear all port reservations and counters (session reset)."""
        self._used.clear()
        self._preempted.clear()
        self._prune_mark = 0
        self.reset_stats()

    def preempt_port(self, cycle: int, count: int = 1) -> None:
        """The forwarding channel takes ``count`` ports at ``cycle``
        (one per PRF-selected packet — Fig 2 step c)."""
        self._preempted[cycle] += count
        self.stat_preemptions += count

    def acquire_read_ports(self, cycle: int, count: int) -> int:
        """Find the first cycle >= ``cycle`` with ``count`` free ports,
        claim them, and return that cycle."""
        if count <= 0:
            return cycle
        count = min(count, self.read_ports)
        t = cycle
        while (self._used[t] + self._preempted[t] + count
               > self.read_ports):
            t += 1
        if t != cycle:
            self.stat_contention_slips += t - cycle
        self._used[t] += count
        self._maybe_prune(t)
        return t

    def _maybe_prune(self, cycle: int) -> None:
        # Bound the dicts: drop accounting older than ~1k cycles.
        if cycle - self._prune_mark < 4096:
            return
        horizon = cycle - 1024
        for table in (self._used, self._preempted):
            stale = [c for c in table if c < horizon]
            for c in stale:
                del table[c]
        self._prune_mark = cycle
