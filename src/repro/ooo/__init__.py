"""Main out-of-order core timing model (4-wide SonicBOOM, Table II)."""

from repro.ooo.core import CoreResult, MainCore
from repro.ooo.issue import FunctionalUnitPool, FuParams
from repro.ooo.lsq import LoadStoreQueues
from repro.ooo.params import CoreParams
from repro.ooo.prf import PhysicalRegisterFile
from repro.ooo.rob import ReorderBuffer

__all__ = [
    "CoreParams",
    "CoreResult",
    "FunctionalUnitPool",
    "FuParams",
    "LoadStoreQueues",
    "MainCore",
    "PhysicalRegisterFile",
    "ReorderBuffer",
]
