"""The main OoO core's cycle-stepped timing model.

This is a trace-driven model of a 4-wide SonicBOOM: instructions are
scheduled at dispatch (completion time = operand readiness + functional
unit + memory latency), held in the ROB, and committed in order up to
the commit width.  The model exists to reproduce the phenomena
FireGuard's evaluation measures:

* commit back-pressure when the event filter's FIFOs fill (§IV-C),
* PRF read-port contention when the forwarding channel preempts a
  port (§III-A),
* front-end redirects from the TAGE/BTB/RAS predictor,
* cache/TLB miss latency through the Table II hierarchy.

A ``CommitObserver`` (FireGuard's frontend) may veto commit in a given
lane — that is exactly the paper's back-pressure mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import islice
from typing import Protocol

from repro.branch.predictor import FrontEndPredictor
from repro.errors import SimulationError
from repro.isa.opcodes import InstrClass
from repro.mem.hierarchy import MemoryHierarchy
from repro.ooo.issue import FunctionalUnitPool, FuParams
from repro.ooo.lsq import LoadStoreQueues
from repro.ooo.params import CoreParams
from repro.ooo.prf import PhysicalRegisterFile
from repro.ooo.rob import ReorderBuffer
from repro.trace.record import InstrRecord, Trace


class CommitObserver(Protocol):
    """FireGuard's hook into the commit stage."""

    def offer(self, record: InstrRecord, lane: int, cycle: int) -> bool:
        """Observe a committing instruction.  Returning False stalls
        commit (the filter FIFO for this lane is full)."""
        ...

    @property
    def lanes(self) -> int:
        """Number of commit lanes the observer can watch per cycle
        (the event-filter width; Fig 9 sweeps 1/2/4)."""
        ...


@dataclass
class CoreResult:
    """Timing outcome of one run."""

    cycles: int
    committed: int
    stall_backpressure: int = 0
    stall_rob_full: int = 0
    stall_lsq_full: int = 0
    stall_fetch: int = 0
    stall_fetch_redirect: int = 0
    stall_fetch_icache: int = 0
    mispredicts: int = 0
    commit_times: dict[int, int] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        return self.committed / self.cycles if self.cycles else 0.0


class MainCore:
    """Cycle-stepped trace-driven OoO core."""

    _LINE_SHIFT = 6

    def __init__(self, params: CoreParams | None = None,
                 hierarchy: MemoryHierarchy | None = None,
                 predictor: FrontEndPredictor | None = None):
        self.params = params or CoreParams()
        self.hierarchy = hierarchy or MemoryHierarchy(self.params.hierarchy)
        self.predictor = predictor or FrontEndPredictor(self.params.predictor)
        self.rob = ReorderBuffer(self.params.rob_entries)
        self.lsq = LoadStoreQueues(self.params.ldq_entries,
                                   self.params.stq_entries)
        self.prf = PhysicalRegisterFile(self.params.prf_read_ports,
                                        self.params.phys_regs)
        self.fu_pool = self._build_fu_pool()
        self._observer: CommitObserver | None = None

        self._trace: list[InstrRecord] = []
        self._next_dispatch = 0
        self._reg_ready: dict[int, int] = {}
        self._fetch_stall_until = 0
        self._last_fetch_line = -1
        self._in_flight = 0
        self._stall_reason_redirect = False
        self.result = CoreResult(cycles=0, committed=0)
        self._record_commit_times = False

    def reset(self) -> None:
        """Return the core to its just-constructed state: cold caches
        and TLBs, untrained predictor, empty queues and run state.

        ``begin`` resets only the per-run bookkeeping (so warm-up can
        be shared); ``reset`` is the stronger guarantee the simulation
        session needs to make a reused core bit-identical to a fresh
        one."""
        self.hierarchy.reset()
        self.predictor.reset()
        self.rob.reset()
        self.lsq.reset()
        self.prf.reset()
        self.fu_pool.reset()
        self._observer = None
        self._trace = []
        self._next_dispatch = 0
        self._reg_ready = {}
        self._fetch_stall_until = 0
        self._last_fetch_line = -1
        self._in_flight = 0
        self._stall_reason_redirect = False
        self.result = CoreResult(cycles=0, committed=0)
        self._record_commit_times = False

    def _build_fu_pool(self) -> FunctionalUnitPool:
        p = self.params
        units = {
            "int": FuParams(count=p.n_int_alu, latency=p.lat_int_alu),
            "fp": FuParams(count=p.n_fp_muldiv, latency=p.lat_fp),
            "mul": FuParams(count=p.n_fp_muldiv, latency=p.lat_mul),
            "div": FuParams(count=p.n_fp_muldiv, latency=p.lat_div,
                            initiation_interval=p.lat_div),
            "mem": FuParams(count=p.n_mem, latency=1),
            "jump": FuParams(count=p.n_jump, latency=p.lat_jump),
            "csr": FuParams(count=p.n_csr, latency=p.lat_csr),
        }
        class_map = {
            InstrClass.INT_ALU: "int",
            InstrClass.INT_MUL: "mul",
            InstrClass.INT_DIV: "div",
            InstrClass.FP_ALU: "fp",
            InstrClass.LOAD: "mem",
            InstrClass.STORE: "mem",
            InstrClass.BRANCH: "jump",
            InstrClass.JUMP: "jump",
            InstrClass.CALL: "jump",
            InstrClass.RET: "jump",
            InstrClass.CSR: "csr",
            InstrClass.FENCE: "int",
            InstrClass.CUSTOM: "int",
            InstrClass.SYSTEM: "csr",
        }
        return FunctionalUnitPool(units, class_map)

    # -- wiring ---------------------------------------------------------
    def attach_observer(self, observer: CommitObserver) -> None:
        """Attach FireGuard's commit-stage observer."""
        self._observer = observer

    # -- run control ------------------------------------------------------
    DEFAULT_WARMUP = 4000

    def begin(self, trace: "Trace", record_commit_times: bool = False,
              warmup_records: int | None = None) -> None:
        """Reset run state and start consuming ``trace``.

        ``trace`` is any trace source implementing the record protocol
        (``len()``, ``iter_records()``, ``record_view()``, region
        metadata) — an in-memory :class:`Trace` or an on-disk
        :class:`~repro.trace.stream.StreamedTrace`, which serves both
        passes below from bounded-memory chunks.

        A warm-up pass first touches the caches, TLBs and branch
        predictor with a prefix of the trace (functional only, no
        timing): short traces otherwise measure compulsory misses
        instead of steady state.  Baseline and monitored runs warm
        identically, so slowdown ratios are unaffected.
        """
        if warmup_records is None:
            warmup_records = min(self.DEFAULT_WARMUP, len(trace) // 2)
        self._warm_up(trace, warmup_records)
        self._trace = trace.record_view()
        self._next_dispatch = 0
        self._reg_ready = {}
        self._fetch_stall_until = 0
        self._last_fetch_line = -1
        self._in_flight = 0
        self._stall_reason_redirect = False
        self.result = CoreResult(cycles=0, committed=0)
        self._record_commit_times = record_commit_times

    def _warm_up(self, trace: "Trace", count: int) -> None:
        last_line = -1
        for record in islice(trace.iter_records(), count):
            line = record.pc >> self._LINE_SHIFT
            if line != last_line:
                self.hierarchy.access_instr(record.pc, 0)
                last_line = line
            if record.mem_addr is not None:
                self.hierarchy.access_data(record.mem_addr, 0)
            if record.is_ctrl:
                self.predictor.predict_and_train(
                    record.iclass, record.pc, record.taken, record.target)
        # The structurally warm set is L2/LLC-resident at steady state;
        # fill those levels (not the L1 — it holds only the hot set).
        if trace.warm_end > trace.global_base:
            addr = trace.global_base
            while addr < trace.warm_end:
                self.hierarchy.l2.prefill(addr)
                self.hierarchy.llc.prefill(addr)
                addr += 64

    @property
    def done(self) -> bool:
        return self._next_dispatch >= len(self._trace) and self.rob.empty

    def quiescent_at(self, cycle: int) -> bool:
        """True when ``step(cycle)`` would be a provable no-op beyond
        the cycle counter: the trace is consumed, the ROB is empty, and
        no fetch-stall window is still charging front-end stall
        statistics.  The event-driven session fast-forwards only past
        quiescent cycles, so even per-cycle stall counters stay
        bit-identical to the dense loop."""
        return self.done and cycle >= self._fetch_stall_until

    def step(self, cycle: int) -> None:
        """Advance one core cycle: commit, then dispatch."""
        self._commit(cycle)
        self._dispatch(cycle)
        self.result.cycles = cycle + 1

    # -- stall fast-forward ----------------------------------------------
    def stall_window(self, cycle: int) -> tuple[int, str] | None:
        """The provable counter-only stall window starting at ``cycle``.

        Returns ``(until, kind)`` when every cycle in
        ``[cycle, until)`` would execute as pure stall accounting —
        nothing commits (the ROB head completes at or after ``until``)
        and nothing dispatches (front-end stall, exhausted trace, full
        ROB, or a blocked LSQ, in :meth:`_dispatch`'s priority order) —
        or ``None`` when the next cycle does real work.  The session
        batches such windows with :meth:`skip_stalls` instead of
        stepping them; the stall cause cannot change mid-window because
        only commit and dispatch mutate it, and neither runs.
        Windows of fewer than two cycles are not worth the bookkeeping
        and report ``None``.
        """
        head = self.rob.head()
        head_done = head.completion if head is not None else None
        if head_done is not None and head_done <= cycle:
            return None  # the head commits this cycle
        until = self._fetch_stall_until
        if cycle < until:
            if head_done is not None and head_done < until:
                until = head_done
            kind = ("fetch-redirect" if self._stall_reason_redirect
                    else "fetch-icache")
        elif self._next_dispatch >= len(self._trace):
            if head_done is None:
                return None  # fully drained: the quiescent path owns it
            until, kind = head_done, "drain"
        elif self.rob.full:
            until, kind = head_done, "rob"
        elif not self.lsq.can_dispatch(
                self._trace[self._next_dispatch].iclass):
            if head_done is None:
                return None
            until, kind = head_done, "lsq"
        else:
            return None
        if until <= cycle + 1:
            return None
        return until, kind

    def skip_stalls(self, cycle: int, target: int, kind: str) -> None:
        """Account ``target - cycle`` stall cycles in one batch —
        exactly the counters ``step`` would have incremented over the
        window :meth:`stall_window` reported."""
        delta = target - cycle
        result = self.result
        if kind == "fetch-redirect":
            result.stall_fetch += delta
            result.stall_fetch_redirect += delta
        elif kind == "fetch-icache":
            result.stall_fetch += delta
            result.stall_fetch_icache += delta
        elif kind == "rob":
            result.stall_rob_full += delta
        elif kind == "lsq":
            result.stall_lsq_full += delta
        # "drain" charges nothing: an exhausted trace leaves dispatch
        # silent while the ROB empties.
        result.cycles = target

    def run_standalone(self, trace: Trace,
                       max_cycles: int = 50_000_000) -> CoreResult:
        """Run a trace to completion without FireGuard attached."""
        self.begin(trace)
        cycle = 0
        while not self.done:
            if cycle >= max_cycles:
                raise SimulationError(
                    f"core did not finish within {max_cycles} cycles")
            self.step(cycle)
            cycle += 1
        return self.result

    # -- commit ----------------------------------------------------------
    def _commit(self, cycle: int) -> None:
        observer = self._observer
        width = self.params.width
        if observer is not None:
            # A filter narrower than the core bounds commits per cycle
            # (Fig 9's 1- and 2-wide configurations).
            width = min(width, observer.lanes)
        committed = 0
        while committed < width:
            head = self.rob.head()
            if head is None or head.completion > cycle:
                break
            if observer is not None and not observer.offer(
                    head.record, committed, cycle):
                self.result.stall_backpressure += 1
                break
            entry = self.rob.commit_head()
            self.lsq.commit(entry.record.iclass)
            self._in_flight -= 1
            self.result.committed += 1
            if self._record_commit_times and entry.record.attack_id is not None:
                self.result.commit_times[entry.record.attack_id] = cycle
            committed += 1

    # -- dispatch ----------------------------------------------------------
    def _dispatch(self, cycle: int) -> None:
        if cycle < self._fetch_stall_until:
            self.result.stall_fetch += 1
            if self._stall_reason_redirect:
                self.result.stall_fetch_redirect += 1
            else:
                self.result.stall_fetch_icache += 1
            return
        trace = self._trace
        for _ in range(self.params.width):
            if self._next_dispatch >= len(trace):
                return
            if self.rob.full:
                self.result.stall_rob_full += 1
                return
            record = trace[self._next_dispatch]
            if not self.lsq.can_dispatch(record.iclass):
                self.result.stall_lsq_full += 1
                return

            self._fetch_line(record.pc, cycle)
            completion = self._schedule(record, cycle)
            self.rob.dispatch(record, completion)
            self.lsq.dispatch(record.iclass)
            self._in_flight += 1
            self._next_dispatch += 1

            if record.is_ctrl:
                mispredicted = self.predictor.predict_and_train(
                    record.iclass, record.pc, record.taken, record.target)
                if mispredicted:
                    self.result.mispredicts += 1
                    self._fetch_stall_until = (
                        completion + self.params.redirect_penalty)
                    self._stall_reason_redirect = True
                    return  # redirect ends this dispatch group

    def _fetch_line(self, pc: int, cycle: int) -> None:
        line = pc >> self._LINE_SHIFT
        if line == self._last_fetch_line:
            return
        sequential = line == self._last_fetch_line + 1
        self._last_fetch_line = line
        access = self.hierarchy.access_instr(pc, cycle)
        hit_latency = self.hierarchy.params.l1i.hit_latency
        if access.latency > hit_latency and not sequential:
            # Discontinuous fetch to a missing line stalls the front
            # end; sequential misses are hidden by next-line prefetch.
            new_stall = cycle + access.latency - hit_latency
            if new_stall > self._fetch_stall_until:
                self._fetch_stall_until = new_stall
                self._stall_reason_redirect = False

    def _schedule(self, record: InstrRecord, cycle: int) -> int:
        """Compute the completion cycle of a dispatched instruction."""
        ready = cycle + 1
        reg_ready = self._reg_ready
        for src in record.srcs:
            if src:  # x0 is always ready
                src_ready = reg_ready.get(src)
                if src_ready is not None and src_ready > ready:
                    ready = src_ready

        # PRF read ports (shared with the forwarding channel).
        ready = self.prf.acquire_read_ports(ready, len(record.srcs))
        issue = self.fu_pool.acquire(record.iclass, ready)

        iclass = record.iclass
        if iclass is InstrClass.LOAD:
            access = self.hierarchy.access_data(record.mem_addr, issue)
            latency = access.latency
        elif iclass is InstrClass.STORE:
            # Store data is written back at commit; address translation
            # happens at issue.  Charge translation only.
            latency = self.params.lat_store
            latency += self.hierarchy.dtlb.translate(record.mem_addr)
            self.hierarchy.l1d.lookup(
                record.mem_addr, issue, self.hierarchy.params.l2.hit_latency)
        else:
            latency = self.fu_pool.latency(iclass)

        completion = issue + latency
        if record.dst:
            reg_ready[record.dst] = completion
        return completion
