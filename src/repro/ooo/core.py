"""The main OoO core's cycle-stepped timing model.

This is a trace-driven model of a 4-wide SonicBOOM: instructions are
scheduled at dispatch (completion time = operand readiness + functional
unit + memory latency), held in the ROB, and committed in order up to
the commit width.  The model exists to reproduce the phenomena
FireGuard's evaluation measures:

* commit back-pressure when the event filter's FIFOs fill (§IV-C),
* PRF read-port contention when the forwarding channel preempts a
  port (§III-A),
* front-end redirects from the TAGE/BTB/RAS predictor,
* cache/TLB miss latency through the Table II hierarchy.

A ``CommitObserver`` (FireGuard's frontend) may veto commit in a given
lane — that is exactly the paper's back-pressure mechanism.

The per-cycle commit/dispatch/schedule walk lives in
:mod:`repro.hotpath.ooo_kernel` (DESIGN.md: hotpath layer): this class
owns the flattened run state — ROB rings, LSQ occupancy counters and
the register-ready scoreboard as preallocated arrays — and delegates
:meth:`step` to the active kernel variant (interpreted by default, the
C-compiled build under ``REPRO_BACKEND=compiled``).  The
:class:`~repro.ooo.rob.ReorderBuffer` and
:class:`~repro.ooo.lsq.LoadStoreQueues` classes remain in
:mod:`repro.ooo` as the unit-tested reference structures the rings
flatten.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import islice
from typing import Protocol

from repro.branch.predictor import FrontEndPredictor
from repro.errors import SimulationError
from repro.hotpath import ooo_kernel as _ok
from repro.isa.opcodes import InstrClass
from repro.mem.hierarchy import MemoryHierarchy
from repro.ooo.issue import FunctionalUnitPool, FuParams
from repro.ooo.params import CoreParams
from repro.ooo.prf import PhysicalRegisterFile
from repro.trace.record import InstrRecord, Trace

#: Architectural register space preallocated in the ready scoreboard
#: (grown on demand by the kernel for out-of-range trace registers).
_REG_SPACE = 64


class CommitObserver(Protocol):
    """FireGuard's hook into the commit stage."""

    def offer(self, record: InstrRecord, lane: int, cycle: int) -> bool:
        """Observe a committing instruction.  Returning False stalls
        commit (the filter FIFO for this lane is full)."""
        ...

    @property
    def lanes(self) -> int:
        """Number of commit lanes the observer can watch per cycle
        (the event-filter width; Fig 9 sweeps 1/2/4)."""
        ...


@dataclass
class CoreResult:
    """Timing outcome of one run."""

    cycles: int
    committed: int
    stall_backpressure: int = 0
    stall_rob_full: int = 0
    stall_lsq_full: int = 0
    stall_fetch: int = 0
    stall_fetch_redirect: int = 0
    stall_fetch_icache: int = 0
    mispredicts: int = 0
    commit_times: dict[int, int] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        return self.committed / self.cycles if self.cycles else 0.0


class MainCore:
    """Cycle-stepped trace-driven OoO core."""

    _LINE_SHIFT = _ok.LINE_SHIFT

    def __init__(self, params: CoreParams | None = None,
                 hierarchy: MemoryHierarchy | None = None,
                 predictor: FrontEndPredictor | None = None):
        self.params = params or CoreParams()
        self.hierarchy = hierarchy or MemoryHierarchy(self.params.hierarchy)
        self.predictor = predictor or FrontEndPredictor(self.params.predictor)
        self.prf = PhysicalRegisterFile(self.params.prf_read_ports,
                                        self.params.phys_regs)
        self.fu_pool = self._build_fu_pool()
        self._observer: CommitObserver | None = None

        self._trace: list[InstrRecord] = []
        p = self.params
        st = [0] * _ok.ST_LEN
        st[_ok.LAST_FETCH_LINE] = -1
        st[_ok.ROB_CAP] = p.rob_entries
        st[_ok.LDQ_CAP] = p.ldq_entries
        st[_ok.STQ_CAP] = p.stq_entries
        st[_ok.WIDTH] = p.width
        st[_ok.REDIRECT_PENALTY] = p.redirect_penalty
        st[_ok.LAT_STORE] = p.lat_store
        st[_ok.L2_HIT] = self.hierarchy.params.l2.hit_latency
        st[_ok.L1I_HIT] = self.hierarchy.params.l1i.hit_latency
        self._st = st
        self._rob_rec: list = [None] * p.rob_entries
        self._rob_done: list[int] = [0] * p.rob_entries
        self._reg_ready: list[int] = [0] * _REG_SPACE
        self.result = CoreResult(cycles=0, committed=0)
        self._kernel = _ok
        self._step = _ok.core_step

    def set_kernel(self, kernel) -> None:
        """Select the hotpath kernel module driving :meth:`step` —
        the interpreted :mod:`repro.hotpath.ooo_kernel` (default) or
        its compiled build (``repro.hotpath.install_hotpath``).  Both
        read the same flat state, so switching is always safe."""
        self._kernel = kernel
        self._step = kernel.core_step

    def reset(self) -> None:
        """Return the core to its just-constructed state: cold caches
        and TLBs, untrained predictor, empty queues and run state.

        ``begin`` resets only the per-run bookkeeping (so warm-up can
        be shared); ``reset`` is the stronger guarantee the simulation
        session needs to make a reused core bit-identical to a fresh
        one."""
        self.hierarchy.reset()
        self.predictor.reset()
        self.prf.reset()
        self.fu_pool.reset()
        self._observer = None
        self._trace = []
        self._clear_run_state()

    def _clear_run_state(self) -> None:
        st = self._st
        st[_ok.NEXT_DISPATCH] = 0
        st[_ok.FETCH_STALL_UNTIL] = 0
        st[_ok.LAST_FETCH_LINE] = -1
        st[_ok.IN_FLIGHT] = 0
        st[_ok.STALL_REDIRECT] = 0
        st[_ok.ROB_HEAD] = 0
        st[_ok.ROB_COUNT] = 0
        st[_ok.LDQ_COUNT] = 0
        st[_ok.STQ_COUNT] = 0
        st[_ok.RECORD_TIMES] = 0
        st[_ok.TRACE_LEN] = 0
        rob_rec = self._rob_rec
        for index in range(len(rob_rec)):
            rob_rec[index] = None
        self._reg_ready = [0] * _REG_SPACE
        self.result = CoreResult(cycles=0, committed=0)

    def _build_fu_pool(self) -> FunctionalUnitPool:
        p = self.params
        units = {
            "int": FuParams(count=p.n_int_alu, latency=p.lat_int_alu),
            "fp": FuParams(count=p.n_fp_muldiv, latency=p.lat_fp),
            "mul": FuParams(count=p.n_fp_muldiv, latency=p.lat_mul),
            "div": FuParams(count=p.n_fp_muldiv, latency=p.lat_div,
                            initiation_interval=p.lat_div),
            "mem": FuParams(count=p.n_mem, latency=1),
            "jump": FuParams(count=p.n_jump, latency=p.lat_jump),
            "csr": FuParams(count=p.n_csr, latency=p.lat_csr),
        }
        class_map = {
            InstrClass.INT_ALU: "int",
            InstrClass.INT_MUL: "mul",
            InstrClass.INT_DIV: "div",
            InstrClass.FP_ALU: "fp",
            InstrClass.LOAD: "mem",
            InstrClass.STORE: "mem",
            InstrClass.BRANCH: "jump",
            InstrClass.JUMP: "jump",
            InstrClass.CALL: "jump",
            InstrClass.RET: "jump",
            InstrClass.CSR: "csr",
            InstrClass.FENCE: "int",
            InstrClass.CUSTOM: "int",
            InstrClass.SYSTEM: "csr",
        }
        return FunctionalUnitPool(units, class_map)

    # -- wiring ---------------------------------------------------------
    def attach_observer(self, observer: CommitObserver) -> None:
        """Attach FireGuard's commit-stage observer."""
        self._observer = observer

    # -- run control ------------------------------------------------------
    DEFAULT_WARMUP = 4000

    def begin(self, trace: "Trace", record_commit_times: bool = False,
              warmup_records: int | None = None) -> None:
        """Reset run state and start consuming ``trace``.

        ``trace`` is any trace source implementing the record protocol
        (``len()``, ``iter_records()``, ``record_view()``, region
        metadata) — an in-memory :class:`Trace` or an on-disk
        :class:`~repro.trace.stream.StreamedTrace`, which serves both
        passes below from bounded-memory chunks.

        A warm-up pass first touches the caches, TLBs and branch
        predictor with a prefix of the trace (functional only, no
        timing): short traces otherwise measure compulsory misses
        instead of steady state.  Baseline and monitored runs warm
        identically, so slowdown ratios are unaffected.
        """
        if warmup_records is None:
            warmup_records = min(self.DEFAULT_WARMUP, len(trace) // 2)
        self._warm_up(trace, warmup_records)
        self._trace = trace.record_view()
        self._clear_run_state()
        st = self._st
        st[_ok.TRACE_LEN] = len(self._trace)
        st[_ok.RECORD_TIMES] = 1 if record_commit_times else 0

    def _warm_up(self, trace: "Trace", count: int) -> None:
        last_line = -1
        for record in islice(trace.iter_records(), count):
            line = record.pc >> self._LINE_SHIFT
            if line != last_line:
                self.hierarchy.access_instr(record.pc, 0)
                last_line = line
            if record.mem_addr is not None:
                self.hierarchy.access_data(record.mem_addr, 0)
            if record.is_ctrl:
                self.predictor.predict_and_train(
                    record.iclass, record.pc, record.taken, record.target)
        # The structurally warm set is L2/LLC-resident at steady state;
        # fill those levels (not the L1 — it holds only the hot set).
        if trace.warm_end > trace.global_base:
            addr = trace.global_base
            while addr < trace.warm_end:
                self.hierarchy.l2.prefill(addr)
                self.hierarchy.llc.prefill(addr)
                addr += 64

    @property
    def done(self) -> bool:
        st = self._st
        return (st[_ok.NEXT_DISPATCH] >= st[_ok.TRACE_LEN]
                and st[_ok.ROB_COUNT] == 0)

    def quiescent_at(self, cycle: int) -> bool:
        """True when ``step(cycle)`` would be a provable no-op beyond
        the cycle counter: the trace is consumed, the ROB is empty, and
        no fetch-stall window is still charging front-end stall
        statistics.  The event-driven session fast-forwards only past
        quiescent cycles, so even per-cycle stall counters stay
        bit-identical to the dense loop."""
        return self.done and cycle >= self._st[_ok.FETCH_STALL_UNTIL]

    def step(self, cycle: int) -> None:
        """Advance one core cycle: commit, then dispatch."""
        self._step(self, self._st, self._rob_rec, self._rob_done,
                   self._reg_ready, self._trace, cycle)

    # -- stall fast-forward ----------------------------------------------
    def stall_window(self, cycle: int) -> tuple[int, str] | None:
        """The provable counter-only stall window starting at ``cycle``.

        Returns ``(until, kind)`` when every cycle in
        ``[cycle, until)`` would execute as pure stall accounting —
        nothing commits (the ROB head completes at or after ``until``)
        and nothing dispatches (front-end stall, exhausted trace, full
        ROB, or a blocked LSQ, in the kernel dispatch priority order) —
        or ``None`` when the next cycle does real work.  The session
        batches such windows with :meth:`skip_stalls` instead of
        stepping them; the stall cause cannot change mid-window because
        only commit and dispatch mutate it, and neither runs.
        Windows of fewer than two cycles are not worth the bookkeeping
        and report ``None``.
        """
        st = self._st
        rob_count = st[_ok.ROB_COUNT]
        head_done = (self._rob_done[st[_ok.ROB_HEAD]]
                     if rob_count else None)
        if head_done is not None and head_done <= cycle:
            return None  # the head commits this cycle
        until = st[_ok.FETCH_STALL_UNTIL]
        if cycle < until:
            if head_done is not None and head_done < until:
                until = head_done
            kind = ("fetch-redirect" if st[_ok.STALL_REDIRECT]
                    else "fetch-icache")
        elif st[_ok.NEXT_DISPATCH] >= st[_ok.TRACE_LEN]:
            if head_done is None:
                return None  # fully drained: the quiescent path owns it
            until, kind = head_done, "drain"
        elif rob_count == st[_ok.ROB_CAP]:
            until, kind = head_done, "rob"
        elif not self._lsq_can_dispatch(
                self._trace[st[_ok.NEXT_DISPATCH]].iclass):
            if head_done is None:
                return None
            until, kind = head_done, "lsq"
        else:
            return None
        if until <= cycle + 1:
            return None
        return until, kind

    def _lsq_can_dispatch(self, iclass: InstrClass) -> bool:
        st = self._st
        if iclass is InstrClass.LOAD:
            return st[_ok.LDQ_COUNT] < st[_ok.LDQ_CAP]
        if iclass is InstrClass.STORE:
            return st[_ok.STQ_COUNT] < st[_ok.STQ_CAP]
        return True

    def skip_stalls(self, cycle: int, target: int, kind: str) -> None:
        """Account ``target - cycle`` stall cycles in one batch —
        exactly the counters ``step`` would have incremented over the
        window :meth:`stall_window` reported."""
        delta = target - cycle
        result = self.result
        if kind == "fetch-redirect":
            result.stall_fetch += delta
            result.stall_fetch_redirect += delta
        elif kind == "fetch-icache":
            result.stall_fetch += delta
            result.stall_fetch_icache += delta
        elif kind == "rob":
            result.stall_rob_full += delta
        elif kind == "lsq":
            result.stall_lsq_full += delta
        # "drain" charges nothing: an exhausted trace leaves dispatch
        # silent while the ROB empties.
        result.cycles = target

    def run_standalone(self, trace: Trace,
                       max_cycles: int = 50_000_000) -> CoreResult:
        """Run a trace to completion without FireGuard attached."""
        self.begin(trace)
        cycle = 0
        while not self.done:
            if cycle >= max_cycles:
                raise SimulationError(
                    f"core did not finish within {max_cycles} cycles")
            self.step(cycle)
            cycle += 1
        return self.result
