"""Client-side fabric backend: submit over the wire, poll to futures.

:class:`FabricExecutor` is what the service
:class:`~repro.service.client.Client` dispatches to when
``REPRO_FABRIC=host:port`` (or ``Client(fabric=...)``) selects the
fleet: pending specs are serialized and submitted to the master in one
request, and a poller thread resolves the per-spec futures as the
master reports terminal states.  Specs are *fully resolved* before
they cross the wire — ``length=None`` is pinned to the client's
``resolved_length()`` — so what the fleet simulates can never depend
on a worker's environment, and the worker files each record under the
exact key the client computed.
"""

from __future__ import annotations

import concurrent.futures as futures
import os
import threading

from repro.errors import FabricError, RunCancelled
from repro.fabric.protocol import PROTO_VERSION, Connection, parse_address
from repro.runner.spec import RunSpec
from repro.service.serialization import record_from_dict, spec_to_dict

__all__ = ["ENV_FABRIC", "ENV_POLL_INTERVAL", "FabricExecutor"]

#: ``host:port`` of the fabric master; when set, every Client
#: dispatches uncached specs to the fleet instead of a local backend.
ENV_FABRIC = "REPRO_FABRIC"

#: Seconds between completion polls (the latency floor for streaming
#: results back; submissions and cancels are immediate requests).
ENV_POLL_INTERVAL = "REPRO_FABRIC_POLL"
DEFAULT_POLL_INTERVAL = 0.05


class FabricExecutor:
    """One client session against a fabric master."""

    def __init__(self, address: str, poll_interval: float | None = None):
        self.address = address
        host, port = parse_address(address)
        self._conn = Connection.connect(host, port)
        self._conn.request({"type": "hello", "role": "client",
                            "proto": PROTO_VERSION})
        self.poll_interval = poll_interval if poll_interval is not None \
            else float(os.environ.get(ENV_POLL_INTERVAL,
                                      DEFAULT_POLL_INTERVAL))
        self._watch: dict[str, futures.Future] = {}
        self._lock = threading.Lock()
        self._wake = threading.Event()
        self._stop = threading.Event()
        self._poller: threading.Thread | None = None

    # -- dispatch ----------------------------------------------------------
    def dispatch(self, pending: list[tuple[str, RunSpec]],
                 by_key: dict[str, futures.Future]) -> None:
        """Submit ``(key, spec)`` pairs; resolves each future either
        immediately (master answered from its tables/store) or through
        the poller as workers finish."""
        payload = []
        for key, spec in pending:
            # Pin environment-dependent defaults before serializing:
            # the key was computed from the resolved length, and the
            # fleet must simulate exactly what the client named.
            resolved = spec if spec.length is not None \
                else spec.with_(length=spec.resolved_length())
            payload.append({"key": key, "spec": spec_to_dict(resolved)})
        for key, _spec in pending:
            by_key[key].set_running_or_notify_cancel()
        try:
            reply = self._conn.request(
                {"type": "submit", "specs": payload})
        except FabricError as exc:
            for key, _spec in pending:
                if not by_key[key].done():
                    by_key[key].set_exception(exc)
            return
        statuses = reply.get("statuses", {})
        watch: list[str] = []
        for key, _spec in pending:
            future = by_key[key]
            settled = self._settle(future,
                                   statuses.get(key, {"state": "queued"}),
                                   key)
            if not settled:
                watch.append(key)
        if watch:
            with self._lock:
                for key in watch:
                    self._watch[key] = by_key[key]
            self._wake.set()
            self._ensure_poller()

    @staticmethod
    def _resolve(future: futures.Future, record=None,
                 exc: Exception | None = None) -> None:
        """Settle a future, tolerating a racing resolver."""
        try:
            if exc is not None:
                future.set_exception(exc)
            else:
                future.set_result(record)
        except futures.InvalidStateError:  # pragma: no cover - race
            pass

    def _settle(self, future: futures.Future, status: dict,
                key: str) -> bool:
        """Resolve ``future`` from a terminal master status; False if
        the task is still live."""
        state = status.get("state")
        if state == "done":
            try:
                record = record_from_dict(status["record"],
                                          expect_key=key)
            except Exception as exc:
                self._resolve(future, exc=FabricError(
                    f"undecodable record for {key[:12]}…: {exc}"))
                return True
            self._resolve(future, record=record)
            return True
        if state == "failed":
            self._resolve(future, exc=FabricError(
                f"fabric run {key[:12]}… failed: "
                f"{status.get('error', 'unknown error')}"))
            return True
        if state == "cancelled":
            self._resolve(future, exc=RunCancelled(
                f"run {key[:12]}… was cancelled on the fabric"))
            return True
        return False

    # -- polling -----------------------------------------------------------
    def _ensure_poller(self) -> None:
        if self._poller is None or not self._poller.is_alive():
            self._poller = threading.Thread(
                target=self._poll_loop, daemon=True,
                name="fabric-poller")
            self._poller.start()

    def _poll_loop(self) -> None:
        while not self._stop.is_set():
            with self._lock:
                keys = list(self._watch)
            if not keys:
                self._wake.wait(timeout=1.0)
                self._wake.clear()
                continue
            try:
                reply = self._conn.request({"type": "poll",
                                            "keys": keys})
            except FabricError as exc:
                self._fail_all(exc)
                return
            for key, status in reply.get("done", {}).items():
                with self._lock:
                    future = self._watch.pop(key, None)
                if future is not None and not future.done():
                    self._settle(future, status, key)
            self._stop.wait(self.poll_interval)

    def _fail_all(self, exc: Exception) -> None:
        with self._lock:
            watched = list(self._watch.values())
            self._watch.clear()
        for future in watched:
            if not future.done():
                self._resolve(future, exc=FabricError(
                    f"fabric connection lost: {exc}"))

    # -- control -----------------------------------------------------------
    def cancel(self, key: str) -> None:
        """Best-effort cancellation relay to the master."""
        try:
            self._conn.request({"type": "cancel", "keys": [key]})
        except FabricError:
            pass

    def stats(self) -> dict:
        """The master's live counters/roster (see
        :meth:`repro.fabric.master.FabricMaster.stats`)."""
        return self._conn.request({"type": "stats"})["stats"]

    def close(self) -> None:
        self._stop.set()
        self._wake.set()
        self._fail_all(FabricError("client closed"))
        if self._poller is not None:
            self._poller.join(timeout=2)
        self._conn.close()
