"""Fabric fleet CLI.

::

    python -m repro.fabric master [--host H] [--port P] [--store DIR]
                                  [--lease-ttl S] [--max-retries N]
    python -m repro.fabric worker HOST:PORT [--die-after-leases N]
    python -m repro.fabric stats HOST:PORT
    python -m repro.fabric shutdown HOST:PORT

``master`` serves until a ``shutdown`` request arrives (or SIGINT);
``stats`` prints the master's live counters as JSON (what the CI
fabric-smoke job uploads as its artifact).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.fabric.master import FabricMaster
from repro.fabric.protocol import PROTO_VERSION, Connection, parse_address
from repro.fabric.worker import FabricWorker


def _client_request(address: str, message: dict) -> dict:
    host, port = parse_address(address)
    with Connection.connect(host, port) as conn:
        conn.request({"type": "hello", "role": "client",
                      "proto": PROTO_VERSION})
        return conn.request(message)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.fabric")
    sub = parser.add_subparsers(dest="command", required=True)

    master = sub.add_parser("master", help="run the fleet coordinator")
    master.add_argument("--host", default="127.0.0.1")
    master.add_argument("--port", type=int, default=7951)
    master.add_argument("--store", default=None,
                        help="shared result-store directory "
                             "(default: REPRO_RESULT_STORE)")
    master.add_argument("--lease-ttl", type=float, default=None)
    master.add_argument("--max-retries", type=int, default=None)

    worker = sub.add_parser("worker", help="join a fleet")
    worker.add_argument("address", help="master HOST:PORT")
    worker.add_argument("--die-after-leases", type=int, default=None,
                        help="fault injection: hard-exit after "
                             "accepting N leases")

    for name, help_text in (("stats", "print master stats as JSON"),
                            ("shutdown", "stop a running master")):
        command = sub.add_parser(name, help=help_text)
        command.add_argument("address", help="master HOST:PORT")

    args = parser.parse_args(argv)

    if args.command == "master":
        node = FabricMaster(host=args.host, port=args.port,
                            store=args.store,
                            lease_ttl=args.lease_ttl,
                            max_retries=args.max_retries).start()
        print(f"fabric master on {node.address} "
              f"(lease_ttl={node.lease_ttl}s, "
              f"store={node.store.root if node.store else None})",
              file=sys.stderr, flush=True)
        try:
            node.serve_forever()
        except KeyboardInterrupt:
            node.stop()
        return 0

    if args.command == "worker":
        member = FabricWorker(args.address,
                              die_after_leases=args.die_after_leases)
        try:
            member.run()
        except KeyboardInterrupt:
            member.stop()
        print(f"worker {member.worker_id}: {member.records_sent} "
              f"records from {member.leases_taken} leases",
              file=sys.stderr)
        return 0

    if args.command == "stats":
        print(json.dumps(_client_request(
            args.address, {"type": "stats"})["stats"], indent=2))
        return 0

    # shutdown
    _client_request(args.address, {"type": "shutdown"})
    print(f"master at {args.address} asked to shut down",
          file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
