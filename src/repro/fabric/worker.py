"""The fabric worker: register, heartbeat, lease, execute, report.

A worker is one process that connects to a master, registers, and then
loops: lease one spec, execute it through the same
:func:`repro.runner.worker.execute_spec` the in-process backends use
(so its per-process build/trace/baseline caches and the persistent
store read-through all apply unchanged), and send the record back.  A
daemon thread heartbeats on the shared connection while the main
thread simulates, keeping the lease alive and carrying cancellation
keys back — the wire extension of the ``REPRO_CANCEL_DIR`` marker
mechanism: the master's cancel set feeds the same ``cancel``
checkpoint callable that marker files feed locally.

The worker inherits the fleet's shared result store from the master's
registration reply unless ``REPRO_RESULT_STORE`` (or an explicit
``store=``) overrides it, so every record it produces is immediately
visible to the master, its sibling workers, and any warm local rerun.

``die_after_leases`` is the fault-injection hook the resilience tests
and drills use: the process hard-exits (``os._exit``) immediately
after accepting its Nth lease, before reporting anything — from the
master's point of view, a machine that caught fire mid-simulation.
"""

from __future__ import annotations

import os
import threading
import time

from repro.errors import FabricError, RunCancelled
from repro.fabric.protocol import PROTO_VERSION, Connection, parse_address
from repro.runner.worker import ENV_STORE, execute_spec
from repro.service.serialization import record_to_dict, spec_from_dict
from repro.service.store import ENV_RESULT_STORE, ResultStore

__all__ = ["ENV_DIE_AFTER_LEASES", "FabricWorker"]

#: Fault-injection: hard-exit after accepting this many leases.
ENV_DIE_AFTER_LEASES = "REPRO_FABRIC_DIE_AFTER_LEASES"

#: Idle backoff between lease requests when the queue is empty.
_IDLE_SLEEP = 0.1

#: ``execute_spec`` leans on per-process session/trace caches that
#: assume one simulation at a time per process (the pool backend gives
#: every worker its own interpreter).  Multiple FabricWorkers hosted
#: in one process (tests, embedded fleets) must therefore take turns
#: executing; leasing and heartbeats stay concurrent.
_EXECUTE_LOCK = threading.Lock()


class FabricWorker:
    """One fleet member; ``run()`` blocks until the master goes away
    or :meth:`stop` is called (it is thread-safe to run in a thread)."""

    def __init__(self, address: str,
                 store: "ResultStore | str | bool | None" = None,
                 die_after_leases: int | None = None):
        self.host, self.port = parse_address(address)
        self._store_arg = store
        if die_after_leases is None:
            env = os.environ.get(ENV_DIE_AFTER_LEASES)
            die_after_leases = int(env) if env else None
        self.die_after_leases = die_after_leases
        self.worker_id: str | None = None
        self.leases_taken = 0
        self.records_sent = 0
        self._cancelled: set[str] = set()
        self._stop = threading.Event()
        self._conn: Connection | None = None

    def stop(self) -> None:
        self._stop.set()
        # Unblock a worker parked in an idle sleep or a blocking recv.
        if self._conn is not None:
            self._conn.close()

    # -- store resolution --------------------------------------------------
    def _resolve_store(self, master_root: str | None):
        """Explicit ``store=`` beats ``REPRO_RESULT_STORE`` beats the
        master's shared root; the resolved value feeds
        :func:`execute_spec` directly."""
        if self._store_arg is not None:
            return self._store_arg
        if os.environ.get(ENV_RESULT_STORE):
            return ENV_STORE
        if master_root:
            return ResultStore(master_root)
        return False

    # -- heartbeat ---------------------------------------------------------
    def _heartbeat_loop(self, conn: Connection, interval: float) -> None:
        while not self._stop.wait(interval):
            try:
                reply = conn.request({"type": "heartbeat",
                                      "worker_id": self.worker_id},
                                     timeout=interval * 4)
            except FabricError:
                # Master unreachable: the main loop will hit the same
                # wall on its next request and wind down.
                return
            self._cancelled.update(reply.get("cancel", ()))

    # -- main loop ---------------------------------------------------------
    def run(self) -> None:
        conn = Connection.connect(self.host, self.port)
        self._conn = conn
        try:
            hello = conn.request({"type": "hello", "role": "worker",
                                  "pid": os.getpid(),
                                  "proto": PROTO_VERSION})
            self.worker_id = hello["worker_id"]
            store = self._resolve_store(hello.get("store_root"))
            heartbeat_s = hello.get("heartbeat_s", 1.0)
            beat = threading.Thread(
                target=self._heartbeat_loop, args=(conn, heartbeat_s),
                daemon=True, name="fabric-heartbeat")
            beat.start()
            while not self._stop.is_set():
                try:
                    reply = conn.request({"type": "lease",
                                          "worker_id": self.worker_id})
                except FabricError:
                    return  # master gone or connection torn down
                self._cancelled.update(reply.get("cancel", ()))
                lease = reply.get("lease")
                if lease is None:
                    self._stop.wait(_IDLE_SLEEP)
                    continue
                self.leases_taken += 1
                if self.die_after_leases is not None \
                        and self.leases_taken >= self.die_after_leases:
                    # Fault injection: vanish without a goodbye.
                    os._exit(17)
                self._execute(conn, lease["key"], lease["spec"], store)
        finally:
            self._stop.set()
            conn.close()

    def _execute(self, conn: Connection, key: str, spec_dict: dict,
                 store) -> None:
        try:
            spec = spec_from_dict(spec_dict)
            with _EXECUTE_LOCK:
                record = execute_spec(
                    spec, store=store,
                    cancel=lambda: key in self._cancelled)
        except RunCancelled:
            self._cancelled.discard(key)
            report = {"type": "run_failed", "worker_id": self.worker_id,
                      "key": key, "cancelled": True}
        except Exception as exc:
            report = {"type": "run_failed", "worker_id": self.worker_id,
                      "key": key, "cancelled": False,
                      "error": f"{type(exc).__name__}: {exc}"}
        else:
            report = {"type": "record", "worker_id": self.worker_id,
                      "key": key,
                      "record": record_to_dict(record, key=key)}
        try:
            conn.request(report)
        except FabricError:
            self._stop.set()  # master gone; record is in the store
            return
        if report["type"] == "record":
            self.records_sent += 1


def main(argv: list[str] | None = None) -> int:  # pragma: no cover
    """``python -m repro.fabric.worker HOST:PORT`` (thin wrapper; the
    full CLI lives in ``repro.fabric.__main__``)."""
    import sys

    args = sys.argv[1:] if argv is None else argv
    if len(args) != 1:
        print("usage: python -m repro.fabric.worker HOST:PORT",
              file=sys.stderr)
        return 2
    worker = FabricWorker(args[0])
    started = time.monotonic()
    try:
        worker.run()
    except KeyboardInterrupt:
        pass
    print(f"worker {worker.worker_id}: {worker.records_sent} records "
          f"in {time.monotonic() - started:.1f}s", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
