"""The fabric master: queue, leases, heartbeats, retry, write-back.

One master owns the authoritative task table for a fleet.  Clients
submit serialized :class:`~repro.runner.spec.RunSpec`\\ s (deduplicated
by cache key); workers register, lease one spec at a time, heartbeat
while executing, and stream records back.  The master never simulates
— it answers submissions from its in-memory record table or the shared
:class:`~repro.service.store.ResultStore` when it can (a restarted
master over a warm store re-serves whole grids without granting a
single lease), and queues the rest.

Failure model (the full matrix is tabulated in DESIGN.md):

* **Worker death** is detected two ways — EOF on its connection (a
  killed process's sockets close immediately) and a heartbeat gap
  longer than the lease TTL (a wedged-but-connected worker).  Either
  evicts the worker and re-queues its in-flight leases at the front of
  the queue, bounded by ``max_retries`` re-leases per task; beyond
  that the task fails with the worker's obituary.
* **Deterministic execution errors** (a spec that raises in
  ``execute_spec``) fail the task immediately — re-running identical
  inputs would raise identically, so retrying only burns the fleet.
* **Cancellation** is cooperative end to end: a queued task cancels
  instantly; a leased task's key rides back to its worker on the next
  heartbeat/lease reply, where it trips the same checkpoint polling
  that ``REPRO_CANCEL_DIR`` marker files drive in-process.  A record
  that races a cancel and wins is kept — the work is already paid for
  and the result is valid.

Concurrency: one accept thread, one handler thread per connection,
one reaper thread; all state behind a single lock (operations are
dictionary-sized, never simulations, so the lock is never held long).
"""

from __future__ import annotations

import os
import socket
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import FabricError
from repro.fabric.protocol import PROTO_VERSION, Connection
from repro.runner.spec import RunSpec
from repro.service.serialization import record_to_dict, spec_from_dict
from repro.service.store import ResultStore

__all__ = [
    "ENV_LEASE_TTL",
    "ENV_MAX_RETRIES",
    "FabricMaster",
]

#: Seconds of heartbeat silence after which a worker is declared dead
#: and its leases are re-queued.
ENV_LEASE_TTL = "REPRO_FABRIC_LEASE_TTL"
DEFAULT_LEASE_TTL = 30.0

#: How many times a task may be *re*-leased after losing its worker
#: before it is declared failed.
ENV_MAX_RETRIES = "REPRO_FABRIC_MAX_RETRIES"
DEFAULT_MAX_RETRIES = 2

# Task states.  queued/leased are live; done/failed/cancelled are
# terminal and what ``poll`` reports back to clients.
QUEUED = "queued"
LEASED = "leased"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: How far into the queue a lease looks for a spec matching the
#: worker's previously built system (build-once/run-many affinity).
_AFFINITY_WINDOW = 32


@dataclass
class _Task:
    key: str
    spec_dict: dict
    system: str
    state: str = QUEUED
    attempts: int = 0            # lease grants so far
    worker: str | None = None
    record: dict | None = None   # store-document dict when DONE
    error: str | None = None
    cancel_requested: bool = False


@dataclass
class _Worker:
    worker_id: str
    pid: int
    last_seen: float
    leases: set[str] = field(default_factory=set)
    cancels: set[str] = field(default_factory=set)
    last_system: str | None = None


class FabricMaster:
    """The fleet coordinator; see the module docstring for the model.

    ``store`` — ``None`` reads ``REPRO_RESULT_STORE``, ``False``
    disables persistence, a path/:class:`ResultStore` uses that store
    (shared with the workers, who receive its root at registration).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 store: "ResultStore | str | Path | bool | None" = None,
                 lease_ttl: float | None = None,
                 max_retries: int | None = None):
        self.host = host
        self._requested_port = port
        if store is None:
            self.store = ResultStore.from_env()
        elif store is False:
            self.store = None
        elif isinstance(store, (str, Path)):
            self.store = ResultStore(store)
        else:
            self.store = store
        self.lease_ttl = lease_ttl if lease_ttl is not None else float(
            os.environ.get(ENV_LEASE_TTL, DEFAULT_LEASE_TTL))
        self.max_retries = max_retries if max_retries is not None \
            else int(os.environ.get(ENV_MAX_RETRIES,
                                    DEFAULT_MAX_RETRIES))
        self._tasks: dict[str, _Task] = {}
        self._queue: deque[str] = deque()
        self._workers: dict[str, _Worker] = {}
        self._worker_seq = 0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._server: socket.socket | None = None
        self._threads: list[threading.Thread] = []
        self._counters = {
            "submitted": 0, "deduplicated": 0, "store_hits": 0,
            "completed": 0, "failed": 0, "cancelled": 0,
            "leases_granted": 0, "retries": 0, "workers_registered": 0,
            "workers_evicted": 0,
        }

    # -- lifecycle ---------------------------------------------------------
    @property
    def port(self) -> int:
        if self._server is None:
            raise FabricError("master is not started")
        return self._server.getsockname()[1]

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def start(self) -> "FabricMaster":
        server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        server.bind((self.host, self._requested_port))
        server.listen(64)
        server.settimeout(0.5)
        self._server = server
        for target in (self._accept_loop, self._reaper_loop):
            thread = threading.Thread(target=target, daemon=True,
                                      name=f"fabric-{target.__name__}")
            thread.start()
            self._threads.append(thread)
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._server is not None:
            self._server.close()
        for thread in self._threads:
            thread.join(timeout=5)

    def serve_forever(self) -> None:
        """Block until a ``shutdown`` request arrives (CLI mode)."""
        self._stop.wait()
        self.stop()

    def __enter__(self) -> "FabricMaster":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- threads -----------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                sock, _addr = self._server.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listening socket closed by stop()
            thread = threading.Thread(
                target=self._serve_connection, args=(Connection(sock),),
                daemon=True, name="fabric-conn")
            thread.start()

    def _serve_connection(self, conn: Connection) -> None:
        worker_id: str | None = None
        try:
            while not self._stop.is_set():
                try:
                    message = conn.recv(timeout=0.5)
                except socket.timeout:
                    continue
                except FabricError:
                    break  # torn frame: treat like a disconnect
                if message is None:
                    break
                reply, worker_id = self._handle(message, worker_id)
                try:
                    conn.send(reply)
                except FabricError:
                    break
        finally:
            conn.close()
            if worker_id is not None:
                self._evict_worker(worker_id, "connection closed")

    def _reaper_loop(self) -> None:
        interval = max(0.05, min(1.0, self.lease_ttl / 4))
        while not self._stop.wait(interval):
            deadline = time.monotonic() - self.lease_ttl
            with self._lock:
                stale = [w.worker_id for w in self._workers.values()
                         if w.last_seen < deadline]
            for worker_id in stale:
                self._evict_worker(
                    worker_id,
                    f"no heartbeat for {self.lease_ttl}s")

    # -- dispatch ----------------------------------------------------------
    def _handle(self, message: dict, worker_id: str | None,
                ) -> tuple[dict, str | None]:
        kind = message.get("type")
        handler = getattr(self, f"_on_{kind}", None)
        if handler is None:
            return {"type": "reply", "ok": False,
                    "error": f"unknown message type {kind!r}"}, worker_id
        try:
            reply = handler(message)
        except Exception as exc:  # refuse the request, keep serving
            return {"type": "reply", "ok": False,
                    "error": f"{type(exc).__name__}: {exc}"}, worker_id
        if kind == "hello" and message.get("role") == "worker" \
                and reply.get("ok"):
            worker_id = reply["worker_id"]
        return reply, worker_id

    @staticmethod
    def _ok(**payload) -> dict:
        return {"type": "reply", "ok": True, **payload}

    # -- registration ------------------------------------------------------
    def _on_hello(self, message: dict) -> dict:
        if message.get("proto") != PROTO_VERSION:
            raise FabricError(
                f"protocol version {message.get('proto')!r} != "
                f"{PROTO_VERSION}")
        role = message.get("role")
        if role == "client":
            return self._ok(lease_ttl=self.lease_ttl)
        if role != "worker":
            raise FabricError(f"unknown role {role!r}")
        with self._lock:
            self._worker_seq += 1
            worker_id = f"w{self._worker_seq}"
            self._workers[worker_id] = _Worker(
                worker_id=worker_id, pid=message.get("pid", 0),
                last_seen=time.monotonic())
            self._counters["workers_registered"] += 1
        return self._ok(
            worker_id=worker_id,
            lease_ttl=self.lease_ttl,
            heartbeat_s=max(0.05, self.lease_ttl / 3),
            store_root=str(self.store.root)
            if self.store is not None else None)

    def _worker_for(self, message: dict) -> _Worker:
        worker = self._workers.get(message.get("worker_id"))
        if worker is None:
            raise FabricError(
                f"unknown or evicted worker "
                f"{message.get('worker_id')!r}; re-register")
        worker.last_seen = time.monotonic()
        return worker

    # -- client messages ---------------------------------------------------
    def _on_submit(self, message: dict) -> dict:
        statuses: dict[str, dict] = {}
        with self._lock:
            for item in message.get("specs", ()):
                key = item["key"]
                self._counters["submitted"] += 1
                task = self._tasks.get(key)
                if task is not None:
                    if task.state in (FAILED, CANCELLED):
                        # An explicit resubmission forgives a previous
                        # failure/cancellation: fresh retry budget.
                        task.state = QUEUED
                        task.attempts = 0
                        task.error = None
                        task.cancel_requested = False
                        self._queue.append(key)
                    else:
                        self._counters["deduplicated"] += 1
                    statuses[key] = self._status_of(task)
                    continue
                record = None
                if self.store is not None:
                    stored = self.store.get(key)
                    if stored is not None:
                        record = record_to_dict(stored, key=key)
                        self._counters["store_hits"] += 1
                spec = spec_from_dict(item["spec"])
                task = _Task(key=key, spec_dict=item["spec"],
                             system=repr(spec.system_key()))
                if record is not None:
                    task.state = DONE
                    task.record = record
                else:
                    self._queue.append(key)
                self._tasks[key] = task
                statuses[key] = self._status_of(task)
        return self._ok(statuses=statuses)

    def _status_of(self, task: _Task) -> dict:
        status: dict = {"state": task.state}
        if task.state == DONE:
            status["record"] = task.record
        elif task.state == FAILED:
            status["error"] = task.error
        return status

    def _on_poll(self, message: dict) -> dict:
        done: dict[str, dict] = {}
        pending = 0
        with self._lock:
            for key in message.get("keys", ()):
                task = self._tasks.get(key)
                if task is None:
                    done[key] = {"state": FAILED,
                                 "error": f"unknown task {key[:12]}…"}
                elif task.state in (DONE, FAILED, CANCELLED):
                    done[key] = self._status_of(task)
                else:
                    pending += 1
        return self._ok(done=done, pending=pending)

    def _on_cancel(self, message: dict) -> dict:
        acknowledged: list[str] = []
        with self._lock:
            for key in message.get("keys", ()):
                task = self._tasks.get(key)
                if task is None or task.state in (DONE, FAILED,
                                                  CANCELLED):
                    continue
                task.cancel_requested = True
                if task.state == QUEUED:
                    task.state = CANCELLED
                    self._counters["cancelled"] += 1
                else:  # leased: deliver on the worker's next beat
                    worker = self._workers.get(task.worker)
                    if worker is not None:
                        worker.cancels.add(key)
                acknowledged.append(key)
        return self._ok(cancelled=acknowledged)

    def _on_stats(self, message: dict) -> dict:
        return self._ok(stats=self.stats())

    def _on_shutdown(self, message: dict) -> dict:
        self._stop.set()
        return self._ok()

    # -- worker messages ---------------------------------------------------
    def _grant(self, worker: _Worker) -> _Task | None:
        """Next queued task, preferring one whose system matches what
        the worker last built (session reuse); caller holds the
        lock."""
        chosen: str | None = None
        for index, key in enumerate(self._queue):
            task = self._tasks.get(key)
            if task is None or task.state != QUEUED:
                continue  # lazily skip cancelled/re-leased leftovers
            if chosen is None:
                chosen = key
                if worker.last_system is None:
                    break
            if task.system == worker.last_system:
                chosen = key
                break
            if index >= _AFFINITY_WINDOW:
                break
        if chosen is None:
            # Nothing grantable: drop satisfied leftovers so the deque
            # cannot grow unboundedly with tombstones.
            while self._queue:
                head = self._tasks.get(self._queue[0])
                if head is not None and head.state == QUEUED:
                    break
                self._queue.popleft()
            return None
        self._queue.remove(chosen)
        task = self._tasks[chosen]
        task.state = LEASED
        task.attempts += 1
        task.worker = worker.worker_id
        worker.leases.add(chosen)
        worker.last_system = task.system
        self._counters["leases_granted"] += 1
        return task

    def _on_lease(self, message: dict) -> dict:
        with self._lock:
            worker = self._worker_for(message)
            cancels = sorted(worker.cancels)
            worker.cancels.clear()
            task = self._grant(worker)
            lease = None if task is None else {
                "key": task.key, "spec": task.spec_dict}
        return self._ok(lease=lease, cancel=cancels)

    def _on_heartbeat(self, message: dict) -> dict:
        with self._lock:
            worker = self._worker_for(message)
            cancels = sorted(worker.cancels)
            worker.cancels.clear()
        return self._ok(cancel=cancels)

    def _on_record(self, message: dict) -> dict:
        key = message["key"]
        record_dict = message["record"]
        with self._lock:
            worker = self._worker_for(message)
            worker.leases.discard(key)
            worker.cancels.discard(key)
            task = self._tasks.get(key)
            if task is None:
                raise FabricError(f"record for unknown task "
                                  f"{key[:12]}…")
            if task.state != DONE:
                # A record beats a pending cancel (the work is done)
                # and re-completes idempotently after a re-lease race.
                task.state = DONE
                task.record = record_dict
                task.error = None
                self._counters["completed"] += 1
        if self.store is not None:
            # Write-back outside the lock: decode validates the
            # payload, put() is atomic and idempotent.
            from repro.service.serialization import record_from_dict

            self.store.put(key, record_from_dict(record_dict,
                                                 expect_key=key))
        return self._ok()

    def _on_run_failed(self, message: dict) -> dict:
        key = message["key"]
        with self._lock:
            worker = self._worker_for(message)
            worker.leases.discard(key)
            worker.cancels.discard(key)
            task = self._tasks.get(key)
            if task is None or task.state == DONE:
                return self._ok()
            if message.get("cancelled"):
                task.state = CANCELLED
                self._counters["cancelled"] += 1
            else:
                # Deterministic failure: identical inputs would raise
                # identically on any worker, so never re-lease.
                task.state = FAILED
                task.error = message.get("error", "worker error")
                self._counters["failed"] += 1
        return self._ok()

    # -- eviction ----------------------------------------------------------
    def _evict_worker(self, worker_id: str, reason: str) -> None:
        with self._lock:
            worker = self._workers.pop(worker_id, None)
            if worker is None:
                return
            self._counters["workers_evicted"] += 1
            for key in worker.leases:
                task = self._tasks.get(key)
                if task is None or task.state != LEASED \
                        or task.worker != worker_id:
                    continue
                if task.cancel_requested:
                    task.state = CANCELLED
                    self._counters["cancelled"] += 1
                elif task.attempts <= self.max_retries:
                    task.state = QUEUED
                    task.worker = None
                    self._queue.appendleft(key)
                    self._counters["retries"] += 1
                else:
                    task.state = FAILED
                    task.error = (
                        f"worker {worker_id} died ({reason}) and the "
                        f"task exhausted its {self.max_retries} "
                        f"re-leases")
                    self._counters["failed"] += 1

    # -- introspection -----------------------------------------------------
    def stats(self) -> dict:
        """Counters, live state census, fleet roster and store view —
        the document the CI smoke job uploads."""
        with self._lock:
            states: dict[str, int] = {}
            for task in self._tasks.values():
                states[task.state] = states.get(task.state, 0) + 1
            workers = {
                worker.worker_id: {
                    "pid": worker.pid,
                    "leases": sorted(worker.leases),
                    "idle_s": round(
                        time.monotonic() - worker.last_seen, 3),
                }
                for worker in self._workers.values()
            }
            stats = {
                **self._counters,
                "tasks": states,
                "queue_depth": len(self._queue),
                "workers": workers,
                "lease_ttl": self.lease_ttl,
                "max_retries": self.max_retries,
            }
        if self.store is not None:
            stats["store"] = {"root": str(self.store.root),
                              "entries": self.store.count(),
                              "hits": self.store.hits,
                              "writes": self.store.writes}
        return stats
