"""Distributed execution fabric (DESIGN.md: fabric layer).

A master/worker fleet behind the service
:class:`~repro.service.client.Client`: the master queues submitted
:class:`~repro.runner.spec.RunSpec`\\ s and leases them to registered
workers, which execute through the unchanged
:func:`repro.runner.worker.execute_spec` and stream records back —
with heartbeats, lease re-queuing on worker death, cooperative
cancellation over the wire, and read-through/write-back against the
shared persistent :class:`~repro.service.store.ResultStore`.

Point ``REPRO_FABRIC=host:port`` at a running master and every
existing figure/table/ablation/scenario harness fans out over the
fleet unchanged::

    # terminal 1: the coordinator (shares ./results with the fleet)
    python -m repro.fabric master --port 7951 --store results/

    # terminals 2..n: the fleet
    python -m repro.fabric worker 127.0.0.1:7951

    # terminal n+1: any harness, now fleet-backed
    REPRO_FABRIC=127.0.0.1:7951 python -m repro.experiments fig11

Records are bit-identical to the serial in-process path — including
across injected worker deaths — and a warm store re-serves whole
grids without granting a single lease; ``tests/test_fabric.py`` holds
both lines.
"""

from repro.fabric.master import FabricMaster
from repro.fabric.protocol import PROTO_VERSION, Connection, parse_address
from repro.fabric.remote import ENV_FABRIC, FabricExecutor
from repro.fabric.worker import FabricWorker

__all__ = [
    "Connection",
    "ENV_FABRIC",
    "FabricExecutor",
    "FabricMaster",
    "FabricWorker",
    "PROTO_VERSION",
    "parse_address",
]
