"""Wire protocol of the execution fabric.

One frame = a 4-byte big-endian length prefix followed by a canonical
JSON object (the same byte-stable encoding the result store uses, so
identical messages are identical bytes under any ``PYTHONHASHSEED``).
Every exchange is strict request/reply — the discipline ARTIQ's DRTIO
master/satellite aux packets use: the requester sends one frame and
blocks for exactly one reply frame, so a connection never carries
interleaved unsolicited traffic and a partner death surfaces as EOF at
a frame boundary.

Message objects are plain dicts with a ``type`` field; replies carry
``ok`` (True/False) plus type-specific payload, and transport-level
trouble (short read, oversized frame, undecodable JSON) raises
:class:`~repro.errors.FabricError` rather than returning a frame.

The full message inventory and the lease lifecycle they drive are
documented in DESIGN.md (fabric layer).
"""

from __future__ import annotations

import json
import socket
import struct
import threading

from repro.errors import FabricError
from repro.service.serialization import canonical_dumps

__all__ = [
    "Connection",
    "MAX_FRAME",
    "PROTO_VERSION",
    "parse_address",
]

#: Bump on any incompatible frame-layout or message-shape change; a
#: ``hello`` carrying a different stamp is refused at registration.
PROTO_VERSION = 1

#: Upper bound on one frame's payload — far above any real record
#: document, so a corrupted length prefix fails fast instead of
#: attempting a multi-gigabyte read.
MAX_FRAME = 64 << 20

_HEADER = struct.Struct("!I")


def parse_address(address: str) -> tuple[str, int]:
    """``"host:port"`` → ``(host, port)`` (the ``REPRO_FABRIC``
    format)."""
    host, sep, port = address.rpartition(":")
    if not sep or not host or not port.isdigit():
        raise FabricError(
            f"fabric address {address!r} is not host:port")
    return host, int(port)


class Connection:
    """One framed, request/reply socket endpoint.

    Thread-safe: :meth:`request` holds a lock across its send/receive
    pair, so a worker's heartbeat thread and its execution loop can
    share one connection without interleaving frames.
    """

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._lock = threading.RLock()
        self._closed = False

    @classmethod
    def connect(cls, host: str, port: int,
                timeout: float | None = 10.0) -> "Connection":
        try:
            sock = socket.create_connection((host, port),
                                            timeout=timeout)
        except OSError as exc:
            raise FabricError(
                f"cannot reach fabric master at {host}:{port}: "
                f"{exc}") from exc
        sock.settimeout(None)
        return cls(sock)

    # -- framing -----------------------------------------------------------
    def send(self, message: dict) -> None:
        payload = canonical_dumps(message)
        frame = _HEADER.pack(len(payload)) + payload
        with self._lock:
            try:
                self._sock.sendall(frame)
            except OSError as exc:
                raise FabricError(
                    f"fabric connection lost while sending "
                    f"{message.get('type')!r}: {exc}") from exc

    def _read_exact(self, n: int) -> bytes | None:
        """``n`` bytes, or None on a clean EOF at a frame boundary."""
        chunks: list[bytes] = []
        remaining = n
        while remaining:
            try:
                chunk = self._sock.recv(min(remaining, 1 << 20))
            except socket.timeout:
                raise
            except OSError as exc:
                if self._closed:
                    return None
                raise FabricError(
                    f"fabric connection lost mid-frame: {exc}") from exc
            if not chunk:
                if chunks:
                    raise FabricError(
                        "fabric connection closed mid-frame "
                        f"({n - remaining}/{n} bytes)")
                return None
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def recv(self, timeout: float | None = None) -> dict | None:
        """The next frame as a dict, or None when the peer closed the
        connection cleanly.  ``timeout`` bounds the wait for the frame
        *header* (``socket.timeout`` propagates so accept loops can
        poll their stop flag)."""
        self._sock.settimeout(timeout)
        header = self._read_exact(_HEADER.size)
        if header is None:
            return None
        (length,) = _HEADER.unpack(header)
        if length > MAX_FRAME:
            raise FabricError(
                f"fabric frame of {length} bytes exceeds the "
                f"{MAX_FRAME}-byte limit (corrupt length prefix?)")
        # The body follows immediately; never leave it half-read.
        self._sock.settimeout(None)
        payload = self._read_exact(length)
        if payload is None:
            raise FabricError("fabric connection closed before the "
                              "frame body arrived")
        try:
            message = json.loads(payload)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise FabricError(
                f"undecodable fabric frame: {exc}") from exc
        if not isinstance(message, dict) or "type" not in message:
            raise FabricError(
                f"fabric frame is not a typed object: {message!r:.80}")
        return message

    def request(self, message: dict,
                timeout: float | None = 60.0) -> dict:
        """Send ``message`` and block for its reply; raises
        :class:`~repro.errors.FabricError` when the peer vanishes or
        answers ``ok: false``."""
        with self._lock:
            self.send(message)
            try:
                reply = self.recv(timeout)
            except socket.timeout as exc:
                raise FabricError(
                    f"fabric master did not answer "
                    f"{message.get('type')!r} within {timeout}s"
                ) from exc
        if reply is None:
            raise FabricError(
                f"fabric master closed the connection instead of "
                f"answering {message.get('type')!r}")
        if not reply.get("ok", False):
            raise FabricError(
                f"fabric request {message.get('type')!r} refused: "
                f"{reply.get('error', 'no reason given')}")
        return reply

    def close(self) -> None:
        self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
