"""FireGuard (DAC 2025) reproduction.

A cycle-level Python implementation of fine-grained security analysis
on an out-of-order superscalar core: the FireGuard microarchitecture
(data-forwarding channel, superscalar event filter, broadcast-free
mapper, ISAX programming model) plus every substrate it depends on —
a BOOM-like main core, Rocket-like µcore analysis engines, guardian
kernels, software baselines, and harnesses reproducing every table and
figure of the paper's evaluation.

Quick tour::

    from repro.core.system import FireGuardSystem, run_baseline
    from repro.kernels import make_kernel
    from repro.trace.generator import generate_trace
    from repro.trace.profiles import PARSEC_PROFILES

    trace = generate_trace(PARSEC_PROFILES["x264"], seed=1, length=10000)
    system = FireGuardSystem([make_kernel("asan")])
    result = system.run(trace)
    print(result.cycles / run_baseline(trace))

Sweeps go through the service client: declarative specs, async
submission with future-like handles, incremental streaming, and a
persistent result store (``REPRO_RESULT_STORE``) that makes warm
reruns free::

    from repro.runner import RunSpec, sweep
    from repro.service import Client

    client = Client(workers=4, store="results/")
    handle = client.submit(RunSpec(benchmark="x264",
                                   kernels=("asan",)))
    specs = sweep(("x264", "dedup"), kernels=("asan",),
                  engines_per_kernel=[2, 4, 8])
    for record in client.map(specs):       # streams, in order
        print(record.spec.benchmark, record.slowdown)
    print(handle.result().slowdown, client.stats)

Each distinct configuration is simulated at most once per store —
rerunning a whole figure grid against a warm store executes zero
simulations and returns bit-identical records.

``REPRO_FABRIC=host:port`` swaps the local backend for a distributed
master/worker fleet (:mod:`repro.fabric`) — every harness fans out
over the network unchanged, with the same records and the same warm
store (``python -m repro.fabric master`` / ``worker HOST:PORT``).

``REPRO_BACKEND=compiled`` runs the per-cycle inner loops (µcore ISS
tick, OoO core step) as a C extension built from
:mod:`repro.hotpath`'s kernels (``python -m repro.hotpath.build``,
mypyc or Cython); with no toolchain or artifact the same sources run
interpreted, bit-identically, so the flag is always safe.

See DESIGN.md for the architecture map and EXPERIMENTS.md for
paper-vs-measured results.
"""

__version__ = "1.6.0"

from repro.core.config import FireGuardConfig
from repro.core.system import FireGuardSystem, SystemResult, run_baseline
from repro.kernels import KERNELS, make_kernel
from repro.runner import RunRecord, RunSpec, SweepRunner, sweep
from repro.service import Client, ResultStore, RunHandle, default_client
from repro.sim import SimulationSession
from repro.trace.generator import generate_trace
from repro.trace.profiles import PARSEC_BENCHMARKS, PARSEC_PROFILES
from repro.trace.scenario import (
    SCENARIOS,
    Phase,
    Scenario,
    compose_stream,
    compose_trace,
    make_scenario,
)
from repro.trace.stream import StreamedTrace, stream_trace

__all__ = [
    "Client",
    "FireGuardConfig",
    "FireGuardSystem",
    "KERNELS",
    "PARSEC_BENCHMARKS",
    "PARSEC_PROFILES",
    "Phase",
    "ResultStore",
    "RunHandle",
    "RunRecord",
    "RunSpec",
    "SCENARIOS",
    "Scenario",
    "SimulationSession",
    "StreamedTrace",
    "SweepRunner",
    "SystemResult",
    "__version__",
    "compose_stream",
    "compose_trace",
    "default_client",
    "generate_trace",
    "make_kernel",
    "make_scenario",
    "run_baseline",
    "stream_trace",
    "sweep",
]
