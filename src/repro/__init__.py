"""FireGuard (DAC 2025) reproduction.

A cycle-level Python implementation of fine-grained security analysis
on an out-of-order superscalar core: the FireGuard microarchitecture
(data-forwarding channel, superscalar event filter, broadcast-free
mapper, ISAX programming model) plus every substrate it depends on —
a BOOM-like main core, Rocket-like µcore analysis engines, guardian
kernels, software baselines, and harnesses reproducing every table and
figure of the paper's evaluation.

Quick tour::

    from repro.core.system import FireGuardSystem, run_baseline
    from repro.kernels import make_kernel
    from repro.trace.generator import generate_trace
    from repro.trace.profiles import PARSEC_PROFILES

    trace = generate_trace(PARSEC_PROFILES["x264"], seed=1, length=10000)
    system = FireGuardSystem([make_kernel("asan")])
    result = system.run(trace)
    print(result.cycles / run_baseline(trace))

Sweeps go through the declarative runner (one built system per
configuration per worker, reset between traces)::

    from repro.runner import SweepRunner, sweep

    records = SweepRunner().run(sweep(
        ("x264", "dedup"), kernels=("asan",),
        engines_per_kernel=[2, 4, 8]))

See DESIGN.md for the architecture map and EXPERIMENTS.md for
paper-vs-measured results.
"""

__version__ = "1.1.0"

from repro.core.config import FireGuardConfig
from repro.core.system import FireGuardSystem, SystemResult, run_baseline
from repro.kernels import KERNELS, make_kernel
from repro.runner import RunRecord, RunSpec, SweepRunner, sweep
from repro.sim import SimulationSession
from repro.trace.generator import generate_trace
from repro.trace.profiles import PARSEC_BENCHMARKS, PARSEC_PROFILES
from repro.trace.scenario import (
    SCENARIOS,
    Phase,
    Scenario,
    compose_stream,
    compose_trace,
    make_scenario,
)
from repro.trace.stream import StreamedTrace, stream_trace

__all__ = [
    "FireGuardConfig",
    "FireGuardSystem",
    "KERNELS",
    "PARSEC_BENCHMARKS",
    "PARSEC_PROFILES",
    "Phase",
    "RunRecord",
    "RunSpec",
    "SCENARIOS",
    "Scenario",
    "SimulationSession",
    "StreamedTrace",
    "SweepRunner",
    "SystemResult",
    "__version__",
    "compose_stream",
    "compose_trace",
    "generate_trace",
    "make_kernel",
    "make_scenario",
    "run_baseline",
    "stream_trace",
    "sweep",
]
