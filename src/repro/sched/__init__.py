"""Event-driven wakeup scheduling for the simulation's clock domains.

``repro.sched`` replaces the dense "tick every component every cycle"
loop with timestamped wakeups over a cycle wheel: quiescent stretches
— engines blocked on empty queues, an idle NoC, an empty CDC — are
fast-forwarded instead of polled.  See DESIGN.md (sched layer) for the
architecture and the bit-identity contract with the dense loop, which
is kept available behind ``REPRO_DENSE_LOOP=1``.
"""

from repro.sched.scheduler import EventScheduler, Wakeable
from repro.sched.wheel import CycleWheel

__all__ = ["CycleWheel", "EventScheduler", "Wakeable"]
