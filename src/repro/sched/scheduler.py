"""Per-clock-domain wakeup scheduling (DESIGN.md: sched layer).

The dense dual-domain loop polled every fabric component every low
cycle; :class:`EventScheduler` inverts that into timestamped wakeups,
the way timestamped-event RTIO systems replace per-cycle polling.  A
component that can predict its next interesting cycle implements the
:class:`Wakeable` protocol (``next_event_cycle``); transitions caused
by *other* components (a packet landing in the queue a blocked engine
is waiting on) post explicit :meth:`EventScheduler.wake` calls instead.

Scheduling state has two tiers, because the common answers to "when
next?" are *every cycle* and *not until woken*:

* the **running set** holds components whose next event is simply the
  next cycle (an executing engine, a draining multicast); membership
  is O(1) and avoids re-posting a wheel event per component per cycle;
* the **cycle wheel** holds genuinely timed events (a stall expiry, a
  NoC arrival, a CDC synchroniser) and explicit cross-component wakes.

Two safety properties make the scheduler easy to reason about:

* **Spurious wakeups are harmless.**  Executing a low cycle where
  nothing turns out to be due is exactly a dense-loop cycle in which
  every component was idle — it only costs time, never correctness.
  Components may therefore over-approximate their next event.
* **Missing wakeups are bugs.**  A component with pending work must
  always be running, on the wheel, or about to be explicitly woken;
  the A/B bit-identity tests against the dense loop enforce this.
"""

from __future__ import annotations

from typing import Iterable, Protocol, runtime_checkable

from repro.sched.wheel import CycleWheel
from repro.utils.stats import Instrumented


@runtime_checkable
class Wakeable(Protocol):
    """A component the scheduler can put to sleep between events."""

    def next_event_cycle(self, now: int) -> int | None:
        """The next cycle (strictly after ``now``) at which this
        component could do work, or None when it has none scheduled —
        either permanently (a halted engine) or until another
        component posts an explicit wake (a blocked engine)."""
        ...


class EventScheduler(Instrumented):
    """Cycle-wheel wakeup scheduler for one clock domain."""

    def __init__(self, domain: str):
        self.domain = domain
        self._wheel = CycleWheel()
        # Insertion-ordered set of components due every cycle.
        self._running: dict[object, None] = {}
        self.stat_wakeups_posted = 0
        self.stat_events_fired = 0

    # -- posting -----------------------------------------------------------
    def wake(self, cycle: int, wakeable: object) -> None:
        """Post an explicit wakeup for ``wakeable`` at ``cycle``.

        Cross-component wakes for the cycle *currently executing* take
        a faster path than the wheel (the session's hook-fed woken
        list); this entry point is for genuinely timed posts.
        """
        self._wheel.post(cycle, wakeable)
        self.stat_wakeups_posted += 1

    def arm(self, now: int, wakeable: Wakeable) -> None:
        """Recompute one component's schedule from its own state."""
        nxt = wakeable.next_event_cycle(now)
        if nxt is None:
            self._running.pop(wakeable, None)
        elif nxt <= now + 1:
            self._running[wakeable] = None
        else:
            self._running.pop(wakeable, None)
            self._wheel.post(nxt, wakeable)
            self.stat_wakeups_posted += 1

    def arm_many(self, now: int, wakeables: Iterable[Wakeable]) -> None:
        """:meth:`arm` each component (inlined for the hot loop)."""
        running = self._running
        wheel = self._wheel
        posted = 0
        for wakeable in wakeables:
            nxt = wakeable.next_event_cycle(now)
            if nxt is None:
                running.pop(wakeable, None)
            elif nxt <= now + 1:
                running[wakeable] = None
            else:
                running.pop(wakeable, None)
                wheel.post(nxt, wakeable)
                posted += 1
        self.stat_wakeups_posted += posted

    # -- consuming ---------------------------------------------------------
    @property
    def running(self) -> dict[object, None]:
        """Read-only view of the every-cycle set (membership tests)."""
        return self._running

    def due_at(self, now: int) -> bool:
        """Does anything need cycle ``now`` executed?"""
        if self._running:
            return True
        nxt = self._wheel.next_cycle()
        return nxt is not None and nxt <= now

    def next_due_cycle(self, now: int) -> int | None:
        """Earliest cycle after ``now`` that must execute, or None
        when the domain is quiescent (fast-forward target)."""
        if self._running:
            return now + 1
        return self._wheel.next_cycle()

    def pop_due(self, now: int) -> list[object]:
        """Remove and return the wheel's items due at or before
        ``now`` (the running set persists and is read separately)."""
        due = self._wheel.pop_due(now)
        self.stat_events_fired += len(due)
        return due

    @property
    def quiescent(self) -> bool:
        """True when nothing at all is scheduled — the event-driven
        equivalent of the dense loop finding every component idle."""
        return not self._running and self._wheel.next_cycle() is None

    def reset(self) -> None:
        """Drop all scheduled events and counters (session reset)."""
        self._wheel.clear()
        self._running.clear()
        self.reset_stats()
