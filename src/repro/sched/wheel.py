"""The cycle wheel: sparse timestamp-indexed event buckets.

A :class:`CycleWheel` holds opaque items posted for absolute cycle
numbers and hands them back exactly at (or, for items posted into the
past, at the first poll after) their cycle.  It is the storage behind
:class:`~repro.sched.scheduler.EventScheduler` and deliberately knows
nothing about clock domains or components.

The implementation is a sparse wheel: a dict of per-cycle buckets plus
a lazily-cleaned min-heap of bucket keys, so posting and peeking are
O(log n) in the number of *distinct* scheduled cycles, independent of
how far apart those cycles are — the property that lets the simulation
fast-forward over millions of quiescent cycles without touching them.

Contract (pinned by the property tests in ``tests/test_sched.py``):

* an item posted for cycle ``c`` is never returned by ``pop_due(now)``
  with ``now < c`` (never early);
* it is returned by the first ``pop_due(now)`` with ``now >= c``
  (never late);
* it is returned exactly once per post, and re-posting the same item
  for the same cycle is idempotent (never twice).
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any


class CycleWheel:
    """Sparse wheel of (cycle → items) buckets with a min-heap index."""

    __slots__ = ("_buckets", "_heap")

    def __init__(self) -> None:
        # Buckets are insertion-ordered sets (dicts with None values)
        # so duplicate posts dedup in O(1).
        self._buckets: dict[int, dict[Any, None]] = {}
        # Each bucket key is pushed exactly once when its bucket is
        # created; stale keys (popped buckets) are discarded lazily.
        self._heap: list[int] = []

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())

    @property
    def empty(self) -> bool:
        return not self._buckets

    def post(self, cycle: int, item: Any) -> None:
        """Schedule ``item`` for ``cycle``.

        Posting the same item for the same cycle again is a no-op
        (idempotent wakeups make liberal re-arming safe).
        """
        bucket = self._buckets.get(cycle)
        if bucket is None:
            self._buckets[cycle] = {item: None}
            heappush(self._heap, cycle)
        else:
            bucket[item] = None

    def next_cycle(self) -> int | None:
        """The earliest cycle holding at least one item, or None."""
        heap = self._heap
        buckets = self._buckets
        while heap:
            cycle = heap[0]
            if cycle in buckets:
                return cycle
            heappop(heap)  # stale key from a popped bucket
        return None

    def pop_due(self, now: int) -> list[Any]:
        """Remove and return every item scheduled at or before ``now``,
        in (cycle, insertion) order."""
        due: list[Any] = []
        while True:
            cycle = self.next_cycle()
            if cycle is None or cycle > now:
                return due
            due.extend(self._buckets.pop(cycle))  # dict iterates keys
            heappop(self._heap)

    def clear(self) -> None:
        """Drop every scheduled item."""
        self._buckets.clear()
        self._heap.clear()
