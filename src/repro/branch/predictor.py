"""Front-end predictor combining TAGE, BTB, and RAS.

The OoO core consults this at dispatch for every control-flow
instruction; a wrong direction or target costs a redirect (the
pipeline-depth penalty configured in the core parameters).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.branch.btb import Btb
from repro.branch.ras import ReturnAddressStack
from repro.branch.tage import TageParams, TagePredictor
from repro.isa.opcodes import InstrClass


@dataclass(frozen=True)
class PredictorParams:
    tage: TageParams = field(default_factory=TageParams)
    btb_entries: int = 256
    ras_entries: int = 32


class FrontEndPredictor:
    """Predicts each control-flow instruction; reports mispredicts."""

    def __init__(self, params: PredictorParams | None = None):
        self.params = params or PredictorParams()
        self.tage = TagePredictor(self.params.tage)
        self.btb = Btb(self.params.btb_entries)
        self.ras = ReturnAddressStack(self.params.ras_entries)
        self.stat_branches = 0
        self.stat_mispredicts = 0

    def reset(self) -> None:
        """Untrained predictor: rebuild TAGE/BTB/RAS from parameters."""
        self.tage = TagePredictor(self.params.tage)
        self.btb = Btb(self.params.btb_entries)
        self.ras = ReturnAddressStack(self.params.ras_entries)
        self.stat_branches = 0
        self.stat_mispredicts = 0

    def predict_and_train(self, iclass: InstrClass, pc: int, taken: bool,
                          target: int) -> bool:
        """Predict the instruction, train on the actual outcome, and
        return True when the prediction was wrong (redirect needed).

        ``taken``/``target`` are the architectural outcomes from the
        trace (the simulator is trace-driven, so the oracle outcome is
        known; the predictor decides whether the front end would have
        followed it without a redirect).
        """
        self.stat_branches += 1
        mispredicted = False

        if iclass is InstrClass.BRANCH:
            predicted_taken = self.tage.predict(pc)
            self.tage.update(pc, taken)
            mispredicted = predicted_taken != taken
        elif iclass is InstrClass.CALL:
            # Direct calls always predict; push the return address.
            self.ras.push(pc + 4)
            predicted_target = self.btb.predict(pc)
            if predicted_target != target:
                mispredicted = predicted_target is not None or self._is_indirect(pc)
            self.btb.update(pc, target)
        elif iclass is InstrClass.RET:
            predicted_target = self.ras.pop()
            mispredicted = predicted_target != target
        elif iclass is InstrClass.JUMP:
            predicted_target = self.btb.predict(pc)
            mispredicted = predicted_target != target
            self.btb.update(pc, target)

        if mispredicted:
            self.stat_mispredicts += 1
        return mispredicted

    @staticmethod
    def _is_indirect(pc: int) -> bool:
        # Direct jal calls are decoded in the front end and never
        # mispredict the target; the trace does not distinguish them,
        # so treat first-sighting direct calls as predictable.
        return False

    @property
    def mispredict_rate(self) -> float:
        if not self.stat_branches:
            return 0.0
        return self.stat_mispredicts / self.stat_branches
