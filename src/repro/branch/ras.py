"""Return address stack (Table II: 32 entries)."""

from __future__ import annotations

from repro.errors import ConfigError


class ReturnAddressStack:
    """Circular RAS: overflow overwrites the oldest entry, as in BOOM."""

    def __init__(self, entries: int = 32):
        if entries <= 0:
            raise ConfigError("RAS needs at least one entry")
        self._entries = entries
        self._stack: list[int] = []
        self.stat_overflows = 0
        self.stat_underflows = 0

    def push(self, return_addr: int) -> None:
        if len(self._stack) == self._entries:
            self._stack.pop(0)
            self.stat_overflows += 1
        self._stack.append(return_addr)

    def pop(self) -> int | None:
        """Predicted return target, or None when the stack is empty."""
        if not self._stack:
            self.stat_underflows += 1
            return None
        return self._stack.pop()

    @property
    def depth(self) -> int:
        return len(self._stack)
