"""TAGE conditional branch predictor.

Table II: "TAGE algorithm ... 6 TAGE tables with 2–64 bits history".
This is a standard TAGE: a bimodal base predictor plus N partially
tagged tables indexed by folded global history of geometrically
increasing length; prediction comes from the longest matching table,
with useful-counter-guided allocation on mispredictions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError


def _geometric_lengths(count: int, lo: int, hi: int) -> tuple[int, ...]:
    """Geometrically spaced history lengths from lo to hi inclusive."""
    if count < 2:
        raise ConfigError("TAGE needs at least two tagged tables")
    ratio = (hi / lo) ** (1.0 / (count - 1))
    lengths = []
    for i in range(count):
        length = int(round(lo * ratio**i))
        if lengths and length <= lengths[-1]:
            length = lengths[-1] + 1
        lengths.append(length)
    return tuple(lengths)


@dataclass(frozen=True)
class TageParams:
    num_tables: int = 6
    min_history: int = 2
    max_history: int = 64
    table_bits: int = 9          # 512 entries per tagged table
    tag_bits: int = 9
    base_bits: int = 12          # 4096-entry bimodal base
    history_lengths: tuple[int, ...] = field(default_factory=tuple)

    def lengths(self) -> tuple[int, ...]:
        if self.history_lengths:
            return self.history_lengths
        return _geometric_lengths(
            self.num_tables, self.min_history, self.max_history)


class _TageEntry:
    __slots__ = ("tag", "ctr", "useful")

    def __init__(self) -> None:
        self.tag = -1
        self.ctr = 0     # 3-bit signed counter in [-4, 3]; >= 0 = taken
        self.useful = 0  # 2-bit useful counter


class TagePredictor:
    """TAGE with per-table folded-history indexing."""

    def __init__(self, params: TageParams | None = None):
        self.params = params or TageParams()
        self._lengths = self.params.lengths()
        size = 1 << self.params.table_bits
        self._tables = [
            [_TageEntry() for _ in range(size)]
            for _ in range(len(self._lengths))
        ]
        self._base = [1] * (1 << self.params.base_bits)  # 2-bit, 1 = weak NT
        self._history = 0  # global history as an int, newest bit at LSB
        self._alloc_tick = 0
        self.stat_lookups = 0
        self.stat_mispredicts = 0

    # -- indexing ----------------------------------------------------------
    def _fold(self, history: int, length: int, bits: int) -> int:
        """Fold the low ``length`` history bits into ``bits`` bits."""
        h = history & ((1 << length) - 1)
        folded = 0
        while h:
            folded ^= h & ((1 << bits) - 1)
            h >>= bits
        return folded

    def _index(self, pc: int, table: int) -> int:
        bits = self.params.table_bits
        folded = self._fold(self._history, self._lengths[table], bits)
        return ((pc >> 2) ^ folded ^ (table * 0x9E37)) & ((1 << bits) - 1)

    def _tag(self, pc: int, table: int) -> int:
        bits = self.params.tag_bits
        folded = self._fold(self._history, self._lengths[table], bits - 1)
        return ((pc >> 2) ^ (folded << 1) ^ table) & ((1 << bits) - 1)

    def _base_index(self, pc: int) -> int:
        return (pc >> 2) & ((1 << self.params.base_bits) - 1)

    # -- prediction --------------------------------------------------------
    def predict(self, pc: int) -> bool:
        """Predict taken/not-taken for the branch at ``pc``."""
        self.stat_lookups += 1
        provider, _ = self._find_provider(pc)
        if provider is not None:
            table, idx = provider
            return self._tables[table][idx].ctr >= 0
        return self._base[self._base_index(pc)] >= 2

    def _find_provider(self, pc: int):
        """Longest matching tagged table, plus any alternate match."""
        provider = None
        alt = None
        for table in range(len(self._lengths) - 1, -1, -1):
            idx = self._index(pc, table)
            if self._tables[table][idx].tag == self._tag(pc, table):
                if provider is None:
                    provider = (table, idx)
                else:
                    alt = (table, idx)
                    break
        return provider, alt

    # -- update ------------------------------------------------------------
    def update(self, pc: int, taken: bool) -> None:
        """Train on the resolved outcome and shift global history."""
        provider, _ = self._find_provider(pc)
        predicted = self.predict_quietly(pc, provider)
        mispredicted = predicted != taken
        if mispredicted:
            self.stat_mispredicts += 1

        if provider is not None:
            table, idx = provider
            entry = self._tables[table][idx]
            entry.ctr = self._update_ctr(entry.ctr, taken, -4, 3)
            if not mispredicted:
                entry.useful = min(entry.useful + 1, 3)
        else:
            bidx = self._base_index(pc)
            ctr = self._base[bidx]
            self._base[bidx] = min(ctr + 1, 3) if taken else max(ctr - 1, 0)

        if mispredicted:
            self._allocate(pc, taken, provider)

        self._history = ((self._history << 1) | (1 if taken else 0)) \
            & ((1 << self.params.max_history) - 1)

    def predict_quietly(self, pc: int, provider) -> bool:
        if provider is not None:
            table, idx = provider
            return self._tables[table][idx].ctr >= 0
        return self._base[self._base_index(pc)] >= 2

    @staticmethod
    def _update_ctr(ctr: int, taken: bool, lo: int, hi: int) -> int:
        return min(ctr + 1, hi) if taken else max(ctr - 1, lo)

    def _allocate(self, pc: int, taken: bool, provider) -> None:
        """Allocate an entry in a longer-history table on mispredict."""
        start = provider[0] + 1 if provider is not None else 0
        for table in range(start, len(self._lengths)):
            idx = self._index(pc, table)
            entry = self._tables[table][idx]
            if entry.useful == 0:
                entry.tag = self._tag(pc, table)
                entry.ctr = 0 if taken else -1
                return
        # No free entry: age useful counters (periodic decay).
        self._alloc_tick += 1
        if self._alloc_tick & 0xFF == 0:
            for table in range(start, len(self._lengths)):
                for entry in self._tables[table]:
                    if entry.useful:
                        entry.useful -= 1

    @property
    def mispredict_rate(self) -> float:
        if not self.stat_lookups:
            return 0.0
        return self.stat_mispredicts / self.stat_lookups
