"""Branch target buffer (Table II: 256 entries)."""

from __future__ import annotations

from repro.errors import ConfigError


class Btb:
    """Direct-mapped BTB mapping branch PC → predicted target."""

    def __init__(self, entries: int = 256):
        if entries <= 0 or entries & (entries - 1):
            raise ConfigError("BTB entries must be a positive power of two")
        self._entries = entries
        self._mask = entries - 1
        self._tags = [-1] * entries
        self._targets = [0] * entries
        self.stat_hits = 0
        self.stat_misses = 0

    def _index(self, pc: int) -> int:
        return (pc >> 2) & self._mask

    def predict(self, pc: int) -> int | None:
        """Predicted target for an indirect jump at ``pc``, or None."""
        idx = self._index(pc)
        if self._tags[idx] == pc:
            self.stat_hits += 1
            return self._targets[idx]
        self.stat_misses += 1
        return None

    def update(self, pc: int, target: int) -> None:
        idx = self._index(pc)
        self._tags[idx] = pc
        self._targets[idx] = target
