"""Branch prediction substrate: TAGE, BTB, RAS (Table II front end)."""

from repro.branch.btb import Btb
from repro.branch.predictor import FrontEndPredictor, PredictorParams
from repro.branch.ras import ReturnAddressStack
from repro.branch.tage import TageParams, TagePredictor

__all__ = [
    "Btb",
    "FrontEndPredictor",
    "PredictorParams",
    "ReturnAddressStack",
    "TageParams",
    "TagePredictor",
]
