"""Experiment harnesses: one module per paper table/figure.

Each module exposes ``run(...)`` returning structured rows and a
``main()`` that prints the table the paper reports.  The CLI
(``python -m repro.experiments <id>``) dispatches to them; the
``benchmarks/`` tree wraps the same entry points in pytest-benchmark.

Scale: trace length defaults to ``DEFAULT_TRACE_LEN`` and can be
overridden with the ``REPRO_TRACE_LEN`` environment variable — the
paper's shapes are stable from ~6 k instructions up.
"""

from repro.experiments.common import (
    DEFAULT_SEED,
    DEFAULT_TRACE_LEN,
    cached_trace,
    run_monitored,
    trace_length,
    workload_rows,
)

__all__ = [
    "DEFAULT_SEED",
    "DEFAULT_TRACE_LEN",
    "cached_trace",
    "run_monitored",
    "trace_length",
    "workload_rows",
]
