"""Scenario smoke: every library scenario, streamed, on two kernels.

Not a paper figure — the coverage net for the scenario axis.  Each
named scenario in :data:`repro.trace.scenario.SCENARIOS` is composed
through the on-disk streaming pipeline and executed on a small kernel
set; the table reports cycles, slowdown, detection coverage and the
trace digest (the determinism witness CI tracks).  ``REPRO_TRACE_LEN``
scales the composed length like every other harness.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.experiments.common import resolve_client
from repro.runner import RunSpec, trace_length
from repro.service import Client
from repro.trace.scenario import SCENARIO_NAMES, make_scenario

DEFAULT_KERNELS: tuple[str, ...] = ("shadow_stack", "asan")


@dataclass(frozen=True)
class ScenarioRow:
    scenario: str
    kernel: str
    cycles: int
    slowdown: float
    injected: int
    detected: int
    digest: str

    def as_row(self) -> list[str]:
        return [self.scenario, self.kernel, str(self.cycles),
                f"{self.slowdown:.3f}", str(self.injected),
                str(self.detected), self.digest[:12]]


def run(scenario_names: tuple[str, ...] = SCENARIO_NAMES,
        kernels: tuple[str, ...] = DEFAULT_KERNELS,
        engines_per_kernel: int = 2,
        stream: bool = True,
        client: Client | None = None) -> list[ScenarioRow]:
    client = resolve_client(client)
    # Clamp the REPRO_TRACE_LEN scaling so every phase keeps room for
    # its attack mix (UaF needs ~2600 records of quarantine ageing).
    specs = [RunSpec(benchmark=name, kernels=(kernel,),
                     engines_per_kernel=engines_per_kernel,
                     scenario=name, stream=stream,
                     length=max(trace_length(),
                                make_scenario(name).min_total()))
             for name in scenario_names for kernel in kernels]
    rows = []
    for record in client.map(specs):
        rows.append(ScenarioRow(
            scenario=record.spec.benchmark,
            kernel=record.spec.kernels[0],
            cycles=record.result.cycles,
            slowdown=record.slowdown,
            injected=record.injected_attacks,
            detected=len(record.result.detections),
            digest=record.trace_digest))
    return rows


def main() -> str:
    rows = run()
    table = [["scenario", "kernel", "cycles", "slowdown", "injected",
              "detected", "digest"]]
    table.extend(r.as_row() for r in rows)
    out = format_table(
        table, title="Scenario smoke (streamed, per-kernel detections)")
    print(out)
    return out


if __name__ == "__main__":
    main()
