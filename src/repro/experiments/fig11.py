"""Fig 11: programming models (PMC, 4 µcores).

The same PMC kernel compiled four ways: a conventional
single-iteration loop, Duff's device, pure unrolling, and the hybrid
strategy.  Paper shape: the conventional loop suffers on
memory-intensive workloads (up to 3.7× on x264); hybrid is uniformly
best, with unrolling close behind.
"""

from __future__ import annotations

from repro.analysis.metrics import SlowdownTable
from repro.analysis.report import format_table
from repro.experiments.common import make_spec, run_cells, workload_rows
from repro.kernels.base import KernelStrategy
from repro.service import Client
from repro.trace.profiles import PARSEC_BENCHMARKS
from repro.trace.scenario import Scenario


def run(benchmarks: tuple[str, ...] = PARSEC_BENCHMARKS,
        num_engines: int = 4,
        scenario: "Scenario | str | None" = None,
        stream: bool = False,
        client: Client | None = None) -> SlowdownTable:
    rows = workload_rows(benchmarks, scenario)
    cells = [((label, strategy),
              make_spec(label, ("pmc",), engines_per_kernel=num_engines,
                        strategy=strategy, scenario=scen,
                        stream=stream))
             for label, scen in rows for strategy in KernelStrategy]
    table = SlowdownTable([label for label, _ in rows])
    for (label, strategy), record in run_cells(cells, client):
        table.record(label, strategy.value, record.slowdown)
    return table


def main() -> str:
    from repro.analysis.shapes import check_strategy_ordering
    from repro.analysis.viz import bar_chart

    table = run()
    chart = bar_chart(
        {s: table.scheme_geomean(s) for s in table.schemes},
        title="Fig 11 geomeans")
    check = check_strategy_ordering(
        table.scheme_geomean("conventional"),
        table.scheme_geomean("duff"),
        table.scheme_geomean("unrolled"),
        table.scheme_geomean("hybrid"))
    out = "\n".join([
        format_table(table.rows(),
                     title="Fig 11: programming-model slowdown "
                           "(PMC, 4 ucores)"),
        chart,
        f"shape [{'ok' if check.holds else 'FAIL'}]: {check.detail}",
    ])
    print(out)
    return out


if __name__ == "__main__":
    main()
