"""Fig 7(b): combining safeguards.

Multiple kernels run simultaneously, each with its own engine group;
the filter/mapper are shared.  Paper observation: the heaviest kernel
dominates but slowdowns do not multiply.  With three kernels the
shadow stack moves to a hardware accelerator, as in the paper.
"""

from __future__ import annotations

from repro.analysis.metrics import SlowdownTable
from repro.analysis.report import format_table
from repro.experiments.common import make_spec, run_cells, workload_rows
from repro.service import Client
from repro.trace.profiles import PARSEC_BENCHMARKS
from repro.trace.scenario import Scenario

COMBINATIONS: tuple[tuple[str, tuple[str, ...], frozenset[str]], ...] = (
    ("ss+pmc", ("shadow_stack", "pmc"), frozenset()),
    ("as+pmc", ("asan", "pmc"), frozenset()),
    ("uaf+pmc", ("uaf", "pmc"), frozenset()),
    ("uaf+as", ("uaf", "asan"), frozenset()),
    ("ss+as", ("shadow_stack", "asan"), frozenset()),
    ("ss+pmc+as", ("shadow_stack", "pmc", "asan"),
     frozenset({"shadow_stack"})),
    ("ss+pmc+uaf", ("shadow_stack", "pmc", "uaf"),
     frozenset({"shadow_stack"})),
)


def run(benchmarks: tuple[str, ...] = PARSEC_BENCHMARKS,
        scenario: "Scenario | str | None" = None,
        stream: bool = False,
        client: Client | None = None) -> SlowdownTable:
    rows = workload_rows(benchmarks, scenario)
    cells = [((label, column),
              make_spec(label, kernels, accelerated=accelerated,
                        scenario=scen, stream=stream))
             for label, scen in rows
             for column, kernels, accelerated in COMBINATIONS]
    table = SlowdownTable([label for label, _ in rows])
    for (label, column), record in run_cells(cells, client):
        table.record(label, column, record.slowdown)
    return table


def main() -> str:
    table = run()
    out = format_table(
        table.rows(),
        title="Fig 7(b): slowdown when combining safeguards "
              "(4 ucores per kernel; SS as HA with 3 kernels)")
    print(out)
    return out


if __name__ == "__main__":
    main()
