"""Shared plumbing for the experiment harnesses.

The harnesses are thin now: each one builds a batch of
:class:`~repro.runner.spec.RunSpec` and submits it to the shared
:func:`~repro.runner.runner.default_runner`, which memoises records
per spec (overlapping figures simulate a configuration once) and fans
out over worker processes when ``REPRO_WORKERS`` > 1.

``run_monitored`` survives as a one-spec convenience wrapper for
callers that want a single (result, baseline) pair.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.core.isax import IsaxStyle
from repro.core.system import SystemResult
from repro.kernels.base import KernelStrategy
from repro.runner import (
    DEFAULT_SEED,
    DEFAULT_TRACE_LEN,
    RunRecord,
    RunSpec,
    SweepRunner,
    default_runner,
    trace_length,
)
from repro.runner import worker as _worker
from repro.trace.record import Trace
from repro.trace.scenario import Scenario

__all__ = [
    "DEFAULT_SEED",
    "DEFAULT_TRACE_LEN",
    "baseline_cycles",
    "cached_trace",
    "make_spec",
    "run_cells",
    "run_monitored",
    "trace_length",
    "workload_rows",
]


def workload_rows(benchmarks: Sequence[str],
                  scenario: "Scenario | str | None" = None,
                  ) -> list[tuple[str, "Scenario | str | None"]]:
    """The workload axis of a harness: ``(row label, scenario)`` pairs.

    Without a scenario this is the per-benchmark sweep every figure
    runs; with one, the scenario replaces the benchmark axis (one row,
    labelled by the scenario's name) so any harness can regenerate its
    figure over a multi-phase workload.
    """
    if scenario is None:
        return [(bench, None) for bench in benchmarks]
    name = scenario if isinstance(scenario, str) else scenario.name
    return [(name, scenario)]


def cached_trace(benchmark: str, seed: int = DEFAULT_SEED,
                 length: int | None = None) -> Trace:
    """Generate (once) the trace for a benchmark.  Shares the runner
    worker's process-wide trace cache."""
    return _worker.cached_trace(benchmark, seed,
                                length or trace_length())


def baseline_cycles(benchmark: str, seed: int = DEFAULT_SEED,
                    length: int | None = None) -> int:
    """Unmonitored-core cycles (the slowdown denominator).  Shares the
    runner worker's process-wide baseline cache."""
    return _worker.baseline_cycles(benchmark, seed,
                                   length or trace_length())


def make_spec(benchmark: str, kernel_names: tuple[str, ...],
              engines_per_kernel: int = 4,
              accelerated: frozenset[str] = frozenset(),
              filter_width: int = 4,
              strategy: KernelStrategy = KernelStrategy.HYBRID,
              isax_style: IsaxStyle = IsaxStyle.MA_STAGE,
              seed: int = DEFAULT_SEED,
              length: int | None = None,
              scenario: "Scenario | str | None" = None,
              stream: bool = False) -> RunSpec:
    """A spec with the historical ``run_monitored`` defaults."""
    from repro.core.config import FireGuardConfig

    return RunSpec(benchmark=benchmark, kernels=tuple(kernel_names),
                   engines_per_kernel=engines_per_kernel,
                   accelerated=frozenset(accelerated),
                   strategy=strategy, isax_style=isax_style,
                   config=FireGuardConfig(filter_width=filter_width,
                                          num_engines=engines_per_kernel),
                   seed=seed, length=length, scenario=scenario,
                   stream=stream)


def run_cells(cells: Sequence[tuple[Any, RunSpec]],
              runner: SweepRunner | None = None,
              ) -> list[tuple[Any, RunRecord]]:
    """Run labelled specs as one batch; ``(label, record)`` pairs come
    back in submission order, so harnesses never maintain separate
    label and spec lists that must stay index-aligned."""
    runner = runner or default_runner()
    records = runner.run([spec for _, spec in cells])
    return [(label, record)
            for (label, _), record in zip(cells, records)]


def run_monitored(benchmark: str, kernel_names: tuple[str, ...],
                  engines_per_kernel: int = 4,
                  accelerated: frozenset[str] = frozenset(),
                  filter_width: int = 4,
                  strategy: KernelStrategy = KernelStrategy.HYBRID,
                  isax_style: IsaxStyle = IsaxStyle.MA_STAGE,
                  seed: int = DEFAULT_SEED,
                  length: int | None = None,
                  scenario: "Scenario | str | None" = None,
                  stream: bool = False) -> tuple[SystemResult, int]:
    """Run one FireGuard configuration; returns (result, baseline)."""
    record = default_runner().run_one(make_spec(
        benchmark, kernel_names, engines_per_kernel=engines_per_kernel,
        accelerated=accelerated, filter_width=filter_width,
        strategy=strategy, isax_style=isax_style, seed=seed,
        length=length, scenario=scenario, stream=stream))
    return record.result, record.baseline_cycles
