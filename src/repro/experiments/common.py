"""Shared plumbing for the experiment harnesses.

The harnesses are thin now: each one builds a batch of
:class:`~repro.runner.spec.RunSpec` and submits it to the shared
:func:`~repro.service.client.default_client`, which memoises records
per spec (overlapping figures simulate a configuration once), reads
through the persistent result store when ``REPRO_RESULT_STORE`` is
set (a warm rerun of a figure simulates nothing), and fans out over
worker processes when ``REPRO_WORKERS`` > 1.

:func:`run_cells` keeps the batch shape the table-building harnesses
want; :func:`stream_cells` yields ``(label, record)`` pairs as runs
complete, for harnesses that render incrementally.  ``run_monitored``
survives as a one-spec convenience wrapper for callers that want a
single (result, baseline) pair.
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

from repro.core.isax import IsaxStyle
from repro.core.system import SystemResult
from repro.kernels.base import KernelStrategy
from repro.runner import (
    DEFAULT_SEED,
    DEFAULT_TRACE_LEN,
    RunRecord,
    RunSpec,
    trace_length,
)
from repro.runner import worker as _worker
from repro.service import Client, default_client
from repro.trace.record import Trace
from repro.trace.scenario import Scenario

__all__ = [
    "DEFAULT_SEED",
    "DEFAULT_TRACE_LEN",
    "baseline_cycles",
    "cached_trace",
    "make_spec",
    "resolve_client",
    "run_cells",
    "run_monitored",
    "stream_cells",
    "trace_length",
    "workload_rows",
]


def workload_rows(benchmarks: Sequence[str],
                  scenario: "Scenario | str | None" = None,
                  ) -> list[tuple[str, "Scenario | str | None"]]:
    """The workload axis of a harness: ``(row label, scenario)`` pairs.

    Without a scenario this is the per-benchmark sweep every figure
    runs; with one, the scenario replaces the benchmark axis (one row,
    labelled by the scenario's name) so any harness can regenerate its
    figure over a multi-phase workload.
    """
    if scenario is None:
        return [(bench, None) for bench in benchmarks]
    name = scenario if isinstance(scenario, str) else scenario.name
    return [(name, scenario)]


def cached_trace(benchmark: str, seed: int = DEFAULT_SEED,
                 length: int | None = None) -> Trace:
    """Generate (once) the trace for a benchmark.  Shares the runner
    worker's process-wide trace cache."""
    return _worker.cached_trace(benchmark, seed,
                                length or trace_length())


def baseline_cycles(benchmark: str, seed: int = DEFAULT_SEED,
                    length: int | None = None) -> int:
    """Unmonitored-core cycles (the slowdown denominator).  Shares the
    runner worker's process-wide baseline cache."""
    return _worker.baseline_cycles(benchmark, seed,
                                   length or trace_length())


def make_spec(benchmark: str, kernel_names: tuple[str, ...],
              engines_per_kernel: int = 4,
              accelerated: frozenset[str] = frozenset(),
              filter_width: int = 4,
              strategy: KernelStrategy = KernelStrategy.HYBRID,
              isax_style: IsaxStyle = IsaxStyle.MA_STAGE,
              seed: int = DEFAULT_SEED,
              length: int | None = None,
              scenario: "Scenario | str | None" = None,
              stream: bool = False) -> RunSpec:
    """A spec with the historical ``run_monitored`` defaults."""
    from repro.core.config import FireGuardConfig

    return RunSpec(benchmark=benchmark, kernels=tuple(kernel_names),
                   engines_per_kernel=engines_per_kernel,
                   accelerated=frozenset(accelerated),
                   strategy=strategy, isax_style=isax_style,
                   config=FireGuardConfig(filter_width=filter_width,
                                          num_engines=engines_per_kernel),
                   seed=seed, length=length, scenario=scenario,
                   stream=stream)


def resolve_client(client: Any = None) -> Client:
    """The execution client a harness should use: an explicit
    :class:`~repro.service.client.Client`, a legacy ``SweepRunner``
    (unwrapped to its client), or the process-wide default."""
    if client is None:
        return default_client()
    if isinstance(client, Client):
        return client
    inner = getattr(client, "_client", None)  # SweepRunner facade
    if isinstance(inner, Client):
        return inner
    raise TypeError(f"expected a Client (or SweepRunner), "
                    f"got {type(client).__name__}")


def stream_cells(cells: Sequence[tuple[Any, RunSpec]],
                 client: Any = None,
                 ) -> Iterator[tuple[Any, RunRecord]]:
    """Submit labelled specs and yield ``(label, record)`` pairs in
    submission order, each as soon as it completes — the incremental
    path every table harness is built on."""
    client = resolve_client(client)
    labels = [label for label, _ in cells]
    for label, record in zip(labels,
                             client.map([spec for _, spec in cells])):
        yield label, record


def run_cells(cells: Sequence[tuple[Any, RunSpec]],
              client: Any = None,
              ) -> list[tuple[Any, RunRecord]]:
    """Run labelled specs as one batch; ``(label, record)`` pairs come
    back in submission order, so harnesses never maintain separate
    label and spec lists that must stay index-aligned."""
    return list(stream_cells(cells, client))


def run_monitored(benchmark: str, kernel_names: tuple[str, ...],
                  engines_per_kernel: int = 4,
                  accelerated: frozenset[str] = frozenset(),
                  filter_width: int = 4,
                  strategy: KernelStrategy = KernelStrategy.HYBRID,
                  isax_style: IsaxStyle = IsaxStyle.MA_STAGE,
                  seed: int = DEFAULT_SEED,
                  length: int | None = None,
                  scenario: "Scenario | str | None" = None,
                  stream: bool = False) -> tuple[SystemResult, int]:
    """Run one FireGuard configuration; returns (result, baseline)."""
    record = default_client().run_one(make_spec(
        benchmark, kernel_names, engines_per_kernel=engines_per_kernel,
        accelerated=accelerated, filter_width=filter_width,
        strategy=strategy, isax_style=isax_style, seed=seed,
        length=length, scenario=scenario, stream=stream))
    return record.result, record.baseline_cycles
