"""Shared plumbing for the experiment harnesses."""

from __future__ import annotations

import os
from functools import lru_cache

from repro.core.config import FireGuardConfig
from repro.core.isax import IsaxStyle
from repro.core.system import FireGuardSystem, SystemResult
from repro.kernels import make_kernel
from repro.kernels.base import KernelStrategy
from repro.ooo.core import MainCore
from repro.trace.generator import generate_trace
from repro.trace.profiles import PARSEC_PROFILES
from repro.trace.record import Trace

DEFAULT_TRACE_LEN = 8000
DEFAULT_SEED = 7


def trace_length() -> int:
    """Trace length, overridable via REPRO_TRACE_LEN."""
    return int(os.environ.get("REPRO_TRACE_LEN", DEFAULT_TRACE_LEN))


@lru_cache(maxsize=64)
def cached_trace(benchmark: str, seed: int = DEFAULT_SEED,
                 length: int | None = None) -> Trace:
    """Generate (once) the trace for a benchmark."""
    return generate_trace(PARSEC_PROFILES[benchmark], seed=seed,
                          length=length or trace_length())


@lru_cache(maxsize=64)
def baseline_cycles(benchmark: str, seed: int = DEFAULT_SEED,
                    length: int | None = None) -> int:
    """Unmonitored-core cycles (the slowdown denominator)."""
    trace = cached_trace(benchmark, seed, length)
    return MainCore().run_standalone(trace).cycles


def run_monitored(benchmark: str, kernel_names: tuple[str, ...],
                  engines_per_kernel: int = 4,
                  accelerated: frozenset[str] = frozenset(),
                  filter_width: int = 4,
                  strategy: KernelStrategy = KernelStrategy.HYBRID,
                  isax_style: IsaxStyle = IsaxStyle.MA_STAGE,
                  seed: int = DEFAULT_SEED,
                  length: int | None = None,
                  trace: Trace | None = None) -> tuple[SystemResult, int]:
    """Run one FireGuard configuration; returns (result, baseline)."""
    if trace is None:
        trace = cached_trace(benchmark, seed, length)
        base = baseline_cycles(benchmark, seed, length)
    else:
        base = MainCore().run_standalone(trace).cycles
        # A fresh core consumed the trace; the system below re-runs it.
    kernels = [make_kernel(name, strategy=strategy)
               for name in kernel_names]
    config = FireGuardConfig(filter_width=filter_width,
                             num_engines=engines_per_kernel)
    system = FireGuardSystem(
        kernels, config=config,
        engines_per_kernel={n: engines_per_kernel for n in kernel_names},
        accelerated=accelerated, isax_style=isax_style)
    result = system.run(trace)
    return result, base
