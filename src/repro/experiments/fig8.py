"""Fig 8: detection latency with 4 µcores.

50–100 attacks are injected per workload per kernel (hijacked return
targets, out-of-bounds accesses, dangling accesses, fence
violations); the latency from the malicious instruction's commit to
the kernel's alert is reported in nanoseconds.  Paper shape: PMC
< 50 ns; shadow stack slightly higher (block-parallel hand-off);
ASan median < 200 ns with a > 2 µs tail from co-occurring TLB and
cache misses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.experiments.common import resolve_client
from repro.kernels.pmc import DEFAULT_BOUND_HI, DEFAULT_BOUND_LO
from repro.runner import AttackPlan, RunRecord, RunSpec
from repro.service import Client, default_client
from repro.trace.attacks import AttackKind
from repro.trace.profiles import PARSEC_BENCHMARKS
from repro.trace.scenario import Scenario, make_scenario
from repro.utils.stats import LatencySummary, summarize_latencies

KERNEL_ATTACKS = (
    ("pmc", AttackKind.PMC_BOUND),
    ("shadow_stack", AttackKind.RET_HIJACK),
    ("asan", AttackKind.OOB_ACCESS),
    ("uaf", AttackKind.UAF_ACCESS),
)


@dataclass(frozen=True)
class LatencyRow:
    benchmark: str
    kernel: str
    injected: int
    detected: int
    summary: LatencySummary | None

    def as_row(self) -> list[str]:
        if self.summary is None:
            return [self.benchmark, self.kernel, str(self.injected),
                    "0", "-", "-", "-", "-"]
        s = self.summary
        return [self.benchmark, self.kernel, str(self.injected),
                str(self.detected), f"{s.minimum:.0f}",
                f"{s.median:.0f}", f"{s.p90:.0f}", f"{s.maximum:.0f}"]


def attack_spec(benchmark: str, kernel_name: str, kind: AttackKind,
                attacks: int = 50, seed: int = 23,
                length: int = 12000,
                scenario: "Scenario | str | None" = None,
                stream: bool = False) -> RunSpec:
    """A latency-measurement spec: attacked trace, 4 µcores, no
    baseline run (only detections matter).

    With a ``scenario`` the kernel's attack kind is pointed at the
    scenario's longest phase (``Scenario.with_attacks``) instead of
    riding in ``RunSpec.attacks``.
    """
    plan = AttackPlan(kind=kind, count=attacks,
                      pmc_bounds=(DEFAULT_BOUND_LO, DEFAULT_BOUND_HI))
    if scenario is not None:
        if isinstance(scenario, str):
            scenario = make_scenario(scenario)
        return RunSpec(
            benchmark=benchmark, kernels=(kernel_name,), seed=seed,
            length=length, need_baseline=False,
            scenario=scenario.with_attacks(plan), stream=stream)
    return RunSpec(
        benchmark=benchmark, kernels=(kernel_name,), seed=seed,
        length=length, need_baseline=False, attacks=plan)


def _latency_row(record: RunRecord) -> LatencyRow:
    latencies = record.result.detection_latencies()
    summary = summarize_latencies(latencies) if latencies else None
    return LatencyRow(benchmark=record.spec.benchmark,
                      kernel=record.spec.kernels[0],
                      injected=record.injected_attacks,
                      detected=len(latencies), summary=summary)


def run_one(benchmark: str, kernel_name: str, kind: AttackKind,
            attacks: int = 50, seed: int = 23,
            length: int = 12000) -> LatencyRow:
    record = default_client().run_one(attack_spec(
        benchmark, kernel_name, kind, attacks, seed, length))
    return _latency_row(record)


def run(benchmarks: tuple[str, ...] = PARSEC_BENCHMARKS,
        attacks: int = 50,
        scenario: "Scenario | str | None" = None,
        stream: bool = False,
        client: Client | None = None) -> list[LatencyRow]:
    client = resolve_client(client)
    if scenario is not None:
        label = scenario if isinstance(scenario, str) else scenario.name
        benchmarks = (label,)
    specs = [attack_spec(bench, kernel_name, kind, attacks,
                         scenario=scenario, stream=stream)
             for bench in benchmarks
             for kernel_name, kind in KERNEL_ATTACKS]
    return [_latency_row(record) for record in client.map(specs)]


def main() -> str:
    rows = run()
    table = [["benchmark", "kernel", "injected", "detected", "min_ns",
              "median_ns", "p90_ns", "max_ns"]]
    table.extend(r.as_row() for r in rows)
    out = format_table(table,
                       title="Fig 8: detection latency (4 ucores, ns)")
    print(out)
    return out


if __name__ == "__main__":
    main()
