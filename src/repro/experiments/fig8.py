"""Fig 8: detection latency with 4 µcores.

50–100 attacks are injected per workload per kernel (hijacked return
targets, out-of-bounds accesses, dangling accesses, fence
violations); the latency from the malicious instruction's commit to
the kernel's alert is reported in nanoseconds.  Paper shape: PMC
< 50 ns; shadow stack slightly higher (block-parallel hand-off);
ASan median < 200 ns with a > 2 µs tail from co-occurring TLB and
cache misses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.core.config import FireGuardConfig
from repro.core.system import FireGuardSystem
from repro.kernels import make_kernel
from repro.kernels.pmc import DEFAULT_BOUND_HI, DEFAULT_BOUND_LO
from repro.trace.attacks import AttackKind, inject_attacks
from repro.trace.generator import generate_trace
from repro.trace.profiles import PARSEC_BENCHMARKS, PARSEC_PROFILES
from repro.utils.stats import LatencySummary, summarize_latencies

KERNEL_ATTACKS = (
    ("pmc", AttackKind.PMC_BOUND),
    ("shadow_stack", AttackKind.RET_HIJACK),
    ("asan", AttackKind.OOB_ACCESS),
    ("uaf", AttackKind.UAF_ACCESS),
)


@dataclass(frozen=True)
class LatencyRow:
    benchmark: str
    kernel: str
    injected: int
    detected: int
    summary: LatencySummary | None

    def as_row(self) -> list[str]:
        if self.summary is None:
            return [self.benchmark, self.kernel, str(self.injected),
                    "0", "-", "-", "-", "-"]
        s = self.summary
        return [self.benchmark, self.kernel, str(self.injected),
                str(self.detected), f"{s.minimum:.0f}",
                f"{s.median:.0f}", f"{s.p90:.0f}", f"{s.maximum:.0f}"]


def run_one(benchmark: str, kernel_name: str, kind: AttackKind,
            attacks: int = 50, seed: int = 23,
            length: int = 12000) -> LatencyRow:
    trace = generate_trace(PARSEC_PROFILES[benchmark], seed=seed,
                           length=length)
    pmc_bounds = (DEFAULT_BOUND_LO, DEFAULT_BOUND_HI)
    sites = inject_attacks(trace, kind, attacks, pmc_bounds=pmc_bounds)
    config = FireGuardConfig(num_engines=4)
    system = FireGuardSystem([make_kernel(kernel_name)], config=config)
    result = system.run(trace)
    latencies = result.detection_latencies()
    summary = summarize_latencies(latencies) if latencies else None
    return LatencyRow(benchmark=benchmark, kernel=kernel_name,
                      injected=len(sites), detected=len(latencies),
                      summary=summary)


def run(benchmarks: tuple[str, ...] = PARSEC_BENCHMARKS,
        attacks: int = 50) -> list[LatencyRow]:
    rows = []
    for bench in benchmarks:
        for kernel_name, kind in KERNEL_ATTACKS:
            rows.append(run_one(bench, kernel_name, kind, attacks))
    return rows


def main() -> str:
    rows = run()
    table = [["benchmark", "kernel", "injected", "detected", "min_ns",
              "median_ns", "p90_ns", "max_ns"]]
    table.extend(r.as_row() for r in rows)
    out = format_table(table,
                       title="Fig 8: detection latency (4 ucores, ns)")
    print(out)
    return out


if __name__ == "__main__":
    main()
