"""Fuzz harness: a seeded attack campaign with coverage gating.

``python -m repro.experiments.fuzz`` generates a deterministic corpus
(:mod:`repro.trace.fuzz`), runs every campaign against each guardian
kernel through the normal :class:`~repro.service.client.Client` /
:class:`~repro.runner.spec.RunSpec` path (streamed FGTRACE1
composition, result-store read-through, fabric dispatch — everything
the production path does), joins detections against the fuzzer's
exact ground truth into a :class:`~repro.analysis.coverage.
CoverageMatrix`, writes the ``COVERAGE_fuzz.json`` artifact, and
exits non-zero if any attack-kind × matching-kernel cell is
undetected or any clean record alarmed.

Knobs (see EXPERIMENTS.md): ``REPRO_FUZZ_SEED``,
``REPRO_FUZZ_CAMPAIGNS``, ``REPRO_FUZZ_FAMILIES`` (comma-separated
filter), ``REPRO_FUZZ_OUT``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.analysis.coverage import CoverageMatrix
from repro.analysis.report import format_table
from repro.experiments.common import resolve_client, stream_cells
from repro.kernels import KERNELS
from repro.runner import RunSpec
from repro.service import Client
from repro.trace.fuzz import (
    DEFAULT_FUZZ_SEED,
    FuzzCase,
    FuzzConfig,
    corpus_digest,
    fuzz_corpus,
)

ENV_SEED = "REPRO_FUZZ_SEED"
ENV_CAMPAIGNS = "REPRO_FUZZ_CAMPAIGNS"
ENV_FAMILIES = "REPRO_FUZZ_FAMILIES"
ENV_OUT = "REPRO_FUZZ_OUT"

#: 16 campaigns = 12 armed, enough for the Latin-square schedule to
#: land every attack kind on every family at least once.
DEFAULT_CAMPAIGNS = 16
DEFAULT_OUT = "COVERAGE_fuzz.json"

#: Small engine groups keep a 4-kernel × N-campaign sweep cheap; the
#: identity grids already pin that engine count never changes
#: verdicts, only timing.
ENGINES_PER_KERNEL = 2


def env_config() -> FuzzConfig:
    """The fuzz config the environment requests."""
    kwargs: dict = {
        "seed": int(os.environ.get(ENV_SEED, DEFAULT_FUZZ_SEED)),
        "campaigns": int(os.environ.get(ENV_CAMPAIGNS,
                                        DEFAULT_CAMPAIGNS)),
    }
    families = os.environ.get(ENV_FAMILIES)
    if families:
        kwargs["families"] = tuple(
            name.strip() for name in families.split(",")
            if name.strip())
    return FuzzConfig(**kwargs)


def case_spec(case: FuzzCase, kernel: str,
              stream: bool = True) -> RunSpec:
    """The production-path spec for one (campaign, kernel) cell.

    ``length`` pins the scenario's own total so ``REPRO_TRACE_LEN``
    can never rescale a fuzzed composition away from its ground
    truth; detections are the payload, so no baseline run.
    """
    return RunSpec(benchmark=case.scenario.name,
                   kernels=(kernel,),
                   engines_per_kernel=ENGINES_PER_KERNEL,
                   seed=case.seed,
                   length=case.scenario.total_length(),
                   scenario=case.scenario,
                   stream=stream,
                   need_baseline=False)


def run(config: FuzzConfig | None = None,
        kernels: tuple[str, ...] = tuple(sorted(KERNELS)),
        stream: bool = True,
        client: Client | None = None,
        ) -> tuple[CoverageMatrix, tuple[FuzzCase, ...], str]:
    """Run the corpus; returns (matrix, cases, corpus digest)."""
    config = config if config is not None else env_config()
    client = resolve_client(client)
    cases = fuzz_corpus(config)
    digest = corpus_digest(cases)
    truth = {case.index: case.ground_truth() for case in cases}
    cells = [((case, kernel), case_spec(case, kernel, stream=stream))
             for case in cases for kernel in kernels]
    matrix = CoverageMatrix()
    for (case, kernel), record in stream_cells(cells, client):
        sites = truth[case.index]
        if record.injected_attacks != len(sites):
            raise AssertionError(
                f"campaign {case.index} ({case.scenario.name}) "
                f"injected {record.injected_attacks} attacks in the "
                f"worker but the oracle composed {len(sites)} — "
                f"fuzzer determinism is broken")
        matrix.record(family=case.family, kernel=kernel, sites=sites,
                      result=record.result,
                      attack_free=case.attack_free)
    return matrix, cases, digest


def write_artifact(matrix: CoverageMatrix, config: FuzzConfig,
                   digest: str, path: str | Path) -> Path:
    path = Path(path)
    document = matrix.to_dict(
        seed=config.seed, campaigns=config.campaigns,
        families=list(config.families), corpus_digest=digest)
    path.write_text(json.dumps(document, indent=2, sort_keys=True)
                    + "\n")
    return path


def main() -> int:
    config = env_config()
    matrix, cases, digest = run(config)
    out = format_table(
        matrix.rows(),
        title=f"Fuzz coverage (seed={config.seed}, "
              f"{config.campaigns} campaigns, corpus "
              f"{digest[:12]})")
    print(out)
    clean = sum(1 for case in cases if case.attack_free)
    print(f"campaigns: {len(cases)} ({clean} attack-free), "
          f"families: {','.join(config.families)}")
    for kind, families in sorted(matrix.kind_families().items()):
        print(f"  {kind}: fully detected on "
              f"{len(families)} families ({', '.join(families) or '-'})")
    artifact = write_artifact(
        matrix, config, digest, os.environ.get(ENV_OUT, DEFAULT_OUT))
    print(f"wrote {artifact}")
    gaps = matrix.gaps()
    for cell in gaps:
        print(f"COVERAGE GAP: {cell.kind} x {cell.kernel} on "
              f"{cell.family}: {cell.detected}/{cell.injected} "
              f"detected")
    fps = matrix.total_false_positives()
    if fps:
        print(f"FALSE POSITIVES: {fps} clean-record alarms "
              f"({matrix.false_positives})")
    return 0 if matrix.ok() else 1


if __name__ == "__main__":
    raise SystemExit(main())
