"""Fig 9: microarchitecture bottlenecks vs event-filter width.

AddressSanitizer on 4 µcores with 1-, 2-, and 4-wide event filters.
A 4-wide filter matches the core's commit width and keeps up; at
2-wide the paper sees 16 % geomean overhead and at 1-wide 34 %.
The decomposition reports the proportion of time each element's
queues were full (filter FIFOs / mapper / CDC / message queues).
"""

from __future__ import annotations

from repro.analysis.bottleneck import BottleneckReport, bottleneck_report
from repro.analysis.report import format_table
from repro.experiments.common import make_spec, run_cells, workload_rows
from repro.service import Client
from repro.trace.profiles import PARSEC_BENCHMARKS
from repro.trace.scenario import Scenario
from repro.utils.stats import geomean

FILTER_WIDTHS = (4, 2, 1)


def run(benchmarks: tuple[str, ...] = PARSEC_BENCHMARKS,
        num_engines: int = 4,
        scenario: "Scenario | str | None" = None,
        stream: bool = False,
        client: Client | None = None) -> list[BottleneckReport]:
    rows = workload_rows(benchmarks, scenario)
    cells = [((width, label),
              make_spec(label, ("asan",),
                        engines_per_kernel=num_engines,
                        filter_width=width, scenario=scen,
                        stream=stream))
             for width in FILTER_WIDTHS for label, scen in rows]
    return [bottleneck_report(label, width, record.result,
                              record.baseline_cycles, num_engines)
            for (width, label), record in run_cells(cells, client)]


def width_geomeans(reports: list[BottleneckReport]) -> dict[int, float]:
    out = {}
    for width in FILTER_WIDTHS:
        out[width] = geomean([r.slowdown for r in reports
                              if r.filter_width == width])
    return out


def main() -> str:
    reports = run()
    table = [["benchmark", "width", "slowdown", "filter_full",
              "mapper_blocked", "cdc_full", "msgq_full"]]
    table.extend(r.as_row() for r in reports)
    lines = [format_table(
        table, title="Fig 9: bottlenecks vs filter width "
                     "(ASan, 4 ucores)")]
    for width, gm in width_geomeans(reports).items():
        lines.append(f"geomean slowdown @ width {width}: {gm:.3f}")
    out = "\n".join(lines)
    print(out)
    return out


if __name__ == "__main__":
    main()
