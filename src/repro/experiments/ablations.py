"""Design-choice ablations.

The paper argues for several specific design points; these ablations
measure what each one buys, using the same workloads as the main
figures:

* **ISAX coupling** (§III-D): Rocket's stock post-commit interface vs
  FireGuard's MA-stage redesign (3–13 cycles vs 1–2 per queue op);
* **scalar mapper** (§III-C): the 1-packet/cycle mapper vs the
  footnote-5 superscalar variant — on a 4-wide BOOM the paper expects
  the scalar mapper to cost <0.5 %;
* **queue sizing**: event-filter FIFO depth, CDC depth, and message
  queue depth around the Table II values;
* **shadow-stack block size**: message locality vs hand-off frequency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.core.config import FireGuardConfig
from repro.core.isax import IsaxStyle
from repro.experiments.common import workload_rows
from repro.runner import RunSpec
from repro.service import default_client
from repro.utils.stats import geomean

DEFAULT_BENCHMARKS = ("swaptions", "dedup", "x264")


@dataclass(frozen=True)
class AblationRow:
    name: str
    setting: str
    geomean_slowdown: float

    def as_row(self) -> list[str]:
        return [self.name, self.setting, f"{self.geomean_slowdown:.3f}"]


def _geomean_slowdown(kernel_name: str, config: FireGuardConfig,
                      benchmarks: tuple[str, ...],
                      isax_style: IsaxStyle = IsaxStyle.MA_STAGE,
                      block_size: int | None = None,
                      scenario=None, stream: bool = False) -> float:
    specs = [RunSpec(benchmark=label, kernels=(kernel_name,),
                     engines_per_kernel=config.num_engines,
                     config=config, isax_style=isax_style,
                     block_size=block_size, scenario=scen,
                     stream=stream)
             for label, scen in workload_rows(benchmarks, scenario)]
    return geomean([record.slowdown
                    for record in default_client().map(specs)])


def isax_ablation(benchmarks=DEFAULT_BENCHMARKS, scenario=None,
                  stream=False) -> list[AblationRow]:
    """MA-stage vs post-commit ISAX on the heaviest kernel."""
    rows = []
    for style in (IsaxStyle.MA_STAGE, IsaxStyle.POST_COMMIT):
        gm = _geomean_slowdown("asan", FireGuardConfig(),
                               benchmarks, isax_style=style,
                               scenario=scenario, stream=stream)
        rows.append(AblationRow("isax_coupling", style.value, gm))
    return rows


def mapper_width_ablation(benchmarks=DEFAULT_BENCHMARKS,
                          scenario=None, stream=False,
                          ) -> list[AblationRow]:
    """Scalar vs superscalar mapper on a 4-wide core."""
    rows = []
    for width in (1, 2, 4):
        gm = _geomean_slowdown(
            "asan", FireGuardConfig(mapper_width=width), benchmarks,
            scenario=scenario, stream=stream)
        rows.append(AblationRow("mapper_width", str(width), gm))
    return rows


def fifo_depth_ablation(benchmarks=DEFAULT_BENCHMARKS,
                        scenario=None, stream=False,
                        ) -> list[AblationRow]:
    """Event-filter FIFO sizing around Table II's 16 entries."""
    rows = []
    for depth in (4, 16, 64):
        gm = _geomean_slowdown(
            "asan", FireGuardConfig(fifo_depth=depth), benchmarks,
            scenario=scenario, stream=stream)
        rows.append(AblationRow("filter_fifo_depth", str(depth), gm))
    return rows


def cdc_depth_ablation(benchmarks=DEFAULT_BENCHMARKS,
                       scenario=None, stream=False,
                       ) -> list[AblationRow]:
    """CDC sizing around Table II's 8 entries."""
    rows = []
    for depth in (2, 8, 32):
        gm = _geomean_slowdown(
            "asan", FireGuardConfig(cdc_depth=depth), benchmarks,
            scenario=scenario, stream=stream)
        rows.append(AblationRow("cdc_depth", str(depth), gm))
    return rows


def msgq_depth_ablation(benchmarks=DEFAULT_BENCHMARKS,
                        scenario=None, stream=False,
                        ) -> list[AblationRow]:
    """Message-queue sizing around Table II's 32 entries."""
    rows = []
    for depth in (8, 32, 128):
        gm = _geomean_slowdown(
            "asan", FireGuardConfig(msgq_depth=depth), benchmarks,
            scenario=scenario, stream=stream)
        rows.append(AblationRow("msgq_depth", str(depth), gm))
    return rows


def block_size_ablation(benchmarks=DEFAULT_BENCHMARKS,
                        scenario=None, stream=False,
                        ) -> list[AblationRow]:
    """Shadow-stack block size: locality vs hand-off frequency."""
    rows = []
    for size in (4, 16, 64):
        gm = _geomean_slowdown("shadow_stack", FireGuardConfig(),
                               benchmarks, block_size=size,
                               scenario=scenario, stream=stream)
        rows.append(AblationRow("ss_block_size", str(size), gm))
    return rows


ABLATIONS = {
    "isax": isax_ablation,
    "mapper_width": mapper_width_ablation,
    "fifo_depth": fifo_depth_ablation,
    "cdc_depth": cdc_depth_ablation,
    "msgq_depth": msgq_depth_ablation,
    "block_size": block_size_ablation,
}


def run(benchmarks=DEFAULT_BENCHMARKS, scenario=None,
        stream=False) -> list[AblationRow]:
    rows: list[AblationRow] = []
    for fn in ABLATIONS.values():
        rows.extend(fn(benchmarks, scenario=scenario, stream=stream))
    return rows


def main() -> str:
    rows = [["ablation", "setting", "geomean_slowdown"]]
    rows.extend(r.as_row() for r in run())
    out = format_table(rows, title="Design-choice ablations")
    print(out)
    return out


if __name__ == "__main__":
    main()
