"""Fig 10: scalability — slowdown vs number of µcores.

PMC and shadow stack sweep 2/4/6 engines; AddressSanitizer and UaF
sweep 2–12.  Paper shape: PMC 20 % at 2 µcores → 2 % at 4; shadow
stack 7.3 % → 2.1 % → 0.4 %; ASan 86 % at 2, with x264 slowest to
recover; UaF heaviest, with dedup's allocation work refusing to
parallelise.
"""

from __future__ import annotations

from repro.analysis.metrics import SlowdownTable
from repro.analysis.report import format_table
from repro.experiments.common import make_spec, run_cells, workload_rows
from repro.service import Client
from repro.trace.profiles import PARSEC_BENCHMARKS
from repro.trace.scenario import Scenario

SWEEPS: dict[str, tuple[int, ...]] = {
    "pmc": (2, 4, 6),
    "shadow_stack": (2, 4, 6),
    "asan": (2, 4, 6, 8, 10, 12),
    "uaf": (2, 4, 6, 8, 10, 12),
}


def run(kernel_name: str,
        benchmarks: tuple[str, ...] = PARSEC_BENCHMARKS,
        counts: tuple[int, ...] | None = None,
        scenario: "Scenario | str | None" = None,
        stream: bool = False,
        client: Client | None = None) -> SlowdownTable:
    counts = counts or SWEEPS[kernel_name]
    rows = workload_rows(benchmarks, scenario)
    cells = [((label, count),
              make_spec(label, (kernel_name,),
                        engines_per_kernel=count, scenario=scen,
                        stream=stream))
             for label, scen in rows for count in counts]
    table = SlowdownTable([label for label, _ in rows])
    for (label, count), record in run_cells(cells, client):
        table.record(label, f"{count}uc", record.slowdown)
    return table


def run_all(benchmarks: tuple[str, ...] = PARSEC_BENCHMARKS,
            ) -> dict[str, SlowdownTable]:
    return {name: run(name, benchmarks) for name in SWEEPS}


def main() -> str:
    from repro.analysis.viz import series_chart

    chunks = []
    for panel, kernel_name in zip("abcd", SWEEPS):
        table = run(kernel_name)
        chunks.append(format_table(
            table.rows(),
            title=f"Fig 10({panel}): {kernel_name} slowdown vs "
                  f"ucore count"))
        counts = SWEEPS[kernel_name]
        geomeans = [table.scheme_geomean(f"{c}uc") for c in counts]
        chunks.append(series_chart(
            list(counts), {f"{kernel_name} geomean": geomeans},
            title=f"Fig 10({panel}) geomean curve"))
    out = "\n\n".join(chunks)
    print(out)
    return out


if __name__ == "__main__":
    main()
