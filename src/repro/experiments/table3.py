"""Table III: feasibility of FireGuard in commercial SoCs.

Pure analytical reproduction (§IV-G): normalise published core areas
to 14 nm by density ratios, scale the µcore count with normalised
throughput, and account per-core and per-SoC overheads.
"""

from __future__ import annotations

from repro.analysis.area import (
    feasibility_table,
    fireguard_area_breakdown,
    soc_overhead,
)
from repro.analysis.report import format_table


def run() -> tuple[list[list[str]], list[list[str]]]:
    per_core = [["processor", "soc", "area@14nm", "throughput",
                 "(recomputed)", "filter", "ucores", "overhead_mm2",
                 "pct_of_core"]]
    for row in feasibility_table():
        per_core.append([
            row.processor, row.soc, f"{row.area_at_14nm:.2f}",
            f"{row.normalized_throughput:.2f}",
            f"{row.computed_throughput:.2f}",
            f"{row.filter_width}-way", str(row.num_ucores),
            f"{row.overhead_mm2:.2f}",
            f"{row.overhead_pct_of_core:.1f}%",
        ])
    per_soc = [["soc", "overhead_mm2", "pct_of_soc"]]
    for soc in soc_overhead():
        per_soc.append([soc.name, f"{soc.total_overhead():.2f}",
                        f"{soc.overhead_pct():.2f}%"])
    return per_core, per_soc


def main() -> str:
    per_core, per_soc = run()
    breakdown = fireguard_area_breakdown()
    lines = [
        format_table(per_core,
                     title="Table III (middle): per-core overhead"),
        "",
        format_table(per_soc,
                     title="Table III (bottom): an independent kernel "
                           "for all cores"),
        "",
        "SS IV-F prototype areas: "
        f"BOOM {breakdown.boom:.3f} mm2, "
        f"4 Rockets {breakdown.rockets:.3f} mm2, "
        f"filter {breakdown.filter_area:.3f} mm2, "
        f"mapper {breakdown.mapper:.3f} mm2; "
        f"transport {breakdown.transport_pct_of_boom:.2f}% of BOOM, "
        f"{breakdown.transport_pct_of_soc:.2f}% of SoC; "
        f"FireGuard {breakdown.fireguard_pct_of_boom:.1f}% of BOOM, "
        f"{breakdown.fireguard_pct_of_soc:.2f}% of SoC.",
    ]
    out = "\n".join(lines)
    print(out)
    return out


if __name__ == "__main__":
    main()
