"""Experiment CLI: ``python -m repro.experiments <id> [...]``.

IDs: fig7a fig7b fig8 fig9 fig10 fig11 table2 table3 ablations
scenarios fuzz all
"""

from __future__ import annotations

import sys

from repro.experiments import ablations, fig7a, fig7b, fig8, fig9
from repro.experiments import fig10, fig11, fuzz, scenarios
from repro.experiments import table2, table3

_EXPERIMENTS = {
    "fig7a": fig7a.main,
    "fig7b": fig7b.main,
    "fig8": fig8.main,
    "fig9": fig9.main,
    "fig10": fig10.main,
    "fig11": fig11.main,
    "table2": table2.main,
    "table3": table3.main,
    "ablations": ablations.main,
    "scenarios": scenarios.main,
    "fuzz": fuzz.main,
}


def main(argv: list[str] | None = None) -> int:
    args = argv if argv is not None else sys.argv[1:]
    if not args or args[0] in ("-h", "--help"):
        print(__doc__)
        print("available:", " ".join([*_EXPERIMENTS, "all"]))
        return 0
    name = args[0]
    if name == "all":
        for key, fn in _EXPERIMENTS.items():
            print(f"\n=== {key} ===")
            fn()
        return 0
    if name not in _EXPERIMENTS:
        print(f"unknown experiment {name!r}; "
              f"available: {' '.join([*_EXPERIMENTS, 'all'])}")
        return 2
    rc = _EXPERIMENTS[name]()
    # Gating harnesses (fuzz) return an exit code; reporting ones
    # return their table or None — treat anything non-int as success.
    return rc if isinstance(rc, int) else 0


if __name__ == "__main__":
    raise SystemExit(main())
