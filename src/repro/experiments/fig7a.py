"""Fig 7(a): FireGuard vs software techniques.

Slowdown per benchmark for each kernel on FireGuard (4 µcores; HA for
PMC and shadow stack) against the LLVM-instrumented software schemes.
Paper headline: PMC 2.5 %, shadow stack 2.1 %, ASan 39 %, UaF 42 %
geomean at 4 µcores; HA removes PMC/SS overhead entirely; software
ASan costs 163.5 % (AArch64) / 91.5 % (x86-64).
"""

from __future__ import annotations

from repro.analysis.metrics import SlowdownTable
from repro.analysis.report import format_table
from repro.experiments.common import make_spec, run_cells, workload_rows
from repro.runner import RunSpec
from repro.service import Client
from repro.trace.profiles import PARSEC_BENCHMARKS
from repro.trace.scenario import Scenario

FIREGUARD_COLUMNS = (
    ("pmc_fg_4uc", ("pmc",), frozenset()),
    ("pmc_fg_ha", ("pmc",), frozenset({"pmc"})),
    ("shadow_fg_4uc", ("shadow_stack",), frozenset()),
    ("shadow_fg_ha", ("shadow_stack",), frozenset({"shadow_stack"})),
    ("asan_fg_4uc", ("asan",), frozenset()),
    ("uaf_fg_4uc", ("uaf",), frozenset()),
)

SOFTWARE_COLUMNS = (
    ("shadow_sw", "shadow_stack_sw"),
    ("asan_sw_aarch64", "asan_aarch64"),
    ("asan_sw_x86", "asan_x86"),
    ("dangsan_sw", "dangsan"),
)


def run(benchmarks: tuple[str, ...] = PARSEC_BENCHMARKS,
        scenario: "Scenario | str | None" = None,
        stream: bool = False,
        client: Client | None = None) -> SlowdownTable:
    rows = workload_rows(benchmarks, scenario)
    cells = []
    for label, scen in rows:
        for column, kernel_names, accelerated in FIREGUARD_COLUMNS:
            cells.append(((label, column),
                          make_spec(label, kernel_names,
                                    accelerated=accelerated,
                                    scenario=scen, stream=stream)))
        for column, scheme in SOFTWARE_COLUMNS:
            # Software schemes instrument in memory: never streamed.
            cells.append(((label, column),
                          RunSpec(benchmark=label, software=scheme,
                                  scenario=scen)))
    table = SlowdownTable([label for label, _ in rows])
    for (label, column), record in run_cells(cells, client):
        table.record(label, column, record.slowdown)
    return table


def main() -> str:
    from repro.analysis.shapes import (
        check_fireguard_beats_software,
        check_ha_removes_overhead,
        summarize,
    )

    table = run()
    checks = [
        check_ha_removes_overhead(table, "pmc_fg_ha"),
        check_ha_removes_overhead(table, "shadow_fg_ha"),
        check_fireguard_beats_software(table, "asan_fg_4uc",
                                       "asan_sw_aarch64"),
        check_fireguard_beats_software(table, "asan_fg_4uc",
                                       "asan_sw_x86"),
        check_fireguard_beats_software(table, "uaf_fg_4uc",
                                       "dangsan_sw"),
    ]
    held, total = summarize(checks)
    lines = [format_table(
        table.rows(),
        title="Fig 7(a): slowdown, FireGuard (4 ucores / 1 HA) vs "
              "software schemes")]
    lines.append(f"shape checks: {held}/{total} hold")
    for check in checks:
        status = "ok " if check.holds else "FAIL"
        lines.append(f"  [{status}] {check.claim}: {check.detail}")
    out = "\n".join(lines)
    print(out)
    return out


if __name__ == "__main__":
    main()
