"""Table II: the evaluated hardware configuration.

Renders the simulator's default parameters side by side with the
paper's rows — a configuration audit rather than a measurement.
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.core.config import FireGuardConfig
from repro.ooo.params import CoreParams


def run() -> list[list[str]]:
    core = CoreParams()
    fg = FireGuardConfig()
    h = core.hierarchy
    rows = [
        ["parameter", "paper", "model"],
        ["core width", "4-wide OoO", f"{core.width}-wide OoO"],
        ["frequency", "3.2 GHz", f"{core.freq_ghz} GHz"],
        ["ROB", "128", str(core.rob_entries)],
        ["issue queue", "96", str(core.issue_queue_entries)],
        ["LDQ/STQ", "32/32",
         f"{core.ldq_entries}/{core.stq_entries}"],
        ["phys regs", "128 Int/FP", str(core.phys_regs)],
        ["int ALUs", "2", str(core.n_int_alu)],
        ["FP/mul/div", "1", str(core.n_fp_muldiv)],
        ["mem units", "2", str(core.n_mem)],
        ["L1 I$", "32KB 8-way 8 MSHRs",
         f"{h.l1i.size_bytes // 1024}KB {h.l1i.ways}-way "
         f"{h.l1i.mshrs} MSHRs"],
        ["L1 D$", "32KB 8-way 8 MSHRs",
         f"{h.l1d.size_bytes // 1024}KB {h.l1d.ways}-way "
         f"{h.l1d.mshrs} MSHRs"],
        ["L2", "512KB 8-way 12 MSHRs",
         f"{h.l2.size_bytes // 1024}KB {h.l2.ways}-way "
         f"{h.l2.mshrs} MSHRs"],
        ["LLC", "4MB 8-way 8 MSHRs",
         f"{h.llc.size_bytes // (1024 * 1024)}MB {h.llc.ways}-way "
         f"{h.llc.mshrs} MSHRs"],
        ["BTB / RAS", "256 / 32",
         f"{core.predictor.btb_entries} / {core.predictor.ras_entries}"],
        ["TAGE tables", "6, 2-64b history",
         f"{core.predictor.tage.num_tables}, "
         f"{core.predictor.tage.min_history}-"
         f"{core.predictor.tage.max_history}b history"],
        ["event filter", "4-width, 16-entry FIFO",
         f"{fg.filter_width}-width, {fg.fifo_depth}-entry FIFO"],
        ["mapper", "4 SEs, 8-entry CDC",
         f"{fg.num_sched_engines} SEs, {fg.cdc_depth}-entry CDC"],
        ["fabric clock", "1.6 GHz", f"{fg.low_freq_ghz} GHz"],
        ["ucore", "Rocket 5-stage @1.6GHz, 32-entry queues, no FPU",
         f"5-stage in-order @{fg.low_freq_ghz}GHz, "
         f"{fg.msgq_depth}-entry queues, no FPU"],
        ["ucore L1", "4KB 2-way",
         f"{fg.ucore_l1_kb}KB {fg.ucore_l1_ways}-way"],
    ]
    return rows


def main() -> str:
    out = format_table(run(), title="Table II: evaluated configuration")
    print(out)
    return out


if __name__ == "__main__":
    main()
