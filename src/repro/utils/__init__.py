"""Shared utilities: statistics, bit manipulation, deterministic RNG."""

from repro.utils.bitfield import Bitmap, bits, mask, sign_extend
from repro.utils.rng import DeterministicRng
from repro.utils.stats import (
    LatencySummary,
    geomean,
    mean,
    percentile,
    summarize_latencies,
)

__all__ = [
    "Bitmap",
    "DeterministicRng",
    "LatencySummary",
    "bits",
    "geomean",
    "mask",
    "mean",
    "percentile",
    "sign_extend",
    "summarize_latencies",
]
