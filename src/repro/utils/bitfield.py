"""Bit-manipulation helpers and a fixed-width bitmap register.

The allocator (§III-C) is built from bitmap registers (``SE_Bitmap``,
``AE_Bitmap``); :class:`Bitmap` models one with hardware-like semantics:
fixed width, out-of-range bits are errors rather than silently ignored.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import ConfigError


def mask(width: int) -> int:
    """All-ones mask of ``width`` bits."""
    if width < 0:
        raise ConfigError(f"mask width must be non-negative, got {width}")
    return (1 << width) - 1


def bits(value: int, hi: int, lo: int) -> int:
    """Extract bits ``value[hi:lo]`` inclusive, like Verilog slicing."""
    if hi < lo:
        raise ConfigError(f"bit slice hi ({hi}) < lo ({lo})")
    return (value >> lo) & mask(hi - lo + 1)


def sign_extend(value: int, width: int) -> int:
    """Interpret the low ``width`` bits of ``value`` as two's complement."""
    value &= mask(width)
    sign_bit = 1 << (width - 1)
    return (value ^ sign_bit) - sign_bit


class Bitmap:
    """A fixed-width bitmap register.

    Used for the distributor's per-GID ``SE_Bitmap`` and each Scheduling
    Engine's ``AE_Bitmap`` (Fig 5).  Bit positions outside the register
    raise :class:`ConfigError` — in hardware they simply would not exist.
    """

    __slots__ = ("width", "_value")

    def __init__(self, width: int, value: int = 0):
        if width <= 0:
            raise ConfigError(f"Bitmap width must be positive, got {width}")
        if value < 0 or value > mask(width):
            raise ConfigError(
                f"Bitmap initial value {value:#x} does not fit in {width} bits"
            )
        self.width = width
        self._value = value

    @property
    def value(self) -> int:
        return self._value

    def _check(self, bit: int) -> None:
        if not 0 <= bit < self.width:
            raise ConfigError(f"bit {bit} outside bitmap of width {self.width}")

    def set(self, bit: int) -> None:
        self._check(bit)
        self._value |= 1 << bit

    def clear(self, bit: int) -> None:
        self._check(bit)
        self._value &= ~(1 << bit)

    def test(self, bit: int) -> bool:
        self._check(bit)
        return bool(self._value >> bit & 1)

    def clear_all(self) -> None:
        self._value = 0

    def or_with(self, other: "Bitmap") -> None:
        """OR another bitmap into this one (the allocator's OR-gate tree)."""
        if other.width != self.width:
            raise ConfigError(
                f"cannot OR bitmaps of widths {self.width} and {other.width}"
            )
        self._value |= other._value

    def set_bits(self) -> Iterator[int]:
        """Iterate over the indices of set bits, lowest first."""
        value = self._value
        bit = 0
        while value:
            if value & 1:
                yield bit
            value >>= 1
            bit += 1

    def popcount(self) -> int:
        return self._value.bit_count()

    def __bool__(self) -> bool:
        return self._value != 0

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Bitmap):
            return self.width == other.width and self._value == other._value
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.width, self._value))

    def __repr__(self) -> str:
        return f"Bitmap(width={self.width}, value={self._value:#x})"
