"""Optional-numpy gate and execution-backend selection.

The vectorized backend (``trace/columns.py``, ``core/vector.py``)
needs numpy; the core library must keep working without it (DESIGN.md:
the scalar path is the reference semantics, numpy only accelerates).
This module centralises both decisions:

* :data:`np` is the numpy module or ``None``; every columnar call site
  gates on it instead of importing numpy directly, so a numpy-less
  install degrades to the scalar path rather than failing at import;
* :func:`resolve_backend` maps the ``REPRO_BACKEND`` environment
  variable (``vector`` / ``scalar`` / ``compiled``, default ``vector``
  where numpy is available) to the backend actually used, warning once
  when a requested vector backend has to fall back.

The ``compiled`` backend is the vector backend plus the C-compiled
hotpath kernels (:mod:`repro.hotpath`).  It does not itself require
numpy — without numpy the columnar plans are skipped and the kernels
still carry the speedup — and without a build artifact it runs the
bit-identical interpreted kernels, so the flag is always safe.
"""

from __future__ import annotations

import os
import warnings

try:  # pragma: no cover - exercised by numpy-less installs
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

HAVE_NUMPY = np is not None

#: Environment variable selecting the execution backend.
BACKEND_ENV = "REPRO_BACKEND"

BACKEND_VECTOR = "vector"
BACKEND_SCALAR = "scalar"
BACKEND_COMPILED = "compiled"

_warned_fallback = False


def _warn_fallback(reason: str) -> None:
    """Warn exactly once per process about a scalar fallback."""
    global _warned_fallback
    if not _warned_fallback:
        _warned_fallback = True
        warnings.warn(
            f"REPRO_BACKEND=vector unavailable ({reason}); "
            "falling back to the scalar backend",
            RuntimeWarning, stacklevel=3)


def resolve_backend(requested: str | None = None) -> str:
    """The backend to use: ``"vector"``, ``"scalar"`` or ``"compiled"``.

    ``requested`` overrides the ``REPRO_BACKEND`` environment variable
    (a session constructor argument beats ambient configuration).  An
    unset request defaults to ``vector`` — the backends are
    bit-identical (tests/test_vector_identity.py), so the fast one is
    the default — unless numpy is missing, in which case the request
    degrades to ``scalar`` with a one-time warning only when vector was
    explicitly asked for.  ``compiled`` never degrades: the hotpath
    layer falls back to its bit-identical interpreted kernels (with its
    own one-time warning) and skips the columnar plans without numpy.
    """
    if requested is None:
        requested = os.environ.get(BACKEND_ENV, "") or BACKEND_VECTOR
    requested = requested.strip().lower()
    if requested not in (BACKEND_VECTOR, BACKEND_SCALAR,
                         BACKEND_COMPILED):
        raise ValueError(
            f"unknown backend {requested!r}: expected "
            f"'{BACKEND_VECTOR}', '{BACKEND_SCALAR}' or "
            f"'{BACKEND_COMPILED}'")
    if requested == BACKEND_VECTOR and not HAVE_NUMPY:
        if os.environ.get(BACKEND_ENV, "").strip().lower() \
                == BACKEND_VECTOR:
            _warn_fallback("numpy is not installed")
        return BACKEND_SCALAR
    return requested
