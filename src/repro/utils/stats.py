"""Small statistics helpers used by the experiment harnesses.

The paper reports geometric-mean slowdowns (Figs 7, 9, 10, 11) and
latency distributions (Fig 8); these helpers compute both without
pulling in numpy for the core library.

This module also defines :class:`Instrumented`, the uniform counter
protocol every simulated component implements (DESIGN.md): counters
live in ``stat_*`` attributes, ``stats()`` exposes them as a dict, and
``reset_stats()`` zeroes them between runs.  The session and the
per-domain event schedulers (:mod:`repro.sched`) report their
skip/fast-forward counters (``low_cycles_skipped``,
``high_cycles_fastforwarded``, ``sched_low_*``/``sched_high_*``)
through the same protocol — see EXPERIMENTS.md for the inventory.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import ReproError


class Instrumented:
    """Uniform statistics protocol for simulated components.

    A component declares its counters as instance attributes named
    ``stat_<counter>``.  ``stats()`` returns them keyed without the
    prefix, so callers never reach into individual attributes, and
    ``reset_stats()`` zeroes every counter in place (the
    :class:`~repro.sim.session.SimulationSession` calls it from
    ``reset()``).
    """

    STAT_PREFIX = "stat_"

    def stats(self) -> dict[str, int]:
        """All ``stat_*`` counters, keyed without the prefix."""
        prefix = self.STAT_PREFIX
        return {name[len(prefix):]: value
                for name, value in vars(self).items()
                if name.startswith(prefix)}

    def reset_stats(self) -> None:
        """Zero every ``stat_*`` counter in place."""
        for name in vars(self):
            if name.startswith(self.STAT_PREFIX):
                setattr(self, name, 0)


def geomean(values: Iterable[float]) -> float:
    """Geometric mean of positive values.

    Raises :class:`ReproError` for empty input or non-positive entries,
    because a silent 0/negative would corrupt slowdown summaries.
    """
    vals = list(values)
    if not vals:
        raise ReproError("geomean of empty sequence")
    total = 0.0
    for v in vals:
        if v <= 0.0:
            raise ReproError(f"geomean requires positive values, got {v}")
        total += math.log(v)
    return math.exp(total / len(vals))


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean; raises on empty input."""
    vals = list(values)
    if not vals:
        raise ReproError("mean of empty sequence")
    return sum(vals) / len(vals)


def percentile(values: Sequence[float], pct: float) -> float:
    """Linear-interpolated percentile, ``pct`` in [0, 100]."""
    if not values:
        raise ReproError("percentile of empty sequence")
    if not 0.0 <= pct <= 100.0:
        raise ReproError(f"percentile {pct} outside [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (pct / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high or ordered[low] == ordered[high]:
        return ordered[low]
    frac = rank - low
    return ordered[low] + (ordered[high] - ordered[low]) * frac


@dataclass(frozen=True)
class LatencySummary:
    """Distribution summary of detection latencies (Fig 8 box rows)."""

    count: int
    minimum: float
    p25: float
    median: float
    p75: float
    p90: float
    p99: float
    maximum: float

    def as_row(self) -> dict[str, float]:
        return {
            "min": self.minimum,
            "p25": self.p25,
            "median": self.median,
            "p75": self.p75,
            "p90": self.p90,
            "p99": self.p99,
            "max": self.maximum,
        }


def summarize_latencies(latencies: Sequence[float]) -> LatencySummary:
    """Summarise a latency sample the way Fig 8 plots it."""
    if not latencies:
        raise ReproError("cannot summarise an empty latency sample")
    return LatencySummary(
        count=len(latencies),
        minimum=min(latencies),
        p25=percentile(latencies, 25),
        median=percentile(latencies, 50),
        p75=percentile(latencies, 75),
        p90=percentile(latencies, 90),
        p99=percentile(latencies, 99),
        maximum=max(latencies),
    )
