"""Deterministic random number generation for reproducible simulation.

All stochastic behaviour in the simulator (trace generation, attack
injection, address streams) flows through :class:`DeterministicRng` so a
seed fully determines every simulated cycle.  The generator is a
SplitMix64 core — simple, fast, and stable across Python versions, unlike
``random.Random`` whose method implementations may change.
"""

from __future__ import annotations

from typing import Sequence, TypeVar

from repro.errors import ConfigError

_T = TypeVar("_T")

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15


class DeterministicRng:
    """SplitMix64-based RNG with the handful of draws the simulator needs."""

    __slots__ = ("_state",)

    def __init__(self, seed: int):
        self._state = seed & _MASK64

    def fork(self, salt: int) -> "DeterministicRng":
        """Derive an independent stream (e.g. one per µcore or workload)."""
        child = DeterministicRng((self._state ^ (salt * _GOLDEN)) & _MASK64)
        child.next_u64()
        return child

    def next_u64(self) -> int:
        self._state = (self._state + _GOLDEN) & _MASK64
        z = self._state
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
        return z ^ (z >> 31)

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return (self.next_u64() >> 11) * (1.0 / (1 << 53))

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high] inclusive."""
        if high < low:
            raise ConfigError(f"randint range empty: [{low}, {high}]")
        span = high - low + 1
        return low + self.next_u64() % span

    def chance(self, probability: float) -> bool:
        """Bernoulli draw."""
        return self.random() < probability

    def choice(self, items: Sequence[_T]) -> _T:
        if not items:
            raise ConfigError("choice from empty sequence")
        return items[self.randint(0, len(items) - 1)]

    def weighted_choice(self, items: Sequence[_T], weights: Sequence[float]) -> _T:
        """Draw one item with the given (unnormalised) weights."""
        if len(items) != len(weights) or not items:
            raise ConfigError("weighted_choice needs matching non-empty sequences")
        total = float(sum(weights))
        if total <= 0.0:
            raise ConfigError("weighted_choice needs positive total weight")
        point = self.random() * total
        acc = 0.0
        for item, weight in zip(items, weights):
            acc += weight
            if point < acc:
                return item
        return items[-1]

    def geometric(self, p: float, cap: int) -> int:
        """Geometric draw >= 1, capped (used for run lengths, call depths)."""
        if not 0.0 < p <= 1.0:
            raise ConfigError(f"geometric p must be in (0, 1], got {p}")
        count = 1
        while count < cap and not self.chance(p):
            count += 1
        return count

    def zipf_index(self, n: int, skew: float = 1.2) -> int:
        """Zipf-ish index in [0, n): small indices are hot.

        Used for working-set locality: a few hot cache lines, a long
        cold tail.  Implemented by inverse-power transform of a uniform
        draw — crude but monotone, cheap, and deterministic.
        """
        if n <= 0:
            raise ConfigError(f"zipf_index needs n > 0, got {n}")
        u = self.random()
        # Map uniform u to a power-law-ish distribution over [0, n).
        idx = int(n * (u ** skew))
        return min(idx, n - 1)
