"""The resettable simulation session (DESIGN.md: session layer).

One :class:`SimulationSession` drives one built
:class:`~repro.core.system.FireGuardSystem` through the dual-domain
cycle loop that used to live in ``FireGuardSystem.run``:

* the high-frequency domain steps the main core and the mapper slice
  (arbiter → allocator → CDC) every core cycle;
* the low-frequency domain moves the CDC/multicast/NoC fabric and
  ticks the analysis engines on alternate edges (Table II:
  3.2 GHz / 1.6 GHz).

The session adds three things the monolithic loop could not offer:

* **reset** — every component implements ``reset()`` back to its
  just-built state (SRAM programming, assembled kernels and engine
  partitioning are kept; queues, caches, predictors, stats are not),
  so one expensive build executes many traces deterministically;
* **event-driven scheduling** (default) — instead of polling every
  fabric component every low cycle, a cycle-wheel
  :class:`~repro.sched.EventScheduler` per clock domain tracks
  timestamped wakeups: blocked engines sleep until the queue
  transition that can unblock them, the NoC until its earliest
  arrival, the CDC until its head synchronises, and quiescent
  stretches are fast-forwarded in whole slow-cycle strides.  Results
  are bit-identical to the dense loop (every :class:`SystemResult`
  field, asserted by the A/B grid tests in ``tests/test_sched.py``);
* **the dense loop**, kept behind ``REPRO_DENSE_LOOP=1`` (or
  ``SimulationSession(system, dense=True)``) as the reference
  implementation for those A/B comparisons.  Its conservative
  per-cycle ``can_skip()`` idle-skip is unchanged from when it was the
  only loop.

Orthogonally to the loop choice, ``REPRO_BACKEND`` selects the
execution backend: ``vector`` (default where numpy is available)
precomputes the event-filter decisions and the accelerator pre-checks
per trace chunk (:mod:`repro.core.vector`), and the event loop batches
provable core-stall windows through the clock's stride fast-forward;
``scalar`` is the record-at-a-time reference; ``compiled`` is vector
plus the C-compiled hotpath kernels (:mod:`repro.hotpath`) for the
µcore ISS tick and the OoO core step, degrading to the bit-identical
interpreted kernels when no build artifact exists.  All produce
bit-identical :class:`SystemResult`\\ s (the four-way differential
grid in ``tests/test_vector_identity.py``).

``REPRO_PROFILE=1`` additionally wraps the per-component step methods
with wall-clock accounting; the accumulated per-component seconds
appear in :meth:`SimulationSession.stats` under ``profile_*`` keys
(``benchmarks/bench_sched.py`` prints the breakdown).
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING

from repro.clock.domain import DualDomainClock
from repro.errors import SimulationError
from repro.sched import EventScheduler
from repro.trace.record import Trace
from repro.utils.npcompat import (
    BACKEND_COMPILED,
    BACKEND_VECTOR,
    HAVE_NUMPY,
    resolve_backend,
)
from repro.utils.stats import Instrumented

#: Environment variable enabling the per-component wall-time profile.
PROFILE_ENV = "REPRO_PROFILE"

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.system import FireGuardSystem, SystemResult


class SimulationSession(Instrumented):
    """Executes traces on a built system; ``reset()`` between traces.

    A session is *clean* after construction or :meth:`reset` and
    *dirty* after :meth:`run`; running a dirty session raises, because
    silently reusing warmed-up state would break the determinism
    guarantee (``reset() + run(trace)`` must equal a fresh build's
    ``run(trace)`` bit for bit).

    ``dense`` selects the reference dense loop over the event-driven
    scheduler; None reads ``REPRO_DENSE_LOOP`` (``"1"`` means dense,
    ``"0"`` means event).  With neither the argument nor the variable
    set, the session is *adaptive*: each ``run()`` picks the loop that
    measures faster for the built engine mix — the dense sweep for
    small all-µcore pools (few busy engines make the wakeup
    bookkeeping cost more than dense's direct poll), the event loop
    everywhere else — so no configuration is slower than the dense
    reference.  The loops are bit-identical, so the choice is
    invisible in results.
    ``backend`` selects the execution backend (``"vector"``,
    ``"scalar"`` or ``"compiled"``); None reads ``REPRO_BACKEND``,
    defaulting to vector
    when numpy is importable and falling back to scalar (with a
    one-time warning if vector was explicitly requested) otherwise.
    A system should be driven by one session (the canonical path is
    :meth:`FireGuardSystem.session`): the event scheduler wires wakeup
    hooks into the system's queues, and the last session wired wins.
    """

    #: Dense-loop drain poll interval: with the core done, the drain
    #: check runs on every 8th high cycle.  The event-driven loop
    #: reproduces the same break cycles by treating the poll
    #: boundaries as high-domain scheduler events.
    DRAIN_POLL_INTERVAL = 8

    #: Sentinel for "no fabric event scheduled" (any real cycle
    #: compares smaller).
    _NEVER = 1 << 62

    def __init__(self, system: "FireGuardSystem",
                 dense: bool | None = None,
                 backend: str | None = None):
        self.system = system
        env = os.environ.get("REPRO_DENSE_LOOP")
        if dense is None:
            # Neither the caller nor the environment chose a loop:
            # adaptive mode picks per run() from the engine mix (the
            # loops are bit-identical, so the choice is pure policy).
            self._adaptive = env is None
            dense = env == "1"
        else:
            self._adaptive = False
        self.dense = dense
        self.backend = resolve_backend(backend)
        #: True once a run executed with the C-compiled hotpath
        #: kernels live (``backend == "compiled"`` and an artifact was
        #: importable); stays False on the interpreted fallback.
        self.hotpath_compiled = False
        #: Per-component wall-clock seconds, populated only under
        #: ``REPRO_PROFILE=1`` (see :meth:`stats`).
        self.profile: dict[str, float] = {}
        self._profiling = os.environ.get(PROFILE_ENV, "") == "1"
        if self._profiling:
            self._install_profiling()
        self.stat_mapper_blocked = 0
        self.stat_engine_ticks_skipped = 0
        self.stat_low_cycles_skipped = 0
        self.stat_high_cycles_fastforwarded = 0
        self._dirty = False
        self.runs_completed = 0

        self._low_sched = EventScheduler("low")
        self._high_sched = EventScheduler("high")
        # Set while an event-driven run is active: the mapper and the
        # queue wakeup hooks post into it; None keeps the hooks inert
        # (dense runs, direct component use in unit tests).
        self._active_low_sched: EventScheduler | None = None
        # Engines woken for the cycle currently executing (see
        # _wire_controller); consumed by the engine sweep each low
        # tick.
        self._woken: list = []
        # Controllers the fabric must visit (outgoing words to drain,
        # or a full input queue accruing back-pressure statistics);
        # ordered set maintained by the controller hooks and pruned by
        # the low tick.
        self._busy_ctrls: dict = {}
        # Next low cycle the fabric (CDC / multicast / NoC /
        # controller queues) must run, maintained inline by the low
        # tick and the mapper; _NEVER when the fabric is quiescent.
        # The engines go through the scheduler proper because their
        # wakeups are cross-component; the fabric's next event falls
        # out of state the low tick already has in hand.
        self._fabric_next = self._NEVER
        if not dense:
            self._wire_wakeups()

    @property
    def dirty(self) -> bool:
        """True once a trace has run and ``reset()`` has not."""
        return self._dirty

    # -- wakeup wiring -----------------------------------------------------
    def _wire_wakeups(self) -> None:
        """Hook every engine's queues so pushes (and output drains)
        wake the engine in the cycle the transition happens — the
        event-driven replacement for re-polling blocked engines.  The
        same transitions maintain the busy-controller set, so the low
        tick visits only controllers with outgoing words to drain or a
        full input queue to account."""
        system = self.system
        engines_by_id = {engine.engine_id: engine
                         for engine in system.engines}
        for ctrl in system.controllers:
            engine = engines_by_id.get(ctrl.engine_id)
            if engine is None:
                continue
            self._wire_controller(ctrl, engine)

    def _wire_controller(self, ctrl, engine) -> None:
        # Queue pushes (and output drains) only ever happen inside the
        # executed low tick, so a wake for "this very cycle" never
        # needs the wheel: it lands in a plain list the engine sweep
        # folds in.  Running engines tick this cycle anyway.
        running = self._low_sched.running
        woken = self._woken
        busy = self._busy_ctrls
        input_queue = ctrl.input_queue

        def input_waker() -> None:
            if self._active_low_sched is not None:
                if engine not in running:
                    woken.append(engine)
                if input_queue.full:
                    busy[ctrl] = None

        def waker() -> None:
            if self._active_low_sched is not None \
                    and engine not in running:
                woken.append(engine)

        def busy_hook() -> None:
            if self._active_low_sched is not None:
                busy[ctrl] = None

        ctrl.input_queue.wake_hook = input_waker
        ctrl.peer_queue.wake_hook = waker
        ctrl.drain_hook = waker
        ctrl.busy_hook = busy_hook

    # -- profiling ---------------------------------------------------------
    def _install_profiling(self) -> None:
        """Wrap the per-component step methods with wall-clock
        accounting (``REPRO_PROFILE=1`` only — the wrappers cost a
        perf_counter pair per call, so they are opt-in).

        Buckets: ``core`` (OoO step + batched stall skips), ``mapper``
        (event-filter arbitration), ``fabric`` (multicast + NoC
        steps), ``engines`` (all analysis-engine ticks).  Wrappers
        live on the component instances, so they survive ``reset()``;
        the accumulated seconds clear with the other session counters
        in :meth:`reset_stats`.
        """
        from time import perf_counter
        profile = self.profile

        def wrap(obj, attr: str, bucket: str) -> None:
            inner = getattr(obj, attr)

            def timed(*args, **kwargs):
                start = perf_counter()
                try:
                    return inner(*args, **kwargs)
                finally:
                    profile[bucket] = (profile.get(bucket, 0.0)
                                       + perf_counter() - start)

            setattr(obj, attr, timed)

        system = self.system
        wrap(system.core, "step", "core")
        wrap(system.core, "skip_stalls", "core")
        wrap(system.filter, "arbitrate", "mapper")
        wrap(system.multicast, "step", "fabric")
        wrap(system.noc, "step", "fabric")
        for engine in system.engines:
            wrap(engine, "tick", "engines")

    # -- reset -------------------------------------------------------------
    def reset(self) -> None:
        """Return the system to its just-built state.

        Build-time state survives (filter SRAM programming, assembled
        kernel programs, engine partitioning, preset registers, NoC
        topology, SE subscriptions); all run state is discarded (core
        caches/TLBs/predictor, queue contents, µcore registers and
        caches, shared functional memory, statistics, scheduled
        wakeups).
        """
        system = self.system
        system.core.reset()
        system.forwarding.reset_stats()
        system.filter.reset()
        for se in system.ses:
            se.reset()
        system.allocator.reset_stats()
        system.cdc.reset()
        system.multicast.reset()
        system.noc.reset()
        for controller in system.controllers:
            controller.reset()
        system.memory.reset()
        for engine in system.engines:
            engine.reset()
        system._result = None
        system._now_ns = 0.0
        self._low_sched.reset()
        self._high_sched.reset()
        self._fabric_next = self._NEVER
        self._woken.clear()
        self._busy_ctrls.clear()
        self.reset_stats()
        self._dirty = False

    # -- stats -------------------------------------------------------------
    def stats(self) -> dict[str, int]:
        """Session counters plus the per-domain scheduler counters
        (``sched_low_*`` / ``sched_high_*``); under ``REPRO_PROFILE=1``
        also the per-component wall-clock seconds (``profile_*``)."""
        merged = super().stats()
        for prefix, sched in (("sched_low_", self._low_sched),
                              ("sched_high_", self._high_sched)):
            merged.update({prefix + key: value
                           for key, value in sched.stats().items()})
        for bucket, seconds in self.profile.items():
            merged["profile_" + bucket] = seconds
        return merged

    def reset_stats(self) -> None:
        super().reset_stats()
        self._low_sched.reset_stats()
        self._high_sched.reset_stats()
        self.profile.clear()

    # -- simulation --------------------------------------------------------
    def run(self, trace: Trace,
            max_cycles: int = 50_000_000) -> "SystemResult":
        """Run one workload to completion (trace consumed, queues
        drained, engines idle) and return the system result.

        ``trace`` is any trace source implementing the record protocol
        (in-memory :class:`~repro.trace.record.Trace` or on-disk
        :class:`~repro.trace.stream.StreamedTrace`): both the
        event-driven and the dense ``REPRO_DENSE_LOOP`` path consume
        it through the core's bounded-memory view, so streamed and
        materialised runs are bit-identical.
        """
        if self._dirty:
            raise SimulationError(
                "session has already executed a trace; call reset() "
                "before running another")
        self._dirty = True

        from repro.core.system import SystemResult

        system = self.system
        system._result = SystemResult(cycles=0, committed=0, time_ns=0.0,
                                      stall_backpressure=0)
        system.core.begin(trace, record_commit_times=True)
        system.core.attach_observer(system.filter)
        if self.backend == BACKEND_VECTOR \
                or (self.backend == BACKEND_COMPILED and HAVE_NUMPY):
            from repro.core.vector import install_plans
            install_plans(system, trace)
        if self.backend == BACKEND_COMPILED:
            from repro.hotpath import install_hotpath
            self.hotpath_compiled = install_hotpath(system)
        clock = DualDomainClock(system.config.high_domain(),
                                system.config.low_domain())

        if self.dense or (self._adaptive and self._prefer_dense()):
            high_cycle = self._loop_dense(trace, clock, max_cycles)
        else:
            try:
                high_cycle = self._loop_event(trace, clock, max_cycles)
            finally:
                # Hooks are inert outside an active event-driven run
                # (direct queue use in tests, dense sessions sharing
                # the system), including after a max_cycles raise.
                self._active_low_sched = None

        self.runs_completed += 1
        return self._finalize(high_cycle, clock)

    def _prefer_dense(self) -> bool:
        """Adaptive loop policy: small all-µcore engine pools run the
        dense loop.

        With few µcores each engine is busy nearly every low cycle, so
        the scheduler's wakeup bookkeeping (wheel posts, due sets,
        fabric next-event upkeep) exceeds the dense loop's direct
        ``can_skip`` poll — the measured 4-engine regression this
        policy removes.  Hardware accelerators sleep whenever their
        queue is empty, so any HA in the mix tips the balance back to
        the event loop, as do large µcore pools (BENCH_sched.json
        tracks both points).
        """
        from repro.core.accelerator import HardwareAccelerator
        ucores = 0
        for engine in self.system.engines:
            if isinstance(engine, HardwareAccelerator):
                return False
            ucores += 1
        return 0 < ucores < 8

    # -- the reference dense loop -----------------------------------------
    def _loop_dense(self, trace: Trace, clock: DualDomainClock,
                    max_cycles: int) -> int:
        """Tick every component every cycle (the pre-scheduler loop,
        kept for A/B bit-identity testing behind REPRO_DENSE_LOOP=1)."""
        system = self.system
        core = system.core
        high_cycle = 0
        low_cycle = 0
        cdc = system.cdc
        multicast = system.multicast
        noc = system.noc
        engines = system.engines
        controllers = system.controllers
        input_queues = [c.input_queue for c in controllers]

        while True:
            core.step(high_cycle)
            self._step_mapper(high_cycle, clock.slow_cycle)

            if clock.tick():
                low_cycle = clock.slow_cycle
                system._now_ns = clock.time_ns
                cdc.note_cycle(low_cycle)
                while not multicast.busy:
                    item = cdc.pop(low_cycle)
                    if item is None:
                        break
                    multicast.submit(*item)
                multicast.step(low_cycle)
                for ctrl in controllers:
                    outgoing = ctrl.take_outgoing()
                    if outgoing is not None:
                        noc.send(ctrl.engine_id, outgoing[0],
                                 outgoing[1], low_cycle)
                noc.step(low_cycle)
                for queue in input_queues:
                    queue.note_cycle()
                for engine in engines:
                    if engine.can_skip():
                        self.stat_engine_ticks_skipped += 1
                    else:
                        engine.tick(low_cycle)

            high_cycle += 1
            if core.done and high_cycle % self.DRAIN_POLL_INTERVAL == 0 \
                    and self._drained(low_cycle):
                break
            if high_cycle >= max_cycles:
                raise self._undrained_error(trace, max_cycles, low_cycle)
        return high_cycle

    # -- the event-driven loop ---------------------------------------------
    def _loop_event(self, trace: Trace, clock: DualDomainClock,
                    max_cycles: int) -> int:
        """Schedule wakeups instead of polling.

        While the core executes, it (and the mapper slice) step every
        high cycle as before, but the low-domain block runs only on
        slow edges with a due event — a skipped edge is provably the
        dense loop's all-idle cycle.  Once the core is done and the
        mapper has nothing left, the high domain fast-forwards in
        whole slow-cycle strides from event to event; the dense loop's
        every-8th-cycle drain poll becomes a high-domain scheduler
        event posted only while the system reports drained, so break
        cycles (and therefore ``SystemResult.cycles``) stay
        bit-identical.
        """
        system = self.system
        core = system.core
        cdc = system.cdc
        event_filter = system.filter
        low_sched = self._low_sched
        high_sched = self._high_sched
        low_sched.reset()
        high_sched.reset()
        self._active_low_sched = low_sched
        self._fabric_next = self._NEVER
        self._woken.clear()
        self._busy_ctrls.clear()

        # Seed: every engine starts runnable; the fabric starts empty.
        low_sched.arm_many(0, system.engines)

        high_cycle = 0
        # -- phase 1: the core is executing --------------------------------
        # The high domain steps the core every cycle it does real work;
        # only the low-domain block is event-gated.  The drain break
        # cannot fire before the core is done, so the bottom of the
        # dense iteration reduces to the done/max checks.  Provable
        # core-stall windows (fetch stall, full ROB, blocked LSQ,
        # post-trace ROB drain — stall_window's contract) are batch
        # accounted and fast-forwarded from low-domain event to event,
        # with the same statistics the dense loop would accrue cycle by
        # cycle.
        low_due_at = low_sched.due_at
        clock_tick = clock.tick
        core_step = core.step
        while True:
            if not event_filter.pending and not cdc.full:
                # Nothing can commit or dispatch until the window ends,
                # and with no buffered packets the mapper slice is a
                # no-op, so only low-domain events bound the jump.
                window = core.stall_window(high_cycle)
                if window is not None:
                    stop_fast = min(window[0], max_cycles)
                    if stop_fast > high_cycle + 1:
                        next_evt = low_sched.next_due_cycle(
                            clock.slow_cycle)
                        if self._fabric_next < (
                                self._NEVER if next_evt is None
                                else next_evt):
                            next_evt = self._fabric_next
                        if next_evt is not None \
                                and next_evt <= clock.slow_cycle:
                            next_evt = clock.slow_cycle + 1
                        before_fast = clock.fast_cycle
                        before_slow = clock.slow_cycle
                        on_edge = clock.advance_to(stop_fast, next_evt)
                        skipped = clock.fast_cycle - before_fast
                        if skipped:
                            core.skip_stalls(high_cycle, clock.fast_cycle,
                                             window[1])
                            self.stat_high_cycles_fastforwarded += skipped
                            self.stat_low_cycles_skipped += (
                                clock.slow_cycle - before_slow
                                - (1 if on_edge else 0))
                            high_cycle = clock.fast_cycle
                            if on_edge:
                                self._low_tick(clock.slow_cycle, clock)
                            if high_cycle >= max_cycles:
                                raise self._undrained_error(
                                    trace, max_cycles, clock.slow_cycle)
                            continue
            core_step(high_cycle)
            # The mapper slice is a provable no-op when the lane FIFOs
            # are empty and the CDC has space — except the dense loop's
            # blocked-cycle count while the CDC is full, reproduced
            # here.  (With no pending packets no lane FIFO is full, so
            # the arbiter's full-cycle statistic cannot fire either.)
            if cdc.full:
                self.stat_mapper_blocked += 1
            elif event_filter.pending:
                self._step_mapper(high_cycle, clock.slow_cycle)
            if clock_tick():
                low_cycle = clock.slow_cycle
                if self._fabric_next <= low_cycle \
                        or low_due_at(low_cycle):
                    self._low_tick(low_cycle, clock)
                else:
                    self.stat_low_cycles_skipped += 1
            high_cycle += 1
            if core.done:
                break
            if high_cycle >= max_cycles:
                raise self._undrained_error(trace, max_cycles,
                                           clock.slow_cycle)

        # -- phase 2: draining the fabric ----------------------------------
        # The dense loop's bottom-of-iteration checks move to the top
        # (the cycle just completed above, or below on each pass), so
        # fast-forward jumps land exactly on the cycles the dense loop
        # would have inspected.
        while True:
            if high_cycle % self.DRAIN_POLL_INTERVAL == 0 \
                    and self._drained(clock.slow_cycle):
                break
            if high_cycle >= max_cycles:
                raise self._undrained_error(trace, max_cycles,
                                           clock.slow_cycle)

            if (not event_filter.pending and not cdc.full
                    and core.quiescent_at(high_cycle)):
                # Core and mapper are provably no-ops: fast-forward to
                # the next low-domain event or drain-poll boundary.
                if self._drained(clock.slow_cycle):
                    high_sched.wake(self._next_drain_poll(high_cycle),
                                    self)
                poll = high_sched.next_due_cycle(high_cycle)
                stop_fast = max_cycles if poll is None \
                    else min(poll, max_cycles)
                next_evt = low_sched.next_due_cycle(clock.slow_cycle)
                if self._fabric_next < (self._NEVER if next_evt is None
                                        else next_evt):
                    next_evt = self._fabric_next
                if next_evt is not None and next_evt <= clock.slow_cycle:
                    next_evt = clock.slow_cycle + 1  # stale: retry next edge
                before_fast = clock.fast_cycle
                before_slow = clock.slow_cycle
                on_edge = clock.advance_to(stop_fast, next_evt)
                self.stat_high_cycles_fastforwarded += \
                    clock.fast_cycle - before_fast
                self.stat_low_cycles_skipped += (
                    clock.slow_cycle - before_slow - (1 if on_edge else 0))
                high_cycle = clock.fast_cycle
                if on_edge:
                    self._low_tick(clock.slow_cycle, clock)
                high_sched.pop_due(high_cycle)  # consume passed polls
                continue  # drain/max checks at the top

            core.step(high_cycle)
            if cdc.full:
                self.stat_mapper_blocked += 1
            elif event_filter.pending:
                self._step_mapper(high_cycle, clock.slow_cycle)
            if clock.tick():
                low_cycle = clock.slow_cycle
                if self._fabric_next <= low_cycle \
                        or low_sched.due_at(low_cycle):
                    self._low_tick(low_cycle, clock)
                else:
                    self.stat_low_cycles_skipped += 1
            high_cycle += 1
        return high_cycle

    def _next_drain_poll(self, high_cycle: int) -> int:
        """First drain-poll boundary strictly after ``high_cycle``."""
        interval = self.DRAIN_POLL_INTERVAL
        return (high_cycle // interval + 1) * interval

    def _low_tick(self, low_cycle: int, clock: DualDomainClock) -> None:
        """One executed low-domain cycle.

        Identical to the dense loop's low block except that the engine
        sweep ticks only engines with a due or freshly-posted wakeup —
        everything else is asleep in the wheel, not re-polled.
        """
        system = self.system
        sched = self._low_sched
        system._now_ns = clock.time_ns
        due_list = sched.pop_due(low_cycle)

        cdc = system.cdc
        multicast = system.multicast
        noc = system.noc
        cdc.note_cycle(low_cycle)
        while not multicast.busy:
            item = cdc.pop(low_cycle)
            if item is None:
                break
            multicast.submit(*item)
        multicast.step(low_cycle)
        # Visit only busy controllers (outgoing words to drain, or a
        # full input queue accruing back-pressure statistics): the
        # hooks add controllers on the transitions, this pass prunes
        # the ones that went idle.  Any other controller's dense-loop
        # turn (take_outgoing on an empty queue, note_cycle on a
        # non-full one) is a provable no-op.  Multi-controller cycles
        # scan in controller order because concurrent NoC sends claim
        # links in send order.  (note_cycle may run before noc.step:
        # deliveries touch only peer queues, never the input occupancy
        # it samples.)
        busy = self._busy_ctrls
        if busy:
            if len(busy) == 1:
                scan = list(busy)
            else:
                scan = [c for c in system.controllers if c in busy]
            for ctrl in scan:
                outgoing = ctrl.take_outgoing()
                if outgoing is not None:
                    noc.send(ctrl.engine_id, outgoing[0], outgoing[1],
                             low_cycle)
                if not ctrl.input_queue.note_cycle() \
                        and not ctrl.output_queue:
                    del busy[ctrl]
        noc.step(low_cycle)
        fabric_next = self._NEVER
        retry = low_cycle + 1
        if multicast.draining:
            fabric_next = retry
        nxt = noc.next_event_cycle(low_cycle)
        if nxt is not None and nxt < fabric_next:
            fabric_next = nxt
        nxt = cdc.next_event_cycle(low_cycle)
        if nxt is not None and nxt < fabric_next:
            fabric_next = nxt

        # Pushes during the fabric sub-steps above woke their blocked
        # consumers for this very cycle; fold those in before the
        # engine sweep (the dense loop's ordering: fabric, then
        # engines).
        woken = self._woken
        if woken:
            due_list += woken
            woken.clear()
        running = sched.running
        ticked = []
        if due_list:
            due = set(due_list)
            for engine in system.engines:
                if engine in running or engine in due:
                    engine.tick(low_cycle)
                    ticked.append(engine)
                else:
                    self.stat_engine_ticks_skipped += 1
        else:
            for engine in system.engines:
                if engine in running:
                    engine.tick(low_cycle)
                    ticked.append(engine)
                else:
                    self.stat_engine_ticks_skipped += 1
        # An engine's own schedule changes only when it ticks.
        sched.arm_many(low_cycle, ticked)
        # Engines may have pushed outgoing words during the sweep
        # (busy_hook additions): the fabric must run next cycle even
        # if every pusher then goes to sleep.
        if busy and retry < fabric_next:
            fabric_next = retry
        self._fabric_next = fabric_next

    # -- shared pieces ------------------------------------------------------
    def _step_mapper(self, high_cycle: int, slow_cycle: int) -> None:
        """High-domain mapper slice: arbiter → allocator → CDC.

        One packet per cycle in the paper's scalar design; the
        superscalar variant (``mapper_width`` > 1, §III-C footnote 5)
        moves several, bounded by CDC space.  Under the event-driven
        loop each CDC push schedules the FIFO's synchroniser-expiry
        wakeup (the fabric's inline next-event cycle)."""
        system = self.system
        cdc = system.cdc
        sched = self._active_low_sched
        for _ in range(system.config.mapper_width):
            if cdc.full:
                self.stat_mapper_blocked += 1
                return
            packet = system.filter.arbitrate(high_cycle)
            if packet is None:
                return
            mask = system.allocator.route(packet)
            if mask:
                cdc.push(packet, mask, slow_cycle)
                if sched is not None:
                    nxt = cdc.next_event_cycle(slow_cycle)
                    if nxt < self._fabric_next:
                        self._fabric_next = nxt

    def _drained(self, low_cycle: int) -> bool:
        system = self.system
        if system.filter.pending:
            return False
        if not system.cdc.empty or system.multicast.draining:
            return False
        if not system.noc.idle:
            return False
        for ctrl in system.controllers:
            if ctrl.output_queue or not ctrl.input_queue.empty:
                return False
        return all(engine.idle_at(low_cycle)
                   for engine in system.engines)

    def _undrained_error(self, trace: Trace, max_cycles: int,
                         low_cycle: int) -> SimulationError:
        """A max_cycles timeout that names what is still undrained."""
        return SimulationError(
            f"system did not drain within {max_cycles} cycles "
            f"(trace {trace.name}, seed {trace.seed}): "
            + self._undrained_report(low_cycle))

    def _undrained_report(self, low_cycle: int) -> str:
        """Which components still hold work (drain diagnostics)."""
        system = self.system
        parts: list[str] = []
        if not system.core.done:
            parts.append("main core still executing the trace")
        pending = system.filter.pending
        if pending:
            parts.append(f"event filter holding {pending} packets "
                         f"(lane occupancy {system.filter.fifo_occupancy()})")
        if not system.cdc.empty:
            parts.append(f"CDC FIFO holding {len(system.cdc)} entries")
        if system.multicast.draining:
            parts.append(f"multicast channel draining "
                         f"{system.multicast.pending_count} packets")
        if not system.noc.idle:
            parts.append(
                f"NoC carrying {system.noc.in_flight_count} words")
        for ctrl in system.controllers:
            occupancy = (len(ctrl.input_queue), len(ctrl.peer_queue),
                         len(ctrl.output_queue))
            if any(occupancy):
                parts.append(
                    f"engine {ctrl.engine_id} queues "
                    f"input/peer/output={occupancy}")
        busy = [f"{engine.name}{engine.engine_id}"
                for engine in system.engines
                if not engine.idle_at(low_cycle)]
        if busy:
            parts.append("busy engines: " + ", ".join(busy))
        if not parts:
            parts.append("all components report drained")
        return "; ".join(parts)

    def _finalize(self, high_cycle: int,
                  clock: DualDomainClock) -> "SystemResult":
        """Assemble the result from the components' uniform stats."""
        system = self.system
        result = system._result
        assert result is not None
        core_result = system.core.result
        filter_stats = system.filter.stats()
        result.cycles = high_cycle
        result.committed = core_result.committed
        result.time_ns = clock.time_ns
        result.stall_backpressure = core_result.stall_backpressure
        result.filter_full_cycles = filter_stats["full_cycles"]
        result.mapper_blocked_cycles = self.stat_mapper_blocked
        result.cdc_full_cycles = system.cdc.stats()["full_cycles"]
        result.msgq_full_cycles = sum(
            c.stats()["input_full_cycles"] for c in system.controllers)
        result.packets_filtered = filter_stats["valid_packets"]
        result.packets_delivered = system.multicast.stats()["delivered"]
        result.engine_instructions = sum(
            e.stats().get("instructions", 0) for e in system.engines)
        result.prf_preemptions = system.forwarding.stats()["prf_reads"]
        result.noc_words = system.noc.stats()["sent"]
        system._result = None
        return result
