"""The resettable simulation session (DESIGN.md: session layer).

One :class:`SimulationSession` drives one built
:class:`~repro.core.system.FireGuardSystem` through the dual-domain
cycle loop that used to live in ``FireGuardSystem.run``:

* the high-frequency domain steps the main core and the mapper slice
  (arbiter → allocator → CDC) every core cycle;
* the low-frequency domain moves the CDC/multicast/NoC fabric and
  ticks the analysis engines on alternate edges (Table II:
  3.2 GHz / 1.6 GHz).

The session adds two things the monolithic loop could not offer:

* **reset** — every component implements ``reset()`` back to its
  just-built state (SRAM programming, assembled kernels and engine
  partitioning are kept; queues, caches, predictors, stats are not),
  so one expensive build executes many traces deterministically;
* **idle-skip** — engines that are provably idle (halted, or blocked
  on a queue whose state cannot unblock them this cycle) are not
  ticked.  With backend-heavy configurations most engines spend most
  low cycles blocked on an empty input queue, so skipping them is a
  measured hot-path win (~12 % faster end-to-end runs at 12 µcores,
  neutral at 4, identical results; see DESIGN.md).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.clock.domain import DualDomainClock
from repro.errors import SimulationError
from repro.trace.record import Trace
from repro.utils.stats import Instrumented

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.system import FireGuardSystem, SystemResult


class SimulationSession(Instrumented):
    """Executes traces on a built system; ``reset()`` between traces.

    A session is *clean* after construction or :meth:`reset` and
    *dirty* after :meth:`run`; running a dirty session raises, because
    silently reusing warmed-up state would break the determinism
    guarantee (``reset() + run(trace)`` must equal a fresh build's
    ``run(trace)`` bit for bit).
    """

    def __init__(self, system: "FireGuardSystem"):
        self.system = system
        self.stat_mapper_blocked = 0
        self.stat_engine_ticks_skipped = 0
        self._dirty = False
        self.runs_completed = 0

    @property
    def dirty(self) -> bool:
        """True once a trace has run and ``reset()`` has not."""
        return self._dirty

    # -- reset -------------------------------------------------------------
    def reset(self) -> None:
        """Return the system to its just-built state.

        Build-time state survives (filter SRAM programming, assembled
        kernel programs, engine partitioning, preset registers, NoC
        topology, SE subscriptions); all run state is discarded (core
        caches/TLBs/predictor, queue contents, µcore registers and
        caches, shared functional memory, statistics).
        """
        system = self.system
        system.core.reset()
        system.forwarding.reset_stats()
        system.filter.reset()
        for se in system.ses:
            se.reset()
        system.allocator.reset_stats()
        system.cdc.reset()
        system.multicast.reset()
        system.noc.reset()
        for controller in system.controllers:
            controller.reset()
        system.memory.reset()
        for engine in system.engines:
            engine.reset()
        system._result = None
        system._now_ns = 0.0
        self.reset_stats()
        self._dirty = False

    # -- simulation --------------------------------------------------------
    def run(self, trace: Trace,
            max_cycles: int = 50_000_000) -> "SystemResult":
        """Run one workload to completion (trace consumed, queues
        drained, engines idle) and return the system result."""
        if self._dirty:
            raise SimulationError(
                "session has already executed a trace; call reset() "
                "before running another")
        self._dirty = True

        from repro.core.system import SystemResult

        system = self.system
        system._result = SystemResult(cycles=0, committed=0, time_ns=0.0,
                                      stall_backpressure=0)
        core = system.core
        core.begin(trace, record_commit_times=True)
        core.attach_observer(system.filter)
        clock = DualDomainClock(system.config.high_domain(),
                                system.config.low_domain())

        high_cycle = 0
        low_cycle = 0
        cdc = system.cdc
        multicast = system.multicast
        noc = system.noc
        engines = system.engines
        controllers = system.controllers
        input_queues = [c.input_queue for c in controllers]

        while True:
            core.step(high_cycle)
            self._step_mapper(high_cycle, clock.slow_cycle)

            if clock.tick():
                low_cycle = clock.slow_cycle
                system._now_ns = clock.time_ns
                cdc.note_cycle(low_cycle)
                while not multicast.busy:
                    item = cdc.pop(low_cycle)
                    if item is None:
                        break
                    multicast.submit(*item)
                multicast.step(low_cycle)
                for ctrl in controllers:
                    outgoing = ctrl.take_outgoing()
                    if outgoing is not None:
                        noc.send(ctrl.engine_id, outgoing[0],
                                 outgoing[1], low_cycle)
                noc.step(low_cycle)
                for queue in input_queues:
                    queue.note_cycle()
                for engine in engines:
                    if engine.can_skip():
                        self.stat_engine_ticks_skipped += 1
                    else:
                        engine.tick(low_cycle)

            high_cycle += 1
            if core.done and high_cycle % 8 == 0 \
                    and self._drained(low_cycle):
                break
            if high_cycle >= max_cycles:
                raise SimulationError(
                    f"system did not drain within {max_cycles} cycles "
                    f"(trace {trace.name}, seed {trace.seed})")

        self.runs_completed += 1
        return self._finalize(high_cycle, clock)

    def _step_mapper(self, high_cycle: int, slow_cycle: int) -> None:
        """High-domain mapper slice: arbiter → allocator → CDC.

        One packet per cycle in the paper's scalar design; the
        superscalar variant (``mapper_width`` > 1, §III-C footnote 5)
        moves several, bounded by CDC space."""
        system = self.system
        for _ in range(system.config.mapper_width):
            if system.cdc.full:
                self.stat_mapper_blocked += 1
                return
            packet = system.filter.arbitrate(high_cycle)
            if packet is None:
                return
            mask = system.allocator.route(packet)
            if mask:
                system.cdc.push(packet, mask, slow_cycle)

    def _drained(self, low_cycle: int) -> bool:
        system = self.system
        if system.filter.pending:
            return False
        if not system.cdc.empty or system.multicast.draining:
            return False
        if not system.noc.idle:
            return False
        for ctrl in system.controllers:
            if ctrl.output_queue or not ctrl.input_queue.empty:
                return False
        return all(engine.idle_at(low_cycle)
                   for engine in system.engines)

    def _finalize(self, high_cycle: int,
                  clock: DualDomainClock) -> "SystemResult":
        """Assemble the result from the components' uniform stats."""
        system = self.system
        result = system._result
        assert result is not None
        core_result = system.core.result
        filter_stats = system.filter.stats()
        result.cycles = high_cycle
        result.committed = core_result.committed
        result.time_ns = clock.time_ns
        result.stall_backpressure = core_result.stall_backpressure
        result.filter_full_cycles = filter_stats["full_cycles"]
        result.mapper_blocked_cycles = self.stat_mapper_blocked
        result.cdc_full_cycles = system.cdc.stats()["full_cycles"]
        result.msgq_full_cycles = sum(
            c.stats()["input_full_cycles"] for c in system.controllers)
        result.packets_filtered = filter_stats["valid_packets"]
        result.packets_delivered = system.multicast.stats()["delivered"]
        result.engine_instructions = sum(
            e.stats().get("instructions", 0) for e in system.engines)
        result.prf_preemptions = system.forwarding.stats()["prf_reads"]
        result.noc_words = system.noc.stats()["sent"]
        system._result = None
        return result
