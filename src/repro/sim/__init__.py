"""Simulation-session layer: build once, run many.

``FireGuardSystem`` construction is expensive — filter SRAM
programming, kernel assembly, engine construction — while a run only
mutates queue/cache/predictor state.  :class:`SimulationSession`
separates the two: it owns the cycle loop for one built system and an
explicit :meth:`~repro.sim.session.SimulationSession.reset` that
returns every component to its just-built state, so one system can
execute many traces with results bit-identical to fresh builds.

The cycle loop itself is event-driven (:mod:`repro.sched`): a
cycle-wheel scheduler per clock domain replaces per-cycle polling with
timestamped wakeups, bit-identical to the dense reference loop kept
behind ``REPRO_DENSE_LOOP=1``.

The parallel sweep runner (:mod:`repro.runner`) keeps one session per
distinct system configuration per worker process.
"""

from repro.sim.session import SimulationSession

__all__ = ["SimulationSession"]
