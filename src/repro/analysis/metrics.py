"""Slowdown bookkeeping for the Fig 7/9/10/11 experiment tables."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.utils.stats import geomean


@dataclass
class SlowdownTable:
    """Rows: benchmarks; columns: schemes.  Mirrors the paper's
    grouped-bar figures, with a geomean column appended."""

    benchmarks: list[str]
    schemes: list[str] = field(default_factory=list)
    _cells: dict[tuple[str, str], float] = field(default_factory=dict)

    def record(self, benchmark: str, scheme: str, slowdown: float) -> None:
        if benchmark not in self.benchmarks:
            raise ReproError(f"unknown benchmark {benchmark!r}")
        if slowdown <= 0:
            raise ReproError(
                f"slowdown must be positive, got {slowdown} for "
                f"{benchmark}/{scheme}")
        if scheme not in self.schemes:
            self.schemes.append(scheme)
        self._cells[(benchmark, scheme)] = slowdown

    def get(self, benchmark: str, scheme: str) -> float:
        key = (benchmark, scheme)
        if key not in self._cells:
            raise ReproError(f"no cell for {benchmark}/{scheme}")
        return self._cells[key]

    def has(self, benchmark: str, scheme: str) -> bool:
        return (benchmark, scheme) in self._cells

    def scheme_geomean(self, scheme: str) -> float:
        values = [self._cells[(b, scheme)] for b in self.benchmarks
                  if (b, scheme) in self._cells]
        return geomean(values)

    def rows(self) -> list[list[str]]:
        """Render-ready rows including a geomean footer."""
        header = ["benchmark"] + list(self.schemes)
        out = [header]
        for bench in self.benchmarks:
            row = [bench]
            for scheme in self.schemes:
                if (bench, scheme) in self._cells:
                    row.append(f"{self._cells[(bench, scheme)]:.3f}")
                else:
                    row.append("-")
            out.append(row)
        footer = ["geomean"]
        for scheme in self.schemes:
            try:
                footer.append(f"{self.scheme_geomean(scheme):.3f}")
            except ReproError:
                footer.append("-")
        out.append(footer)
        return out
