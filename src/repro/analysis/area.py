"""Area accounting (§IV-F) and commercial-SoC feasibility (§IV-G,
Table III).

The §IV-F numbers come from the paper's Synopsys 14 nm physical flow;
this module encodes them as published constants and reproduces the
derived percentages.  Table III normalises commercial core areas to
14 nm by transistor-density ratios, scales the µcore count with each
core's normalised throughput (IPC × peak frequency relative to BOOM),
and accounts filter/mapper/µcore area per core and per SoC.

Normalised throughput is taken from the paper's published row (it was
measured with single-thread PARSEC on the real SoCs, which cannot be
re-measured here); the model also reports the value recomputed from
IPC × frequency for comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

# §IV-F published constants (mm², Synopsys 14 nm Generic PDK).
BOOM_AREA_MM2 = 1.107
ROCKET_AREA_MM2 = 0.061
FILTER_AREA_MM2 = 0.032      # 4-wide event filter
MAPPER_AREA_MM2 = 0.011
SOC_AREA_MM2 = 2.91
BASELINE_UCORES = 4
BASELINE_FILTER_WIDTH = 4

# Transistor-density scaling to 14 nm, derived from the paper's own
# normalised areas (which cite techcenturion's density comparison).
DENSITY_TO_14NM = {14: 1.0, 10: 3.100, 7: 2.934, 5: 8.913}


@dataclass(frozen=True)
class AreaBreakdown:
    """§IV-F: the 4-µcore FireGuard prototype SoC."""

    boom: float
    rockets: float
    filter_area: float
    mapper: float

    @property
    def transport(self) -> float:
        """Filter + mapper: FireGuard's transport mechanisms."""
        return self.filter_area + self.mapper

    @property
    def fireguard_total(self) -> float:
        return self.rockets + self.transport

    @property
    def transport_pct_of_boom(self) -> float:
        return 100.0 * self.transport / self.boom

    @property
    def transport_pct_of_soc(self) -> float:
        """Transport vs the full prototype SoC (caches included):
        the paper's 1.48 %."""
        return 100.0 * self.transport / SOC_AREA_MM2

    @property
    def fireguard_pct_of_boom(self) -> float:
        return 100.0 * self.fireguard_total / self.boom

    @property
    def fireguard_pct_of_soc(self) -> float:
        """FireGuard vs the full prototype SoC: the paper's 9.86 %."""
        return 100.0 * self.fireguard_total / SOC_AREA_MM2


def fireguard_area_breakdown(
        num_ucores: int = BASELINE_UCORES,
        filter_width: int = BASELINE_FILTER_WIDTH) -> AreaBreakdown:
    """Area of a FireGuard instance with the given configuration."""
    if num_ucores <= 0 or filter_width <= 0:
        raise ConfigError("µcore count and filter width must be positive")
    return AreaBreakdown(
        boom=BOOM_AREA_MM2,
        rockets=num_ucores * ROCKET_AREA_MM2,
        filter_area=FILTER_AREA_MM2 * filter_width / BASELINE_FILTER_WIDTH,
        mapper=MAPPER_AREA_MM2,
    )


@dataclass(frozen=True)
class ProcessorSpec:
    """One performance core from Table III's upper portion."""

    name: str
    soc: str
    freq_ghz: float
    tech_nm: int
    area_mm2: float
    ipc: float
    # Published normalised throughput (measured on hardware by the
    # authors; see module docstring).
    published_throughput: float
    filter_width: int

    @property
    def area_at_14nm(self) -> float:
        if self.tech_nm not in DENSITY_TO_14NM:
            raise ConfigError(f"no density factor for {self.tech_nm} nm")
        return self.area_mm2 * DENSITY_TO_14NM[self.tech_nm]

    def computed_throughput(self, baseline: "ProcessorSpec") -> float:
        return (self.ipc * self.freq_ghz) / (baseline.ipc
                                             * baseline.freq_ghz)


BOOM_SPEC = ProcessorSpec(
    name="BOOM", soc="prototype", freq_ghz=3.2, tech_nm=14,
    area_mm2=1.11, ipc=1.3, published_throughput=1.0, filter_width=4)

COMMERCIAL_PROCESSORS: dict[str, ProcessorSpec] = {
    "BOOM": BOOM_SPEC,
    "FireStorm": ProcessorSpec(
        name="FireStorm", soc="M1-Pro", freq_ghz=3.2, tech_nm=5,
        area_mm2=2.53, ipc=3.79, published_throughput=2.92,
        filter_width=8),
    "Cortex-A76": ProcessorSpec(
        name="Cortex-A76", soc="Kirin-960", freq_ghz=2.8, tech_nm=7,
        area_mm2=1.23, ipc=2.07, published_throughput=1.27,
        filter_width=4),
    "AlderLake-S": ProcessorSpec(
        name="AlderLake-S", soc="i7-12700F", freq_ghz=4.9, tech_nm=10,
        area_mm2=7.30, ipc=2.83, published_throughput=3.35,
        filter_width=6),
}

FIREGUARD_AREA = fireguard_area_breakdown()


@dataclass(frozen=True)
class FeasibilityRow:
    """Table III middle portion: per-core FireGuard overhead."""

    processor: str
    soc: str
    area_at_14nm: float
    normalized_throughput: float
    computed_throughput: float
    filter_width: int
    num_ucores: int
    overhead_mm2: float
    overhead_pct_of_core: float


def ucores_for_throughput(throughput: float,
                          baseline_ucores: int = BASELINE_UCORES) -> int:
    """µcores needed to keep up with a faster core: linear scaling of
    the baseline's four µcores with normalised throughput, rounded to
    the nearest integer (matches the paper's 12/5/13)."""
    if throughput <= 0:
        raise ConfigError("throughput must be positive")
    return max(1, round(baseline_ucores * throughput))


def feasibility_row(spec: ProcessorSpec) -> FeasibilityRow:
    """Compute one Table III column for a processor."""
    n_ucores = ucores_for_throughput(spec.published_throughput)
    breakdown = fireguard_area_breakdown(n_ucores, spec.filter_width)
    overhead = breakdown.fireguard_total
    return FeasibilityRow(
        processor=spec.name,
        soc=spec.soc,
        area_at_14nm=spec.area_at_14nm,
        normalized_throughput=spec.published_throughput,
        computed_throughput=spec.computed_throughput(BOOM_SPEC),
        filter_width=spec.filter_width,
        num_ucores=n_ucores,
        overhead_mm2=overhead,
        overhead_pct_of_core=100.0 * overhead / spec.area_at_14nm,
    )


def feasibility_table() -> list[FeasibilityRow]:
    """All four Table III columns."""
    return [feasibility_row(spec)
            for spec in COMMERCIAL_PROCESSORS.values()]


@dataclass(frozen=True)
class SocSpec:
    """SoC-level inventory for Table III's bottom portion.

    ``cores`` maps a core type to (count, per-core FireGuard overhead
    in mm²).  ``soc_area_14nm`` is the die area normalised to 14 nm
    (derived from the paper's published overhead percentages, since
    die-shot measurements are not reproducible here — see
    EXPERIMENTS.md).
    """

    name: str
    cores: tuple[tuple[str, int, float], ...]
    soc_area_14nm: float

    def total_overhead(self) -> float:
        return sum(count * area for _, count, area in self.cores)

    def overhead_pct(self) -> float:
        return 100.0 * self.total_overhead() / self.soc_area_14nm


def _per_core_overhead(processor: str) -> float:
    return feasibility_row(COMMERCIAL_PROCESSORS[processor]).overhead_mm2


def soc_overhead() -> list[SocSpec]:
    """Table III bottom portion: an independent kernel for all cores.

    Efficiency-core FireGuard instances are sized by the same
    throughput rule (2 µcores for the small cores).  SoC areas are the
    published-derived constants.
    """
    small_core = fireguard_area_breakdown(num_ucores=2,
                                          filter_width=4).fireguard_total
    return [
        SocSpec(
            name="prototype (BOOM)",
            cores=(("BOOM", 1, _per_core_overhead("BOOM")),),
            soc_area_14nm=SOC_AREA_MM2),
        SocSpec(
            name="M1-Pro",
            cores=(("FireStorm", 8, _per_core_overhead("FireStorm")),
                   ("IceStorm", 2, small_core)),
            soc_area_14nm=1297.9),
        SocSpec(
            name="Kirin-960",
            cores=(("Cortex-A76", 4, _per_core_overhead("Cortex-A76")),),
            soc_area_14nm=215.8),
        SocSpec(
            name="i7-12700F",
            cores=(("AlderLake-S", 8, _per_core_overhead("AlderLake-S")),
                   ("Gracemont", 4, small_core)),
            soc_area_14nm=673.7),
    ]
