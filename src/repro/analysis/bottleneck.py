"""Queue-full bottleneck attribution (Fig 9).

Fig 9 decomposes FireGuard's overhead by "the proportion of time
queues are full" at each element — filter FIFOs, mapper, CDC, and the
µcores' message queues — across event-filter widths.  The report here
computes those proportions from a :class:`SystemResult`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.system import SystemResult
from repro.errors import ReproError


@dataclass(frozen=True)
class BottleneckReport:
    """Fractions of time each element's queues were full."""

    benchmark: str
    filter_width: int
    slowdown: float
    filter_full: float      # lane FIFOs full (fraction of high cycles)
    mapper_blocked: float   # arbiter held because the CDC was full
    cdc_full: float         # CDC full (fraction of low cycles)
    msgq_full: float        # message queues full (fraction of
    #                         engine-cycles in the low domain)

    def as_row(self) -> list[str]:
        return [
            self.benchmark, str(self.filter_width),
            f"{self.slowdown:.3f}", f"{self.filter_full:.4f}",
            f"{self.mapper_blocked:.4f}", f"{self.cdc_full:.4f}",
            f"{self.msgq_full:.4f}",
        ]


def bottleneck_report(benchmark: str, filter_width: int,
                      result: SystemResult, baseline_cycles: int,
                      num_engines: int) -> BottleneckReport:
    """Build the Fig 9 decomposition for one run."""
    if result.cycles <= 0 or baseline_cycles <= 0:
        raise ReproError("cycle counts must be positive")
    high_cycles = result.cycles
    low_cycles = max(1, high_cycles // 2)
    return BottleneckReport(
        benchmark=benchmark,
        filter_width=filter_width,
        slowdown=result.cycles / baseline_cycles,
        filter_full=result.filter_full_cycles / high_cycles,
        mapper_blocked=result.mapper_blocked_cycles / high_cycles,
        cdc_full=result.cdc_full_cycles / low_cycles,
        msgq_full=result.msgq_full_cycles / (low_cycles * num_engines),
    )
