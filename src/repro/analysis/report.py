"""Plain-text table rendering for the experiment harnesses."""

from __future__ import annotations

from typing import Sequence


def format_table(rows: Sequence[Sequence[str]], title: str = "") -> str:
    """Align rows into a monospace table (first row is the header)."""
    if not rows:
        return title
    widths = [0] * max(len(r) for r in rows)
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))
    lines = []
    if title:
        lines.append(title)
    header, *body = rows
    lines.append("  ".join(str(c).ljust(w) for c, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths[:len(header)]))
    for row in body:
        lines.append("  ".join(str(c).ljust(w)
                               for c, w in zip(row, widths)))
    return "\n".join(lines)
