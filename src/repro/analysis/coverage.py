"""Detection-coverage matrix over a fuzzed corpus.

The campaign fuzzer (:mod:`repro.trace.fuzz`) yields scenarios plus
exact per-attack ground truth; this module joins that truth against
the detections of executed runs into an (attack kind × guardian
kernel × workload family) matrix.  The matrix answers the two
questions the paper spot-checks and the corpus generalizes:

* **Coverage** — is every injected attack of kind *K* detected by
  *K*'s matching kernel, on every family it was injected into?
  :meth:`CoverageMatrix.gaps` lists the matching-kernel cells where
  ``detected < injected`` — the cells CI's ``fuzz-smoke`` job fails
  on.
* **Precision** — do clean records ever alarm?  Any alert without an
  ``attack_id`` is a false positive, whether the run carried attacks
  or not; attack-free campaigns additionally assert zero detections
  end to end.

Off-diagonal cells (kind against a non-matching kernel) are reported
but not gated: a shadow stack is *expected* to ignore a redzone poke,
and the matrix shows it does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.core.system import SystemResult
from repro.trace.attacks import AttackKind, AttackSite

__all__ = [
    "MATCHING_KERNEL",
    "CoverageCell",
    "CoverageMatrix",
    "summarize",
]

#: The kernel each attack kind is aimed at (§IV-B's pairing).
MATCHING_KERNEL: dict[AttackKind, str] = {
    AttackKind.RET_HIJACK: "shadow_stack",
    AttackKind.OOB_ACCESS: "asan",
    AttackKind.UAF_ACCESS: "uaf",
    AttackKind.PMC_BOUND: "pmc",
}


@dataclass
class CoverageCell:
    """One (kind, kernel, family) aggregate."""

    kind: str
    kernel: str
    family: str
    injected: int = 0
    detected: int = 0
    runs: int = 0

    @property
    def matching(self) -> bool:
        return MATCHING_KERNEL[AttackKind[self.kind]] == self.kernel

    @property
    def complete(self) -> bool:
        return self.detected >= self.injected

    def as_dict(self) -> dict:
        return {"kind": self.kind, "kernel": self.kernel,
                "family": self.family, "injected": self.injected,
                "detected": self.detected, "runs": self.runs,
                "matching": self.matching}


@dataclass
class CoverageMatrix:
    """Accumulates (ground truth, executed result) joins."""

    cells: dict[tuple[str, str, str], CoverageCell] = field(
        default_factory=dict)
    false_positives: dict[str, int] = field(default_factory=dict)
    clean_runs: int = 0
    clean_detections: int = 0
    runs: int = 0

    def _cell(self, kind: AttackKind, kernel: str,
              family: str) -> CoverageCell:
        key = (kind.name, kernel, family)
        cell = self.cells.get(key)
        if cell is None:
            cell = CoverageCell(kind=kind.name, kernel=kernel,
                                family=family)
            self.cells[key] = cell
        return cell

    def record(self, family: str, kernel: str,
               sites: Iterable[AttackSite],
               result: SystemResult,
               attack_free: bool = False) -> None:
        """Join one run's detections against its ground truth.

        ``sites`` is the composed scenario's exact site list;
        ``result.detections`` is keyed by the same attack ids.  Alerts
        without an attack id are clean-record alarms — false
        positives, attributed to the run's kernel.
        """
        self.runs += 1
        by_kind: dict[AttackKind, list[AttackSite]] = {}
        for site in sites:
            by_kind.setdefault(site.kind, []).append(site)
        for kind, kind_sites in sorted(by_kind.items(),
                                       key=lambda kv: kv[0].name):
            cell = self._cell(kind, kernel, family)
            cell.runs += 1
            cell.injected += len(kind_sites)
            cell.detected += sum(
                1 for site in kind_sites
                if site.attack_id in result.detections)
        ghosts = sum(1 for alert in result.alerts
                     if alert.attack_id is None)
        if ghosts:
            self.false_positives[kernel] = \
                self.false_positives.get(kernel, 0) + ghosts
        if attack_free:
            self.clean_runs += 1
            self.clean_detections += len(result.detections) \
                + len(result.alerts)

    def gaps(self) -> list[CoverageCell]:
        """Matching-kernel cells with undetected injections — the
        cells the coverage gate fails on."""
        return [cell for cell in self.cells.values()
                if cell.matching and cell.injected and
                not cell.complete]

    def kind_families(self) -> dict[str, list[str]]:
        """Per attack kind, the families where its matching kernel
        fully detected a non-empty injection (the acceptance
        criterion counts these)."""
        out: dict[str, list[str]] = {kind.name: []
                                     for kind in AttackKind}
        for cell in self.cells.values():
            if cell.matching and cell.injected and cell.complete:
                out[cell.kind].append(cell.family)
        return {kind: sorted(set(families))
                for kind, families in out.items()}

    def total_false_positives(self) -> int:
        return sum(self.false_positives.values()) \
            + self.clean_detections

    def ok(self) -> bool:
        """The gate: no matching-cell gap, no false positive."""
        return not self.gaps() and not self.total_false_positives()

    def rows(self) -> list[list[str]]:
        """Table rows (header first), matching cells before
        off-diagonal ones, for :func:`repro.analysis.report.
        format_table`."""
        header = ["kind", "kernel", "family", "injected", "detected",
                  "runs", "cell"]
        body = [[cell.kind, cell.kernel, cell.family,
                 str(cell.injected), str(cell.detected),
                 str(cell.runs),
                 "MATCH" if cell.matching else "cross"]
                for cell in self.cells.values()]
        body.sort(key=lambda row: (row[6] != "MATCH", row[0], row[1],
                                   row[2]))
        return [header] + body

    def to_dict(self, **extra: object) -> dict:
        """The ``COVERAGE_fuzz.json`` document body; ``extra`` adds
        harness metadata (seed, corpus digest, campaign count)."""
        return {
            "cells": [self.cells[key].as_dict()
                      for key in sorted(self.cells)],
            "gaps": [cell.as_dict() for cell in self.gaps()],
            "kind_families": self.kind_families(),
            "false_positives": dict(sorted(
                self.false_positives.items())),
            "clean_runs": self.clean_runs,
            "clean_detections": self.clean_detections,
            "runs": self.runs,
            "ok": self.ok(),
            **extra,
        }


def summarize(matrices: Mapping[str, CoverageMatrix]) -> dict:
    """Merge labelled matrices into one document (multi-backend or
    multi-fleet aggregation hook)."""
    merged = CoverageMatrix()
    for matrix in matrices.values():
        merged.runs += matrix.runs
        merged.clean_runs += matrix.clean_runs
        merged.clean_detections += matrix.clean_detections
        for kernel, count in matrix.false_positives.items():
            merged.false_positives[kernel] = \
                merged.false_positives.get(kernel, 0) + count
        for key, cell in matrix.cells.items():
            target = merged._cell(AttackKind[cell.kind], cell.kernel,
                                  cell.family)
            target.injected += cell.injected
            target.detected += cell.detected
            target.runs += cell.runs
    return merged.to_dict(sources=sorted(matrices))
