"""Shape validation: the paper's qualitative claims as checkable
predicates.

Absolute numbers cannot transfer from the authors' FPGA prototype to a
Python model, but the claims the paper's conclusions rest on are
*ordinal* — who wins, what scales, what dominates.  This module turns
each claim into a predicate over measured results, so benchmarks and
tests assert reproduction explicitly, and a human reading a report can
see exactly which claims held.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.metrics import SlowdownTable
from repro.errors import ReproError


@dataclass(frozen=True)
class ShapeCheck:
    """One verified (or failed) qualitative claim."""

    claim: str
    holds: bool
    detail: str = ""

    def as_row(self) -> list[str]:
        return [self.claim, "yes" if self.holds else "NO", self.detail]


def check_ha_removes_overhead(table: SlowdownTable,
                              ha_scheme: str,
                              tolerance: float = 1.02) -> ShapeCheck:
    """§IV-A: hardware accelerators reduce PMC/SS overhead to ~0."""
    worst = max(table.get(b, ha_scheme) for b in table.benchmarks
                if table.has(b, ha_scheme))
    return ShapeCheck(
        claim=f"HA overhead ~0 ({ha_scheme})",
        holds=worst <= tolerance,
        detail=f"worst {worst:.3f}")


def check_fireguard_beats_software(table: SlowdownTable, fg_scheme: str,
                                   sw_scheme: str) -> ShapeCheck:
    """§IV-A: FireGuard consistently outperforms software schemes."""
    losses = [b for b in table.benchmarks
              if table.has(b, fg_scheme) and table.has(b, sw_scheme)
              and table.get(b, fg_scheme) > table.get(b, sw_scheme)]
    return ShapeCheck(
        claim=f"{fg_scheme} beats {sw_scheme}",
        holds=len(losses) <= 1,  # the paper itself notes one exception
        detail=f"losses: {losses or 'none'}")


def check_scaling_monotone(table: SlowdownTable,
                           tolerance: float = 0.03) -> ShapeCheck:
    """§IV-D: more µcores never hurt (geomean, within noise)."""
    geomeans = [table.scheme_geomean(s) for s in table.schemes]
    holds = all(b <= a + tolerance
                for a, b in zip(geomeans, geomeans[1:]))
    return ShapeCheck(
        claim="slowdown monotone non-increasing with ucores",
        holds=holds,
        detail=" -> ".join(f"{g:.3f}" for g in geomeans))


def check_combination_not_multiplicative(
        combo: float, parts: list[float],
        slack: float = 1.10) -> ShapeCheck:
    """§IV-A: combined kernels cost ~max of parts, not their product."""
    if not parts:
        raise ReproError("need component slowdowns")
    product = 1.0
    for p in parts:
        product *= p
    holds = combo <= max(max(parts) * slack, 1.0 + (product - 1.0) * 0.9)
    return ShapeCheck(
        claim="combination dominated by heaviest kernel",
        holds=holds,
        detail=f"combo {combo:.3f} vs max {max(parts):.3f} "
               f"product {product:.3f}")


def check_strategy_ordering(conventional: float, duff: float,
                            unrolled: float, hybrid: float,
                            tolerance: float = 0.01) -> ShapeCheck:
    """§IV-E: conventional worst; hazard-aware strategies win."""
    best_aware = min(duff, unrolled, hybrid)
    holds = (conventional + tolerance >= duff
             and conventional + tolerance >= best_aware)
    return ShapeCheck(
        claim="conventional loop worst; hybrid/unrolled best",
        holds=holds,
        detail=f"conv {conventional:.3f} duff {duff:.3f} "
               f"unroll {unrolled:.3f} hybrid {hybrid:.3f}")


def check_latency_ordering(pmc_median: float, asan_median: float,
                           asan_max: float) -> ShapeCheck:
    """§IV-B: PMC fastest; ASan has the long tail."""
    holds = pmc_median <= asan_median and asan_max > asan_median * 2
    return ShapeCheck(
        claim="PMC fastest detector; ASan long-tailed",
        holds=holds,
        detail=f"pmc_med {pmc_median:.0f}ns asan_med {asan_median:.0f}ns "
               f"asan_max {asan_max:.0f}ns")


def summarize(checks: list[ShapeCheck]) -> tuple[int, int]:
    """(held, total)."""
    return sum(c.holds for c in checks), len(checks)
