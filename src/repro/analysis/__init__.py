"""Analysis: slowdown metrics, area/feasibility models, reporting."""

from repro.analysis.area import (
    COMMERCIAL_PROCESSORS,
    FIREGUARD_AREA,
    AreaBreakdown,
    ProcessorSpec,
    SocSpec,
    feasibility_row,
    feasibility_table,
    fireguard_area_breakdown,
    soc_overhead,
)
from repro.analysis.bottleneck import BottleneckReport, bottleneck_report
from repro.analysis.coverage import (
    MATCHING_KERNEL,
    CoverageCell,
    CoverageMatrix,
    summarize,
)
from repro.analysis.metrics import SlowdownTable
from repro.analysis.report import format_table

__all__ = [
    "AreaBreakdown",
    "BottleneckReport",
    "COMMERCIAL_PROCESSORS",
    "CoverageCell",
    "CoverageMatrix",
    "FIREGUARD_AREA",
    "MATCHING_KERNEL",
    "ProcessorSpec",
    "SlowdownTable",
    "SocSpec",
    "bottleneck_report",
    "feasibility_row",
    "feasibility_table",
    "fireguard_area_breakdown",
    "format_table",
    "soc_overhead",
    "summarize",
]
