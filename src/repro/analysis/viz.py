"""Plot-free figure rendering: ASCII bar charts and series.

The experiment CLIs print the paper's figures as text so results are
inspectable in any terminal or CI log (no matplotlib dependency).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.errors import ReproError

_BAR = "#"


def bar_chart(values: Mapping[str, float], title: str = "",
              width: int = 48, baseline: float = 1.0) -> str:
    """Horizontal bars, scaled to the maximum value.

    With ``baseline`` set (default 1.0 — no slowdown), the bar renders
    the excess over the baseline so small overheads stay visible.
    """
    if not values:
        raise ReproError("bar_chart needs at least one value")
    top = max(values.values())
    span = max(top - baseline, 1e-9)
    label_w = max(len(k) for k in values)
    lines = [title] if title else []
    for key, value in values.items():
        filled = int(round((value - baseline) / span * width))
        filled = max(0, min(width, filled))
        lines.append(f"{key.ljust(label_w)}  {value:7.3f} "
                     f"|{_BAR * filled}{' ' * (width - filled)}|")
    return "\n".join(lines)


def series_chart(xs: Sequence[float], series: Mapping[str, Sequence[float]],
                 title: str = "", height: int = 12,
                 width: int = 60) -> str:
    """Plot one or more y-series against shared x values as an ASCII
    scatter (each series gets a distinct glyph)."""
    if not series:
        raise ReproError("series_chart needs at least one series")
    glyphs = "*+ox@%&="
    all_y = [y for ys in series.values() for y in ys]
    lo, hi = min(all_y), max(all_y)
    span = max(hi - lo, 1e-9)
    x_lo, x_hi = min(xs), max(xs)
    x_span = max(x_hi - x_lo, 1e-9)

    grid = [[" "] * width for _ in range(height)]
    for (name, ys), glyph in zip(series.items(), glyphs):
        for x, y in zip(xs, ys):
            col = int((x - x_lo) / x_span * (width - 1))
            row = height - 1 - int((y - lo) / span * (height - 1))
            grid[row][col] = glyph

    lines = [title] if title else []
    for i, row in enumerate(grid):
        y_val = hi - (i / max(1, height - 1)) * span
        lines.append(f"{y_val:8.2f} |{''.join(row)}")
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(" " * 10 + f"{x_lo:g}".ljust(width - 8) + f"{x_hi:g}")
    legend = "  ".join(f"{glyph}={name}" for (name, _), glyph
                       in zip(series.items(), glyphs))
    lines.append(" " * 10 + legend)
    return "\n".join(lines)
